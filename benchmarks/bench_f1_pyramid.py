"""F1 — the security pyramid (Figure 1).

Paper: countermeasures live at four abstraction levels; "skipping a
countermeasure means opening the door for a possible attack".

The bench renders the coverage matrix for the paper's full design and
then strips countermeasures one configuration at a time, showing which
threats each omission re-opens — Figure 1 turned into an executable
checklist.
"""

from _helpers import write_report

from repro.arch import (
    ClockGatingPolicy,
    CoprocessorConfig,
    UnbalancedEncoding,
)
from repro.security import AbstractionLevel, default_pyramid, \
    pyramid_for_config


def run_experiment():
    full = default_pyramid()
    variants = {
        "full design": CoprocessorConfig(),
        "no Z randomization": CoprocessorConfig(randomize_z=False),
        "unbalanced mux encoding": CoprocessorConfig(
            mux_encoding=UnbalancedEncoding()
        ),
        "data-dependent clock gating": CoprocessorConfig(
            clock_gating=ClockGatingPolicy.DATA_DEPENDENT
        ),
    }
    open_doors = {
        name: [t.name for t in pyramid_for_config(cfg).uncovered_threats()]
        for name, cfg in variants.items()
    }
    return full, open_doors


def test_f1_pyramid(benchmark):
    full, open_doors = benchmark.pedantic(run_experiment, rounds=1,
                                          iterations=1)
    lines = [full.report(), "", "configuration ablation (open doors):"]
    for name, doors in open_doors.items():
        lines.append(f"  {name:<32} -> {', '.join(doors) or 'none'}")
    write_report("f1_pyramid", lines)

    assert full.uncovered_threats() == []
    assert len(full.levels_used()) == 4
    assert full.levels_used()[0] is AbstractionLevel.PROTOCOL
    assert open_doors["full design"] == []
    assert "dpa" in open_doors["no Z randomization"]
