"""I1 (intermittent power) — pricing the checkpoint interval.

The paper prices the honest protocol on stable power; a harvested or
failing supply adds a new column to the energy table.  Surviving a
power cut needs durable checkpoints, and the interval between them is
a pure two-legged trade: every checkpoint spends NVM energy whether
or not a cut ever comes, while every cut re-executes the ladder steps
since the last commit.  This bench runs the same sessions across a
grid of intervals, on stable power (the standing overhead) and under
seeded brownout schedules (the re-execution bill), and tabulates the
microjoules on each leg.

The acceptance criteria are the shape of the trade: the overhead leg
is monotone non-increasing in the interval, the re-execution leg
monotone non-decreasing (summed over the seeded schedules), and every
interrupted run ends byte-identical to its stable-power baseline —
the robustness machinery must never buy survival with a different
answer.

Writes the human table to ``results/i1_checkpoint_interval.txt`` and
the machine-readable baseline to ``results/BENCH_intermittent.json``.
"""

import json

from _helpers import RESULTS_DIR, scaled, write_report

from repro.intermittent import (
    IntermittentSpec,
    PowerCutSchedule,
    run_intermittent_session,
    run_with_schedule,
)

SEED = 2013
CURVE = "TOY-B17"
INTERVALS = (1, 2, 4, 8, 16, 32, 64)
SESSIONS = scaled(6, 2)
SCHEDULES = scaled(5, 2)
CUTS = 3
MEAN_ON_CYCLES = 8000


def _run_cell(interval):
    """One interval: stable baselines plus every seeded cut replay."""
    spec = IntermittentSpec(curve=CURVE, seed=SEED,
                            checkpoint_interval=interval)
    overhead_uj = 0.0
    reexec_steps = 0
    reexec_uj = 0.0
    cut_total_uj = 0.0
    power_cycles = 0
    replays = 0
    for session in range(SESSIONS):
        base = run_intermittent_session(spec, session)
        assert base.completed and base.accepted, (interval, session)
        overhead_uj += base.checkpoint_uj
        step_uj = base.compute_uj / base.steps_executed
        for schedule_seed in range(SCHEDULES):
            schedule = PowerCutSchedule.seeded(
                schedule_seed, session, cuts=CUTS,
                mean_on_cycles=MEAN_ON_CYCLES)
            result = run_with_schedule(spec, session, schedule)
            assert result.completed, (interval, session, schedule_seed)
            assert result.outcome_digest == base.outcome_digest, \
                (interval, session, schedule_seed)
            reexec_steps += result.steps_wasted
            reexec_uj += result.steps_wasted * step_uj
            cut_total_uj += result.total_uj
            power_cycles += result.power_cycles
            replays += 1
    return {
        "interval": interval,
        "sessions": SESSIONS,
        "replays": replays,
        "power_cycles": power_cycles,
        "overhead_uj": round(overhead_uj, 4),
        "reexec_steps": reexec_steps,
        "reexec_uj": round(reexec_uj, 4),
        "cut_total_uj": round(cut_total_uj, 4),
    }


def run_experiment():
    cells = [_run_cell(interval) for interval in INTERVALS]

    lines = [
        f"I1 — checkpoint interval vs energy under power cuts "
        f"({SESSIONS} session(s) x {SCHEDULES} schedule(s), "
        f"{CUTS} cuts around {MEAN_ON_CYCLES} cycles, seed {SEED})",
        "=" * 72,
        f"{'interval':>9}{'overhead uJ':>13}{'re-exec steps':>15}"
        f"{'re-exec uJ':>12}{'cut total uJ':>14}",
        "-" * 72,
    ]
    for cell in cells:
        lines.append(
            f"{cell['interval']:>9}{cell['overhead_uj']:>13.3f}"
            f"{cell['reexec_steps']:>15}{cell['reexec_uj']:>12.3f}"
            f"{cell['cut_total_uj']:>14.2f}")
    lines += [
        "-" * 72,
        "overhead = stable-power NVM energy on checkpoints (paid even "
        "if no cut",
        "ever comes); re-exec = ladder steps replayed after cuts, "
        "priced at the",
        "session's per-step compute energy.  Every interrupted run "
        "ended",
        "byte-identical to its stable baseline.",
    ]
    write_report("i1_checkpoint_interval", lines)

    from repro.obs.metrics import atomic_write_bytes

    payload = json.dumps(
        {"curve": CURVE, "seed": SEED, "sessions": SESSIONS,
         "schedules": SCHEDULES, "cuts": CUTS, "cells": cells},
        indent=1, sort_keys=True) + "\n"
    atomic_write_bytes(str(RESULTS_DIR / "BENCH_intermittent.json"),
                       payload.encode())

    # The acceptance criteria: both legs of the trade are monotone in
    # the interval, and the robustness is not free.
    for fine, coarse in zip(cells, cells[1:]):
        assert fine["overhead_uj"] >= coarse["overhead_uj"], \
            (fine, coarse)
        assert fine["reexec_steps"] <= coarse["reexec_steps"], \
            (fine, coarse)
    assert cells[0]["overhead_uj"] > cells[-1]["overhead_uj"], cells
    assert cells[0]["reexec_steps"] < cells[-1]["reexec_steps"], cells
    return cells


def test_i1_checkpoint_interval(benchmark):
    cells = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert all(cell["power_cycles"] > 0 for cell in cells)
