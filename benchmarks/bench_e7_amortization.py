"""E7 (crypto backends) — battery-life extension vs forward-secrecy.

The paper's handshake-per-message design pays the full ECC bill on
every exchange.  The amortized hybrid runs the private handshake once
per epoch, derives a session key, and seals each message with a
lightweight symmetric AEAD — so the epoch length is a pure security
knob: a longer window amortizes the handshake over more messages
(longer battery life) but widens the blast radius of a captured
session key (weaker forward secrecy).

This bench sweeps forward-secrecy windows across frame-loss rates on
the TOY curve and tabulates the microjoules per delivered message,
the battery-life extension factor over the handshake-per-message
baseline, and the projected pacemaker lifetime.  The acceptance
criteria are the shape of the trade: at ``epoch=1`` the "amortized"
design *is* the baseline (extension factor 1.0 by construction), and
the extension grows strictly with the window at every loss rate.

Writes the human table to ``results/e7_amortization.txt`` and the
machine-readable baseline to ``results/BENCH_backends.json``.
"""

import json

from _helpers import RESULTS_DIR, scaled, write_report

from repro.protocols import AmortizedSpec, run_amortized_soak

SEED = 2013
CURVE = "TOY-B17"
BACKEND = "simon-aead"
EPOCHS = (1, 4, 16)
LOSSES = (0.0, 0.10, 0.20)
SESSIONS = scaled(6, 2)
MESSAGES = scaled(64, 16)


def _run_window(epoch):
    """One forward-secrecy window across every loss rate."""
    spec = AmortizedSpec(
        backend=BACKEND, curve=CURVE, seed=SEED,
        epoch_messages=epoch, messages=MESSAGES, sessions=SESSIONS,
        sweep=LOSSES)
    report = run_amortized_soak(spec, workers=0)
    cells = []
    for point in report.points:
        assert point.delivered > 0, (epoch, point.frame_loss)
        cells.append({
            "epoch": epoch,
            "frame_loss": point.frame_loss,
            "sessions": point.sessions,
            "messages": point.messages,
            "delivered": point.delivered,
            "keys_used": sum(r.keys_used for r in point.records),
            "delivery_rate": round(point.delivery_rate, 4),
            "uj_per_message": round(point.mean_uj_per_message, 4),
            "handshake_uj": round(point.mean_handshake_uj, 4),
            "message_only_uj": round(point.mean_message_only_uj, 4),
            "extension_factor": round(point.extension_factor, 4),
            "lifetime_years": round(point.lifetime_years(spec), 3),
            "digest": point.digest(),
        })
    return cells


def run_experiment():
    cells = []
    for epoch in EPOCHS:
        cells.extend(_run_window(epoch))

    lines = [
        f"E7 — battery-life extension vs forward-secrecy window "
        f"({BACKEND} on {CURVE}, {SESSIONS} session(s) x "
        f"{MESSAGES} message(s), seed {SEED})",
        "=" * 72,
        f"{'epoch':>6}{'loss':>7}{'deliv':>8}{'uJ/msg':>10}"
        f"{'hshake uJ':>11}{'msg uJ':>9}{'ext':>7}{'years':>8}",
        "-" * 72,
    ]
    for cell in cells:
        lines.append(
            f"{cell['epoch']:>6}{cell['frame_loss']:>7.0%}"
            f"{cell['delivery_rate']:>8.1%}"
            f"{cell['uj_per_message']:>10.3f}"
            f"{cell['handshake_uj']:>11.3f}"
            f"{cell['message_only_uj']:>9.3f}"
            f"{cell['extension_factor']:>7.2f}"
            f"{cell['lifetime_years']:>8.1f}")
    lines += [
        "-" * 72,
        "ext = (handshake + message) / amortized uJ per delivered "
        "message: the",
        "battery-life multiple over the handshake-per-message design, "
        "which pays",
        "the same data frame plus one full private handshake every "
        "message.",
        f"forward secrecy: a captured session key exposes at most "
        f"'epoch' messages.",
    ]
    write_report("e7_amortization", lines)

    from repro.obs.metrics import atomic_write_bytes

    payload = json.dumps(
        {"curve": CURVE, "backend": BACKEND, "seed": SEED,
         "sessions": SESSIONS, "messages": MESSAGES, "cells": cells},
        indent=1, sort_keys=True) + "\n"
    atomic_write_bytes(str(RESULTS_DIR / "BENCH_backends.json"),
                       payload.encode())

    # The acceptance criteria: epoch=1 *is* the baseline, and the
    # extension grows strictly with the window at every loss rate.
    by_loss = {loss: [] for loss in LOSSES}
    for cell in cells:
        by_loss[cell["frame_loss"]].append(cell)
    for loss, column in by_loss.items():
        column.sort(key=lambda c: c["epoch"])
        anchor = column[0]
        assert anchor["epoch"] == 1, column
        assert abs(anchor["extension_factor"] - 1.0) < 0.05, anchor
        for short, long in zip(column, column[1:]):
            assert long["extension_factor"] > \
                short["extension_factor"], (loss, short, long)
            assert long["lifetime_years"] >= \
                short["lifetime_years"], (loss, short, long)
    return cells


def test_e7_amortization(benchmark):
    cells = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert len(cells) == len(EPOCHS) * len(LOSSES)
