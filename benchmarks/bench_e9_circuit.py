"""E9 — circuit-level guidelines, measured (Section 6).

The paper's four standard-cell design rules, each switched off in turn
and scored:

1. avoid data-dependent clock gating — fixed-key-A vs fixed-key-B
   Welch t-test with Z-randomization ON (the masked datapath is clean,
   so anything the test flags is the clock tree);
2. isolate the inputs to the data-paths — deterministic comparison of
   datapath activity across inputs (spurious transitions raise power
   AND data dependence);
3. avoid glitches — fixed-vs-random-input t-test with randomization
   off;
4. secure logic styles — SABL/WDDL make consumption data-independent,
   at a power premium.
"""

import numpy as np

from _helpers import NOISE_SIGMA, fresh_rng, protocol_points, scaled, \
    write_report

from repro.arch import ClockGatingPolicy, CoprocessorConfig, EccCoprocessor
from repro.power import (
    CmosLeakageModel,
    PowerTraceSimulator,
    SablLeakageModel,
    WddlLeakageModel,
)
from repro.sca import tvla_fixed_vs_random

N_ITER = 2

#: Branch mismatch of a moderately unbalanced clock tree (the gating
#: experiment's layout assumption; a balanced tree would need
#: correspondingly more traces to expose the same policy flaw).
GATING_MISMATCH = 0.5


def _fixed_vs_random_t(config, n, seed):
    """max |t| between a fixed-input and a random-input population."""
    coprocessor = EccCoprocessor(config)
    sim = PowerTraceSimulator(noise_sigma=NOISE_SIGMA, seed=seed)
    rng = fresh_rng(seed)
    key = coprocessor.domain.scalar_ring.random_scalar(rng)
    fixed_point = protocol_points(coprocessor.domain, 1, rng)[0]
    fixed = sim.campaign(coprocessor, key, [fixed_point] * n,
                         scenario="unprotected", max_iterations=N_ITER)
    randoms = sim.campaign(coprocessor, key,
                           protocol_points(coprocessor.domain, n, rng),
                           scenario="unprotected", max_iterations=N_ITER)
    return tvla_fixed_vs_random(fixed.samples, randoms.samples)


def _fixed_key_pair_t(policy, n, seed):
    """max |t| between two fixed keys over the same inputs (gating leak)."""
    config = CoprocessorConfig(clock_gating=policy,
                               clock_branch_mismatch=GATING_MISMATCH)
    coprocessor = EccCoprocessor(config)
    sim = PowerTraceSimulator(noise_sigma=NOISE_SIGMA, seed=seed)
    rng = fresh_rng(seed)
    points = protocol_points(coprocessor.domain, n, rng)
    # Keys chosen to differ in the first processed ladder bits.
    key_a = coprocessor.domain.order // 2
    key_b = coprocessor.domain.order // 3
    group_a = sim.campaign(coprocessor, key_a, points, rng=rng,
                           scenario="protected", max_iterations=N_ITER)
    group_b = sim.campaign(coprocessor, key_b, points, rng=rng,
                           scenario="protected", max_iterations=N_ITER)
    return tvla_fixed_vs_random(group_a.samples, group_b.samples)


def _datapath_profiles(isolation, seeds=(0, 1, 2, 3)):
    """Per-input datapath activity vectors for one isolation setting."""
    coprocessor = EccCoprocessor(
        CoprocessorConfig(randomize_z=False, input_isolation=isolation)
    )
    rng = fresh_rng(94)
    points = protocol_points(coprocessor.domain, len(seeds), rng)
    key = coprocessor.domain.order // 2
    return [
        np.asarray(
            coprocessor.point_multiply(key, p, max_iterations=N_ITER).datapath
        )
        for p in points
    ]


def run_experiment():
    n_gating = scaled(300, 120)
    n_ttest = scaled(70, 30)
    results = {}
    # 1. Clock gating (with Z randomization ON: the only remaining
    # key dependence is the clock tree).
    results["gating_off"] = _fixed_key_pair_t(ClockGatingPolicy.ALWAYS_ON,
                                              n_gating, 90)
    results["gating_on"] = _fixed_key_pair_t(
        ClockGatingPolicy.DATA_DEPENDENT, n_gating, 90
    )
    # 2. Input isolation: noiseless datapath profiles across inputs.
    # The interesting signal is the *added* activity (leaky minus
    # isolated, same inputs): it exists only when isolation is off,
    # costs power, and varies with the data written to the registers.
    iso = _datapath_profiles(isolation=True)
    leaky = _datapath_profiles(isolation=False)
    results["iso_power"] = float(np.mean([v.mean() for v in iso]))
    results["leaky_power"] = float(np.mean([v.mean() for v in leaky]))
    added = [l - i for l, i in zip(leaky, iso)]
    added_sums = [float(a.sum()) for a in added]
    results["added_mean"] = float(np.mean(added_sums))
    results["added_spread"] = float(np.std(added_sums))
    # 3. Glitches.
    results["no_glitch"] = _fixed_vs_random_t(
        CoprocessorConfig(randomize_z=False, glitch_factor=0.0), n_ttest, 92
    )
    results["glitchy"] = _fixed_vs_random_t(
        CoprocessorConfig(randomize_z=False, glitch_factor=1.0), n_ttest, 92
    )
    # 4. Logic styles: data dependence of the consumed energy itself.
    coprocessor = EccCoprocessor(CoprocessorConfig(randomize_z=False))
    executions = [
        coprocessor.point_multiply(k, coprocessor.domain.generator,
                                   max_iterations=N_ITER)
        for k in (coprocessor.domain.order // 2,
                  coprocessor.domain.order // 3)
    ]
    styles = {}
    for name, model in (("CMOS", CmosLeakageModel()),
                        ("WDDL", WddlLeakageModel()),
                        ("SABL", SablLeakageModel())):
        a = model.consumed(executions[0])
        b = model.consumed(executions[1])
        spread = float(np.abs(a - b).mean() / a.mean())
        styles[name] = (spread, float(a.mean()))
    results["styles"] = styles
    return results


def test_e9_circuit_rules(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    styles = r["styles"]
    lines = [
        "E9  Circuit-level design rules, measured (Section 6)",
        "-" * 72,
        "rule 1: avoid data-dependent clock gating "
        "(fixed-key-A vs fixed-key-B max|t|, Z-randomization ON):",
        f"  always-on clocks:      {r['gating_off'].max_abs_t:>7.2f}  "
        f"({'clean' if not r['gating_off'].leaks else 'LEAKS'})",
        f"  per-register gating:   {r['gating_on'].max_abs_t:>7.2f}  "
        f"({'clean' if not r['gating_on'].leaks else 'LEAKS'})",
        "",
        "rule 2: isolate datapath inputs (noiseless datapath activity):",
        f"  isolated:     mean/cycle {r['iso_power']:>8.1f}",
        f"  not isolated: mean/cycle {r['leaky_power']:>8.1f}",
        f"  spurious (added) activity: {r['added_mean']:>8.1f} toggles/run, "
        f"varying {r['added_spread']:>6.1f} across inputs "
        "(data-dependent -> exploitable)",
        "",
        "rule 3: avoid glitches (fixed-vs-random max|t|):",
        f"  glitch-free:           {r['no_glitch'].max_abs_t:>7.2f}",
        f"  glitchy datapath:      {r['glitchy'].max_abs_t:>7.2f}",
        "",
        "rule 4: secure logic styles (mean |delta| between two keys' "
        "consumption / mean, and power premium):",
    ]
    cmos_power = styles["CMOS"][1]
    for name in ("CMOS", "WDDL", "SABL"):
        spread, power = styles[name]
        lines.append(
            f"  {name:<6} data spread {spread:>8.4f}   "
            f"power {power / cmos_power:>5.2f}x CMOS"
        )
    write_report("e9_circuit", lines)

    assert not r["gating_off"].leaks
    assert r["gating_on"].leaks                      # gating opens SPA
    assert r["leaky_power"] > r["iso_power"]         # isolation saves power
    assert r["added_mean"] > 0                       # spurious toggles exist
    assert r["added_spread"] > 0                     # ...and depend on data
    assert r["glitchy"].max_abs_t > r["no_glitch"].max_abs_t
    assert styles["SABL"][0] < styles["WDDL"][0] < styles["CMOS"][0]
    assert styles["SABL"][1] > 1.5 * cmos_power      # the power premium
