"""Shared machinery for the experiment benchmarks.

Each bench regenerates one table/figure-equivalent of the paper (see
DESIGN.md section 4 and EXPERIMENTS.md).  Reports are written to
``results/<experiment>.txt`` so the regenerated numbers survive the
pytest output capture, and the headline values are asserted against
the paper's expected *shape*.

Set ``REPRO_FAST=1`` to shrink campaign sizes for smoke runs.
Set ``REPRO_SEED=<int>`` to re-run the whole suite on a different
(still fully deterministic) randomness universe; every bench RNG is
derived from this master seed and an explicit stream number — no code
path touches the global ``random`` / ``np.random`` state.
"""

from __future__ import annotations

import os
import pathlib
import random

import numpy as np

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

FAST = os.environ.get("REPRO_FAST", "") not in ("", "0")

#: Master seed of the benchmark suite (0 preserves the historical
#: per-bench streams exactly).
MASTER_SEED = int(os.environ.get("REPRO_SEED", "0"))

#: Noise level shared by every side-channel bench (the virtual scope).
NOISE_SIGMA = 38.0


def scaled(full: int, fast: int) -> int:
    """Campaign size: full scale, or the fast value under REPRO_FAST."""
    return fast if FAST else full


def write_report(name: str, lines: list) -> str:
    """Write (and echo) an experiment report; returns the text.

    Atomic (write-tmp-fsync-rename) so a bench killed mid-write never
    leaves a half-finished report shadowing the previous run's."""
    from repro.obs.metrics import atomic_write_bytes

    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    atomic_write_bytes(str(RESULTS_DIR / f"{name}.txt"), text.encode())
    print(text)
    return text


def protocol_points(domain, count, rng):
    """Random prime-order-subgroup points with x != 0."""
    curve = domain.curve
    points = []
    while len(points) < count:
        p = curve.double(curve.random_point(rng))
        if not p.is_infinity and p.x != 0:
            points.append(p)
    return points


def fresh_rng(stream: int) -> random.Random:
    """A deterministic RNG on one explicit stream of the master seed.

    With the default ``REPRO_SEED=0`` this is ``random.Random(stream)``
    byte-for-byte, so the calibrated bench thresholds are unchanged.
    """
    return random.Random((MASTER_SEED << 32) ^ stream)


def fresh_generator(stream: int) -> np.random.Generator:
    """A numpy Generator on one explicit stream of the master seed."""
    return np.random.default_rng((MASTER_SEED << 32) ^ stream)


def bench_seed(stream: int) -> int:
    """An integer seed on one explicit stream (for seeded components
    such as :class:`repro.power.PowerTraceSimulator`)."""
    return (MASTER_SEED << 32) ^ stream


def campaign_workers() -> int:
    """Worker count for engine-driven benches (REPRO_WORKERS override)."""
    from repro.campaign import default_workers

    env = os.environ.get("REPRO_WORKERS", "")
    return default_workers(int(env) if env else None)


def dse_dir(name: str, spec) -> pathlib.Path:
    """A spec-keyed exploration directory under ``results/dse``.

    Digest-keyed like :func:`campaign_dir`, so re-running a bench hits
    the measurement cache while a spec change lands in a fresh
    directory.  Measurement caching is itself keyed per configuration,
    so benches sharing cells (e.g. the d = 4 reference) may also share
    a directory.
    """
    import hashlib
    import json

    digest = hashlib.sha256(
        json.dumps(spec.to_dict(), sort_keys=True).encode()
    ).hexdigest()[:10]
    path = RESULTS_DIR / "dse" / f"{name}-{digest}"
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def campaign_dir(name: str, spec) -> pathlib.Path:
    """A spec-keyed campaign directory under ``results/campaigns``.

    The directory name embeds a digest of the spec, so re-running the
    same bench resumes its (possibly interrupted) campaign while any
    spec change — e.g. toggling REPRO_FAST — lands in a fresh
    directory instead of tripping the store's spec-mismatch guard.
    """
    import hashlib
    import json

    digest = hashlib.sha256(
        json.dumps(spec.to_dict(), sort_keys=True).encode()
    ).hexdigest()[:10]
    path = RESULTS_DIR / "campaigns" / f"{name}-{digest}"
    path.parent.mkdir(parents=True, exist_ok=True)
    return path
