"""Shared machinery for the experiment benchmarks.

Each bench regenerates one table/figure-equivalent of the paper (see
DESIGN.md section 4 and EXPERIMENTS.md).  Reports are written to
``results/<experiment>.txt`` so the regenerated numbers survive the
pytest output capture, and the headline values are asserted against
the paper's expected *shape*.

Set ``REPRO_FAST=1`` to shrink campaign sizes for smoke runs.
"""

from __future__ import annotations

import os
import pathlib
import random

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

FAST = os.environ.get("REPRO_FAST", "") not in ("", "0")

#: Noise level shared by every side-channel bench (the virtual scope).
NOISE_SIGMA = 38.0


def scaled(full: int, fast: int) -> int:
    """Campaign size: full scale, or the fast value under REPRO_FAST."""
    return fast if FAST else full


def write_report(name: str, lines: list) -> str:
    """Write (and echo) an experiment report; returns the text."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(text)
    return text


def protocol_points(domain, count, rng):
    """Random prime-order-subgroup points with x != 0."""
    curve = domain.curve
    points = []
    while len(points) < count:
        p = curve.double(curve.random_point(rng))
        if not p.is_infinity and p.x != 0:
            points.append(p)
    return points


def fresh_rng(seed: int) -> random.Random:
    """A deterministic RNG for reproducible experiments."""
    return random.Random(seed)
