"""E1 — the chip's operating point (Section 6).

Paper: "At the operating frequency of 847.5 kHz and core voltage
Vdd = 1 V, the processor consumes 50.4 uW and uses only 5.1 uJ for one
point multiplication.  At this frequency, the throughput is 9.8 point
multiplications per second."

The bench uses the hoisted :mod:`repro.power.evaluation` helpers: the
reference-calibrated model, one measured K-163 point multiplication on
the default (protected) design, and the report priced at the paper's
operating point.
"""

from _helpers import fresh_rng, write_report

from repro.arch import CoprocessorConfig
from repro.power import (
    MeasuredDesign,
    PAPER_ENERGY_PER_PM_JOULES,
    PAPER_POWER_WATTS,
    PAPER_THROUGHPUT_PM_PER_S,
    reference_model,
)


def run_experiment():
    config = CoprocessorConfig()
    model = reference_model()
    rng = fresh_rng(1)
    key = config.domain.scalar_ring.random_scalar(rng)
    measured = MeasuredDesign.measure(config, model, scalar=key, rng=rng)
    return config, measured.at(model).report


def test_e1_operating_point(benchmark):
    config, report = benchmark.pedantic(run_experiment, rounds=1,
                                        iterations=1)
    rows = [
        "E1  Chip operating point (Section 6)",
        "-" * 64,
        f"{'metric':<28}{'paper':>16}{'measured':>18}",
        f"{'power @ 847.5 kHz, 1 V':<28}{'50.4 uW':>16}"
        f"{report.power_watts * 1e6:>15.1f} uW",
        f"{'energy / point mult':<28}{'5.1 uJ':>16}"
        f"{report.energy_joules * 1e6:>15.2f} uJ",
        f"{'throughput':<28}{'9.8 PM/s':>16}"
        f"{report.operations_per_second:>13.2f} PM/s",
        f"{'cycles / point mult':<28}{'(not given)':>16}"
        f"{report.cycles:>18}",
        "-" * 64,
        "registers in the secure zone: "
        f"{config.core_register_count} x 163 bits "
        "(paper: six 163-bit registers)",
    ]
    write_report("e1_energy_point", rows)

    assert abs(report.power_watts - PAPER_POWER_WATTS) / PAPER_POWER_WATTS < 0.02
    assert abs(report.energy_joules - PAPER_ENERGY_PER_PM_JOULES) \
        / PAPER_ENERGY_PER_PM_JOULES < 0.02
    assert abs(report.operations_per_second - PAPER_THROUGHPUT_PM_PER_S) \
        / PAPER_THROUGHPUT_PM_PER_S < 0.02
    assert config.core_register_count == 6
