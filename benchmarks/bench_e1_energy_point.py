"""E1 — the chip's operating point (Section 6).

Paper: "At the operating frequency of 847.5 kHz and core voltage
Vdd = 1 V, the processor consumes 50.4 uW and uses only 5.1 uJ for one
point multiplication.  At this frequency, the throughput is 9.8 point
multiplications per second."

The bench runs one full K-163 point multiplication on the default
(protected) coprocessor, calibrates the energy model against the
published power, and reports all three figures plus the cycle count
they imply.
"""

from _helpers import fresh_rng, write_report

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.power import (
    PAPER_ENERGY_PER_PM_JOULES,
    PAPER_POWER_WATTS,
    PAPER_THROUGHPUT_PM_PER_S,
    calibrate_energy_model,
)


def run_experiment():
    coprocessor = EccCoprocessor(CoprocessorConfig())
    model = calibrate_energy_model(coprocessor)
    rng = fresh_rng(1)
    key = coprocessor.domain.scalar_ring.random_scalar(rng)
    execution = coprocessor.point_multiply(key, coprocessor.domain.generator,
                                           rng=rng)
    report = model.report(execution)
    return coprocessor, report


def test_e1_operating_point(benchmark):
    coprocessor, report = benchmark.pedantic(run_experiment, rounds=1,
                                             iterations=1)
    rows = [
        "E1  Chip operating point (Section 6)",
        "-" * 64,
        f"{'metric':<28}{'paper':>16}{'measured':>18}",
        f"{'power @ 847.5 kHz, 1 V':<28}{'50.4 uW':>16}"
        f"{report.power_watts * 1e6:>15.1f} uW",
        f"{'energy / point mult':<28}{'5.1 uJ':>16}"
        f"{report.energy_joules * 1e6:>15.2f} uJ",
        f"{'throughput':<28}{'9.8 PM/s':>16}"
        f"{report.operations_per_second:>13.2f} PM/s",
        f"{'cycles / point mult':<28}{'(not given)':>16}"
        f"{report.cycles:>18}",
        "-" * 64,
        "registers in the secure zone: "
        f"{coprocessor.config.core_register_count} x 163 bits "
        "(paper: six 163-bit registers)",
    ]
    write_report("e1_energy_point", rows)

    assert abs(report.power_watts - PAPER_POWER_WATTS) / PAPER_POWER_WATTS < 0.02
    assert abs(report.energy_joules - PAPER_ENERGY_PER_PM_JOULES) \
        / PAPER_ENERGY_PER_PM_JOULES < 0.02
    assert abs(report.operations_per_second - PAPER_THROUGHPUT_PM_PER_S) \
        / PAPER_THROUGHPUT_PM_PER_S < 0.02
    assert coprocessor.config.core_register_count == 6
