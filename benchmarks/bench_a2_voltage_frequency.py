"""A2 (extension) — low power vs low energy: the V/f design space.

Section 3 distinguishes design for low *power* from design for low
*energy* ("skipping one optimization step ... merely reduces the
battery lifetime").  The grid now comes out of the :mod:`repro.dse`
engine — one cached measurement of the d = 4 design, every (Vdd, f)
row derived arithmetically — and the calibrated model keeps the
distinction quantitative:

* frequency scaling changes power linearly but leaves energy per
  operation untouched (each toggle costs the same charge);
* voltage scaling cuts energy quadratically — the lever that actually
  buys battery life;
* the battery table translates each operating point into affordable
  protocol runs per day on the paper's pacemaker budget.
"""

from _helpers import campaign_workers, dse_dir, write_report

from repro.dse import DesignSpaceSpec, ExplorationEngine
from repro.energy import PACEMAKER_BUDGET

FREQUENCIES_HZ = (100e3, 847.5e3, 4e6)
VOLTAGES = (0.8, 1.0, 1.2)


def run_experiment():
    spec = DesignSpaceSpec(
        digit_sizes=(4,),
        vdd_volts=VOLTAGES,
        frequencies_hz=FREQUENCIES_HZ,
        countermeasures=("full",),
        max_latency_s=None,
        min_security=None,
    )
    engine = ExplorationEngine(dse_dir("a2", spec), spec,
                               workers=campaign_workers())
    result = engine.run()
    grid = []
    for row in result.rows:
        # Tag protocol run = 2 point multiplications (Figure 2).
        run_energy = 2 * row["energy_uj"] * 1e-6
        grid.append({
            "vdd": row["vdd"],
            "freq": row["frequency_hz"],
            "power_uw": row["power_uw"],
            "energy_uj": row["energy_uj"],
            "latency_ms": row["latency_s"] * 1e3,
            "runs_per_day": PACEMAKER_BUDGET.operations_per_day(
                run_energy
            ),
        })
    return grid


def test_a2_voltage_frequency(benchmark):
    grid = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        "A2  Low power vs low energy: voltage/frequency scaling",
        "-" * 76,
        f"{'Vdd':>5}{'freq':>10}{'power':>12}{'energy/PM':>12}"
        f"{'latency':>12}{'protocol runs/day':>19}",
    ]
    for row in grid:
        lines.append(
            f"{row['vdd']:>5.1f}{row['freq'] / 1e3:>8.1f}kHz"
            f"{row['power_uw']:>10.1f}uW{row['energy_uj']:>10.2f}uJ"
            f"{row['latency_ms']:>10.1f}ms{row['runs_per_day']:>19,.0f}"
        )
    lines += [
        "-" * 76,
        "frequency moves power and latency, not energy; voltage moves",
        "energy quadratically — the design-for-low-energy lever.",
    ]
    write_report("a2_voltage_frequency", lines)

    by = {(round(r["vdd"], 1), r["freq"]): r for r in grid}
    # Frequency scaling at 1 V: power linear, energy flat.
    slow, mid, fast = (by[(1.0, f)] for f in FREQUENCIES_HZ)
    assert fast["power_uw"] > mid["power_uw"] > slow["power_uw"]
    assert abs(fast["energy_uj"] - slow["energy_uj"]) < 1e-9
    # Voltage scaling at the paper's frequency: quadratic energy.
    low, nom, high = (by[(v, 847.5e3)] for v in VOLTAGES)
    assert low["energy_uj"] / nom["energy_uj"] == pytest_approx(0.64)
    assert high["energy_uj"] / nom["energy_uj"] == pytest_approx(1.44)
    # Battery: lower voltage buys proportionally more protocol runs.
    assert low["runs_per_day"] > nom["runs_per_day"] > high["runs_per_day"]


def pytest_approx(value, rel=1e-6):
    import pytest

    return pytest.approx(value, rel=rel)
