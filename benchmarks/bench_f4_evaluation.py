"""F4 — the white-box evaluation workflow (Figure 4 / Section 7).

Paper: "A security evaluation typically starts with a white-box
evaluation of a prototype chip ... the countermeasures used in the
prototype co-processor were evaluated in a worst-case lab setting."

The bench runs the full Figure 4 battery (timing, SPA, DPA, TVLA)
against the paper's protected design and against a strawman with every
countermeasure disabled, reproducing the Section 7 verdict table.
"""

from _helpers import scaled, write_report

from repro.arch import (
    ClockGatingPolicy,
    CoprocessorConfig,
    UnbalancedEncoding,
)
from repro.security import WhiteBoxEvaluation


def run_experiment():
    n = scaled(120, 50)
    protected = WhiteBoxEvaluation(CoprocessorConfig(), n_traces=n,
                                   n_bits=2, seed=2013).run()
    strawman_config = CoprocessorConfig(
        randomize_z=False,
        mux_encoding=UnbalancedEncoding(),
        clock_gating=ClockGatingPolicy.DATA_DEPENDENT,
        input_isolation=False,
        glitch_factor=0.5,
    )
    strawman = WhiteBoxEvaluation(strawman_config, n_traces=n, n_bits=2,
                                  seed=2013).run()
    return protected, strawman


def test_f4_whitebox_evaluation(benchmark):
    protected, strawman = benchmark.pedantic(run_experiment, rounds=1,
                                             iterations=1)
    lines = [
        "F4  White-box evaluation workflow (Figure 4, Section 7)",
        "=" * 70,
        protected.render(),
        "",
        strawman.render(),
    ]
    write_report("f4_evaluation", lines)

    # Paper verdicts for the protected chip: timing-immune, SPA
    # resistant, DPA thwarted.
    assert protected.finding("timing").resistant
    assert protected.finding("spa").resistant
    assert protected.finding("dpa").resistant
    assert protected.all_resistant
    # The strawman falls to the power-analysis battery.
    assert not strawman.finding("spa").resistant
    assert not strawman.finding("dpa").resistant
    assert not strawman.all_resistant
    # Constant time is structural and survives even the strawman.
    assert strawman.finding("timing").resistant
