"""E2 — the digit-size design-space sweep (Section 5, ref [16]).

Paper: "in our ECC co-processor, a digit-serial multiplier for F_2^163
is used.  The choice of the digit-size determines the power needed for
the computation, as well as the latency and area.  By using a digit
serial multiplication with a 163x4 modular multiplier we achieve the
optimal area-energy product within the given latency constraints."

The bench sweeps d over {1, 2, 4, 8, 16}, reports area (GE), cycles
and latency per point multiplication, average power and energy at the
paper's clock, and the area-energy product — and checks that d = 4 is
the optimum among the design points that meet the latency constraint
(one point multiplication in at most ~105 ms, i.e. the d = 4 latency
with ~5% headroom at 847.5 kHz).
"""

from _helpers import write_report

from repro.arch import CoprocessorConfig, EccCoprocessor, ecc_core_area
from repro.power import PAPER_OPERATING_POINT, calibrate_energy_model

DIGIT_SIZES = (1, 2, 4, 8, 16)
LATENCY_LIMIT_S = 0.105


def run_experiment():
    # Calibrate energy-per-toggle once, on the paper's d = 4 design.
    reference = EccCoprocessor(CoprocessorConfig(digit_size=4))
    model = calibrate_energy_model(reference)
    rows = []
    for d in DIGIT_SIZES:
        coprocessor = EccCoprocessor(CoprocessorConfig(digit_size=d))
        execution = coprocessor.point_multiply(
            coprocessor.domain.order // 3,
            coprocessor.domain.generator,
            initial_z=1,
        )
        report = model.report(execution, PAPER_OPERATING_POINT)
        area = ecc_core_area(digit_size=d).total
        rows.append({
            "d": d,
            "area_ge": area,
            "cycles": report.cycles,
            "latency_s": report.duration_seconds,
            "power_uw": report.power_watts * 1e6,
            "energy_uj": report.energy_joules * 1e6,
            "area_energy": area * report.energy_joules * 1e6,
        })
    return rows


def test_e2_digit_size_sweep(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        "E2  Digit-serial multiplier design space (Section 5 / [16])",
        "-" * 78,
        f"{'d':>3}{'area (GE)':>12}{'cycles/PM':>12}{'latency':>12}"
        f"{'power':>12}{'energy/PM':>12}{'area x energy':>15}",
    ]
    for r in rows:
        meets = " " if r["latency_s"] <= LATENCY_LIMIT_S else "*"
        lines.append(
            f"{r['d']:>3}{r['area_ge']:>12.0f}{r['cycles']:>12}"
            f"{r['latency_s'] * 1e3:>9.1f} ms"
            f"{r['power_uw']:>9.1f} uW"
            f"{r['energy_uj']:>9.2f} uJ"
            f"{r['area_energy']:>15.0f}{meets}"
        )
    lines.append("-" * 78)
    lines.append("* fails the latency constraint "
                 f"(> {LATENCY_LIMIT_S * 1e3:.0f} ms per point mult)")

    feasible = [r for r in rows if r["latency_s"] <= LATENCY_LIMIT_S]
    optimum = min(feasible, key=lambda r: r["area_energy"])
    lines.append(
        f"optimal area-energy product within the latency constraint: "
        f"d = {optimum['d']} (paper: d = 4)"
    )
    write_report("e2_digit_sweep", lines)

    # Shape assertions: area grows with d, cycles shrink with d, and
    # the paper's d = 4 choice wins the constrained optimization.
    areas = [r["area_ge"] for r in rows]
    cycles = [r["cycles"] for r in rows]
    assert areas == sorted(areas)
    assert cycles == sorted(cycles, reverse=True)
    assert optimum["d"] == 4
