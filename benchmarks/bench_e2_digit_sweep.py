"""E2 — the digit-size design-space sweep (Section 5, ref [16]).

Paper: "in our ECC co-processor, a digit-serial multiplier for F_2^163
is used.  The choice of the digit-size determines the power needed for
the computation, as well as the latency and area.  By using a digit
serial multiplication with a 163x4 modular multiplier we achieve the
optimal area-energy product within the given latency constraints."

The bench runs the sweep through the :mod:`repro.dse` engine: d over
{1, 2, 4, 8, 16} at the paper's operating point, the 105 ms latency
constraint, area-energy as the objective — and checks that d = 4 is
the engine's unique Pareto answer, exactly the paper's constrained
optimization.  Measurements land in the digest-keyed cache under
``results/dse``, so re-runs re-price rather than re-simulate.
"""

from _helpers import campaign_workers, dse_dir, write_report

from repro.dse import DesignSpaceSpec, ExplorationEngine

DIGIT_SIZES = (1, 2, 4, 8, 16)
LATENCY_LIMIT_S = 0.105


def run_experiment():
    spec = DesignSpaceSpec(
        digit_sizes=DIGIT_SIZES,
        vdd_volts=(1.0,),
        frequencies_hz=(847.5e3,),
        countermeasures=("full",),
        max_latency_s=LATENCY_LIMIT_S,
        min_security=None,
        objectives=("area_energy",),
    )
    engine = ExplorationEngine(dse_dir("e2", spec), spec,
                               workers=campaign_workers())
    return engine.run()


def test_e2_digit_size_sweep(benchmark):
    result = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = result.rows
    lines = [
        "E2  Digit-serial multiplier design space (Section 5 / [16])",
        "-" * 78,
        f"{'d':>3}{'area (GE)':>12}{'cycles/PM':>12}{'latency':>12}"
        f"{'power':>12}{'energy/PM':>12}{'area x energy':>15}",
    ]
    for r in rows:
        meets = " " if r["feasible"] else "*"
        lines.append(
            f"{r['digit_size']:>3}{r['area_ge']:>12.0f}{r['cycles']:>12}"
            f"{r['latency_s'] * 1e3:>9.1f} ms"
            f"{r['power_uw']:>9.1f} uW"
            f"{r['energy_uj']:>9.2f} uJ"
            f"{r['area_energy']:>15.0f}{meets}"
        )
    lines.append("-" * 78)
    lines.append("* fails the latency constraint "
                 f"(> {LATENCY_LIMIT_S * 1e3:.0f} ms per point mult)")
    lines.append(
        "optimal area-energy product within the latency constraint: "
        f"d = {result.front[0]['digit_size']} (paper: d = 4) "
        f"[{result.evaluated} simulated, {result.cached} cached]"
    )
    write_report("e2_digit_sweep", lines)

    # Shape assertions: area grows with d, cycles shrink with d, and
    # the paper's d = 4 choice is the engine's unique Pareto answer.
    areas = [r["area_ge"] for r in rows]
    cycles = [r["cycles"] for r in rows]
    assert areas == sorted(areas)
    assert cycles == sorted(cycles, reverse=True)
    assert result.outcome == "clean"
    assert [r["digit_size"] for r in result.front] == [4]
