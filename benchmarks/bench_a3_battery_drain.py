"""A3 (battery drain) — depletion floods vs the energy-budget defenses.

The paper's energy table prices the *honest* protocol; an active
adversary inverts it: every bogus wake, replayed challenge and forced
epoch restart spends the implant's battery at the attacker's pleasure.
This bench runs the adversary lab's mixed flood (all four adversaries
interleaved with honest sessions on one tag's timeline) against each
defense posture across the channel-loss grid and tabulates what the
tag bled — total and in the worst budget window — plus whether honest
sessions still completed.

The table *is* the trade-off: the per-window budget cap bounds the
drain rate but throttles honest traffic sharing a drained window;
wake-up-radio gating starves the flood before it costs protocol work
but bounds nothing once a session is granted; the full posture
composes them.

Writes the human table to ``results/a3_battery_drain.txt`` and the
machine-readable baseline to ``results/BENCH_adversary.json``.
"""

import json
import shutil

from _helpers import RESULTS_DIR, scaled, write_report

from repro.adversary import AttackSpec, defense_config, run_attack_soak

SEED = 2013
DEFENSES = ("none", "budget-cap", "wake-gating", "full")
LOSSES = (0.0, 0.1, 0.2)
SESSIONS = scaled(16, 8)
LEGIT_FRACTION = 0.25
ARRIVAL_RATE = 8.0


def _run_cell(defense_name, loss):
    """One (defense, loss) cell: a supervised single-cohort flood."""
    spec = AttackSpec(adversary="mixed", defense=defense_name,
                      sessions=SESSIONS, cohorts=1,
                      legit_fraction=LEGIT_FRACTION,
                      arrival_rate=ARRIVAL_RATE, frame_loss=loss,
                      seed=SEED)
    directory = (RESULTS_DIR / "adversary"
                 / f"a3-{defense_name}-loss{loss:g}-s{SESSIONS}")
    shutil.rmtree(directory, ignore_errors=True)
    report = run_attack_soak(str(directory), spec, workers=1)
    assert report.outcome == "clean", report.text()
    return {
        "defense": defense_name,
        "frame_loss": loss,
        "sessions": report.sessions,
        "drained_uj": round(report.tag_energy_uj, 2),
        "peak_window_uj": round(report.peak_window_uj, 2),
        "adversary_uj": round(report.adversary_energy_uj, 2),
        "amplification": round(report.amplification, 3),
        "outcomes": dict(sorted(report.outcomes.items())),
        "legit_sessions": report.legit_sessions,
        "legit_accepted": report.legit_accepted,
        "wake_refusals": report.wake_refusals,
        "budget_refusals": report.budget_refusals,
    }


def run_experiment():
    cells = [_run_cell(d, loss) for d in DEFENSES for loss in LOSSES]
    by_key = {(c["defense"], c["frame_loss"]): c for c in cells}

    lines = [
        f"A3 — battery drain under a mixed depletion flood "
        f"({SESSIONS} sessions/cell, {LEGIT_FRACTION:.0%} honest, "
        f"seed {SEED})",
        "=" * 76,
        f"{'defense':<13}{'loss':>6}{'drained uJ':>12}{'peak win uJ':>13}"
        f"{'amp':>7}{'legit':>8}{'refused':>9}",
        "-" * 76,
    ]
    for cell in cells:
        refused = cell["outcomes"].get("refused", 0)
        exhausted = cell["outcomes"].get("budget_exhausted", 0)
        lines.append(
            f"{cell['defense']:<13}{cell['frame_loss']:>6.0%}"
            f"{cell['drained_uj']:>12.1f}{cell['peak_window_uj']:>13.1f}"
            f"{cell['amplification']:>7.2f}"
            f"{cell['legit_accepted']:>5}/{cell['legit_sessions']}"
            f"{refused:>6}+{exhausted}")
    lines += [
        "-" * 76,
        "drained = tag energy across the flood; peak win = worst "
        "budget window",
        "(no budget: the whole run is one unbounded window); amp = "
        "tag/adversary",
        "energy; refused = wake-gated + budget-exhausted sessions.",
    ]
    write_report("a3_battery_drain", lines)

    (RESULTS_DIR / "BENCH_adversary.json").write_text(
        json.dumps({"adversary": "mixed", "seed": SEED,
                    "sessions": SESSIONS, "cells": cells},
                   indent=1, sort_keys=True) + "\n")

    cap_uj = defense_config("budget-cap").budget_cap_uj
    for loss in LOSSES:
        undefended = by_key[("none", loss)]
        capped = by_key[("budget-cap", loss)]
        gated = by_key[("wake-gating", loss)]
        full = by_key[("full", loss)]
        # The acceptance criterion: the undefended flood drains far
        # past the budget any defended posture enforces, while the
        # defended tag's worst window stays under the cap.
        assert undefended["peak_window_uj"] > 2 * cap_uj, \
            (loss, undefended)
        for cell in (capped, full):
            assert cell["peak_window_uj"] <= cap_uj * 1.01, (loss, cell)
        # Wake gating starves the flood of protocol work: what remains
        # is mostly the honest sessions' own energy.
        for cell in (gated, full):
            assert cell["drained_uj"] < undefended["drained_uj"] / 3, \
                (loss, cell)
        # Undefended, the flood costs the tag more than the adversary;
        # fully defended, the economics tilt the other way.
        assert undefended["amplification"] > 1.0, (loss, undefended)
        assert full["amplification"] < \
            undefended["amplification"] - 0.2, (loss, full)
        # Graceful degradation: the full posture keeps serving honest
        # sessions (epoch throttling may cost one under heavy loss).
        assert full["legit_accepted"] >= full["legit_sessions"] - 1, \
            (loss, full)
    return cells


def test_a3_battery_drain(benchmark):
    cells = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    undefended = [c for c in cells if c["defense"] == "none"]
    assert all(c["amplification"] > 1.0 for c in undefended)
