"""E8 — implementation-size budget (Section 4).

Paper: "protocol designers tend to believe that hash functions are
very cheap in hardware ...  For the most recent generation of hash
functions, this is no longer true.  The smallest SHA-1 implementation
[12] uses 5527 gates, while an ECC core uses about 12k gates [10]."

The bench regenerates the gate-count comparison from the parametric
area model and prints the ECC core breakdown.
"""

from _helpers import write_report

from repro.arch import (
    AES_ENC_GATES,
    ECC_CORE_GATES_REFERENCE,
    SHA1_GATES,
    ecc_core_area,
)
from repro.primitives import PRESENT80_GATES


def run_experiment():
    ecc = ecc_core_area()  # K-163, d = 4, six registers
    ecc_b163 = ecc_core_area(register_count=7)  # non-Koblitz needs sqrt(b)
    ecc_233 = ecc_core_area(m=233, register_count=6)
    return ecc, ecc_b163, ecc_233


def test_e8_area(benchmark):
    ecc, ecc_b163, ecc_233 = benchmark.pedantic(run_experiment, rounds=1,
                                                iterations=1)
    lines = [
        "E8  Hardware size budget (Section 4, refs [10][12])",
        "-" * 62,
        f"{'core':<34}{'gates (GE)':>14}",
        f"{'PRESENT-80 (Bogdanov et al.)':<34}{PRESENT80_GATES:>14}",
        f"{'AES-128 encryption (Feldhofer)':<34}{AES_ENC_GATES:>14}",
        f"{'SHA-1 (O-Neill, paper ref [12])':<34}{SHA1_GATES:>14}",
        f"{'ECC K-163 core (model, d=4)':<34}{ecc.total:>14.0f}",
        f"{'ECC core, paper ref [10]':<34}{ECC_CORE_GATES_REFERENCE:>14}",
        f"{'ECC B-163 (7 registers)':<34}{ecc_b163.total:>14.0f}",
        f"{'ECC K-233 (next security level)':<34}{ecc_233.total:>14.0f}",
        "-" * 62,
        "K-163 core breakdown:",
    ]
    for block, gates in ecc.as_dict().items():
        lines.append(f"  {block:<22}{gates:>10.0f} GE")
    ratio = SHA1_GATES / ecc.total
    lines.append("-" * 62)
    lines.append(
        f"SHA-1 is {ratio:.0%} of the ECC core — hashes are NOT "
        "negligibly cheap (the paper's protocol-design caveat)."
    )
    write_report("e8_area", lines)

    assert abs(ecc.total - ECC_CORE_GATES_REFERENCE) < 0.1 * ECC_CORE_GATES_REFERENCE
    assert PRESENT80_GATES < AES_ENC_GATES < SHA1_GATES < ecc.total
    assert 0.35 < ratio < 0.60
    assert ecc_b163.total > ecc.total        # the sqrt(b) register costs
    assert ecc_233.total > ecc.total         # security scaling costs area
