"""E5 — DPA vs randomized projective coordinates (Section 7).

Paper: "When the countermeasure is disabled, a DPA attack succeeds
with as low as 200 traces.  When the countermeasure is enabled, but
the randomness is known, the attack also succeeds.  ...  When the
countermeasure is enabled, and the randomness is unknown, the attack
does not succeed.  Even 20000 traces are not enough to reveal a single
key bit."

The bench reproduces all three scenarios with the difference-of-means
DPA.  Scale note: the paper's failure case used 20 000 full-length
traces; simulating that many coprocessor runs is wall-clock
prohibitive in pure Python, so the protected campaign here uses
~8x the unprotected disclosure budget (same conclusion: zero key bits
come out, statistics sit at the noise floor).  CPA (the stronger
correlation distinguisher) is reported alongside.
"""

from _helpers import NOISE_SIGMA, fresh_rng, protocol_points, scaled, \
    write_report

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.power import PowerTraceSimulator
from repro.sca import LadderCpa, LadderDpa

N_BITS = 2          # bits attacked in the success scenarios
N_BITS_PROTECTED = 4  # more bits: a lucky all-correct coin-flip run is implausible
GRID = (50, 100, 150, 200, 300)


def run_experiment():
    n_unprotected = scaled(300, 80)
    n_protected = scaled(1500, 120)
    n_known = scaled(200, 60)

    unprotected_cop = EccCoprocessor(CoprocessorConfig(randomize_z=False))
    protected_cop = EccCoprocessor(CoprocessorConfig(randomize_z=True))
    ring = unprotected_cop.domain.scalar_ring
    key = ring.random_scalar(fresh_rng(50))
    points = protocol_points(unprotected_cop.domain,
                             max(n_unprotected, n_protected, n_known),
                             fresh_rng(51))
    sim = PowerTraceSimulator(noise_sigma=NOISE_SIGMA, seed=52)
    rng = fresh_rng(53)

    results = {}

    # Scenario 1: countermeasure off.
    traces = sim.campaign(unprotected_cop, key, points[:n_unprotected],
                          scenario="unprotected", max_iterations=N_BITS + 1)
    dpa = LadderDpa(unprotected_cop)
    grid = [g for g in GRID if g <= n_unprotected]
    results["disclosure_dom"] = dpa.traces_to_disclosure(traces, N_BITS, grid)
    cpa = LadderCpa(unprotected_cop)
    results["disclosure_cpa"] = cpa.traces_to_disclosure(traces, N_BITS, grid)
    results["unprotected_result"] = dpa.recover_bits(traces, N_BITS)

    # Scenario 2: countermeasure on, randomness known (white-box).
    traces_known = sim.campaign(protected_cop, key, points[:n_known],
                                rng=rng, scenario="known_randomness",
                                max_iterations=N_BITS + 1)
    dpa_p = LadderDpa(protected_cop)
    results["known_result"] = dpa_p.recover_bits(
        traces_known, N_BITS, z_values=traces_known.known_randomness
    )

    # Scenario 3: countermeasure on, randomness secret.
    traces_protected = sim.campaign(protected_cop, key,
                                    points[:n_protected], rng=rng,
                                    scenario="protected",
                                    max_iterations=N_BITS_PROTECTED + 1)
    results["protected_result"] = dpa_p.recover_bits(traces_protected,
                                                     N_BITS_PROTECTED)
    results["n_protected"] = n_protected
    results["n_known"] = n_known
    return results


def test_e5_dpa(benchmark):
    r = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    unp = r["unprotected_result"]
    known = r["known_result"]
    prot = r["protected_result"]
    lines = [
        "E5  DPA vs randomized projective coordinates (Section 7)",
        "-" * 74,
        f"{'scenario':<42}{'paper':>14}{'measured':>16}",
        f"{'countermeasure OFF: traces to disclose':<42}{'~200':>14}"
        f"{str(r['disclosure_dom']):>16}",
        f"{'  (CPA, stronger distinguisher)':<42}{'-':>14}"
        f"{str(r['disclosure_cpa']):>16}",
        f"{'countermeasure ON + randomness known':<42}{'succeeds':>14}"
        f"{('succeeds' if known.success else 'fails'):>16}",
        f"{'countermeasure ON, randomness secret':<42}{'fails @20k':>14}"
        f"{('fails @' + str(r['n_protected'])):>16}",
        "-" * 74,
        f"unprotected: {unp.num_correct}/{N_BITS} bits "
        f"(margins {[round(d.margin, 2) for d in unp.decisions]})",
        f"known-randomness: {known.num_correct}/{N_BITS} bits",
        f"protected: {prot.num_correct}/{N_BITS_PROTECTED} bits matched "
        "(chance level); statistics at the noise floor "
        f"({[round(max(d.statistic_zero, d.statistic_one), 2) for d in prot.decisions]})",
    ]
    write_report("e5_dpa", lines)

    assert r["disclosure_dom"] is not None
    assert r["disclosure_dom"] <= 300          # paper band: "as low as 200"
    assert r["disclosure_cpa"] is not None
    assert r["disclosure_cpa"] <= 300
    assert known.success                        # white-box soundness check
    assert not prot.success                     # countermeasure holds
    # The protected statistics sit at the max-over-columns noise floor,
    # far below the unprotected decision margins.
    protected_peak = max(
        max(d.statistic_zero, d.statistic_one) for d in prot.decisions
    )
    unprotected_peak = max(
        max(d.statistic_zero, d.statistic_one) for d in unp.decisions
    )
    assert protected_peak < unprotected_peak
