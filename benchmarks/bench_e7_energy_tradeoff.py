"""E7 — secret-key vs public-key energy over radio distance (Section 4).

Paper: "Protocols based on secret key algorithms, like AES, are often
cheaper in computation cost but not necessarily in communication cost
... the conclusions depend on the cryptographic algorithm, the digital
platform and the wireless distance over which the communication
occurs" [4, 5]; plus the early-abort rule: "the protocol session stops
immediately on the device when the server authentication fails".

The bench measures the implant-side energy of (a) AES mutual
authentication and (b) Peeters–Hermans ECC identification at a sweep
of radio distances, reports the decomposition and the crossover, and
quantifies the energy saved by server-first ordering under an
impersonation attempt.
"""

from _helpers import fresh_rng, write_report

from repro.ec import NIST_K163
from repro.energy import (
    ComputeEnergyTable,
    RadioModel,
    crossover_distance,
    protocol_energy,
)
from repro.primitives import AesCtrDrbg
from repro.protocols import (
    PeetersHermansReader,
    PeetersHermansTag,
    SymmetricDevice,
    SymmetricServer,
    run_identification,
    run_mutual_authentication,
)

DISTANCES_M = (0.5, 2.0, 10.0, 50.0)


def run_experiment():
    # AES mutual authentication with one telemetry frame.
    device = SymmetricDevice(bytes(range(16)))
    server = SymmetricServer(bytes(range(16)))
    aes_run = run_mutual_authentication(device, server, AesCtrDrbg(70),
                                        payload=b"x" * 64)

    # Early-abort comparison: impostor server.
    device2 = SymmetricDevice(bytes(range(16)))
    server2 = SymmetricServer(bytes(range(16)))
    abort_run = run_mutual_authentication(device2, server2, AesCtrDrbg(71),
                                          server_is_impostor=True)

    # Peeters-Hermans identification.
    rng = fresh_rng(72)
    ring = NIST_K163.scalar_ring
    reader = PeetersHermansReader(NIST_K163, ring.random_scalar(rng))
    tag = PeetersHermansTag(NIST_K163, ring.random_scalar(rng), reader.public)
    reader.register(1, tag.identity_point)
    ph_run = run_identification(tag, reader, rng)

    table = ComputeEnergyTable()
    radio = RadioModel()
    rows = []
    for d in DISTANCES_M:
        aes = protocol_energy("AES mutual auth", aes_run.device_ops, d,
                              radio, table)
        ph = protocol_energy("PH identification", ph_run.tag_ops, d,
                             radio, table)
        rows.append((d, aes, ph))
    cross = crossover_distance(aes_run.device_ops, ph_run.tag_ops, radio,
                               table)
    abort_energy = table.computation_energy(abort_run.device_ops)
    full_energy = table.computation_energy(aes_run.device_ops)
    return rows, cross, abort_energy, full_energy, aes_run, ph_run


def test_e7_energy_tradeoff(benchmark):
    rows, cross, abort_j, full_j, aes_run, ph_run = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    lines = [
        "E7  Secret-key vs public-key energy on the implant (Section 4)",
        "-" * 78,
        f"{'distance':>10} | {'AES compute':>12}{'AES radio':>11}"
        f"{'AES total':>11} | {'ECC compute':>12}{'ECC radio':>11}"
        f"{'ECC total':>11}",
    ]
    for d, aes, ph in rows:
        lines.append(
            f"{d:>8.1f} m | {aes.computation_j * 1e6:>10.2f} uJ"
            f"{aes.communication_j * 1e6:>9.2f} uJ"
            f"{aes.total_j * 1e6:>9.2f} uJ | "
            f"{ph.computation_j * 1e6:>10.2f} uJ"
            f"{ph.communication_j * 1e6:>9.2f} uJ"
            f"{ph.total_j * 1e6:>9.2f} uJ"
        )
    lines += [
        "-" * 78,
        f"AES device tx/rx bits: {aes_run.device_ops.tx_bits}/"
        f"{aes_run.device_ops.rx_bits}; "
        f"ECC tag tx/rx bits: {ph_run.tag_ops.tx_bits}/"
        f"{ph_run.tag_ops.rx_bits}",
        f"AES-vs-ECC crossover distance: "
        + ("none within range (AES wins at every distance here — fewer "
           "bits AND cheaper compute)" if cross == float("inf")
           else f"{cross:.1f} m"),
        "",
        "early-abort saving (server-auth-first, Section 4):",
        f"  honest session device compute: {full_j * 1e6:.3f} uJ",
        f"  impostor session device compute: {abort_j * 1e6:.3f} uJ "
        f"({abort_j / full_j:.0%} of the honest cost)",
    ]
    write_report("e7_energy_tradeoff", lines)

    # Shape: the secret-key protocol computes orders of magnitude less;
    # the PKC side is dominated by its two point multiplications; the
    # early abort saves most of the device's computation.
    __, aes0, ph0 = rows[0]
    assert aes0.computation_j < ph0.computation_j / 5
    assert ph0.computation_j > 10e-6  # two 5.1 uJ point mults dominate
    assert abort_j < full_j / 2
    # Radio share grows with distance for both protocols.
    assert rows[-1][1].communication_j > rows[0][1].communication_j
