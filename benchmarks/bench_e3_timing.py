"""E3 — constant-time verification and the timing attack (Section 7).

Paper: "The prototype co-processor is intrinsically resistant to
timing attacks ... the computation time of a point multiplication is
the same for different key values.  This is achieved by careful
optimizations on two abstraction levels" (MPL iteration count at the
algorithm level, constant instruction cycles at the architecture
level).

The bench measures cycle counts over keys of extreme and random
Hamming weights on the coprocessor (zero variance expected) and on a
naive double-and-add software baseline (cycle count proportional to
the key weight), then runs Kocher's timing attack against the baseline
and recovers the key weights exactly.
"""

from _helpers import fresh_rng, write_report

from repro.arch import CoprocessorConfig, EccCoprocessor
from repro.ec import NIST_K163
from repro.sca import (
    coprocessor_timing_report,
    double_and_add_cycle_model,
    timing_attack_hamming_weight,
)


def run_experiment():
    rng = fresh_rng(3)
    ring = NIST_K163.scalar_ring
    keys = [ring.random_scalar(rng) for _ in range(4)]
    keys += [1, (1 << 162) | 1, NIST_K163.order - 2]  # sparse + dense
    coprocessor = EccCoprocessor(CoprocessorConfig())
    protected = coprocessor_timing_report(coprocessor, keys)

    baseline = []
    for k in keys:
        cycles = double_and_add_cycle_model(NIST_K163.curve, k,
                                            NIST_K163.generator)
        recovered = timing_attack_hamming_weight(cycles, k.bit_length())
        baseline.append((k, bin(k).count("1"), cycles, recovered))
    return protected, baseline


def test_e3_timing(benchmark):
    protected, baseline = benchmark.pedantic(run_experiment, rounds=1,
                                             iterations=1)
    lines = [
        "E3  Timing behaviour (Section 7)",
        "-" * 70,
        "coprocessor (MPL + constant-cycle ISA):",
        f"  cycle counts over {len(protected.cycle_counts)} keys "
        f"(HW {min(protected.hamming_weights)}..."
        f"{max(protected.hamming_weights)}): "
        f"{sorted(set(protected.cycle_counts))}",
        f"  constant time: {protected.is_constant_time}",
        f"  corr(cycles, key weight): "
        f"{protected.correlation_with_weight:+.3f}",
        "",
        "double-and-add baseline (software, leaky):",
        f"  {'key weight':>12}{'cycles':>12}{'attack-recovered weight':>26}",
    ]
    for __, weight, cycles, recovered in baseline:
        lines.append(f"  {weight:>12}{cycles:>12}{recovered:>26}")
    recovered_ok = all(w == r for __, w, __c, r in baseline)
    lines.append("-" * 70)
    lines.append(
        f"timing attack on the baseline recovers every key weight: "
        f"{recovered_ok}"
    )
    write_report("e3_timing", lines)

    assert protected.is_constant_time
    assert protected.correlation_with_weight == 0.0
    baseline_cycles = [c for __, __w, c, __r in baseline]
    assert len(set(baseline_cycles)) > 1  # the baseline leaks
    assert recovered_ok
