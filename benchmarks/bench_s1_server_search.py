"""S1 (server search) — the O(N) identification wall vs the epoch cache.

The paper's private-identification protocol deliberately shifts all
the work to the reader: the tag pays O(1), the reader pays a search
over the whole fleet (Section 5).  At fleet scale that wall is real —
this bench measures it honestly (per-record scan over the sharded
store) and then measures the per-epoch precomputed table that
amortizes it, asserting the ≥10x headline of ROADMAP item 2.

Writes the human table to ``results/s1_server_search.txt`` and the
machine-readable baseline to ``results/BENCH_server.json`` (wall
times vary per host; the *ratio* is the contract).
"""

import json
import time

from _helpers import RESULTS_DIR, fresh_rng, scaled, write_report

from repro.server import (
    EnrollmentSpec,
    EnrollmentStore,
    EpochSearchCache,
    enroll_fleet,
    epoch_nonce,
    scan_lookup,
)

#: Fleet size: big enough that the O(N) wall dominates Python noise.
FLEET_TAGS = scaled(60000, 4000)
SHARD_SIZE = 8192
LOOKUPS = scaled(40, 10)
SEED = 2013


def _fleet_dir(spec: EnrollmentSpec):
    path = RESULTS_DIR / "server" / f"fleet-{spec.digest()[:10]}"
    path.parent.mkdir(parents=True, exist_ok=True)
    return path


def run_experiment():
    spec = EnrollmentSpec(tags=FLEET_TAGS, shard_size=SHARD_SIZE,
                          seed=SEED)
    directory = _fleet_dir(spec)

    enroll_started = time.perf_counter()
    report = enroll_fleet(directory, spec)
    enroll_wall = time.perf_counter() - enroll_started
    assert report.complete
    store = EnrollmentStore(directory)

    rng = fresh_rng(91)
    identities = [rng.randrange(spec.tags) for _ in range(LOOKUPS)]
    needles = [store.record(i) for i in identities]
    expected = [spec.canonical_identity(i) for i in identities]

    # The wall: a full per-record scan per lookup.
    scan_started = time.perf_counter()
    scan_results = []
    scanned_total = 0
    for needle in needles:
        identity, scanned = scan_lookup(store, needle)
        scan_results.append(identity)
        scanned_total += scanned
    scan_wall = time.perf_counter() - scan_started

    # The cache: one O(N) build, then O(1) per lookup.
    build_started = time.perf_counter()
    cache = EpochSearchCache(store, epoch_nonce(SEED, 0))
    cache.build()
    build_wall = time.perf_counter() - build_started
    cached_started = time.perf_counter()
    cached_results = [cache.lookup(needle) for needle in needles]
    cached_wall = time.perf_counter() - cached_started

    assert scan_results == expected
    assert cached_results == expected

    scan_per = scan_wall / LOOKUPS
    cached_per = cached_wall / LOOKUPS
    speedup = scan_per / cached_per if cached_per else float("inf")
    # The one-off build pays for itself after this many lookups; an
    # epoch serves ~10^5 sessions, so the amortized build cost per
    # session is noise.
    break_even = build_wall / max(scan_per - cached_per, 1e-12)

    rows = {
        "tags": spec.tags,
        "shards": spec.num_shards,
        "lookups": LOOKUPS,
        "enroll_wall_s": round(enroll_wall, 4),
        "scan_wall_s": round(scan_wall, 4),
        "scan_per_lookup_ms": round(scan_per * 1e3, 4),
        "records_scanned": scanned_total,
        "cache_build_s": round(build_wall, 4),
        "cached_per_lookup_us": round(cached_per * 1e6, 4),
        "speedup": round(speedup, 1),
        "break_even_lookups": round(break_even, 1),
    }

    lines = [
        "S1 — private-identification search: the O(N) wall vs the "
        "epoch cache",
        "=" * 68,
        f"fleet: {spec.tags} tags in {spec.num_shards} shard(s) "
        f"(enrolled in {enroll_wall:.2f} s, reused on re-run)",
        f"lookups: {LOOKUPS} random identities",
        "",
        f"{'path':<26}{'per lookup':>16}{'total':>12}",
        "-" * 68,
        f"{'uncached scan (O(N))':<26}"
        f"{scan_per * 1e3:>13.2f} ms{scan_wall:>10.2f} s",
        f"{'epoch cache (O(1))':<26}"
        f"{cached_per * 1e6:>13.2f} us{cached_wall:>10.4f} s",
        f"{'cache build (once/epoch)':<26}{'':>16}{build_wall:>10.2f} s",
        "-" * 68,
        f"speedup: {speedup:.0f}x per lookup; the one-off build "
        f"pays for itself after {break_even:.0f} lookups "
        f"(an epoch serves ~10^5 sessions)",
        f"records scanned by the uncached path: {scanned_total}",
    ]
    write_report("s1_server_search", lines)

    (RESULTS_DIR / "BENCH_server.json").write_text(
        json.dumps(rows, indent=1, sort_keys=True) + "\n")

    # The headline acceptance criterion: >= 10x over the O(N) scan.
    assert speedup >= 10.0, rows
    # The build must amortize well inside one epoch's session budget.
    assert break_even < 10000, rows
    # The scan is honest: it walked the fleet (hits stop early, so on
    # average about half the records per lookup).
    assert scanned_total >= LOOKUPS * spec.tags // 4, rows
    return rows


def test_s1_server_search(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    assert rows["speedup"] >= 10.0
