"""T1 (telemetry detection) — floods caught from telemetry alone.

The adversary lab's defenses *prevent* battery depletion; this bench
asks the observability question instead: can the fleet's telemetry
pipeline **detect** a depletion flood with no attacker oracle — no
knowledge of which sessions were bogus — purely from the per-session
energy stream every soak already emits?

The default rulebook's detector is physical, not behavioral: an
honest TOY-B17 session is a short burst (~25 ms, ~32 µJ median, worst
observed ~97 µJ), while every flood class must keep the radio and the
ladder busy for seconds, pushing *per-session* energy past ~127 µJ —
arrival patterns can be faked, the energy cost of the attack cannot.
The ``energy_session_p99`` rule fires when the fleet-wide deep-tail
estimate crosses 110 µJ (above every honest session, below the
cheapest flood).

The acceptance criterion is the zero-false-positive contract: the
rulebook stays **silent** on an all-honest, defense-free baseline
(including its bursty arrival windows) and fires — with correct
virtual-window attribution — on every flood class, run under the
*same* defense-free posture so detection cannot lean on refusals.

Writes the human table to ``results/t1_detection.txt`` and the
machine-readable baseline to ``results/BENCH_telemetry.json``.
"""

import json
import shutil

from _helpers import RESULTS_DIR, scaled, write_report

from repro.adversary import AttackSpec, run_attack_soak
from repro.obs.alerts import default_rulebook

SEED = 2013
SESSIONS = scaled(30, 10)
COHORTS = 2

#: Every scenario runs defense-free: detection must come from the
#: telemetry stream, not from budget refusals or wake gating.
SCENARIOS = (
    ("clean-honest", "bogus-flood", 1.0),   # all honest sessions
    ("bogus-flood", "bogus-flood", 0.2),
    ("replay-flood", "replay-flood", 0.2),
    ("amplification", "amplification", 0.2),
)

P99_RULE = "energy_session_p99"


def _run_cell(name, adversary, legit_fraction):
    spec = AttackSpec(adversary=adversary, defense="none",
                      sessions=SESSIONS, cohorts=COHORTS,
                      legit_fraction=legit_fraction, seed=SEED)
    directory = RESULTS_DIR / "adversary" / f"t1-{name}-s{SESSIONS}"
    shutil.rmtree(directory, ignore_errors=True)
    report = run_attack_soak(str(directory), spec, workers=1)
    assert report.outcome == "clean", report.text()
    alerts = json.loads((directory / "alerts.json").read_text())
    telemetry = json.loads((directory / "telemetry.json").read_text())
    firings = [r for r in alerts["records"] if r["state"] == "firing"]
    session_uj = telemetry["series"]["session_uj"]
    return {
        "scenario": name,
        "adversary": adversary,
        "legit_fraction": legit_fraction,
        "sessions": SESSIONS * COHORTS,
        "events": telemetry["events"],
        "session_uj_p50": session_uj["p50"],
        "session_uj_p99": session_uj["p99"],
        "session_uj_max": session_uj["max"],
        "firings": len(firings),
        "fired": [
            {"rule": r["rule"], "window": r["window"],
             "value": r["value"], "threshold": r["threshold"]}
            for r in firings
        ],
    }


def run_experiment():
    cells = [_run_cell(*scenario) for scenario in SCENARIOS]
    threshold = next(r.threshold for r in default_rulebook()
                     if r.name == P99_RULE)

    lines = [
        f"T1 — depletion-flood detection from telemetry alone "
        f"({SESSIONS}x{COHORTS} sessions/cell, defense-free, "
        f"seed {SEED})",
        "=" * 76,
        f"{'scenario':<16}{'honest':>8}{'uJ p50':>10}{'uJ p99':>10}"
        f"{'uJ max':>10}{'alerts':>8}  fired at",
        "-" * 76,
    ]
    for cell in cells:
        fired_at = ", ".join(
            f"{f['rule']}@w{f['window']}({f['value']:.1f}uJ)"
            for f in cell["fired"]) or "-"
        lines.append(
            f"{cell['scenario']:<16}{cell['legit_fraction']:>8.0%}"
            f"{cell['session_uj_p50']:>10.1f}"
            f"{cell['session_uj_p99']:>10.1f}"
            f"{cell['session_uj_max']:>10.1f}"
            f"{cell['firings']:>8}  {fired_at}")
    lines += [
        "-" * 76,
        f"rule {P99_RULE}: fleet-wide session-energy deep tail vs "
        f"{threshold:g} uJ —",
        "above every honest session's cost, below the cheapest "
        "flood's; arrival",
        "bursts cannot fake it, so the clean baseline stays silent.",
    ]
    write_report("t1_detection", lines)

    (RESULTS_DIR / "BENCH_telemetry.json").write_text(
        json.dumps({"seed": SEED, "sessions": SESSIONS,
                    "cohorts": COHORTS, "p99_threshold_uj": threshold,
                    "cells": cells}, indent=1, sort_keys=True) + "\n")

    by_name = {c["scenario"]: c for c in cells}
    # Zero false positives: the all-honest baseline, bursty arrivals
    # and all, never trips any rule.
    clean = by_name["clean-honest"]
    assert clean["firings"] == 0, clean
    assert clean["session_uj_p99"] < threshold, clean
    # Every flood class is detected by the session-energy tail, with
    # the firing attributed to a concrete virtual window.
    for name in ("bogus-flood", "replay-flood", "amplification"):
        cell = by_name[name]
        fired_rules = {f["rule"] for f in cell["fired"]}
        assert P99_RULE in fired_rules, cell
        p99_firings = [f for f in cell["fired"] if f["rule"] == P99_RULE]
        assert all(f["window"] >= 0 for f in p99_firings), cell
        assert all(f["value"] > threshold for f in p99_firings), cell
        assert cell["session_uj_p99"] > threshold, cell
    return cells


def test_t1_detection(benchmark):
    cells = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    clean = [c for c in cells if c["scenario"] == "clean-honest"]
    assert all(c["firings"] == 0 for c in clean)
