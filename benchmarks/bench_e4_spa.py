"""E4 — SPA vs the mux-select encoding (Figure 3, Sections 6-7).

Paper: control signals driving 164 multiplexers must be "encoded in
such a way that the corresponding Hamming differences are constant,
otherwise the unbalance will reflect in the power trace"; and from the
evaluation, "a small source of SPA leakage was detected ... to exploit
it [the attacker] has to perform a complex profiling phase with an
identical device that is under his total control" (layout imbalance).

Three design points, attacked with the appropriate SPA:

1. unbalanced encoding  -> single-trace clustering recovers the key,
2. balanced encoding    -> clustering degenerates to guessing,
3. balanced + layout mismatch -> clustering still fails, but a
   profiled (template) adversary with a controlled identical device
   recovers the key.
"""

import numpy as np

from _helpers import NOISE_SIGMA, fresh_rng, scaled, write_report

from repro.arch import (
    BalancedEncoding,
    CoprocessorConfig,
    EccCoprocessor,
    UnbalancedEncoding,
)
from repro.power import PowerTraceSimulator
from repro.sca import ProfiledSpa, transition_spa

LAYOUT_MISMATCH = 0.03
N_ITERATIONS = None  # full-length traces for the single-trace attacks


def collect(config, key, n_traces, seed, max_iterations=None):
    coprocessor = EccCoprocessor(config)
    sim = PowerTraceSimulator(noise_sigma=NOISE_SIGMA, seed=seed)
    rng = fresh_rng(seed)
    rows = []
    execution = None
    for __ in range(n_traces):
        execution = coprocessor.point_multiply(
            key, coprocessor.domain.generator, rng=rng,
            max_iterations=max_iterations,
        )
        rows.append(sim.measure(execution))
    return np.vstack(rows), execution


def run_experiment():
    ring = EccCoprocessor().domain.scalar_ring
    key = ring.random_scalar(fresh_rng(40))
    results = {}

    # 1. Unbalanced: one trace, whole key.
    samples, execution = collect(
        CoprocessorConfig(mux_encoding=UnbalancedEncoding()), key, 1, seed=41
    )
    results["unbalanced"] = transition_spa(
        samples[0], execution.iteration_slices(), execution.key_bits
    )

    # 2. Balanced: one trace, clustering collapses.
    samples, execution = collect(
        CoprocessorConfig(mux_encoding=BalancedEncoding()), key, 1, seed=42
    )
    results["balanced"] = transition_spa(
        samples[0], execution.iteration_slices(), execution.key_bits
    )

    # 3. Balanced + layout mismatch: profiled attack on truncated
    # traces (the residual is per-iteration; 48 iterations suffice to
    # demonstrate recovery at paper-credible averaging effort).
    mismatch_config = CoprocessorConfig(
        mux_encoding=BalancedEncoding(layout_mismatch=LAYOUT_MISMATCH)
    )
    n_avg = scaled(240, 60)
    n_iter = scaled(48, 16)
    profiling_key = ring.random_scalar(fresh_rng(43))
    prof_samples, prof_exec = collect(mismatch_config, profiling_key, n_avg,
                                      seed=44, max_iterations=n_iter)
    spa = ProfiledSpa()
    spa.profile(prof_samples, prof_exec.iteration_slices(),
                prof_exec.key_bits)
    atk_samples, atk_exec = collect(mismatch_config, key, n_avg, seed=45,
                                    max_iterations=n_iter)
    results["profiled"] = spa.attack(atk_samples, atk_exec.iteration_slices(),
                                     atk_exec.key_bits)
    results["clustering_on_mismatch"] = transition_spa(
        atk_samples, atk_exec.iteration_slices(), atk_exec.key_bits
    )
    results["n_avg"] = n_avg
    return results


def test_e4_spa(benchmark):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    unb = results["unbalanced"]
    bal = results["balanced"]
    prof = results["profiled"]
    clu = results["clustering_on_mismatch"]

    def rate(r):
        return r.bit_errors / len(r.true_bits)

    lines = [
        "E4  SPA vs mux-select encoding (Figure 3, Sections 6-7)",
        "-" * 72,
        f"{'design point':<38}{'attack':<22}{'bit errors':>12}",
        f"{'unbalanced select':<38}{'1-trace clustering':<22}"
        f"{unb.bit_errors:>5}/{len(unb.true_bits)} ({rate(unb):.0%})",
        f"{'balanced select':<38}{'1-trace clustering':<22}"
        f"{bal.bit_errors:>5}/{len(bal.true_bits)} ({rate(bal):.0%})",
        f"{'balanced + layout mismatch':<38}"
        f"{'clustering (avg)':<22}"
        f"{clu.bit_errors:>5}/{len(clu.true_bits)} ({rate(clu):.0%})",
        f"{'balanced + layout mismatch':<38}"
        f"{'profiled templates':<22}"
        f"{prof.bit_errors:>5}/{len(prof.true_bits)} ({rate(prof):.0%})",
        "-" * 72,
        f"profiling effort: {results['n_avg']} averaged traces from a "
        "controlled identical device (the paper's 'complex profiling "
        "phase')",
    ]
    write_report("e4_spa", lines)

    assert unb.success                       # single-trace key recovery
    assert rate(bal) > 0.25                  # balanced defeats clustering
    assert rate(prof) < 0.05                 # profiled residual attack works
    assert rate(prof) < rate(clu)            # and beats clustering
