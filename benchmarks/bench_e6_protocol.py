"""E6 — the Peeters–Hermans protocol and the privacy game (Fig. 2, Sec. 4).

Paper: "the main operation on the tag is two point multiplications
(namely r*P and r*Y), and one modular multiplication (namely e*r)";
Schnorr-identification tags "can be easily traced" while Peeters–
Hermans achieves wide-forward-insider privacy.

The bench runs full identification sessions (correctness + workload +
wire accounting, printing the Figure 2 message flow), then plays the
transcript-linkage tracking game against both protocols, and finally
re-runs the identification over the lossy body-area channel
(:mod:`repro.protocols.session`) to price reliability in retries and
microjoules.
"""

from _helpers import fresh_rng, scaled, write_report

from repro.ec import NIST_K163
from repro.protocols import (
    PeetersHermansReader,
    PeetersHermansTag,
    peeters_hermans_linkage_game,
    run_identification,
    schnorr_linkage_game,
)
from repro.protocols.fleet import FleetSpec, run_fleet


def run_experiment():
    rng = fresh_rng(60)
    ring = NIST_K163.scalar_ring
    reader = PeetersHermansReader(NIST_K163, ring.random_scalar(rng))
    tag = PeetersHermansTag(NIST_K163, ring.random_scalar(rng), reader.public)
    reader.register(1, tag.identity_point)
    session = run_identification(tag, reader, rng)

    trials = scaled(16, 6)
    schnorr_game = schnorr_linkage_game(NIST_K163, fresh_rng(61), trials)
    ph_game = peeters_hermans_linkage_game(NIST_K163, fresh_rng(62), trials)

    # lossy-channel mode: the same identification as resilient sessions
    # across a frame-loss sweep (toy curve: the channel arithmetic is
    # identical, the group is just small enough to run a fleet)
    lossy = run_fleet(
        FleetSpec(protocol="peeters-hermans", curve="TOY-B17",
                  sessions=scaled(40, 12), seed=2013,
                  sweep=(0.0, 0.10, 0.20), max_epochs=20),
        workers=0,
    )
    return session, schnorr_game, ph_game, trials, lossy


def test_e6_protocol(benchmark):
    session, schnorr_game, ph_game, trials, lossy = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    lines = [
        "E6  Peeters-Hermans identification (Figure 2) + privacy game",
        "-" * 70,
        "message flow (one session):",
    ]
    for message in session.transcript.messages:
        lines.append(f"  {message.sender:>7} -> {message.label:<3} "
                     f"({message.bits} bits)")
    lines += [
        f"accepted: {session.accepted}, identity: {session.identity}",
        "",
        f"{'tag workload':<36}{'paper':>12}{'measured':>12}",
        f"{'  point multiplications':<36}{'2':>12}"
        f"{session.tag_ops.point_multiplications:>12}",
        f"{'  modular multiplications':<36}{'1':>12}"
        f"{session.tag_ops.modular_multiplications:>12}",
        f"{'reader point multiplications':<36}{'heavy':>12}"
        f"{session.reader_ops.point_multiplications:>12}",
        f"{'total communication (bits)':<36}{'-':>12}"
        f"{session.transcript.total_bits:>12}",
        "",
        f"tracking game ({trials} trials each):",
        f"  Schnorr adversary advantage:          "
        f"{schnorr_game.advantage:.2f}  (traceable)",
        f"  Peeters-Hermans adversary advantage:  "
        f"{ph_game.advantage:.2f}  (private)",
        "",
        f"lossy-channel mode ({lossy.spec.sessions} resilient sessions "
        "per loss rate, toy group):",
        f"  {'loss':>5} {'avail':>8} {'epochs':>7} {'frames':>7} "
        f"{'uJ/session':>11}",
    ]
    for point in lossy.points:
        lines.append(
            f"  {point.frame_loss:>5.0%} {point.availability:>8.1%} "
            f"{point.mean_epochs:>7.2f} {point.mean_frames:>7.2f} "
            f"{point.mean_initiator_uj:>11.2f}"
        )
    lines.append("  reliability is paid in microjoules: energy "
                 + ("rises with every loss point"
                    if lossy.energy_monotone else "NOT monotone (!)"))
    write_report("e6_protocol", lines)

    assert session.accepted
    assert session.tag_ops.point_multiplications == 2
    assert session.tag_ops.modular_multiplications == 1
    assert session.reader_ops.point_multiplications > 2
    assert schnorr_game.advantage == 1.0
    assert ph_game.advantage < schnorr_game.advantage
    assert lossy.fully_available
    assert lossy.energy_monotone
