"""A1 (ablation) — the three DPA randomizations, head to head.

The paper picks randomized projective coordinates (Algorithm 1); the
classic alternatives at the same abstraction level are Coron's scalar
blinding and base-point blinding.  This ablation quantifies why the
paper's choice is the cheap one:

* overhead — extra ladder iterations / field multiplications over the
  unprotected baseline;
* masking — fraction of per-iteration ladder states that differ
  between two runs with identical (k, P) (0% = fully predictable =
  DPA-able, 100% = fully masked);
* fresh randomness consumed per run.
"""

from _helpers import fresh_rng, write_report

from repro.ec import (
    NIST_K163,
    blind_scalar,
    montgomery_ladder_full,
    point_blinded_multiply,
)

CURVE, G, ORDER = NIST_K163.curve, NIST_K163.generator, NIST_K163.order
BLINDING_BITS = 32


def _masked_fraction(run_a, run_b):
    pairs = list(zip(run_a.iterations, run_b.iterations))
    if not pairs:
        return 0.0
    differing = sum(
        1 for a, b in pairs if (a.X1, a.Z1, a.X2, a.Z2) != (b.X1, b.Z1, b.X2, b.Z2)
    )
    return differing / len(pairs)


def run_experiment():
    rng = fresh_rng(80)
    k = NIST_K163.scalar_ring.random_scalar(rng)
    expected = CURVE.multiply_naive(k, G)
    rows = {}

    # Baseline: no countermeasure.
    base_a = montgomery_ladder_full(CURVE, k, G, randomize_z=False)
    base_b = montgomery_ladder_full(CURVE, k, G, randomize_z=False)
    rows["unprotected"] = {
        "iterations": base_a.num_iterations,
        "muls": base_a.field_multiplications,
        "masked": _masked_fraction(base_a, base_b),
        "random_bits": 0,
        "correct": base_a.result == expected,
    }

    # Randomized projective coordinates (the paper's choice).
    z_a = montgomery_ladder_full(CURVE, k, G, rng=rng)
    z_b = montgomery_ladder_full(CURVE, k, G, rng=rng)
    rows["randomized-Z"] = {
        "iterations": z_a.num_iterations,
        "muls": z_a.field_multiplications + 1,  # the X = x*r multiply
        "masked": _masked_fraction(z_a, z_b),
        "random_bits": 163,
        "correct": z_a.result == expected,
    }

    # Scalar blinding: k' = k + r*n, ~32 extra iterations.
    kb_a = blind_scalar(k, ORDER, rng, BLINDING_BITS)
    kb_b = blind_scalar(k, ORDER, rng, BLINDING_BITS)
    s_a = montgomery_ladder_full(CURVE, kb_a, G, randomize_z=False)
    s_b = montgomery_ladder_full(CURVE, kb_b, G, randomize_z=False)
    rows["scalar blinding"] = {
        "iterations": s_a.num_iterations,
        "muls": s_a.field_multiplications,
        "masked": _masked_fraction(s_a, s_b),
        "random_bits": BLINDING_BITS,
        "correct": s_a.result == expected,
    }

    # Point blinding: two full multiplications.
    pb = point_blinded_multiply(CURVE, k, G, rng)
    rows["point blinding"] = {
        "iterations": 2 * base_a.num_iterations,
        "muls": 2 * base_a.field_multiplications,
        "masked": 1.0,  # intermediates depend on the fresh mask point
        "random_bits": 163,
        "correct": pb == expected,
    }
    return rows


def test_a1_countermeasure_ablation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    lines = [
        "A1  DPA-randomization ablation (paper's choice vs alternatives)",
        "-" * 76,
        f"{'countermeasure':<20}{'iterations':>12}{'field muls':>12}"
        f"{'masked states':>15}{'rand bits':>11}{'correct':>9}",
    ]
    for name, r in rows.items():
        lines.append(
            f"{name:<20}{r['iterations']:>12}{r['muls']:>12}"
            f"{r['masked']:>14.0%}{r['random_bits']:>11}"
            f"{str(r['correct']):>9}"
        )
    lines += [
        "-" * 76,
        "randomized projective coordinates mask every intermediate at the",
        "cost of ONE extra field multiplication — the cheapest of the",
        "three, which is why the paper's chip uses it (Algorithm 1).",
    ]
    write_report("a1_countermeasure_ablation", lines)

    assert all(r["correct"] for r in rows.values())
    assert rows["unprotected"]["masked"] == 0.0
    # Scalar blinding's two runs may share a few leading iterations
    # when the random multipliers happen to share top bits; the other
    # two masks are per-state and total.
    assert rows["randomized-Z"]["masked"] == 1.0
    assert rows["point blinding"]["masked"] == 1.0
    assert rows["scalar blinding"]["masked"] > 0.9
    # Cost ordering: randomized-Z adds one multiply; scalar blinding
    # up to BLINDING_BITS more iterations; point blinding doubles
    # everything.
    assert rows["randomized-Z"]["muls"] == rows["unprotected"]["muls"] + 1
    assert rows["unprotected"]["iterations"] \
        < rows["scalar blinding"]["iterations"] \
        <= rows["unprotected"]["iterations"] + BLINDING_BITS + 1
    assert rows["point blinding"]["muls"] == 2 * rows["unprotected"]["muls"]