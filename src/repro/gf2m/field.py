"""Binary extension fields GF(2^m) in polynomial basis.

This is the arithmetic substrate underneath everything else in the
library: the elliptic-curve layer (:mod:`repro.ec`), the coprocessor's
MALU (:mod:`repro.arch`) and the side-channel experiments all compute
in the field defined here.  The paper's chip uses GF(2^163); this
implementation is generic over ``m`` and the reduction polynomial.

Elements are stored as Python integers (bit ``i`` = coefficient of
``x**i``) and wrapped in :class:`FieldElement` for operator syntax.
"""

from __future__ import annotations

from typing import Iterator, Optional

from .polynomial import (
    clmul,
    is_irreducible,
    poly_degree,
    poly_egcd,
    poly_to_string,
)

__all__ = ["BinaryField", "FieldElement"]

# 8-bit squaring spread table: interleave a zero bit after every input
# bit, so squaring a polynomial is a table-driven byte expansion.
_SQUARE_SPREAD = []
for _byte in range(256):
    _spread = 0
    for _i in range(8):
        if (_byte >> _i) & 1:
            _spread |= 1 << (2 * _i)
    _SQUARE_SPREAD.append(_spread)


class BinaryField:
    """The finite field GF(2^m) with a chosen irreducible polynomial.

    Parameters
    ----------
    m:
        Extension degree.
    modulus:
        The irreducible reduction polynomial, as an integer of degree
        ``m``.  Checked for degree and irreducibility at construction.

    Examples
    --------
    >>> from repro.gf2m import BinaryField, reduction_polynomial
    >>> k163 = BinaryField(163, reduction_polynomial(163))
    >>> a = k163(0b1011)
    >>> (a * a.inverse()).value
    1
    """

    def __init__(self, m: int, modulus: int, check_irreducible: bool = True):
        if m < 1:
            raise ValueError("extension degree m must be >= 1")
        if poly_degree(modulus) != m:
            raise ValueError(
                f"modulus has degree {poly_degree(modulus)}, expected {m}"
            )
        if check_irreducible and not is_irreducible(modulus):
            raise ValueError("modulus is not irreducible over GF(2)")
        self.m = m
        self.modulus = modulus
        self._mask = (1 << m) - 1
        # Tail of the modulus: modulus = x^m + tail, deg(tail) < m.
        # Reduction folds the high part against the tail.
        self._tail = modulus ^ (1 << m)

    # ------------------------------------------------------------------
    # element construction
    # ------------------------------------------------------------------

    def __call__(self, value: int) -> "FieldElement":
        """Wrap an integer as a field element (reduced mod the modulus)."""
        return FieldElement(self, self.reduce(value))

    def zero(self) -> "FieldElement":
        """The additive identity."""
        return FieldElement(self, 0)

    def one(self) -> "FieldElement":
        """The multiplicative identity."""
        return FieldElement(self, 1)

    def random_element(self, rng) -> "FieldElement":
        """A uniformly random element, drawn from ``rng.getrandbits``."""
        return FieldElement(self, rng.getrandbits(self.m) & self._mask)

    def elements(self) -> Iterator["FieldElement"]:
        """Iterate over all field elements (only sensible for tiny m)."""
        if self.m > 20:
            raise ValueError("refusing to enumerate a field with 2^m > 2^20")
        for v in range(1 << self.m):
            yield FieldElement(self, v)

    # ------------------------------------------------------------------
    # raw (integer) arithmetic
    # ------------------------------------------------------------------

    def reduce(self, value: int) -> int:
        """Reduce an arbitrary-degree polynomial modulo the field modulus.

        Uses tail-folding: while ``value`` has degree >= m, split it as
        ``low + x^m * high`` and replace ``x^m * high`` by
        ``tail * high``.  Each fold strictly lowers the degree, and for
        the sparse NIST polynomials it converges in two folds.
        """
        tail = self._tail
        mask = self._mask
        m = self.m
        while value >> m:
            high = value >> m
            value = (value & mask) ^ clmul(high, tail)
        return value

    def add_raw(self, a: int, b: int) -> int:
        """Field addition of raw values (XOR)."""
        return a ^ b

    def mul_raw(self, a: int, b: int) -> int:
        """Field multiplication of raw values."""
        return self.reduce(clmul(a, b))

    def square_raw(self, a: int) -> int:
        """Field squaring of a raw value (linear over GF(2), table-driven)."""
        spread = 0
        shift = 0
        while a:
            spread |= _SQUARE_SPREAD[a & 0xFF] << shift
            a >>= 8
            shift += 16
        return self.reduce(spread)

    def sqrt_raw(self, a: int) -> int:
        """Field square root of a raw value.

        Squaring is a bijection in characteristic 2, and
        ``a**(2**(m-1))`` inverts it.
        """
        for _ in range(self.m - 1):
            a = self.square_raw(a)
        return a

    def inverse_raw(self, a: int) -> int:
        """Multiplicative inverse by the extended Euclidean algorithm."""
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        g, s, _ = poly_egcd(a, self.modulus)
        if g != 1:
            raise ArithmeticError("gcd(a, modulus) != 1; modulus not irreducible?")
        return self.reduce(s)

    def inverse_itoh_tsujii_raw(self, a: int) -> int:
        """Multiplicative inverse via the Itoh-Tsujii addition chain.

        ``a**-1 = (a**(2**(m-1) - 1))**2``.  This is the inversion the
        paper's coprocessor microcodes (it only needs squarings and
        multiplications, which the MALU provides), so it is exposed
        separately from the Euclidean inverse.
        """
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in GF(2^m)")
        # Build a**(2**k - 1) following the binary expansion of m-1.
        exponent_bits = []
        k = self.m - 1
        while k:
            exponent_bits.append(k & 1)
            k >>= 1
        exponent_bits.reverse()
        result = a        # a**(2**1 - 1)
        chain_len = 1
        for bit in exponent_bits[1:]:
            # result = a**(2**chain_len - 1); double the chain.
            t = result
            for _ in range(chain_len):
                t = self.square_raw(t)
            result = self.mul_raw(t, result)
            chain_len *= 2
            if bit:
                result = self.mul_raw(self.square_raw(result), a)
                chain_len += 1
        return self.square_raw(result)

    def pow_raw(self, a: int, exponent: int) -> int:
        """Raise a raw value to an integer power (negative allowed)."""
        if exponent < 0:
            a = self.inverse_raw(a)
            exponent = -exponent
        result = 1
        while exponent:
            if exponent & 1:
                result = self.mul_raw(result, a)
            a = self.square_raw(a)
            exponent >>= 1
        return result

    def trace_raw(self, a: int) -> int:
        """Absolute trace Tr(a) = a + a^2 + ... + a^(2^(m-1)), in {0, 1}."""
        t = a
        acc = a
        for _ in range(self.m - 1):
            t = self.square_raw(t)
            acc ^= t
        if acc not in (0, 1):
            raise ArithmeticError("trace did not land in the prime subfield")
        return acc

    def half_trace_raw(self, a: int) -> int:
        """Half-trace H(a) = sum a^(4^i), solving z^2 + z = a for odd m."""
        if self.m % 2 == 0:
            raise ValueError("half-trace requires odd extension degree")
        t = a
        acc = a
        for _ in range((self.m - 1) // 2):
            t = self.square_raw(self.square_raw(t))
            acc ^= t
        return acc

    def solve_quadratic_raw(self, c: int) -> Optional[int]:
        """Solve ``z**2 + z = c``; return one solution or None.

        A solution exists iff Tr(c) == 0; the other solution is z + 1.
        Used for recovering point y-coordinates from compressed form.
        """
        if c == 0:
            return 0
        if self.trace_raw(c) != 0:
            return None
        if self.m % 2 == 1:
            z = self.half_trace_raw(c)
        else:
            # Generic method: find delta with Tr(delta) = 1 and build z.
            delta = self._element_of_trace_one()
            z = 0
            w = c
            t = delta
            for _ in range(self.m - 1):
                w = self.square_raw(w)
                t = self.square_raw(t)
                z = self.square_raw(z) ^ self.mul_raw(w, t)
        if self.add_raw(self.square_raw(z), z) != c:
            raise ArithmeticError("quadratic solver produced a non-solution")
        return z

    def _element_of_trace_one(self) -> int:
        """Find any element with trace 1 (deterministic scan)."""
        for v in range(1, 1 << min(self.m, 24)):
            if self.trace_raw(v) == 1:
                return v
        raise ArithmeticError("no trace-one element found in the scan range")

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of elements, 2^m."""
        return 1 << self.m

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BinaryField)
            and self.m == other.m
            and self.modulus == other.modulus
        )

    def __hash__(self) -> int:
        return hash((self.m, self.modulus))

    def __repr__(self) -> str:
        return f"BinaryField(2^{self.m}, modulus={poly_to_string(self.modulus)})"


class FieldElement:
    """An element of a :class:`BinaryField`, with operator overloading.

    Instances are immutable.  Mixed-field operations raise ``ValueError``
    rather than guessing a coercion.
    """

    __slots__ = ("field", "value")

    def __init__(self, field: BinaryField, value: int):
        if not 0 <= value < (1 << field.m):
            raise ValueError("element value out of range for the field")
        object.__setattr__(self, "field", field)
        object.__setattr__(self, "value", value)

    def __setattr__(self, name, value):
        raise AttributeError("FieldElement is immutable")

    def _check_same_field(self, other: "FieldElement") -> None:
        if self.field != other.field:
            raise ValueError("operands belong to different fields")

    def __add__(self, other: "FieldElement") -> "FieldElement":
        self._check_same_field(other)
        return FieldElement(self.field, self.value ^ other.value)

    __sub__ = __add__  # characteristic 2: subtraction is addition

    def __mul__(self, other: "FieldElement") -> "FieldElement":
        self._check_same_field(other)
        return FieldElement(self.field, self.field.mul_raw(self.value, other.value))

    def __truediv__(self, other: "FieldElement") -> "FieldElement":
        self._check_same_field(other)
        return self * other.inverse()

    def __pow__(self, exponent: int) -> "FieldElement":
        return FieldElement(self.field, self.field.pow_raw(self.value, exponent))

    def __neg__(self) -> "FieldElement":
        return self  # characteristic 2

    def square(self) -> "FieldElement":
        """Return self**2 (cheaper than ``self * self``)."""
        return FieldElement(self.field, self.field.square_raw(self.value))

    def sqrt(self) -> "FieldElement":
        """Return the unique square root."""
        return FieldElement(self.field, self.field.sqrt_raw(self.value))

    def inverse(self) -> "FieldElement":
        """Return the multiplicative inverse (Euclidean algorithm)."""
        return FieldElement(self.field, self.field.inverse_raw(self.value))

    def trace(self) -> int:
        """Absolute trace, as an integer in {0, 1}."""
        return self.field.trace_raw(self.value)

    def is_zero(self) -> bool:
        """True for the additive identity."""
        return self.value == 0

    def __bool__(self) -> bool:
        return self.value != 0

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, FieldElement)
            and self.field == other.field
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash((self.field, self.value))

    def __repr__(self) -> str:
        return f"FieldElement(GF(2^{self.field.m}), {hex(self.value)})"
