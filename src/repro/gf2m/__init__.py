"""Binary extension field GF(2^m) arithmetic.

The arithmetic substrate of the reproduction: polynomial-basis fields,
carry-less polynomial helpers, NIST reduction polynomials and the
digit-serial multiplier model the coprocessor datapath is built from.
"""

from .digit_serial import DigitSerialMultiplier, MultiplicationTrace
from .field import BinaryField, FieldElement
from .params import NIST_REDUCTION_POLYNOMIALS, reduction_polynomial
from .polynomial import (
    clmul,
    is_irreducible,
    poly_degree,
    poly_divmod,
    poly_egcd,
    poly_from_coefficients,
    poly_gcd,
    poly_mod,
    poly_mulmod,
    poly_pow_mod,
    poly_to_string,
)

__all__ = [
    "BinaryField",
    "FieldElement",
    "DigitSerialMultiplier",
    "MultiplicationTrace",
    "NIST_REDUCTION_POLYNOMIALS",
    "reduction_polynomial",
    "clmul",
    "is_irreducible",
    "poly_degree",
    "poly_divmod",
    "poly_egcd",
    "poly_from_coefficients",
    "poly_gcd",
    "poly_mod",
    "poly_mulmod",
    "poly_pow_mod",
    "poly_to_string",
]
