"""Digit-serial GF(2^m) multiplier: functional model with cycle accounting.

The paper's coprocessor uses a most-significant-digit-first digit-serial
multiplier for GF(2^163) with digit size d = 4 (a "163 x 4 modular
multiplier", Section 5).  The digit size trades latency against area
and power: one digit of the multiplier operand is consumed per clock
cycle, so a full modular multiplication takes ``ceil(m / d)`` cycles.

This module models that datapath bit-exactly: :meth:`multiply` returns
both the product and a per-cycle activity trace (accumulator states and
Hamming distances) that the power simulator in :mod:`repro.power` turns
into synthetic power samples.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field
from time import perf_counter as _perf_counter

from ..obs import profile as _obs_profile
from .field import BinaryField
from .polynomial import clmul

__all__ = ["DigitSerialMultiplier", "MultiplicationTrace"]


@dataclass
class MultiplicationTrace:
    """Per-cycle activity record of one digit-serial multiplication.

    Attributes
    ----------
    digit_size:
        Digit size d of the multiplier that produced the trace.
    accumulator_states:
        Accumulator value at the end of each cycle (``ceil(m/d)`` entries).
    hamming_distances:
        Hamming distance of the accumulator update in each cycle — the
        switching-activity proxy the CMOS power model consumes.
    array_activity:
        Per-cycle toggles of the d x m partial-product array and its
        XOR compression tree.  Scales with the digit size (wider array
        per cycle) and with the tree depth (glitching grows with
        log2(d)) — the physical reason wide-digit multipliers trade
        latency for power.
    """

    digit_size: int
    accumulator_states: list = dataclass_field(default_factory=list)
    hamming_distances: list = dataclass_field(default_factory=list)
    array_activity: list = dataclass_field(default_factory=list)

    @property
    def cycles(self) -> int:
        """Number of clock cycles the multiplication took."""
        return len(self.accumulator_states)

    @property
    def total_switching(self) -> int:
        """Sum of per-cycle accumulator Hamming distances."""
        return sum(self.hamming_distances)

    @property
    def total_array_activity(self) -> float:
        """Sum of per-cycle partial-product-array toggles."""
        return sum(self.array_activity)


class DigitSerialMultiplier:
    """Most-significant-digit-first digit-serial modular multiplier.

    Computes ``a * b mod f`` by scanning the digits of ``b`` from the
    most significant end.  Per cycle the accumulator is shifted up by
    ``d`` bits, the partial product ``a * digit`` is XORed in, and the
    result is reduced below degree m — exactly the interleaved
    multiply-reduce datapath of the hardware.

    Parameters
    ----------
    field:
        The :class:`~repro.gf2m.field.BinaryField` to multiply in.
    digit_size:
        Digit size d >= 1.  The paper's design point is d = 4.
    """

    def __init__(self, field: BinaryField, digit_size: int):
        if digit_size < 1:
            raise ValueError("digit size must be >= 1")
        if digit_size > field.m:
            raise ValueError("digit size larger than the field degree is useless")
        self.field = field
        self.digit_size = digit_size
        self.num_digits = math.ceil(field.m / digit_size)

    @property
    def cycles_per_multiplication(self) -> int:
        """Clock cycles for one modular multiplication: ceil(m / d)."""
        return self.num_digits

    def multiply(self, a: int, b: int) -> tuple[int, MultiplicationTrace]:
        """Multiply raw field values, returning (product, activity trace).

        The returned product equals ``field.mul_raw(a, b)`` — the
        datapath model is bit-exact against the reference arithmetic.
        """
        if _obs_profile.enabled():
            t0 = _perf_counter()
            result = self._multiply(a, b)
            _obs_profile.observe("gf2m_multiply", _perf_counter() - t0)
            return result
        return self._multiply(a, b)

    def _multiply(self, a: int, b: int) -> tuple[int, MultiplicationTrace]:
        f = self.field
        d = self.digit_size
        mask = (1 << f.m) - 1
        digit_mask = (1 << d) - 1
        trace = MultiplicationTrace(digit_size=d)
        # For small digits, precompute the 2^d partial products
        # a * digit; for wide digits fall back to a carry-less multiply
        # per cycle (the hardware analogue is a d-bit row of partial
        # product generators either way).
        partials = None
        if d <= 8:
            partials = [0] * (1 << d)
            for i in range(1, 1 << d):
                low_bit = i & -i
                partials[i] = partials[i ^ low_bit] ^ (a << (low_bit.bit_length() - 1))
        # Partial-product array model: each cycle the d rows of AND
        # gates driven by operand `a` recompute against a fresh digit,
        # and the result ripples through a log2(d)-deep XOR tree whose
        # glitching grows with depth.  Per-cycle toggles ~ HW(a) * d/2,
        # scaled by the tree-depth glitch factor.
        glitch_factor = 1.0 + 0.3 * math.log2(d) if d > 1 else 1.0
        per_cycle_array = bin(a).count("1") * d / 2.0 * glitch_factor
        acc = 0
        for digit_index in range(self.num_digits - 1, -1, -1):
            digit = (b >> (digit_index * d)) & digit_mask
            shifted = f.reduce(acc << d)
            partial = partials[digit] if partials is not None else clmul(a, digit)
            new_acc = f.reduce(shifted ^ partial)
            toggles = bin((acc ^ new_acc) & mask).count("1")
            acc = new_acc
            trace.accumulator_states.append(acc)
            trace.hamming_distances.append(toggles)
            trace.array_activity.append(per_cycle_array)
        return acc, trace

    def __repr__(self) -> str:
        return (
            f"DigitSerialMultiplier(m={self.field.m}, d={self.digit_size}, "
            f"cycles={self.cycles_per_multiplication})"
        )
