"""Standard reduction polynomials for NIST binary fields.

The paper's coprocessor works over GF(2^163) with the NIST K-163/B-163
reduction pentanomial.  The other NIST binary-field sizes are included
so the library scales beyond the 80-bit security level the paper
targets (Section 1 argues medical data needs security levels that last
many years, which eventually forces larger fields).
"""

from __future__ import annotations

from .polynomial import poly_from_coefficients

__all__ = ["NIST_REDUCTION_POLYNOMIALS", "reduction_polynomial"]

# Degree -> exponent list of the NIST-recommended irreducible polynomial
# (FIPS 186, appendix D.4): trinomials where they exist, pentanomials
# otherwise.
_NIST_EXPONENTS = {
    163: [163, 7, 6, 3, 0],
    233: [233, 74, 0],
    283: [283, 12, 7, 5, 0],
    409: [409, 87, 0],
    571: [571, 10, 5, 2, 0],
}

NIST_REDUCTION_POLYNOMIALS = {
    m: poly_from_coefficients(exps) for m, exps in _NIST_EXPONENTS.items()
}


def reduction_polynomial(m: int) -> int:
    """Return the NIST reduction polynomial for GF(2^m).

    Raises ``KeyError`` for non-NIST degrees; callers with custom
    fields should pass their own polynomial to ``BinaryField``.
    """
    return NIST_REDUCTION_POLYNOMIALS[m]
