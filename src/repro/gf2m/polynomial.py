"""Bit-level polynomial arithmetic over GF(2).

Polynomials over GF(2) are represented as Python integers: bit ``i`` of
the integer is the coefficient of ``x**i``.  This module provides the
raw polynomial operations (carry-less multiplication, division,
reduction, gcd, irreducibility testing) that :mod:`repro.gf2m.field`
builds finite fields from.

All functions are pure and operate on non-negative integers.
"""

from __future__ import annotations

__all__ = [
    "clmul",
    "poly_degree",
    "poly_mod",
    "poly_divmod",
    "poly_mulmod",
    "poly_gcd",
    "poly_egcd",
    "poly_pow_mod",
    "is_irreducible",
    "poly_to_string",
    "poly_from_coefficients",
    "poly_coefficients",
]

# Window size (in bits) used by the carry-less multiplier.  Each call
# builds a 2**_WINDOW entry table of small multiples of one operand and
# then scans the other operand _WINDOW bits at a time.
_WINDOW = 4


def poly_degree(a: int) -> int:
    """Return the degree of polynomial ``a``, or -1 for the zero polynomial."""
    if a < 0:
        raise ValueError("polynomials are represented by non-negative integers")
    return a.bit_length() - 1


def clmul(a: int, b: int) -> int:
    """Carry-less (GF(2)) product of polynomials ``a`` and ``b``.

    This is schoolbook multiplication with XOR accumulation, windowed
    four bits at a time for speed on large operands.
    """
    if a < 0 or b < 0:
        raise ValueError("polynomials are represented by non-negative integers")
    if a == 0 or b == 0:
        return 0
    # Keep the table built from the shorter operand.
    if a.bit_length() < b.bit_length():
        a, b = b, a
    table = [0] * (1 << _WINDOW)
    for i in range(1, 1 << _WINDOW):
        low_bit = i & -i
        table[i] = table[i ^ low_bit] ^ (a << (low_bit.bit_length() - 1))
    result = 0
    shift = 0
    mask = (1 << _WINDOW) - 1
    while b:
        digit = b & mask
        if digit:
            result ^= table[digit] << shift
        b >>= _WINDOW
        shift += _WINDOW
    return result


def poly_divmod(a: int, b: int) -> tuple[int, int]:
    """Return ``(q, r)`` with ``a = q*b + r`` over GF(2) and deg(r) < deg(b)."""
    if b == 0:
        raise ZeroDivisionError("polynomial division by zero")
    deg_b = poly_degree(b)
    q = 0
    r = a
    deg_r = poly_degree(r)
    while deg_r >= deg_b:
        shift = deg_r - deg_b
        q ^= 1 << shift
        r ^= b << shift
        deg_r = poly_degree(r)
    return q, r


def poly_mod(a: int, b: int) -> int:
    """Return ``a mod b`` over GF(2)."""
    return poly_divmod(a, b)[1]


def poly_mulmod(a: int, b: int, modulus: int) -> int:
    """Return ``a * b mod modulus`` over GF(2)."""
    return poly_mod(clmul(a, b), modulus)


def poly_gcd(a: int, b: int) -> int:
    """Return the greatest common divisor of two GF(2) polynomials."""
    while b:
        a, b = b, poly_mod(a, b)
    return a


def poly_egcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclid: return ``(g, s, t)`` with ``s*a + t*b = g = gcd(a, b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r:
        q, rem = poly_divmod(old_r, r)
        old_r, r = r, rem
        old_s, s = s, old_s ^ clmul(q, s)
        old_t, t = t, old_t ^ clmul(q, t)
    return old_r, old_s, old_t


def poly_pow_mod(a: int, exponent: int, modulus: int) -> int:
    """Return ``a**exponent mod modulus`` over GF(2) (square-and-multiply)."""
    if exponent < 0:
        raise ValueError("exponent must be non-negative")
    result = 1
    base = poly_mod(a, modulus)
    while exponent:
        if exponent & 1:
            result = poly_mulmod(result, base, modulus)
        base = poly_mulmod(base, base, modulus)
        exponent >>= 1
    return result


def _distinct_prime_factors(n: int) -> list[int]:
    """Return the distinct prime factors of ``n`` by trial division."""
    factors = []
    d = 2
    while d * d <= n:
        if n % d == 0:
            factors.append(d)
            while n % d == 0:
                n //= d
        d += 1
    if n > 1:
        factors.append(n)
    return factors


def is_irreducible(f: int) -> bool:
    """Rabin irreducibility test for a GF(2) polynomial ``f``.

    ``f`` of degree ``m`` is irreducible iff ``x**(2**m) == x (mod f)``
    and ``gcd(x**(2**(m/p)) - x, f) == 1`` for every prime ``p | m``.
    """
    m = poly_degree(f)
    if m <= 0:
        return False
    if m == 1:
        return True
    if not (f & 1):  # divisible by x
        return False
    x = 2
    # x**(2**m) mod f via repeated squaring of x.
    t = x
    for _ in range(m):
        t = poly_mulmod(t, t, f)
    if t != x:
        return False
    for p in _distinct_prime_factors(m):
        t = x
        for _ in range(m // p):
            t = poly_mulmod(t, t, f)
        if poly_gcd(t ^ x, f) != 1:
            return False
    return True


def poly_coefficients(a: int) -> list[int]:
    """Return the exponents with non-zero coefficients, highest first."""
    return [i for i in range(poly_degree(a), -1, -1) if (a >> i) & 1]


def poly_from_coefficients(exponents: list[int]) -> int:
    """Build a polynomial from a list of exponents with coefficient 1."""
    value = 0
    for e in exponents:
        if e < 0:
            raise ValueError("exponents must be non-negative")
        value |= 1 << e
    return value


def poly_to_string(a: int) -> str:
    """Render a polynomial as e.g. ``x^163 + x^7 + x^6 + x^3 + 1``."""
    if a == 0:
        return "0"
    terms = []
    for e in poly_coefficients(a):
        if e == 0:
            terms.append("1")
        elif e == 1:
            terms.append("x")
        else:
            terms.append(f"x^{e}")
    return " + ".join(terms)
