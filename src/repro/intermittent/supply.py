"""Seeded supply-voltage trajectories with brownout crossings.

The paper's tag is wirelessly powered or battery-backed; either way
the supply is a *trajectory*, not a constant.  This module models it
as a sequence of power-on windows measured in core-clock cycles: the
device runs, Vdd sags from the technology's nominal voltage toward
the brownout threshold along the window, and at the exact crossing
cycle a :class:`~.errors.PowerLossError` fires.  Window lengths are
derived from ``(seed, session, window)`` with the same SHA-256
labelled-tuple discipline as :func:`repro.channel.model.derive_channel_seed`,
so a supply trajectory is a pure function of its spec — two runs of
one spec brown out at the same cycles on any machine.

Profiles (:data:`SUPPLY_PROFILES`):

* ``stable`` — mains/bench power, no cuts;
* ``battery`` — discharge: windows *shrink* geometrically as the
  battery sags (each recovery buys less on-time than the last);
* ``harvested`` — coil/field power: i.i.d. jittered windows around the
  mean (field alignment comes and goes, it does not trend).

Voltage shares the existing energy model through
:class:`~repro.power.technology.TechnologyParams`: the trajectory
starts at ``nominal_vdd`` and :meth:`SupplyModel.vdd_at` follows the
linear sag to ``brownout_vdd``, so the dynamic-energy scale at any
point of a window is ``technology.dynamic_scale`` of that voltage.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field as dataclass_field
from typing import Optional, Sequence, Tuple

from ..power.technology import OperatingPoint, TechnologyParams, UMC_130NM
from .errors import PowerLossError, SupplySpecError

__all__ = ["SUPPLY_PROFILES", "SupplySpec", "SupplyModel", "PowerSupply",
           "derive_supply_value"]

#: The supply shapes the engine and the CLI know.
SUPPLY_PROFILES: Tuple[str, ...] = ("stable", "battery", "harvested")


def derive_supply_value(seed: int, stream: str, session: int,
                        index: int) -> int:
    """A 64-bit child value for one supply decision stream.

    SHA-256 over the labelled tuple, mirroring
    :func:`repro.channel.model.derive_channel_seed` — stdlib-only,
    process- and platform-stable.
    """
    message = f"repro.intermittent/{seed}/{stream}/{session}/{index}".encode()
    return int.from_bytes(hashlib.sha256(message).digest()[:8], "big")


@dataclass(frozen=True)
class SupplySpec:
    """Everything a supply trajectory depends on (and nothing else)."""

    profile: str = "stable"
    technology: TechnologyParams = UMC_130NM
    brownout_fraction: float = 0.7
    mean_on_cycles: int = 60_000
    jitter: float = 0.5
    battery_decay: float = 0.9
    cuts: int = 4
    seed: int = 0

    def __post_init__(self):
        if self.profile not in SUPPLY_PROFILES:
            known = ", ".join(SUPPLY_PROFILES)
            raise SupplySpecError(
                f"unknown supply profile {self.profile!r}; known: {known}")
        if not 0.0 < self.brownout_fraction < 1.0:
            raise SupplySpecError("brownout fraction must be in (0, 1)")
        if self.mean_on_cycles < 1:
            raise SupplySpecError("mean on-window must be at least 1 cycle")
        if not 0.0 <= self.jitter < 1.0:
            raise SupplySpecError("jitter must be in [0, 1)")
        if not 0.0 < self.battery_decay <= 1.0:
            raise SupplySpecError("battery decay must be in (0, 1]")
        if self.cuts < 0:
            raise SupplySpecError("cut count must be non-negative")

    @property
    def nominal_vdd(self) -> float:
        return self.technology.nominal_vdd

    @property
    def brownout_vdd(self) -> float:
        return self.brownout_fraction * self.technology.nominal_vdd


class SupplyModel:
    """One tag's deterministic supply trajectory under a spec."""

    def __init__(self, spec: SupplySpec, session_index: int = 0):
        self.spec = spec
        self.session_index = session_index

    def window_cycles(self, window_index: int) -> int:
        """On-time (cycles) of one power-on window, >= 1."""
        spec = self.spec
        unit = derive_supply_value(spec.seed, f"window/{spec.profile}",
                                   self.session_index,
                                   window_index) / 2.0 ** 64
        mean = spec.mean_on_cycles
        if spec.profile == "battery":
            mean = mean * (spec.battery_decay ** window_index)
        scale = 1.0 + spec.jitter * (2.0 * unit - 1.0)
        return max(1, int(round(mean * scale)))

    def windows(self) -> Tuple[int, ...]:
        """The finite cut schedule: ``spec.cuts`` brownout windows.

        After the schedule is exhausted the supply is treated as
        stable, so every session has a terminating final window — the
        model's analogue of the clinician re-seating the programming
        head until the exchange completes.
        """
        if self.spec.profile == "stable":
            return ()
        return tuple(self.window_cycles(i) for i in range(self.spec.cuts))

    def power_supply(self) -> "PowerSupply":
        return PowerSupply(self.windows(),
                           nominal_vdd=self.spec.nominal_vdd,
                           brownout_vdd=self.spec.brownout_vdd,
                           technology=self.spec.technology)


class PowerSupply:
    """The runtime supply: a cycle meter that browns out on schedule.

    ``windows`` is the finite list of power-on lengths (cycles); once
    it is exhausted power stays up.  :meth:`spend` advances the meter
    and raises :class:`~.errors.PowerLossError` at the *exact* cycle a
    window ends — partially completed work inside the losing ``spend``
    is the caller's problem, which is the whole point.
    """

    def __init__(self, windows: Sequence[int],
                 nominal_vdd: float = UMC_130NM.nominal_vdd,
                 brownout_vdd: float = 0.7 * UMC_130NM.nominal_vdd,
                 technology: TechnologyParams = UMC_130NM):
        for w in windows:
            if w < 1:
                raise SupplySpecError("every window needs at least 1 cycle")
        if not brownout_vdd < nominal_vdd:
            raise SupplySpecError("brownout voltage must be below nominal")
        self.windows: Tuple[int, ...] = tuple(int(w) for w in windows)
        self.nominal_vdd = nominal_vdd
        self.brownout_vdd = brownout_vdd
        self.technology = technology
        self.cycle = 0              # global cycles ever powered
        self.window_index = 0       # current power-on window
        self.window_used = 0        # cycles consumed in this window

    @property
    def power_cycles(self) -> int:
        """Completed brownouts so far."""
        return self.window_index

    @property
    def exhausted(self) -> bool:
        """True once the schedule is spent and power is stable."""
        return self.window_index >= len(self.windows)

    def remaining_in_window(self) -> Optional[int]:
        """Cycles left before the next brownout, None when stable."""
        if self.exhausted:
            return None
        return self.windows[self.window_index] - self.window_used

    def vdd(self) -> float:
        """Supply voltage now: linear sag from nominal to brownout."""
        remaining = self.remaining_in_window()
        if remaining is None:
            return self.nominal_vdd
        window = self.windows[self.window_index]
        frac = self.window_used / window
        return self.nominal_vdd - frac * (self.nominal_vdd
                                          - self.brownout_vdd)

    def energy_scale(self) -> float:
        """Dynamic-energy multiplier at the present Vdd (CV² law)."""
        return self.technology.dynamic_scale(
            OperatingPoint(frequency_hz=1.0, vdd=max(self.vdd(), 1e-9)))

    def spend(self, cycles: int) -> None:
        """Advance the meter; brown out exactly at a window boundary."""
        if cycles < 0:
            raise ValueError("cannot spend negative cycles")
        remaining = self.remaining_in_window()
        if remaining is not None and cycles >= remaining:
            self.cycle += remaining
            self.window_used += remaining
            raise PowerLossError(
                "supply crossed the brownout threshold",
                cycle=self.cycle, vdd=self.brownout_vdd,
                window_index=self.window_index)
        self.cycle += cycles
        self.window_used += cycles

    def survivable(self, cycles: int) -> int:
        """How many of ``cycles`` fit before the next brownout."""
        remaining = self.remaining_in_window()
        if remaining is None:
            return cycles
        return min(cycles, max(0, remaining - 1))

    def restart(self) -> None:
        """Begin the next power-on window (the engine's resume hook)."""
        self.window_index += 1
        self.window_used = 0
