"""The resume engine: one identification session across N power cycles.

The tag is the intermittently powered party (the reader sits on mains
behind the programming head), so the engine runs the Peeters–Hermans
flow as an explicit checkpointable program on the tag side:

1. **commit phase** — derive the epoch nonce ``r`` (a pure function
   of ``(seed, session, epoch)``), two-phase commit it to NVM *before
   first use*, then compute ``R = r * P`` on the suspendable
   Montgomery ladder, checkpointing every ``checkpoint_interval``
   steps; transmit ``R``, receive ``e`` and durably record the phase
   transition;
2. **respond phase** — compute ``r * Y`` the same suspendable way,
   derive ``s = d + x + e*r``, and commit the consumed marker *with
   the exact response scalar* before anything is transmitted;
3. **close phase** — transmit the committed ``s`` (re-emitting the
   byte-identical scalar after any later cut) and conclude.

A :class:`~.errors.PowerLossError` at *any* cycle — mid-ladder,
mid-commit, between nonce draw and the first frame — rolls the tag
back to its last committed checkpoint; the loop in :meth:`run` counts
the power cycle and resumes.  The final outcome (``R``, ``e``, ``s``,
the verdict) is byte-identical whatever the cut placement, because
every wire value is either re-derived from committed state or
re-emitted verbatim.

``durable=False`` models the naive tag the checkpoint layer exists to
kill: no NVM, nonce state in RAM only — the adversary lab's
field-cutting attacker recovers its key
(:mod:`repro.adversary.fieldcut`).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Tuple

from ..channel import (
    Frame,
    compress_point,
    derive_channel_seed,
    encode_frame,
    int_to_bytes,
    scalar_width_bytes,
)
from ..channel.frame import _FIXED_OVERHEAD_BYTES
from ..ec.curves import get_curve
from ..ec.ladder import (
    LadderState,
    MULS_PER_ITERATION,
    SQUARES_PER_ITERATION,
    ladder_suspend_advance,
    ladder_suspend_init,
    ladder_suspend_result,
)
from ..obs import runtime as _obs_runtime
from ..protocols.ops import OperationCount
from ..protocols.peeters_hermans import PeetersHermansReader
from .checkpoint import CheckpointStore, NonceVault, NVMModel
from .errors import PowerLossError, ResumeExhaustedError
from .supply import PowerSupply, SupplyModel, SupplySpec

__all__ = ["IntermittentSpec", "IntermittentResult", "IntermittentSession",
           "run_intermittent_session", "CYCLES_PER_LADDER_STEP"]

#: Core cycles of one ladder iteration (six multiplications and four
#: squarings through the MALU) — a K-163 point multiplication's ~90 k
#: cycles over its 162 iterations.
CYCLES_PER_LADDER_STEP = 500


@dataclass(frozen=True)
class IntermittentSpec:
    """Everything one intermittent session depends on."""

    curve: str = "TOY-B17"
    seed: int = 2013
    checkpoint_interval: int = 8
    randomize_z: bool = True
    distance_m: float = 0.5
    cycles_per_ladder_step: int = CYCLES_PER_LADDER_STEP
    cycles_per_radio_bit: int = 16
    cycles_misc: int = 64
    max_power_cycles: int = 64
    nvm: NVMModel = NVMModel()

    def __post_init__(self):
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint interval must be at least 1 step")
        if self.max_power_cycles < 0:
            raise ValueError("power-cycle budget must be non-negative")
        for name in ("cycles_per_ladder_step", "cycles_per_radio_bit",
                     "cycles_misc"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be positive")
        get_curve(self.curve)  # validate early


@dataclass
class IntermittentResult:
    """Outcome and full accounting of one intermittent session."""

    session_index: int
    seed: int
    completed: bool
    accepted: bool
    identity: Optional[int]
    abort_reason: Optional[str]
    power_cycles: int
    checkpoints_committed: int
    torn_discards: int
    steps_executed: int
    steps_wasted: int
    cycles: int
    checkpoint_uj: float
    compute_uj: float
    radio_uj: float
    outcome_digest: str
    wire: List[Tuple[str, int, str, bytes]] = dataclass_field(
        default_factory=list)
    timeline: List[Tuple[int, str]] = dataclass_field(default_factory=list)
    events: List[str] = dataclass_field(default_factory=list)

    @property
    def total_uj(self) -> float:
        return self.checkpoint_uj + self.compute_uj + self.radio_uj

    def wire_payloads(self, label: str) -> List[bytes]:
        """Every payload transmitted under one label, in wire order."""
        return [payload for _s, _e, lab, payload in self.wire
                if lab == label]

    def summary(self) -> str:
        state = ("ACCEPTED" if self.accepted else "REJECTED") \
            if self.completed else f"ABORTED ({self.abort_reason})"
        return (
            f"intermittent session {self.session_index}: {state} across "
            f"{self.power_cycles + 1} power cycle(s), "
            f"{self.checkpoints_committed} checkpoints "
            f"({self.torn_discards} torn discarded), "
            f"{self.steps_wasted}/{self.steps_executed} ladder steps "
            f"re-executed; {self.total_uj:.2f} uJ "
            f"({self.checkpoint_uj:.2f} checkpoint)"
        )


class _StableReader:
    """The mains-powered verifier, deterministic and duplicate-proof.

    The challenge of one epoch is a pure function of
    ``(seed, session, epoch)`` — a duplicate commit (the tag resumed
    and re-sent ``R``) gets the same ``e`` back, and a duplicate
    response returns the cached conclusion.  ``fresh_challenges``
    flips the reader adversarial: every challenge request gets a new
    ``e``, the field-cutting attacker's probe for nonce reuse.
    """

    def __init__(self, domain, secret_y: int, seed: int,
                 session_index: int, fresh_challenges: bool = False):
        self.domain = domain
        self.reader = PeetersHermansReader(domain, secret_y)
        self.seed = seed
        self.session_index = session_index
        self.fresh_challenges = fresh_challenges
        self.requests = 0
        #: every challenge ever issued, in order — the adversarial
        #: reader's own notebook (see :mod:`repro.adversary.fieldcut`).
        self.issued: List[Tuple[int, int]] = []
        self._challenges: Dict[int, int] = {}
        self._commitments: Dict[int, object] = {}
        self._conclusions: Dict[int, Tuple[bool, Optional[int]]] = {}

    def challenge(self, epoch: int, commitment) -> int:
        self.requests += 1
        if not self.fresh_challenges and epoch in self._challenges:
            return self._challenges[epoch]
        stream = self.requests if self.fresh_challenges else 0
        rng = random.Random(derive_channel_seed(
            self.seed, "intermittent/challenge", self.session_index,
            epoch, stream))
        e = self.domain.scalar_ring.random_scalar(rng)
        self.issued.append((epoch, e))
        self._challenges[epoch] = e
        self._commitments[epoch] = commitment
        return e

    def conclude(self, epoch: int, s: int) -> Tuple[bool, Optional[int]]:
        if epoch in self._conclusions:
            return self._conclusions[epoch]
        identity = self.reader.identify(self._commitments[epoch],
                                        self._challenges[epoch], s)
        verdict = (identity is not None, identity)
        self._conclusions[epoch] = verdict
        return verdict


class IntermittentSession:
    """One tag-side session program over one power supply."""

    _TAG, _READER = 0, 1

    def __init__(self, spec: IntermittentSpec, session_index: int = 0,
                 supply: Optional[PowerSupply] = None,
                 durable: bool = True,
                 fresh_challenges: bool = False):
        self.spec = spec
        self.session_index = session_index
        self.durable = durable
        domain = get_curve(spec.curve)
        self.domain = domain
        ring = domain.scalar_ring
        # Same derivation order as protocols.session.make_adapter, so
        # the intermittent tag is the *same device* the fleet runs.
        rng = random.Random(derive_channel_seed(spec.seed, "keys",
                                                session_index, 0, 0))
        secret_y = ring.random_scalar(rng)
        self.secret_x = ring.random_scalar(rng)
        self.verifier = _StableReader(domain, secret_y, spec.seed,
                                      session_index,
                                      fresh_challenges=fresh_challenges)
        self.identity = session_index + 1
        self.verifier.reader.register(
            self.identity,
            domain.curve.multiply_naive(self.secret_x, domain.generator))

        self.supply = supply if supply is not None else \
            SupplyModel(SupplySpec(seed=spec.seed),
                        session_index).power_supply()
        self.store = CheckpointStore(self.supply, spec.nvm)
        self.vault = NonceVault(self.store)
        self.session_id = derive_channel_seed(spec.seed, "session-id",
                                              session_index, 0, 0) \
            & 0xFFFFFFFF
        self._scalar_width = scalar_width_bytes(domain.order)

        self.ops = OperationCount()
        self.wire: List[Tuple[str, int, str, bytes]] = []
        self.timeline: List[Tuple[int, str]] = []
        self.events: List[str] = []
        self.steps_executed = 0
        self._productive: Dict[Tuple[int, str], int] = {}
        self._tx_attempts: Dict[Tuple[int, str], int] = {}
        self.power_cuts = 0
        # RAM-only mirror of the durable state (lost on power cuts).
        self._ram: Dict[str, dict] = {}

    # -- accounting helpers --------------------------------------------

    def _mark(self, label: str) -> None:
        self.timeline.append((self.supply.cycle, label))

    def _note(self, text: str) -> None:
        self.events.append(f"cycle {self.supply.cycle:>8d}  {text}")

    def _spend(self, cycles: int) -> None:
        self.supply.spend(cycles)

    # -- durable state (NVM when durable, RAM otherwise) ---------------

    def _restore(self, kind: str) -> Optional[dict]:
        if self.durable:
            return self.store.restore(kind)
        return self._ram.get(kind)

    def _checkpoint(self, kind: str, payload: dict) -> None:
        if self.durable:
            self.store.checkpoint(kind, payload)
        else:
            self._ram[kind] = payload

    # -- radio ---------------------------------------------------------

    def _frame_bytes(self, round_index: int, label: str,
                     payload: bytes, epoch: int) -> bytes:
        key = (epoch, label)
        attempt = self._tx_attempts.get(key, 0)
        frame = Frame(self.session_id, epoch, round_index,
                      min(attempt, 255), self._TAG, label, payload)
        return encode_frame(frame)

    def _tx(self, round_index: int, label: str, payload: bytes,
            epoch: int) -> None:
        data = self._frame_bytes(round_index, label, payload, epoch)
        # Cycles first: a brownout mid-transmission means the frame
        # never forms a valid CRC at the receiver — nothing was sent.
        self._spend(len(data) * 8 * self.spec.cycles_per_radio_bit)
        self.ops.tx_bits += len(data) * 8
        key = (epoch, label)
        self._tx_attempts[key] = self._tx_attempts.get(key, 0) + 1
        self.wire.append(("tag", epoch, label, payload))
        self._note(f"tx {label} epoch={epoch} bytes={len(data)}")

    def _rx(self, label: str, nbytes: int) -> None:
        total = nbytes + _FIXED_OVERHEAD_BYTES + len(label.encode())
        self._spend(total * 8 * self.spec.cycles_per_radio_bit)
        self.ops.rx_bits += total * 8

    # -- key material (pure functions of the spec) ---------------------

    def _nonce(self, epoch: int) -> int:
        rng = random.Random(derive_channel_seed(
            self.spec.seed, "intermittent/nonce", self.session_index,
            epoch, 0))
        self._spend(self.spec.cycles_misc)
        self.ops.random_bits += self.domain.order.bit_length()
        return self.domain.scalar_ring.random_scalar(rng)

    def _initial_z(self, epoch: int, target: str) -> int:
        if not self.spec.randomize_z:
            return 1
        f = self.domain.field
        for attempt in range(64):
            value = derive_channel_seed(
                self.spec.seed, f"intermittent/z/{target}",
                self.session_index, epoch, attempt) % f.order
            if value:
                return value
        raise AssertionError("could not derive a non-zero Z")

    # -- the suspendable ladder with periodic checkpoints --------------

    def _ladder(self, epoch: int, target: str, k: int, point):
        record = self._restore("ladder")
        state = None
        if record is not None and record.get("epoch") == epoch \
                and record.get("target") == target:
            state = LadderState.from_dict(record["state"])
            self._note(f"ladder {target} resumed at step "
                       f"{state.steps_done}/{state.steps_total}")
        if state is None:
            state = ladder_suspend_init(self.domain.curve, k, point,
                                        self._initial_z(epoch, target))
        key = (epoch, target)
        while not state.finished:
            steps = min(self.spec.checkpoint_interval,
                        state.bit_index + 1)
            for _ in range(steps):
                self._spend(self.spec.cycles_per_ladder_step)
                state = ladder_suspend_advance(self.domain.curve, state, 1)
                self.steps_executed += 1
                self.ops.modular_multiplications += (
                    MULS_PER_ITERATION + SQUARES_PER_ITERATION)
                self._productive[key] = max(
                    self._productive.get(key, 0), state.steps_done)
            if not state.finished:
                self._checkpoint("ladder", {"epoch": epoch,
                                            "target": target,
                                            "state": state.to_dict()})
                self._mark(f"ladder-{target}-checkpoint")
        return ladder_suspend_result(self.domain.curve, state)

    # -- the session program -------------------------------------------

    def _execute(self) -> Tuple[bool, Optional[int]]:
        ring = self.domain.scalar_ring
        session = self._restore("session") or {"phase": "commit",
                                               "epoch": 0}
        epoch = session["epoch"]
        phase = session["phase"]

        if phase == "commit":
            r = self.vault.committed_nonce(epoch) if self.durable else None
            if r is None:
                r = self._nonce(epoch)
                self._mark("nonce-derived")
                if self.durable:
                    self.vault.commit_nonce(epoch, r)
                    self._mark("nonce-committed")
                    self._note(f"nonce committed for epoch {epoch}")
            commitment = self._ladder(epoch, "R", r,
                                      self.domain.generator)
            payload = compress_point(self.domain.curve, commitment)
            self._tx(0, "R", payload, epoch)
            self._mark("R-sent")
            e = self.verifier.challenge(epoch, commitment)
            self._rx("e", self._scalar_width)
            self._mark("e-received")
            session = {"phase": "respond", "epoch": epoch,
                       "e": format(e, "x")}
            self._checkpoint("session", session)
            self._mark("phase-respond-committed")
            phase = "respond"

        if phase == "respond":
            committed_s = self.vault.consumed_response(epoch) \
                if self.durable else None
            if committed_s is not None:
                # A cut landed between the consumed-marker commit and
                # the phase record: the nonce is spent, so the only
                # legal continuation is re-emitting the committed
                # response — never a recompute.
                self._note("resume found a consumed marker; skipping "
                           "to close with the committed response")
                s = committed_s
            else:
                r = self.vault.committed_nonce(epoch) if self.durable \
                    else self._nonce(epoch)
                if r is None:
                    raise AssertionError(
                        "respond phase without a committed nonce — the "
                        "commit-before-use ordering is broken")
                e = int(session["e"], 16)
                shared = self._ladder(epoch, "s", r,
                                      self.verifier.reader.public)
                self._spend(self.spec.cycles_misc)
                d = ring.reduce(shared.x)
                er = ring.mul(e, r)
                self.ops.modular_multiplications += 1
                s = ring.add(ring.add(d, self.secret_x), er)
                if self.durable:
                    self.vault.assert_unconsumed(epoch)
                    self.store.stage("consumed",
                                     {"epoch": epoch, "s": format(s, "x")})
                    self._mark("response-staged")
                    self.store.commit("consumed")
                    self._mark("response-committed")
                    self._note(f"consumed marker committed before tx "
                               f"(epoch {epoch})")
            session = {"phase": "close", "epoch": epoch,
                       "s": format(s, "x")}
            self._checkpoint("session", session)
            phase = "close"

        # close: transmit the *committed* response, never a fresh one.
        s = self.vault.consumed_response(epoch) if self.durable \
            else int(session["s"], 16)
        if s is None:
            raise AssertionError(
                "close phase without a consumed marker — the response "
                "commit ordering is broken")
        self._tx(2, "s", int_to_bytes(s, self._scalar_width), epoch)
        self._mark("s-sent")
        # The tag waits out the reader's acknowledgement before it may
        # durably retire the epoch — the cuttable window where a naive
        # tag, restarted, re-derives its nonce and answers a *fresh*
        # challenge with a second response under the same r.
        self._rx("ack", 1)
        self._mark("ack-received")
        accepted, identity = self.verifier.conclude(epoch, s)
        self._checkpoint("session", {"phase": "done", "epoch": epoch,
                                     "accepted": accepted})
        self._mark("done-committed")
        return accepted, identity

    # -- the resume loop -----------------------------------------------

    def run(self) -> IntermittentResult:
        completed = False
        accepted = False
        identity: Optional[int] = None
        abort_reason: Optional[str] = None
        while True:
            try:
                if self.durable:
                    dropped = self.store.discard_staged()
                    if dropped:
                        self._note(f"power-on: discarded {dropped} "
                                   "staged record(s)")
                accepted, identity = self._execute()
                completed = True
                break
            except PowerLossError as exc:
                self.power_cuts += 1
                self._note(f"power lost: {exc}")
                self._mark("power-cut")
                if not self.durable:
                    self._ram.clear()
                if self.power_cuts > self.spec.max_power_cycles:
                    try:
                        raise ResumeExhaustedError(
                            "session did not finish within the "
                            "power-cycle budget",
                            power_cycles=self.power_cuts) from exc
                    except ResumeExhaustedError as abort:
                        abort_reason = str(abort)
                    break
                self.supply.restart()

        productive = sum(self._productive.values())
        return IntermittentResult(
            session_index=self.session_index,
            seed=self.spec.seed,
            completed=completed,
            accepted=accepted,
            identity=identity,
            abort_reason=abort_reason,
            power_cycles=self.power_cuts,
            checkpoints_committed=self.store.commits,
            torn_discards=self.store.torn_discards,
            steps_executed=self.steps_executed,
            steps_wasted=self.steps_executed - productive,
            cycles=self.supply.cycle,
            checkpoint_uj=self.store.energy_uj,
            compute_uj=self._compute_uj(),
            radio_uj=self._radio_uj(),
            outcome_digest=self._outcome_digest(completed, accepted,
                                                identity),
            wire=list(self.wire),
            timeline=list(self.timeline),
            events=list(self.events),
        )

    def _compute_uj(self) -> float:
        from ..energy.comparison import ComputeEnergyTable

        return ComputeEnergyTable().computation_energy(self.ops) * 1e6

    def _radio_uj(self) -> float:
        from ..energy.radio import RadioModel

        radio = RadioModel()
        return (radio.transmit_energy(self.ops.tx_bits,
                                      self.spec.distance_m)
                + radio.receive_energy(self.ops.rx_bits)) * 1e6

    def _outcome_digest(self, completed: bool, accepted: bool,
                        identity: Optional[int]) -> str:
        """Digest of the *final outcome* only — stable across any cut
        placement that lets the session finish (duplicated frames and
        energy figures deliberately excluded)."""
        final: Dict[str, str] = {}
        for _sender, epoch, label, payload in self.wire:
            final[f"{epoch}/{label}"] = payload.hex()
        payload = json.dumps({
            "completed": completed,
            "accepted": accepted,
            "identity": identity,
            "final": final,
        }, sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()


def count_nonce_reuse(wire) -> int:
    """Nonce reuses visible on one session's wire transcript.

    A reuse is the same epoch nonce answering two *different*
    challenges — i.e. more than one distinct ``s`` payload under one
    epoch.  A checkpointing tag that resumes re-emits the
    byte-identical ``s`` (distinct count stays 1, whatever the cut
    schedule), so this count is placement-invariant and zero whenever
    the commit-before-use vault invariant holds; the naive RAM-only
    tag under fresh challenges counts its leak here (see
    :mod:`repro.adversary.fieldcut`).  This is the ``nonce_reuse``
    telemetry series the stock rulebook's invariant rule watches.
    """
    distinct: Dict[int, set] = {}
    for _sender, epoch, label, payload in wire:
        if label == "s":
            distinct.setdefault(epoch, set()).add(bytes(payload))
    return sum(len(values) - 1 for values in distinct.values())


def run_intermittent_session(
    spec: IntermittentSpec,
    session_index: int = 0,
    supply: Optional[PowerSupply] = None,
    durable: bool = True,
    fresh_challenges: bool = False,
) -> IntermittentResult:
    """Run one session to its verdict, with obs spans and metrics.

    The span tree carries the µJ decomposition exactly: the session
    span's ``uj`` equals the sum its three children (compute, radio,
    checkpoint) claim, so the obs energy rollup reproduces
    ``result.total_uj`` to the float digit.
    """
    engine = IntermittentSession(spec, session_index, supply=supply,
                                 durable=durable,
                                 fresh_challenges=fresh_challenges)
    rt = _obs_runtime.current()
    if rt is None:
        return engine.run()
    with rt.span("intermittent.session", key=session_index,
                 curve=spec.curve,
                 interval=spec.checkpoint_interval) as span:
        result = engine.run()
        if span is not None:
            span.set(uj=result.total_uj,
                     power_cycles=result.power_cycles,
                     completed=result.completed)
        with rt.span("intermittent.compute", key=session_index) as child:
            if child is not None:
                child.set(uj=result.compute_uj,
                          steps=result.steps_executed)
        with rt.span("intermittent.radio", key=session_index) as child:
            if child is not None:
                child.set(uj=result.radio_uj)
        with rt.span("intermittent.checkpoint", key=session_index) as child:
            if child is not None:
                child.set(uj=result.checkpoint_uj,
                          commits=result.checkpoints_committed,
                          torn=result.torn_discards)
    from ..obs.integration import record_intermittent_result

    record_intermittent_result(rt.registry, result)
    if result.abort_reason:
        # The session died for good (power-cycle budget exhausted):
        # dump the black box so the post-mortem sees the final spans.
        rt.flight_dump("power-loss",
                       tag=f"session-{session_index:05d}",
                       session=session_index,
                       abort_reason=result.abort_reason,
                       power_cycles=result.power_cycles)
    return result
