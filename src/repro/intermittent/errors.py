"""Typed failures of the intermittent-power subsystem.

The taxonomy style of :mod:`repro.campaign.errors`: every way a
power-constrained session can go wrong has its own class, carrying the
context a log line needs (cycle, window, Vdd) so post-mortems never
have to reconstruct where a brownout landed.
"""

from __future__ import annotations

__all__ = ["IntermittentError", "PowerLossError", "CheckpointCorruptError",
           "ResumeExhaustedError", "SupplySpecError"]


class IntermittentError(RuntimeError):
    """Base class for intermittent-power failures."""


class PowerLossError(IntermittentError):
    """The supply crossed the brownout threshold: the device is off.

    Raised at an *exact* cycle — the resume engine catches it, counts
    one power cycle, and restarts from the last committed checkpoint.
    Code outside the engine should never see this escape.
    """

    def __init__(self, message: str, *, cycle: int, vdd: float,
                 window_index: int):
        super().__init__(
            f"{message} [cycle {cycle}, window {window_index}, "
            f"Vdd {vdd:.3f} V]")
        self.cycle = cycle
        self.vdd = vdd
        self.window_index = window_index


class CheckpointCorruptError(IntermittentError):
    """A *committed* checkpoint record failed its integrity check.

    Under the two-phase commit protocol this must never happen — a
    torn write can only ever damage the staged copy, which restore
    discards silently.  Seeing this error means the commit protocol
    itself is broken, so it is loud rather than recoverable.
    """


class ResumeExhaustedError(IntermittentError):
    """The power-cycle budget ran out before the session finished.

    Livelock is real: a supply window shorter than the work between
    two consecutive commits makes forward progress impossible.  The
    engine converts this into a typed clean abort instead of spinning.
    """

    def __init__(self, message: str, *, power_cycles: int):
        super().__init__(f"{message} [{power_cycles} power cycles]")
        self.power_cycles = power_cycles


class SupplySpecError(ValueError):
    """An invalid supply-model specification."""
