"""NVM-modeled atomic checkpoints: two-phase commit, µJ-accounted.

A tag that can lose power at *any* cycle may never leave its durable
state half-written.  The store here models a small FRAM-class NVM
region and enforces the classic two-phase protocol:

1. **stage** — the record's bytes are programmed into the staging
   area (energy and cycles charged per byte; a brownout mid-write
   leaves a *torn* staged copy whose checksum cannot verify);
2. **commit** — a flush barrier (the fsync analogue) followed by a
   tiny commit-marker write flips the staged copy durable.

A power cut before the marker lands leaves the previous committed
record untouched and the staged copy torn or unmarked — restore
discards it (counted, never raised).  A *committed* record that fails
its checksum is therefore impossible by construction, and
:class:`~.errors.CheckpointCorruptError` is loud when it happens.

:class:`NonceVault` builds the protocol-critical discipline on top:
the Peeters–Hermans nonce ``r`` is committed *before first wire use*
and the consumed marker (with the exact response bytes) is committed
*before* ``s`` is transmitted, so across any number of power cycles
the tag can re-derive an unused nonce safely and can only ever
re-emit the byte-identical response — never a second distinct ``s``
under one ``r``.  This extends the live-object single-use lifecycle
(:class:`~repro.protocols.peeters_hermans.NonceConsumedError`) to
survive restarts.

Program energy for FRAM-class cells is dominated by the cell write
itself and is, to first order, independent of where in the sag window
the write happens, so the model charges flat joules per byte.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, Optional

from ..channel.frame import crc16
from ..protocols.peeters_hermans import NonceConsumedError
from .errors import CheckpointCorruptError
from .supply import PowerSupply

__all__ = ["NVMModel", "CheckpointStore", "NonceVault"]


@dataclass(frozen=True)
class NVMModel:
    """Cost model of the checkpoint NVM (FRAM-class).

    Cycles are core-clock cycles at the paper's 847.5 kHz — an NVM
    byte program is a couple of bus transactions; the flush barrier
    waits out the program pipeline.  Energies are per-operation
    joules, sized between the table's modular-multiplication (3 nJ)
    and AES-block (50 nJ) costs so checkpointing is visible but not
    dominant in the µJ ledger.
    """

    write_cycles_per_byte: int = 8
    write_energy_per_byte_j: float = 2.0e-9
    fsync_cycles: int = 128
    fsync_energy_j: float = 20.0e-9
    marker_bytes: int = 8

    def stage_cycles(self, nbytes: int) -> int:
        return nbytes * self.write_cycles_per_byte

    def stage_energy_j(self, nbytes: int) -> float:
        return nbytes * self.write_energy_per_byte_j

    def commit_cycles(self) -> int:
        return self.fsync_cycles \
            + self.marker_bytes * self.write_cycles_per_byte

    def commit_energy_j(self) -> float:
        return self.fsync_energy_j \
            + self.marker_bytes * self.write_energy_per_byte_j


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode()


@dataclass
class _Slot:
    """One NVM record: canonical bytes plus the checksum of the full
    record (so a torn write — truncated ``data`` — cannot verify)."""

    seq: int
    data: bytes
    crc: int

    @property
    def intact(self) -> bool:
        return crc16(self.data) == self.crc


class CheckpointStore:
    """The tag's checkpoint NVM, metered through one power supply.

    Every byte that moves charges the supply (so a brownout can land
    *inside* a stage or a commit) and accrues joules and cycles in the
    store's ledger, which the engine folds into the session's µJ
    accounting and the obs energy rollup.
    """

    def __init__(self, supply: PowerSupply, nvm: Optional[NVMModel] = None):
        self.supply = supply
        self.nvm = nvm or NVMModel()
        self._staged: Dict[str, _Slot] = {}
        self._committed: Dict[str, _Slot] = {}
        self._seq = 0
        self.energy_j = 0.0
        self.cycles = 0
        self.stages = 0
        self.commits = 0
        self.torn_discards = 0

    @property
    def energy_uj(self) -> float:
        return self.energy_j * 1e6

    def _charge(self, cycles: int, energy_j: float) -> None:
        # Energy first: the cells written before the brownout were paid
        # for even when the record ends up torn.
        self.energy_j += energy_j
        self.cycles += cycles
        self.supply.spend(cycles)

    def stage(self, kind: str, payload: dict) -> None:
        """Phase one: program the record into the staging area.

        On a mid-write brownout the staged slot holds only the bytes
        that fit before the cut — a torn copy restore will discard.
        The :class:`~.errors.PowerLossError` propagates.
        """
        data = _canonical(payload)
        self._seq += 1
        slot = _Slot(seq=self._seq, data=data, crc=crc16(data))
        total = self.nvm.stage_cycles(len(data))
        fit = self.supply.survivable(total)
        written = min(len(data), fit // self.nvm.write_cycles_per_byte)
        try:
            self._charge(total, self.nvm.stage_energy_j(written))
        except BaseException:
            if written < len(data):
                slot = _Slot(seq=slot.seq, data=data[:written],
                             crc=slot.crc)
            self._staged[kind] = slot
            raise
        self._staged[kind] = slot
        self.stages += 1

    def commit(self, kind: str) -> None:
        """Phase two: flush barrier, then the commit marker.

        A brownout anywhere in here leaves the previously committed
        record in place and the staged copy uncommitted — atomicity is
        exactly this function never half-applying.
        """
        slot = self._staged.get(kind)
        if slot is None:
            raise ValueError(f"commit of {kind!r} without a staged record")
        if not slot.intact:
            raise ValueError(f"commit of a torn {kind!r} staging record")
        self._charge(self.nvm.commit_cycles(), self.nvm.commit_energy_j())
        self._committed[kind] = self._staged.pop(kind)
        self.commits += 1

    def checkpoint(self, kind: str, payload: dict) -> None:
        """stage + commit in one call (the common case)."""
        self.stage(kind, payload)
        self.commit(kind)

    def discard_staged(self) -> int:
        """Power-on housekeeping: drop whatever staging holds.

        Un-committed staged records — torn or whole — are garbage
        after a restart; counting them is how the chaos tests verify
        cuts landed where they were aimed.  Returns how many were
        discarded.
        """
        dropped = len(self._staged)
        self.torn_discards += sum(
            1 for slot in self._staged.values() if not slot.intact)
        self._staged.clear()
        return dropped

    def restore(self, kind: str) -> Optional[dict]:
        """The last committed record of one kind, or None.

        Raises :class:`~.errors.CheckpointCorruptError` when a
        *committed* record fails its checksum — which the two-phase
        protocol makes impossible, so the error is a protocol-bug
        alarm, not a recoverable condition.
        """
        slot = self._committed.get(kind)
        if slot is None:
            return None
        if not slot.intact:
            raise CheckpointCorruptError(
                f"committed checkpoint {kind!r} (seq {slot.seq}) failed "
                "its integrity check")
        return json.loads(slot.data.decode())


# ----------------------------------------------------------------------
# the nonce lifecycle, made durable
# ----------------------------------------------------------------------

_NONCE_KIND = "nonce"
_CONSUMED_KIND = "consumed"


class NonceVault:
    """Commit-before-use nonce storage on top of a checkpoint store.

    The ordering argument (DESIGN §12): a nonce that was never on the
    wire is safe to re-derive, and a nonce that *was* on the wire must
    only ever pair with one response.  The vault enforces both ends:

    * :meth:`commit_nonce` lands ``r`` durably *before* the engine may
      transmit anything derived from it — a cut mid-commit discards
      the staged copy and the same ``r`` is re-derived, safe because
      it never left the device;
    * :meth:`commit_response` lands the consumed marker *with the
      exact response scalar* before ``s`` is transmitted — after any
      later cut the engine re-emits those bytes or nothing.

    :meth:`assert_unconsumed` is the durable extension of the
    live-object rule: computing a second response under a consumed
    epoch raises
    :class:`~repro.protocols.peeters_hermans.NonceConsumedError`, now
    across restarts too.
    """

    def __init__(self, store: CheckpointStore):
        self.store = store

    def commit_nonce(self, epoch: int, r: int) -> None:
        self.assert_unconsumed(epoch)
        self.store.checkpoint(_NONCE_KIND, {"epoch": epoch,
                                            "r": format(r, "x")})

    def committed_nonce(self, epoch: int) -> Optional[int]:
        record = self.store.restore(_NONCE_KIND)
        if record is None or record.get("epoch") != epoch:
            return None
        return int(record["r"], 16)

    def commit_response(self, epoch: int, s: int) -> None:
        self.assert_unconsumed(epoch)
        self.store.checkpoint(_CONSUMED_KIND, {"epoch": epoch,
                                               "s": format(s, "x")})

    def consumed_response(self, epoch: int) -> Optional[int]:
        record = self.store.restore(_CONSUMED_KIND)
        if record is None or record.get("epoch") != epoch:
            return None
        return int(record["s"], 16)

    def assert_unconsumed(self, epoch: int) -> None:
        if self.consumed_response(epoch) is not None:
            raise NonceConsumedError(
                f"epoch {epoch} nonce already consumed (durable marker): "
                "a resumed session must re-emit the committed response, "
                "never derive a second one")
