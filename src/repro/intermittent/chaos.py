"""Seeded and adversarial power-cut injection.

Two kinds of chaos:

* **seeded** — window lengths drawn from the same labelled-SHA-256
  stream discipline as the supply model, so a thousand-schedule matrix
  test is reproducible to the cycle;
* **adversarial** — cuts *aimed* at the protocol's tender spots.  A
  probe run with stable power records the cycle timeline of every
  named event (nonce staged, commit marker landing, first frame,
  consumed marker, response transmission); the schedules derived from
  it cut exactly one cycle before each event, which places the
  brownout mid-commit, between nonce draw and first frame, and so on.

The invariant either way (tested in ``tests/intermittent``): the
session completes with a byte-identical outcome digest, or aborts
typed-cleanly — and no nonce pairs with two distinct responses on the
wire, ever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..power.technology import TechnologyParams, UMC_130NM
from .engine import IntermittentResult, IntermittentSpec, \
    run_intermittent_session
from .supply import PowerSupply, derive_supply_value

__all__ = ["PowerCutSchedule", "probe_timeline", "adversarial_schedules",
           "run_with_schedule", "ADVERSARIAL_EVENTS"]

#: Timeline events worth aiming a cut at, and why.
ADVERSARIAL_EVENTS: Tuple[Tuple[str, str], ...] = (
    ("nonce-committed", "mid-commit of the nonce record"),
    ("R-sent", "between nonce commit and the first frame"),
    ("e-received", "mid-reception of the challenge"),
    ("response-staged", "mid-stage of the consumed marker"),
    ("response-committed", "mid-commit of the consumed marker"),
    ("s-sent", "between the consumed commit and the response frame"),
    ("ack-received", "after the response frame, before the ack lands"),
    ("done-committed", "between the acknowledgement and the final record"),
)


@dataclass(frozen=True)
class PowerCutSchedule:
    """A finite list of power-on window lengths (cycles)."""

    windows: Tuple[int, ...] = ()

    def __post_init__(self):
        object.__setattr__(self, "windows",
                           tuple(int(w) for w in self.windows))
        for w in self.windows:
            if w < 1:
                raise ValueError("every window needs at least 1 cycle")

    @classmethod
    def seeded(cls, seed: int, session_index: int, cuts: int,
               mean_on_cycles: int = 60_000,
               jitter: float = 0.9) -> "PowerCutSchedule":
        """``cuts`` windows jittered around a mean, fully derived."""
        if cuts < 0:
            raise ValueError("cut count must be non-negative")
        windows = []
        for index in range(cuts):
            unit = derive_supply_value(seed, "chaos", session_index,
                                       index) / 2.0 ** 64
            scale = 1.0 + jitter * (2.0 * unit - 1.0)
            windows.append(max(1, int(round(mean_on_cycles * scale))))
        return cls(windows=tuple(windows))

    @classmethod
    def single_cut(cls, at_cycle: int) -> "PowerCutSchedule":
        """One adversarially placed cut, then stable power."""
        return cls(windows=(at_cycle,))

    def supply(self,
               technology: TechnologyParams = UMC_130NM,
               brownout_fraction: float = 0.7) -> PowerSupply:
        return PowerSupply(
            self.windows,
            nominal_vdd=technology.nominal_vdd,
            brownout_vdd=brownout_fraction * technology.nominal_vdd,
            technology=technology)


def run_with_schedule(spec: IntermittentSpec, session_index: int,
                      schedule: PowerCutSchedule,
                      durable: bool = True,
                      fresh_challenges: bool = False) -> IntermittentResult:
    """One session under one cut schedule."""
    return run_intermittent_session(
        spec, session_index, supply=schedule.supply(),
        durable=durable, fresh_challenges=fresh_challenges)


def probe_timeline(spec: IntermittentSpec,
                   session_index: int = 0) -> List[Tuple[int, str]]:
    """The event timeline of an uninterrupted run (the attacker's
    reconnaissance pass — everything on it is observable power
    analysis or radio traffic)."""
    result = run_with_schedule(spec, session_index, PowerCutSchedule())
    return result.timeline


def adversarial_schedules(
    timeline: List[Tuple[int, str]],
    events: Optional[Tuple[Tuple[str, str], ...]] = None,
) -> Dict[str, PowerCutSchedule]:
    """One single-cut schedule per tender spot on a probe timeline.

    Each schedule ends its first window one cycle *before* the named
    event's cycle, so the brownout lands inside the operation that
    would have completed at that cycle (the commit marker, the frame
    transmission, the phase record).  Events the timeline never
    reached are skipped.
    """
    cycles = {}
    for cycle, label in timeline:
        cycles.setdefault(label, cycle)
    schedules: Dict[str, PowerCutSchedule] = {}
    for label, _why in (events or ADVERSARIAL_EVENTS):
        cycle = cycles.get(label)
        if cycle is None or cycle < 2:
            continue
        schedules[label] = PowerCutSchedule.single_cut(cycle - 1)
    return schedules
