"""Intermittent-power robustness: checkpointed sessions, zero nonce reuse.

The missing failure mode of the paper's wirelessly powered tag: the
field drops mid-protocol.  This package makes every layer survive it —

* :mod:`~repro.intermittent.supply` — seeded Vdd trajectories whose
  brownout crossings raise :class:`~repro.intermittent.errors.PowerLossError`
  at an exact cycle;
* :mod:`~repro.intermittent.checkpoint` — an NVM-modeled two-phase
  atomic commit of ladder and session state, µJ-accounted, with the
  nonce committed *before first use*;
* :mod:`~repro.intermittent.engine` — the resume engine replaying one
  identification to a byte-identical outcome across N power cycles;
* :mod:`~repro.intermittent.chaos` — seeded and adversarially aimed
  power-cut schedules (mid-commit, between nonce draw and first
  frame).
"""

from .chaos import (
    ADVERSARIAL_EVENTS,
    PowerCutSchedule,
    adversarial_schedules,
    probe_timeline,
    run_with_schedule,
)
from .checkpoint import CheckpointStore, NVMModel, NonceVault
from .engine import (
    CYCLES_PER_LADDER_STEP,
    IntermittentResult,
    IntermittentSession,
    IntermittentSpec,
    count_nonce_reuse,
    run_intermittent_session,
)
from .errors import (
    CheckpointCorruptError,
    IntermittentError,
    PowerLossError,
    ResumeExhaustedError,
    SupplySpecError,
)
from .supply import (
    SUPPLY_PROFILES,
    PowerSupply,
    SupplyModel,
    SupplySpec,
    derive_supply_value,
)

__all__ = [
    "ADVERSARIAL_EVENTS",
    "CYCLES_PER_LADDER_STEP",
    "CheckpointCorruptError",
    "CheckpointStore",
    "IntermittentError",
    "IntermittentResult",
    "IntermittentSession",
    "IntermittentSpec",
    "NVMModel",
    "NonceVault",
    "PowerCutSchedule",
    "PowerLossError",
    "PowerSupply",
    "ResumeExhaustedError",
    "SUPPLY_PROFILES",
    "SupplyModel",
    "SupplySpec",
    "SupplySpecError",
    "adversarial_schedules",
    "derive_supply_value",
    "probe_timeline",
    "count_nonce_reuse",
    "run_intermittent_session",
    "run_with_schedule",
]
