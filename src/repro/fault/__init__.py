"""Fault attacks and countermeasures (the active-adversary dimension).

Fault injection into ladder / double-and-add-always executions, the
safe-error and invalid-curve attacks, and the validation
countermeasures that stop them.
"""

from .attacks import (
    InvalidCurvePoint,
    count_points,
    find_small_order_invalid_point,
    invalid_curve_residue,
    quadratic_twist,
    safe_error_attack,
)
from .countermeasures import (
    FaultDetectedError,
    HardenedMultiplier,
    validate_input_point,
)
from .injector import (
    FaultKind,
    FaultSpec,
    faulty_double_and_add_always,
    faulty_montgomery_ladder,
    flip_bit,
)

__all__ = [
    "FaultKind",
    "FaultSpec",
    "flip_bit",
    "faulty_montgomery_ladder",
    "faulty_double_and_add_always",
    "safe_error_attack",
    "find_small_order_invalid_point",
    "invalid_curve_residue",
    "InvalidCurvePoint",
    "quadratic_twist",
    "count_points",
    "FaultDetectedError",
    "validate_input_point",
    "HardenedMultiplier",
]
