"""Fault injection into point-multiplication executions.

The paper requires the co-processor operations to be "protected
against side-channel attacks and fault attacks" (Section 4).  The
active-adversary half of that sentence: a glitch or laser pulse flips
state bits mid-computation.  This module injects such faults into the
algorithm-level ladder and into double-and-add-always, producing the
(possibly invalid) outputs that :mod:`repro.fault.attacks` exploits
and :mod:`repro.fault.countermeasures` must catch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..ec.curve import BinaryEllipticCurve
from ..ec.ladder import _madd, _mdouble
from ..ec.point import AffinePoint

__all__ = ["FaultKind", "FaultSpec", "flip_bit", "faulty_montgomery_ladder",
           "faulty_double_and_add_always"]


class FaultKind(enum.Enum):
    """Supported physical fault models."""

    BIT_FLIP = "bit_flip"          # transient single-bit upset
    STUCK_AT_ZERO = "stuck_zero"   # register cleared
    SKIP = "skip"                  # operation not executed


@dataclass(frozen=True)
class FaultSpec:
    """Where and what to inject.

    ``iteration`` indexes ladder iterations (0-based); ``target`` names
    the ladder register ("X1", "Z1", "X2", "Z2"); ``bit`` selects the
    flipped bit for BIT_FLIP.
    """

    iteration: int
    target: str = "X1"
    bit: int = 0
    kind: FaultKind = FaultKind.BIT_FLIP

    def __post_init__(self):
        if self.iteration < 0:
            raise ValueError("iteration must be non-negative")
        if self.target not in ("X1", "Z1", "X2", "Z2"):
            raise ValueError("target must be one of X1, Z1, X2, Z2")
        if self.bit < 0:
            raise ValueError("bit index must be non-negative")


def flip_bit(value: int, bit: int) -> int:
    """Flip one bit of a value."""
    return value ^ (1 << bit)


def _apply(spec: FaultSpec, state: dict) -> None:
    if spec.kind is FaultKind.BIT_FLIP:
        state[spec.target] = flip_bit(state[spec.target], spec.bit)
    elif spec.kind is FaultKind.STUCK_AT_ZERO:
        state[spec.target] = 0
    # SKIP is handled at the call site (the operation is not executed).


def faulty_montgomery_ladder(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    fault: Optional[FaultSpec] = None,
) -> AffinePoint:
    """Montgomery ladder (x-only, Z = 1) with an optional injected fault.

    Returns whatever the corrupted datapath produces — typically a
    point that is NOT on the curve or not the correct multiple.  Runs
    without the Z-randomization so fault effects are repeatable (the
    attacker triggers at a fixed cycle).
    """
    if k < 1 or point.is_infinity or point.x == 0:
        raise ValueError("faulty ladder expects k >= 1 and a generic point")
    f = curve.field
    x = point.x
    state = {"X1": x, "Z1": 1}
    state["X2"], state["Z2"] = _mdouble(f, curve._sqrt_b, state["X1"], state["Z1"])
    t = k.bit_length()
    for index, i in enumerate(range(t - 2, -1, -1)):
        skip = (
            fault is not None
            and fault.kind is FaultKind.SKIP
            and fault.iteration == index
        )
        if not skip:
            bit = (k >> i) & 1
            if bit:
                state["X1"], state["Z1"] = _madd(
                    f, x, state["X1"], state["Z1"], state["X2"], state["Z2"]
                )
                state["X2"], state["Z2"] = _mdouble(
                    f, curve._sqrt_b, state["X2"], state["Z2"]
                )
            else:
                state["X2"], state["Z2"] = _madd(
                    f, x, state["X2"], state["Z2"], state["X1"], state["Z1"]
                )
                state["X1"], state["Z1"] = _mdouble(
                    f, curve._sqrt_b, state["X1"], state["Z1"]
                )
        if fault is not None and fault.iteration == index and not skip:
            _apply(fault, state)
    if state["Z1"] == 0:
        return AffinePoint.infinity()
    # x-only output lifted with an arbitrary y-bit: faults corrupt x,
    # which is what the attacks inspect.
    x_out = f.mul_raw(state["X1"], f.inverse_raw(state["Z1"]))
    lifted = curve.lift_x(x_out)
    if lifted is None:
        # The corrupted x has no point on the curve at all; surface it
        # as a raw (off-curve) coordinate pair.
        return AffinePoint(x_out, 0)
    return lifted


def faulty_double_and_add_always(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    fault_iteration: Optional[int] = None,
    kind: FaultKind = FaultKind.BIT_FLIP,
) -> AffinePoint:
    """Double-and-add-always with a fault in one iteration's *addition*.

    The C safe-error model: the addition of iteration
    ``fault_iteration`` is disturbed according to ``kind`` —
    ``BIT_FLIP`` corrupts the adder's output register,
    ``STUCK_AT_ZERO`` clears it, ``SKIP`` suppresses the addition
    entirely (the dummy-add slot executes a no-op).  If that addition
    was the dummy (key bit 0), the fault vanishes from the output —
    the attacker learns the key bit by checking whether the result
    changed.
    """
    if k < 1:
        raise ValueError("k must be >= 1")
    result = point
    for index, i in enumerate(range(k.bit_length() - 2, -1, -1)):
        result = curve.double(result)
        if (fault_iteration is not None and index == fault_iteration
                and kind is FaultKind.SKIP):
            real = result  # the addition never executed
        else:
            real = curve.add(result, point)
            if fault_iteration is not None and index == fault_iteration:
                if kind is FaultKind.STUCK_AT_ZERO:
                    real = AffinePoint(0, real.y if not real.is_infinity
                                       else 0)
                elif not real.is_infinity:
                    real = AffinePoint(flip_bit(real.x, 0), real.y)
        if (k >> i) & 1:
            result = real
    return result
