"""Fault countermeasures: input/output validation and verified execution.

The paper's design rule (Sections 4–5): the secure zone must defend
against "side-channel attacks and fault attacks".  The standard
algorithm-level defences for a point multiplier:

* validate the input point (kills invalid-curve/invalid-point attacks),
* validate that the *output* is on the curve (catches most transient
  datapath faults — a random corruption almost never lands on the
  curve),
* optionally re-verify by a second computation path (catches the rest,
  including safe-error-style faults, at 2x cost).
"""

from __future__ import annotations

from typing import Callable, Optional

from ..ec.curve import BinaryEllipticCurve
from ..ec.ladder import montgomery_ladder
from ..ec.point import AffinePoint

__all__ = ["FaultDetectedError", "validate_input_point", "HardenedMultiplier"]


class FaultDetectedError(Exception):
    """Raised when a validation check fails; the device must abort
    without releasing any output (a faulty result is key material)."""


def validate_input_point(
    curve: BinaryEllipticCurve,
    point: AffinePoint,
    order: Optional[int] = None,
) -> None:
    """Reject points that are off-curve, degenerate, or out of subgroup.

    Raises :class:`FaultDetectedError` on any violation.  When
    ``order`` is given, membership of the prime-order subgroup is also
    checked (kills small-subgroup residues even for on-curve inputs).
    """
    if point.is_infinity:
        raise FaultDetectedError("input point is the identity")
    if point.x == 0:
        raise FaultDetectedError("input point is the 2-torsion point")
    if not curve.is_on_curve(point):
        raise FaultDetectedError("input point is not on the curve")
    if order is not None:
        if not montgomery_ladder(curve, order, point, randomize_z=False
                                 ).is_infinity:
            raise FaultDetectedError("input point is outside the subgroup")


class HardenedMultiplier:
    """A point multiplier wrapped in fault countermeasures.

    Parameters
    ----------
    curve:
        The curve to operate on.
    order:
        Prime subgroup order (enables the subgroup check).
    verify_by_recomputation:
        Re-run the multiplication with an independent algorithm and
        compare — the strongest (and most expensive) check.
    multiplier:
        The underlying scalar multiplication; defaults to the
        randomized Montgomery ladder.
    """

    def __init__(
        self,
        curve: BinaryEllipticCurve,
        order: Optional[int] = None,
        verify_by_recomputation: bool = False,
        multiplier: Optional[Callable] = None,
    ):
        self.curve = curve
        self.order = order
        self.verify_by_recomputation = verify_by_recomputation
        self._multiplier = multiplier

    def _run(self, k: int, point: AffinePoint, rng) -> AffinePoint:
        if self._multiplier is not None:
            return self._multiplier(k, point)
        return montgomery_ladder(self.curve, k, point, rng=rng)

    def multiply(self, k: int, point: AffinePoint, rng) -> AffinePoint:
        """Validated scalar multiplication; raises on any detected fault."""
        if self.order is not None and not 1 <= k < self.order:
            raise FaultDetectedError("scalar out of range")
        validate_input_point(self.curve, point, self.order)
        result = self._run(k, point, rng)
        if not result.is_infinity and not self.curve.is_on_curve(result):
            raise FaultDetectedError("output point failed the curve check")
        if self.verify_by_recomputation:
            reference = self.curve.multiply_naive(k, point)
            if reference != result:
                raise FaultDetectedError("recomputation mismatch")
        return result
