"""Fault attacks: safe-error bit extraction and the invalid-curve attack.

Two classic active attacks against scalar multipliers, both of which
the paper's countermeasure list must stop:

* **C safe-error** (against double-and-add-always): fault the adder
  during iteration i; if the device's final answer is unchanged, the
  faulted addition was the dummy, i.e. key bit i is 0.  This is why
  "add a dummy operation" is NOT a free countermeasure — it trades an
  SPA channel for a fault channel.

* **Twist attack** (the invalid-point attack against x-only ladders):
  the Montgomery-ladder formulas use only the coefficient ``b`` —
  never ``a`` or the y-coordinate — so *any* field element is accepted
  as a base x-coordinate.  An x with no point on the curve lies on the
  quadratic twist (same ``b``, an ``a'`` of opposite trace), and the
  device faithfully computes the scalar multiplication in the twist
  group.  If the twist order has a small factor ``r``, the attacker
  reads ``k mod r`` off the output with a brute-force discrete log.
  Demonstrated end-to-end on a deliberately small field where group
  orders can be brute-forced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..ec.curve import BinaryEllipticCurve
from ..ec.point import AffinePoint
from .injector import faulty_double_and_add_always

__all__ = ["safe_error_attack", "find_small_order_invalid_point",
           "invalid_curve_residue", "InvalidCurvePoint", "quadratic_twist", "count_points"]


def safe_error_attack(
    curve: BinaryEllipticCurve,
    point: AffinePoint,
    device: Callable,
    correct_output: AffinePoint,
    n_bits: int,
) -> list:
    """Recover the top key bits of a double-and-add-always device.

    ``device(fault_iteration)`` must run the victim with a fault in the
    given iteration and return its output (the attacker has physical
    access and a trigger).  A changed output means the faulted addition
    was real (bit 1); an unchanged output means it was dummy (bit 0).
    """
    recovered = []
    for iteration in range(n_bits):
        faulted = device(iteration)
        recovered.append(0 if faulted == correct_output else 1)
    return recovered


@dataclass(frozen=True)
class InvalidCurvePoint:
    """An attack point: on the quadratic twist, of small prime order r.

    ``twist_a`` is the twist curve's ``a`` coefficient (same ``b`` as
    the target curve); the device never sees it — it only receives the
    x-coordinate, which has no point on the real curve.
    """

    point: AffinePoint
    order: int
    twist_a: int


def quadratic_twist(curve: BinaryEllipticCurve) -> BinaryEllipticCurve:
    """The quadratic twist: same ``b``, an ``a'`` with opposite trace.

    Every x in GF(2^m) is the x-coordinate of a point on the curve or
    on its twist (or both, for the 2-torsion x values).
    """
    f = curve.field
    if f.trace_raw(curve.a) == 1:
        twist_a = 0
    else:
        twist_a = f._element_of_trace_one()
    return BinaryEllipticCurve(f, twist_a, curve.b)


def count_points(curve: BinaryEllipticCurve) -> int:
    """Exhaustive point count, #E including infinity (toy fields only)."""
    f = curve.field
    if f.m > 16:
        raise ValueError("exhaustive counting is for toy fields (m <= 16)")
    total = 1  # infinity
    for x in range(f.order):
        if x == 0:
            total += 1  # the unique 2-torsion point (0, sqrt(b))
        elif curve.lift_x(x) is not None:
            total += 2
    return total


def find_small_order_invalid_point(
    curve: BinaryEllipticCurve,
    max_order: int,
    rng,
    max_attempts: int = 4000,
) -> Optional[InvalidCurvePoint]:
    """Search for a small-order point on the curve's quadratic twist.

    Only practical on toy fields (the demo uses GF(2^13)) where the
    twist order can be counted exhaustively; on real parameters the
    attacker would compute it with SEA, but the *device-side*
    vulnerability is identical.  Returns None when the twist order has
    no odd prime factor <= ``max_order`` (a "twist-secure" curve) or
    no suitable point is found.
    """
    f = curve.field
    if f.m > 16:
        raise ValueError("brute-force search is for toy fields (m <= 16)")
    twist = quadratic_twist(curve)
    twist_order = count_points(twist)
    small_primes = [
        r for r in range(3, max_order + 1, 2)
        if _is_prime(r) and twist_order % r == 0
    ]
    if not small_primes:
        return None
    r = small_primes[0]
    cofactor = twist_order // r
    for _ in range(max_attempts):
        x = rng.getrandbits(f.m) & (f.order - 1)
        if x == 0 or curve.lift_x(x) is not None:
            continue  # want an x with NO point on the real curve
        candidate = twist.lift_x(x)
        if candidate is None:
            continue
        reduced = twist.multiply_naive(cofactor, candidate)
        if not reduced.is_infinity and reduced.x != 0:
            return InvalidCurvePoint(reduced, r, twist.a)
    return None


def _is_prime(n: int) -> bool:
    if n < 2:
        return False
    d = 2
    while d * d <= n:
        if n % d == 0:
            return False
        d += 1
    return True


def invalid_curve_residue(
    curve: BinaryEllipticCurve,
    attack_point: InvalidCurvePoint,
    device_output: AffinePoint,
) -> Optional[int]:
    """Recover ``k mod r`` from the device's answer on the twist point.

    The x-only ladder formulas depend only on ``b``, which the twist
    shares, so the unvalidated device computed the honest scalar
    multiplication *in the twist group*; a brute-force discrete log
    over the r-element subgroup reveals the residue (up to sign, since
    x-only outputs satisfy x(kP) = x(-kP)).  Returns None if the
    output matches no multiple (e.g. the device validated after all).
    """
    twist = BinaryEllipticCurve(curve.field, attack_point.twist_a,
                                curve.b)
    current = AffinePoint.infinity()
    for residue in range(attack_point.order):
        if _same_x(current, device_output):
            return residue
        current = twist.add(current, attack_point.point)
    return None


def _same_x(a: AffinePoint, b: AffinePoint) -> bool:
    """Compare by x-coordinate (x-only devices leak exactly that)."""
    if a.is_infinity or b.is_infinity:
        return a.is_infinity and b.is_infinity
    return a.x == b.x
