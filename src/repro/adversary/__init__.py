"""The adversary lab: active battery-depletion attacks and defenses.

The paper prices security in µJ against *passive* adversaries — this
package adds the active ones: malicious readers that flood, replay,
amplify and abandon handshakes to drain the tag's battery, plus the
defense layer (energy budgets, authenticated wake-up gating, restart
throttling) that makes the tag degrade gracefully instead of dying.
See :mod:`repro.adversary.engine` for the threat model.
"""

from .defense import (
    DEFENSE_SETS,
    DefenseConfig,
    EnergyBudget,
    WakeUpRadio,
    WAKE_TOKEN_BYTES,
    defense_config,
)
from .engine import (
    ADVERSARY_NAMES,
    SESSION_KINDS,
    AttackSessionResult,
    make_attack_policy,
    run_attack_session,
)
from .fieldcut import (
    FieldCutAttacker,
    FieldCutOutcome,
    run_fieldcut_attack,
)
from .errors import (
    AdversaryError,
    BudgetExhaustedError,
    DefenseConfigError,
    WakeTokenRejectedError,
)
from .soak import (
    ATTACK_OUTCOMES,
    AttackReport,
    AttackSpec,
    SUMMARY_NAME,
    run_attack_cohort,
    run_attack_soak,
    simulate_attack_cohort,
)

__all__ = [
    "ADVERSARY_NAMES",
    "SESSION_KINDS",
    "ATTACK_OUTCOMES",
    "AdversaryError",
    "AttackReport",
    "AttackSessionResult",
    "AttackSpec",
    "BudgetExhaustedError",
    "DEFENSE_SETS",
    "DefenseConfig",
    "DefenseConfigError",
    "EnergyBudget",
    "FieldCutAttacker",
    "FieldCutOutcome",
    "SUMMARY_NAME",
    "WAKE_TOKEN_BYTES",
    "WakeTokenRejectedError",
    "WakeUpRadio",
    "defense_config",
    "make_attack_policy",
    "run_attack_cohort",
    "run_attack_session",
    "run_attack_soak",
    "run_fieldcut_attack",
    "simulate_attack_cohort",
]
