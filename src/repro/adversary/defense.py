"""Tag-side defenses against battery-depletion adversaries.

The IMD "Tilting at Windmills" framing: for an implant the deadliest
adversary is not one that breaks the cryptography but one that makes
the tag *run* it until the battery dies.  The defenses here make the
tag degrade gracefully instead:

* :class:`EnergyBudget` — a per-window µJ cap on protocol work.  Every
  joule the protocol layer would spend (point multiplications, every
  transmitted and received bit, retries included) is charged against
  the current window; a charge that would exceed the cap raises
  :class:`~.errors.BudgetExhaustedError` *before* the energy is spent,
  so a flood drains at most ``cap_uj`` per window.
* :class:`WakeUpRadio` — zero-power gating.  The main radio and the
  ECC core stay dark until a wake message carrying an authenticated
  token (derived from a shared wake key) arrives; verifying a bogus
  wake costs only the nanowatt wake receiver's listen energy, which is
  deliberately budget-exempt (the wake receiver is the part that is
  always on).
* restart throttling — :class:`DefenseConfig` can scale the session
  layer's seeded epoch backoff and tighten the epoch budget, so a tag
  under attack retries *slower*, not harder.

:data:`DEFENSE_SETS` names the configurations the DSE security axis
scores (mirroring :data:`repro.dse.space.COUNTERMEASURE_SETS`), so
"gating vs backoff vs budget cap" re-prices through the existing
Pareto machinery.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

from .errors import BudgetExhaustedError, DefenseConfigError

__all__ = ["DEFENSE_SETS", "DefenseConfig", "EnergyBudget",
           "WakeUpRadio", "WAKE_TOKEN_BYTES", "defense_config"]

#: Wire size of one wake token (also the wake frame's payload).
WAKE_TOKEN_BYTES = 8

#: Named defense configurations -> DefenseConfig keyword overrides.
#: The knobs the bench A3 table and the DSE defense axis sweep; the
#: caps are sized for the TOY-B17 attack-lab sessions: one honest
#: session costs ~32 uJ on the tag, so 150 uJ per 0.5 s window admits
#: a handful of bunched legitimate sessions while bounding a flood's
#: drain an order of magnitude below the undefended peak (bench A3).
DEFENSE_SETS = {
    "none": {},
    "budget-cap": {"budget_cap_uj": 150.0, "budget_window_s": 0.5},
    "wake-gating": {"wake_gating": True},
    "backoff": {"restart_backoff_scale": 4.0, "max_session_epochs": 3},
    "full": {"budget_cap_uj": 150.0, "budget_window_s": 0.5,
             "wake_gating": True, "restart_backoff_scale": 4.0,
             "max_session_epochs": 3},
}


@dataclass(frozen=True)
class DefenseConfig:
    """Every knob of the tag's graceful-degradation posture.

    ``budget_cap_uj == 0`` disables the energy budget; ``wake_gating``
    False means any wake (even a bogus one) powers the protocol layer
    up.  ``max_session_epochs == 0`` defers to the retransmission
    policy's own epoch budget.
    """

    name: str = "none"
    budget_cap_uj: float = 0.0
    budget_window_s: float = 0.5
    wake_gating: bool = False
    wake_rx_uj: float = 0.05
    restart_backoff_scale: float = 1.0
    max_session_epochs: int = 0

    def __post_init__(self):
        if self.budget_cap_uj < 0:
            raise DefenseConfigError("budget cap must be non-negative")
        if self.budget_window_s <= 0:
            raise DefenseConfigError("budget window must be positive")
        if self.wake_rx_uj < 0:
            raise DefenseConfigError("wake rx cost must be non-negative")
        if self.restart_backoff_scale < 1.0:
            raise DefenseConfigError(
                "backoff scale below 1 retries *faster* under attack")
        if self.max_session_epochs < 0:
            raise DefenseConfigError("epoch cap must be non-negative")

    @property
    def budget_enabled(self) -> bool:
        return self.budget_cap_uj > 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "budget_cap_uj": self.budget_cap_uj,
            "budget_window_s": self.budget_window_s,
            "wake_gating": self.wake_gating,
            "wake_rx_uj": self.wake_rx_uj,
            "restart_backoff_scale": self.restart_backoff_scale,
            "max_session_epochs": self.max_session_epochs,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DefenseConfig":
        return cls(**d)

    def budget(self) -> "Optional[EnergyBudget]":
        """A fresh budget guard, or None when the cap is disabled."""
        if not self.budget_enabled:
            return None
        return EnergyBudget(self.budget_cap_uj, self.budget_window_s)


def defense_config(name: str, **overrides) -> DefenseConfig:
    """Resolve a named defense set (plus overrides) to a config."""
    if name not in DEFENSE_SETS:
        known = ", ".join(sorted(DEFENSE_SETS))
        raise DefenseConfigError(
            f"unknown defense set {name!r}; known: {known}")
    kwargs = dict(DEFENSE_SETS[name])
    kwargs.update(overrides)
    return DefenseConfig(name=name, **kwargs)


#: Relative tolerance absorbing binary-float edge cases at the budget's
#: boundaries: a charge landing *exactly* on the cap must succeed even
#: after many accumulated charges (0.1 is not representable, so the
#: running sum can sit one ulp above the cap), and a clock sitting
#: exactly on a window boundary must open the new window even when the
#: quotient rounds just below the integer (0.3 / 0.1 == 2.999...96).
_EDGE_RTOL = 1e-9


class EnergyBudget:
    """A per-window µJ cap on the tag's protocol work.

    Windows are fixed-width slices of the session layer's virtual
    clock (``window = floor(now / window_s)``); the spend resets when
    the clock crosses into a new window.  :meth:`charge` is
    all-or-nothing: a charge that would exceed the cap raises
    :class:`~.errors.BudgetExhaustedError` and spends *nothing* — the
    whole point is that refused work costs no energy.  Spending exactly
    the remaining budget succeeds; both boundary comparisons carry
    :data:`_EDGE_RTOL` so float representation error never turns an
    exact-cap spend or an exact-boundary rollover into a refusal.
    """

    def __init__(self, cap_uj: float, window_s: float = 0.5):
        if cap_uj <= 0:
            raise DefenseConfigError("budget cap must be positive")
        if window_s <= 0:
            raise DefenseConfigError("budget window must be positive")
        self.cap_uj = cap_uj
        self.window_s = window_s
        self.window_index = 0
        self.window_spent_uj = 0.0
        self.total_spent_uj = 0.0
        self.peak_window_uj = 0.0
        self.refusals = 0

    def _roll(self, now: float) -> None:
        index = int(now / self.window_s + _EDGE_RTOL)
        if index > self.window_index:
            self.window_index = index
            self.window_spent_uj = 0.0

    def remaining_uj(self, now: float) -> float:
        self._roll(now)
        return max(0.0, self.cap_uj - self.window_spent_uj)

    def charge(self, uj: float, now: float) -> None:
        """Spend ``uj`` in the window containing ``now``, or refuse."""
        if uj < 0:
            raise DefenseConfigError("cannot charge negative energy")
        self._roll(now)
        if self.window_spent_uj + uj > self.cap_uj * (1.0 + _EDGE_RTOL):
            self.refusals += 1
            raise BudgetExhaustedError(
                f"energy budget exhausted: {uj:.2f} uJ requested with "
                f"{self.cap_uj - self.window_spent_uj:.2f} uJ left of "
                f"{self.cap_uj:g} uJ in window {self.window_index}",
                window_index=self.window_index,
                spent_uj=self.window_spent_uj,
                cap_uj=self.cap_uj,
            )
        self.window_spent_uj += uj
        self.total_spent_uj += uj
        self.peak_window_uj = max(self.peak_window_uj,
                                  self.window_spent_uj)


class WakeUpRadio:
    """Authenticated wake-up gating for the zero-power listen path.

    The tag and its legitimate readers share ``key``; a wake message
    is ``token(session_id)``, an 8-byte truncation of SHA-256 over the
    labelled key/session tuple.  An adversary without the key cannot
    produce a verifying token, so every bogus wake is refused at wake-
    receiver cost — the protocol layer (and its µJ) never powers up.

    Deterministic by construction: no clocks, no nonces — the same
    (key, session) always yields the same token, which is what keeps
    attack soaks byte-identical across worker counts.
    """

    def __init__(self, key: bytes):
        if not key:
            raise DefenseConfigError("wake key must be non-empty")
        self.key = bytes(key)
        self.accepted = 0
        self.rejected = 0

    @staticmethod
    def derive_key(seed: int, tag_index: int = 0) -> bytes:
        """The fleet's wake key for one tag, derived from the seed."""
        message = f"repro.adversary/wake-key/{seed}/{tag_index}".encode()
        return hashlib.sha256(message).digest()[:16]

    def token(self, session_id: int) -> bytes:
        message = (b"repro.adversary/wake-token/" + self.key
                   + session_id.to_bytes(8, "big"))
        return hashlib.sha256(message).digest()[:WAKE_TOKEN_BYTES]

    def verify(self, session_id: int, token: bytes) -> bool:
        ok = token == self.token(session_id)
        if ok:
            self.accepted += 1
        else:
            self.rejected += 1
        return ok
