"""Typed failures of the adversary lab.

The campaign taxonomy discipline (:mod:`repro.campaign.errors`)
applied to active attacks: every way a tag *refuses* work under
attack is a typed, catchable error with session identity attached —
graceful degradation means the caller learns exactly which defense
fired, never a bare assert and never silence.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["AdversaryError", "BudgetExhaustedError",
           "WakeTokenRejectedError", "DefenseConfigError"]


class AdversaryError(RuntimeError):
    """An adversary-lab failure with session identity attached."""

    def __init__(self, message: str, *,
                 session_index: Optional[int] = None):
        if session_index is not None:
            message = f"{message} [session {session_index}]"
        super().__init__(message)
        self.session_index = session_index


class BudgetExhaustedError(AdversaryError):
    """The tag's per-window energy budget is spent: protocol work is
    refused until the window rolls.

    This is the battery-depletion defense firing — the charge that
    would have exceeded the cap was *not* spent, so a flood drains at
    most ``cap_uj`` per window instead of running the battery down.
    """

    def __init__(self, message: str, *, window_index: int = 0,
                 spent_uj: float = 0.0, cap_uj: float = 0.0,
                 session_index: Optional[int] = None):
        super().__init__(message, session_index=session_index)
        self.window_index = window_index
        self.spent_uj = spent_uj
        self.cap_uj = cap_uj


class WakeTokenRejectedError(AdversaryError):
    """A wake-up request carried no valid wake token.

    With wake-up-radio gating enabled the tag's main radio and ECC
    core stay dark until an *authenticated* wake token arrives; a
    bogus wake costs only the always-on wake receiver's budget-exempt
    listen energy, never a point multiplication.
    """


class DefenseConfigError(AdversaryError, ValueError):
    """An invalid defense configuration (unknown set name, negative
    cap, zero window)."""
