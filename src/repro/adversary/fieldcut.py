"""The field-cutting attacker: power cuts as a cryptanalytic tool.

A wirelessly powered tag's Vdd is the *reader's* to give and take.  A
malicious reader can therefore do something no passive eavesdropper
can: cut the field at a chosen cycle, force a restart, and watch what
the tag does with its nonce the second time around.

Against a naive tag (RAM-only session state, nonce re-derived from
its seed after every restart — the classic replayed-TRNG bug) the
attack is a complete break of Peeters–Hermans:

1. **probe** — run one uninterrupted session against the target and
   record its cycle timeline (everything on it is observable: RF
   frames, plus the supply-current signature of NVM commits);
2. **cut** — replay the session, dropping the field one cycle before
   the tag would have heard the acknowledgement: the response ``s`` is
   already on the wire, but the tag never retires the epoch;
3. **harvest** — the restarted tag re-derives the *same* ``r``,
   answers the attacker's *fresh* challenge ``e'`` with a second
   response ``s'``;
4. **solve** — two equations in two unknowns::

       s  = d + x + e·r
       s' = d + x + e'·r

   give ``r = (s - s')/(e - e')`` and then, since the attacker is the
   reader and can compute ``d = xcoord(r·Y)`` itself,
   ``x = s - d - e·r`` — the tag's long-term secret.

Against the checkpointing tag the same schedule harvests nothing: the
consumed marker is committed before ``s`` is transmitted, so the
resumed tag re-emits the byte-identical ``s`` and the two-equation
system never materialises (see
:class:`~repro.intermittent.checkpoint.NonceVault`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..ec.curves import get_curve
from ..ec.ladder import montgomery_ladder
from ..intermittent import (
    IntermittentSession,
    IntermittentSpec,
    PowerCutSchedule,
    adversarial_schedules,
)

__all__ = ["FieldCutAttacker", "FieldCutOutcome", "run_fieldcut_attack"]

#: The tender spot the attack aims for: the gap between the response
#: frame and the acknowledgement, when ``s`` is on the wire but the
#: epoch is not yet retired.
TARGET_EVENT = "ack-received"


@dataclass(frozen=True)
class FieldCutOutcome:
    """What the attacker walked away with."""

    target: str                     # "naive" or "checkpointing"
    cut_cycle: Optional[int]        # where the field was dropped
    responses_harvested: int        # distinct s values under one r
    key_recovered: bool
    recovered_r: Optional[int]
    recovered_x: Optional[int]
    secret_x: int                   # ground truth, for the verdict

    @property
    def broken(self) -> bool:
        return self.key_recovered and self.recovered_x == self.secret_x

    def verdict(self) -> str:
        if self.broken:
            return (f"{self.target} tag BROKEN: nonce reuse across the "
                    f"cut leaked r and the long-term secret")
        return (f"{self.target} tag held: "
                f"{self.responses_harvested} distinct response(s) "
                f"harvested, key not recoverable")


class FieldCutAttacker:
    """A malicious reader with a hand on the field coil.

    ``spec.seed`` is the *target's* provisioning; the attacker does
    not know the tag's secret — it only drives the supply and issues
    its own challenges.  ``outcome.secret_x`` is filled in afterwards
    purely to verify the recovery.
    """

    def __init__(self, spec: IntermittentSpec, session_index: int = 0):
        self.spec = spec
        self.session_index = session_index

    def _run(self, schedule: PowerCutSchedule, durable: bool):
        session = IntermittentSession(
            self.spec, self.session_index,
            supply=schedule.supply(),
            durable=durable, fresh_challenges=True)
        result = session.run()
        return session, result

    def probe(self, durable: bool) -> Optional[int]:
        """Reconnaissance: where does the ack window sit for this
        target?  (Naive and checkpointing tags have different cycle
        timelines — the NVM traffic shows up on the supply current.)"""
        _, result = self._run(PowerCutSchedule(), durable)
        schedules = adversarial_schedules(result.timeline,
                                          events=((TARGET_EVENT, ""),))
        schedule = schedules.get(TARGET_EVENT)
        return schedule.windows[0] if schedule else None

    @staticmethod
    def _harvest(session, result) -> List[Tuple[int, int]]:
        """Pair every response frame with the challenge that drew it.

        Challenges are issued immediately after each commitment frame
        lands, so the i-th ``R`` on the wire maps to the i-th entry of
        the reader's notebook; each ``s`` pairs with the most recent
        preceding challenge of its epoch.
        """
        issued = session.verifier.issued
        pairs: List[Tuple[int, int]] = []
        seen_r = 0
        current: Optional[Tuple[int, int]] = None
        for _sender, epoch, label, payload in result.wire:
            if label == "R":
                current = issued[seen_r] if seen_r < len(issued) else None
                seen_r += 1
            elif label == "s" and current is not None \
                    and current[0] == epoch:
                pairs.append((current[1],
                              int.from_bytes(payload, "big")))
        return pairs

    def attack(self, durable: bool) -> FieldCutOutcome:
        """Probe, cut, harvest, solve — against one target variant."""
        target = "checkpointing" if durable else "naive"
        cut_cycle = self.probe(durable)
        schedule = PowerCutSchedule.single_cut(cut_cycle) \
            if cut_cycle else PowerCutSchedule()
        session, result = self._run(schedule, durable)
        pairs = self._harvest(session, result)
        distinct = {s for _e, s in pairs}

        domain = get_curve(self.spec.curve)
        ring = domain.scalar_ring
        secret_x = session.secret_x
        recovered_r = recovered_x = None
        if len(pairs) >= 2:
            (e1, s1), (e2, s2) = pairs[0], pairs[1]
            if e1 != e2 and s1 != s2:
                # r = (s1 - s2) / (e1 - e2)
                de = ring.sub(e1, e2)
                recovered_r = ring.mul(ring.sub(s1, s2),
                                       pow(de, -1, domain.order))
                # d = xcoord(r * Y): the attacker knows its own key
                # pair, so Y's multiples are free to it.
                shared = montgomery_ladder(
                    domain.curve, recovered_r,
                    session.verifier.reader.public,
                    randomize_z=False)
                d = ring.reduce(shared.x)
                recovered_x = ring.sub(ring.sub(s1, d),
                                       ring.mul(e1, recovered_r))
        return FieldCutOutcome(
            target=target,
            cut_cycle=cut_cycle,
            responses_harvested=len(distinct),
            key_recovered=recovered_x is not None,
            recovered_r=recovered_r,
            recovered_x=recovered_x,
            secret_x=secret_x,
        )


def run_fieldcut_attack(
    spec: Optional[IntermittentSpec] = None,
    session_index: int = 0,
) -> Tuple[FieldCutOutcome, FieldCutOutcome]:
    """The full demonstration: the same attack against both targets.

    Returns ``(naive, checkpointing)`` outcomes — the first broken,
    the second intact, which is the whole argument for commit-before-
    use nonce checkpointing (DESIGN §12).
    """
    attacker = FieldCutAttacker(spec or IntermittentSpec(), session_index)
    return attacker.attack(durable=False), attacker.attack(durable=True)
