"""Supervised attack soaks: floods of adversarial sessions, one tag.

Structured exactly like :mod:`repro.server.soak` — the unit of
parallelism is a **cohort**, here one *tag* living through a block of
consecutive sessions on its own virtual timeline.  That framing is
load-bearing: the defenses only mean something across sessions (a
per-window energy budget caps the *flood*, not one handshake), so the
tag's :class:`~.defense.EnergyBudget` and
:class:`~.defense.WakeUpRadio` persist across every session of a
cohort, and sessions run back-to-back at seeded arrival times.  Cohort
results are pure functions of ``(spec, cohort_index)``; workers never
share a tag; the summary is assembled in cohort order — worker count
and chaos-kill history are invisible in the bytes.

Supervision is the campaign layer's
:class:`~repro.campaign.supervisor.ShardSupervisor`, reused verbatim:
a chaos-killed worker retries from scratch and determinism makes the
retry byte-identical; a cohort that keeps dying is quarantined and the
soak reports ``degraded`` instead of hanging.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

from ..campaign.chaos import (CHAOS_CRASH_EXIT_CODE, ChaosConfig,
                              ChaosInjectedError)
from ..campaign.store import _atomic_write_bytes, file_digest
from ..channel import LossProfile, derive_channel_seed
from ..obs import runtime as _obs_runtime
from ..obs.alerts import ALERTS_NAME, default_rulebook, write_alert_log
from ..obs.metrics import MetricRegistry, strip_wall_metrics
from ..obs.stream import (TELEMETRY_NAME, make_event, run_pipeline,
                          spread_drain_events, write_telemetry)
from ..protocols.session import RetransmissionPolicy
from .defense import (DEFENSE_SETS, DefenseConfig, WakeUpRadio,
                      defense_config)
from .engine import (ADVERSARY_NAMES, SESSION_KINDS, run_attack_session)
from .errors import AdversaryError

__all__ = ["AttackSpec", "AttackReport", "run_attack_soak",
           "run_attack_cohort", "simulate_attack_cohort",
           "SUMMARY_NAME", "ATTACK_OUTCOMES"]

SUMMARY_NAME = "summary.json"
_SCHEMA_VERSION = 1

#: Every way an attack-lab session can end.  The summary enumerates
#: all of them explicitly — no outcome falls through to a generic
#: failure count.
ATTACK_OUTCOMES = ("accepted", "rejected", "aborted", "refused",
                   "budget_exhausted")


@dataclass(frozen=True)
class AttackSpec:
    """Everything that determines an attack soak's results.

    ``adversary`` is one of :data:`~.engine.ADVERSARY_NAMES` or
    ``"mixed"`` (seeded rotation over all four); ``legit_fraction``
    dilutes the flood with honest sessions so the summary can show
    whether the defended tag still *serves* — graceful degradation is
    only meaningful if legitimate traffic survives it.
    """

    adversary: str = "mixed"
    defense: str = "none"
    sessions: int = 50             # per cohort (per tag)
    cohorts: int = 4
    legit_fraction: float = 0.2
    arrival_rate: float = 40.0     # session starts per virtual second
    frame_loss: float = 0.1
    seed: int = 0
    curve: str = "TOY-B17"
    distance_m: float = 0.5
    budget_cap_uj: float = 0.0     # override the defense set's cap
    budget_window_s: float = 0.0   # override the defense set's window
    schema_version: int = _SCHEMA_VERSION

    def __post_init__(self):
        if self.sessions < 1 or self.cohorts < 1:
            raise ValueError("need at least one session and one cohort")
        if self.arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= self.legit_fraction <= 1.0:
            raise ValueError("legit fraction must be in [0, 1]")
        if self.adversary != "mixed" \
                and self.adversary not in ADVERSARY_NAMES:
            known = ", ".join(ADVERSARY_NAMES + ("mixed",))
            raise ValueError(
                f"unknown adversary {self.adversary!r}; known: {known}")
        self.defense_config()  # validate the defense knobs eagerly

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "adversary": self.adversary,
            "defense": self.defense,
            "sessions": self.sessions,
            "cohorts": self.cohorts,
            "legit_fraction": self.legit_fraction,
            "arrival_rate": self.arrival_rate,
            "frame_loss": self.frame_loss,
            "seed": self.seed,
            "curve": self.curve,
            "distance_m": self.distance_m,
            "budget_cap_uj": self.budget_cap_uj,
            "budget_window_s": self.budget_window_s,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AttackSpec":
        d = dict(d)
        d.setdefault("schema_version", _SCHEMA_VERSION)
        return cls(**d)

    def identity_dict(self) -> dict:
        return self.to_dict()

    def digest(self) -> str:
        payload = json.dumps(self.identity_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def defense_config(self) -> DefenseConfig:
        overrides = {}
        if self.budget_cap_uj:
            overrides["budget_cap_uj"] = self.budget_cap_uj
        if self.budget_window_s:
            overrides["budget_window_s"] = self.budget_window_s
        return defense_config(self.defense, **overrides)

    def session_kind(self, index: int) -> str:
        """The seeded kind of global session ``index`` — a pure
        function of (seed, index), so cohort splits cannot move it."""
        if self.legit_fraction > 0.0:
            draw = derive_channel_seed(self.seed, "adversary/legit",
                                       index, 0, 0) / 2.0 ** 64
            if draw < self.legit_fraction:
                return "legit"
        if self.adversary != "mixed":
            return self.adversary
        pick = derive_channel_seed(self.seed, "adversary/mix",
                                   index, 0, 0)
        return ADVERSARY_NAMES[pick % len(ADVERSARY_NAMES)]

    @staticmethod
    def cohort_filename(cohort_index: int) -> str:
        return f"cohort-{cohort_index:05d}.json"


# ----------------------------------------------------------------------
# one cohort = one tag under one flood
# ----------------------------------------------------------------------

def _arrival_gap(seed: int, index: int, rate: float) -> float:
    """Deterministic exponential-ish inter-arrival gap."""
    unit = derive_channel_seed(seed, "adversary/arrival", index, 0, 0) \
        / 2.0 ** 64
    return -math.log(max(unit, 1e-12)) / rate


def simulate_attack_cohort(spec: AttackSpec, cohort_index: int, *,
                           crash_after: Optional[int] = None,
                           crash_tmp_path: Optional[str] = None,
                           registry: Optional[MetricRegistry] = None,
                           ) -> dict:
    """One tag through one cohort's flood; aggregates + metrics.

    The cohort's sessions run sequentially on a shared virtual clock
    (a session cannot start before the previous one ends — the tag is
    one device), with the energy budget and wake radio shared across
    all of them so per-window caps actually bind across the flood.
    """
    defense = spec.defense_config()
    policy = RetransmissionPolicy()
    budget = defense.budget()
    wake = WakeUpRadio(WakeUpRadio.derive_key(spec.seed,
                                              tag_index=cohort_index))
    base = cohort_index * spec.sessions

    registry = registry if registry is not None else MetricRegistry()
    results = []
    clock = 0.0
    arrival = 0.0
    for i in range(spec.sessions):
        index = base + i
        if i:
            arrival += _arrival_gap(spec.seed, index,
                                    spec.arrival_rate)
        start = max(clock, arrival)
        result = run_attack_session(
            spec.session_kind(index), defense,
            LossProfile(frame_loss=spec.frame_loss), policy,
            spec.seed, index,
            curve=spec.curve, distance_m=spec.distance_m,
            start_at=start, budget=budget, wake=wake,
            registry=registry)
        clock = start + result.elapsed_s
        results.append(result)
        if crash_after is not None and len(results) >= crash_after:
            # Die the way a killed worker does: torn temp file,
            # no result, the tag abandoned mid-flood.  The flight
            # recorder dumps first — the black box is the only
            # telemetry that survives the kill.
            _obs_runtime.flight_dump(
                "chaos-kill", cohort=cohort_index,
                sessions_completed=len(results))
            if crash_tmp_path is not None:
                try:
                    with open(crash_tmp_path, "wb") as f:
                        f.write(b"chaos: torn attack write\x00" * 4)
                except OSError:
                    pass
            os._exit(CHAOS_CRASH_EXIT_CODE)

    by_outcome: Dict[str, int] = {k: 0 for k in ATTACK_OUTCOMES}
    by_kind: Dict[str, int] = {}
    legit_total = legit_accepted = 0
    tag_uj = adversary_uj = 0.0
    epochs = frames = replays = stale = wake_refusals = 0
    budget_refusals = 0
    source = f"tag-{cohort_index:05d}"
    window_s = telemetry_window_s(spec)
    telemetry = []
    for result in results:
        telemetry.append(
            make_event(result.started_at, source, result.session_index,
                       session_uj=result.tag_uj,
                       budget_refusals=result.budget_refusals,
                       replay_rejections=result.replay_rejections))
        # The battery's view: the same charge, pro-rated over the
        # windows the session actually occupied.
        telemetry.extend(spread_drain_events(
            result.started_at, source, result.session_index,
            result.tag_uj, result.elapsed_s, window_s))
    for result in results:
        if result.outcome not in by_outcome:
            raise AdversaryError(
                f"outcome {result.outcome!r} missing from "
                f"ATTACK_OUTCOMES — every bucket must be enumerated",
                session_index=result.session_index)
        by_outcome[result.outcome] += 1
        by_kind[result.kind] = by_kind.get(result.kind, 0) + 1
        if result.kind == "legit":
            legit_total += 1
            if result.outcome == "accepted":
                legit_accepted += 1
        tag_uj += result.tag_uj
        adversary_uj += result.adversary_uj
        epochs += result.epochs_used
        frames += result.frames_sent
        replays += result.replay_rejections
        stale += result.stale_rejections
        wake_refusals += result.wake_refusals
        budget_refusals += result.budget_refusals

    amplification = round(tag_uj / adversary_uj, 6) \
        if adversary_uj > 0 else 0.0
    return {
        "cohort": cohort_index,
        "sessions": spec.sessions,
        "first_index": base,
        "outcomes": {k: by_outcome[k] for k in sorted(by_outcome)},
        "kinds": {k: by_kind[k] for k in sorted(by_kind)},
        "legit_sessions": legit_total,
        "legit_accepted": legit_accepted,
        "epochs": epochs,
        "frames": frames,
        "replay_rejections": replays,
        "stale_rejections": stale,
        "wake_refusals": wake_refusals,
        "budget_refusals": budget_refusals,
        "tag_energy_uj": round(tag_uj, 6),
        "adversary_energy_uj": round(adversary_uj, 6),
        "amplification": amplification,
        "peak_window_uj": round(budget.peak_window_uj, 6)
        if budget is not None else round(tag_uj, 6),
        "elapsed_virtual_s": round(clock, 6),
        "telemetry": telemetry,
        "metrics": strip_wall_metrics(registry.snapshot()),
    }


def run_attack_cohort(spec_dict: dict, directory: str,
                      cohort_index: int, attempt: int,
                      chaos_dict: Optional[dict]) -> dict:
    """The supervised worker task: simulate, write, report."""
    spec = AttackSpec.from_dict(spec_dict)
    chaos = None if chaos_dict is None \
        else ChaosConfig.from_dict(chaos_dict)
    crash_after = None
    if chaos is not None:
        fault = chaos.execution_fault(cohort_index, attempt)
        if fault == "crash":
            crash_after = max(1, spec.sessions // 2)
        elif fault == "hang":
            time.sleep(chaos.hang_seconds)
        elif fault == "error":
            raise ChaosInjectedError(
                f"injected attack-soak failure (cohort {cohort_index}, "
                f"attempt {attempt})"
            )
        elif fault == "slow":
            time.sleep(chaos.slow_seconds)

    crash_tmp = os.path.join(
        directory, spec.cohort_filename(cohort_index) + ".tmp")
    with _obs_runtime.shard_scope(cohort_index) as rt:
        payload = simulate_attack_cohort(spec, cohort_index,
                                         crash_after=crash_after,
                                         crash_tmp_path=crash_tmp)
        if rt is not None:
            rt.registry.merge_snapshot(payload["metrics"])

    name = spec.cohort_filename(cohort_index)
    path = os.path.join(directory, name)
    _atomic_write_bytes(
        path, json.dumps(payload, indent=1, sort_keys=True).encode())
    digest = file_digest(path)

    if chaos is not None and chaos.corrupts(cohort_index, attempt):
        with open(path, "r+b") as f:
            f.seek(16)
            byte = f.read(1) or b"\x00"
            f.seek(16)
            f.write(bytes([byte[0] ^ 0xFF]))

    return {
        "shard": cohort_index,
        "file": name,
        "sha256": digest,
        "artifacts": [(name, digest)],
    }


def telemetry_window_s(spec: AttackSpec) -> float:
    """The soak's telemetry window: the defense's budget window when a
    cap is configured, the stock ``budget-cap`` window otherwise."""
    defense = spec.defense_config()
    if defense.budget_enabled:
        return defense.budget_window_s
    return DEFENSE_SETS["budget-cap"]["budget_window_s"]


def attack_rulebook(spec: AttackSpec):
    """The soak's alert rulebook: the defense's own budget knobs when
    a cap is configured, the stock ``budget-cap`` sizing otherwise —
    so an *undefended* soak is still watched by the thresholds the
    defended posture would have enforced (detection needs no defense
    and no attacker oracle, only telemetry)."""
    defense = spec.defense_config()
    if defense.budget_enabled:
        cap, window = defense.budget_cap_uj, defense.budget_window_s
    else:
        stock = DEFENSE_SETS["budget-cap"]
        cap, window = stock["budget_cap_uj"], stock["budget_window_s"]
    return default_rulebook(cap_uj=cap, window_s=window)


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------

@dataclass
class AttackReport:
    """What one attack soak established, plus where the summary is."""

    outcome: str                   # clean | degraded
    spec_digest: str
    directory: str
    adversary: str
    defense: str
    cohorts_total: int
    cohorts_completed: int
    quarantined: List[int] = dataclass_field(default_factory=list)
    retried_attempts: int = 0
    sessions: int = 0
    outcomes: Dict[str, int] = dataclass_field(default_factory=dict)
    legit_sessions: int = 0
    legit_accepted: int = 0
    tag_energy_uj: float = 0.0
    adversary_energy_uj: float = 0.0
    amplification: float = 0.0
    peak_window_uj: float = 0.0
    wake_refusals: int = 0
    budget_refusals: int = 0
    alert_firings: int = 0
    session_uj_p99: Optional[float] = None
    summary_path: str = ""
    wall_s: float = 0.0

    @property
    def legit_success_rate(self) -> float:
        if not self.legit_sessions:
            return 1.0
        return self.legit_accepted / self.legit_sessions

    def text(self) -> str:
        buckets = "  ".join(f"{k} {self.outcomes.get(k, 0)}"
                            for k in ATTACK_OUTCOMES)
        lines = [
            f"attack soak {self.spec_digest[:12]}: {self.outcome}",
            f"  adversary {self.adversary}  defense {self.defense}",
            f"  cohorts   {self.cohorts_completed}/{self.cohorts_total}"
            + (f"  (quarantined: "
               f"{', '.join(map(str, self.quarantined))})"
               if self.quarantined else ""),
            f"  sessions  {self.sessions}  [{buckets}]",
            f"  legit     {self.legit_accepted}/{self.legit_sessions} "
            f"honest sessions accepted "
            f"({self.legit_success_rate:.1%})",
            f"  drained   tag {self.tag_energy_uj:.1f} uJ vs adversary "
            f"{self.adversary_energy_uj:.1f} uJ "
            f"(amplification {self.amplification:.2f}x)",
            f"  defenses  {self.wake_refusals} wakes refused, "
            f"{self.budget_refusals} budget refusals, peak window "
            f"{self.peak_window_uj:.1f} uJ",
            f"  telemetry {self.alert_firings} alert firing(s), "
            f"session p99 "
            + (f"{self.session_uj_p99:.1f} uJ"
               if self.session_uj_p99 is not None else "-"),
            f"  retries   {self.retried_attempts} worker attempts "
            f"beyond the first",
            f"  wall      {self.wall_s:.1f} s",
            f"  summary   {self.summary_path}",
        ]
        return "\n".join(lines)


def run_attack_soak(directory: str, spec: AttackSpec, *,
                    workers: Optional[int] = None,
                    chaos: Optional[ChaosConfig] = None,
                    policy=None,
                    on_event=None) -> AttackReport:
    """Drive every cohort under supervision; write ``summary.json``.

    The summary is a pure function of the spec — cohort aggregates in
    cohort order, metric snapshots merged in cohort order, wall-clock
    families stripped — so ``cmp`` across worker counts (and across
    chaos-kill histories) matches byte for byte.
    """
    from ..campaign.acquire import default_workers
    from ..campaign.supervisor import ShardSupervisor

    started = time.monotonic()
    os.makedirs(directory, exist_ok=True)
    for name in os.listdir(directory):
        if name.endswith(".tmp"):
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass

    records: Dict[int, dict] = {}
    supervisor = ShardSupervisor(
        spec, directory,
        workers=default_workers(workers),
        policy=policy,
        chaos=chaos,
        task=run_attack_cohort,
        on_success=lambda record, attempt: records.__setitem__(
            record["shard"], record),
        on_event=on_event,
    )
    outcome = supervisor.run(list(range(spec.cohorts)))
    quarantined = sorted(outcome.quarantined)

    merged = MetricRegistry()
    cohort_summaries = []
    telemetry_events = []
    report = AttackReport(
        outcome="degraded" if quarantined else "clean",
        spec_digest=spec.digest(),
        directory=str(directory),
        adversary=spec.adversary,
        defense=spec.defense,
        cohorts_total=spec.cohorts,
        cohorts_completed=len(records),
        quarantined=quarantined,
        retried_attempts=outcome.retried_attempts,
        outcomes={k: 0 for k in ATTACK_OUTCOMES},
    )
    for index in sorted(records):
        path = os.path.join(directory, records[index]["file"])
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
        merged.merge_snapshot(payload["metrics"])
        telemetry_events.extend(payload.get("telemetry", ()))
        cohort_summaries.append({k: v for k, v in payload.items()
                                 if k not in ("metrics", "telemetry")})
        report.sessions += payload["sessions"]
        for key in ATTACK_OUTCOMES:
            report.outcomes[key] += payload["outcomes"].get(key, 0)
        report.legit_sessions += payload["legit_sessions"]
        report.legit_accepted += payload["legit_accepted"]
        report.wake_refusals += payload["wake_refusals"]
        report.budget_refusals += payload["budget_refusals"]
        report.tag_energy_uj = round(
            report.tag_energy_uj + payload["tag_energy_uj"], 6)
        report.adversary_energy_uj = round(
            report.adversary_energy_uj
            + payload["adversary_energy_uj"], 6)
        report.peak_window_uj = max(report.peak_window_uj,
                                    payload["peak_window_uj"])
    report.amplification = round(
        report.tag_energy_uj / report.adversary_energy_uj, 6) \
        if report.adversary_energy_uj > 0 else 0.0

    # Live telemetry: fold every cohort's ordered event stream through
    # the aggregator + default rulebook.  Events are pure functions of
    # (spec, cohort) and the fold order is total, so telemetry.json
    # and alerts.json are byte-identical across worker counts too.
    rules = attack_rulebook(spec)
    live, alert_records = run_pipeline(telemetry_events, rules,
                                       window_s=rules[0].window_s)
    write_telemetry(os.path.join(directory, TELEMETRY_NAME), live)
    alert_log = write_alert_log(
        os.path.join(directory, ALERTS_NAME), rules, alert_records)
    session_uj = live["series"].get("session_uj", {})
    report.alert_firings = alert_log["firings"]
    report.session_uj_p99 = session_uj.get("p99")

    summary = {
        "schema_version": _SCHEMA_VERSION,
        "spec": spec.identity_dict(),
        "spec_digest": spec.digest(),
        "outcome": report.outcome,
        "quarantined": quarantined,
        "cohorts": cohort_summaries,
        "totals": {
            "sessions": report.sessions,
            "outcomes": {k: report.outcomes[k]
                         for k in sorted(report.outcomes)},
            "legit_sessions": report.legit_sessions,
            "legit_accepted": report.legit_accepted,
            "wake_refusals": report.wake_refusals,
            "budget_refusals": report.budget_refusals,
            "tag_energy_uj": report.tag_energy_uj,
            "adversary_energy_uj": report.adversary_energy_uj,
            "amplification": report.amplification,
            "peak_window_uj": round(report.peak_window_uj, 6),
        },
        "telemetry": {
            "events": live["events"],
            "session_uj": {key: session_uj.get(key)
                           for key in ("count", "p50", "p95", "p99",
                                       "max")},
            "alerts": {
                "firings": alert_log["firings"],
                "by_rule": alert_log["firings_by_rule"],
            },
        },
        "metrics": strip_wall_metrics(merged.snapshot()),
    }
    summary_path = os.path.join(directory, SUMMARY_NAME)
    _atomic_write_bytes(
        summary_path,
        json.dumps(summary, indent=1, sort_keys=True).encode())
    report.summary_path = summary_path
    report.wall_s = time.monotonic() - started

    rt = _obs_runtime.current()
    if rt is not None:
        _obs_runtime.merge_shard_metrics(rt, sorted(records))
    return report
