"""The active-adversary engine: malicious readers vs one tag.

The campaign layer's adversaries are passive — they *listen* to power
traces.  The deadliest adversary against an implant is active: a
malicious reader that simply makes the tag do work until the battery
dies.  This engine drives that adversary class through the same
machinery the honest stack uses — the real
:class:`~repro.protocols.peeters_hermans.PeetersHermansTag` (so the
nonce single-use lifecycle is enforced by the genuine object), the
real frame codec, the real :class:`~repro.channel.BodyAreaChannel`,
and the tag-side state machine of
:mod:`repro.protocols.session` (ported the way
:class:`repro.server.reader._SessionExchange` ports it) — so every µJ
the attack drains is priced by the same energy model the paper's
honest sessions use.

Four adversaries, each keyed to a weakness of the three-round flow:

* ``bogus-flood`` — wake the tag, collect its commit, never answer.
  Every epoch costs the tag a point multiplication for nothing.
* ``replay-flood`` — capture one challenge, replay it forever: into
  the live epoch (duplicate → the tag's replay rejection must hold,
  or a second ``s`` under one ``r`` recovers the key) and into later
  epochs (stale → rejected).  Drain is rx energy plus restarted
  epochs.
* ``amplification`` — answer honestly, then retransmit the challenge
  with a bumped attempt counter, which the tag must read as "response
  lost": the spent nonce forces a *full fresh epoch* (two point
  multiplications) per cheap retransmitted frame.  This is the lossy
  channel's retransmission logic turned into a weapon.
* ``abandonment`` — answer the first commit so the tag pays the
  expensive ``respond()``, then vanish mid-handshake.

Determinism: every decision — wake timing, challenge scalars, channel
fate — derives from :func:`~repro.channel.derive_channel_seed` keyed
per ``(seed, adversary, session, frame)``, so a cohort of attacks is
byte-identical across worker counts and chaos retries.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field as dataclass_field
from typing import List, Optional, Tuple

from ..channel import (
    BodyAreaChannel,
    Frame,
    FrameCorruptedError,
    FrameError,
    LossProfile,
    compress_point,
    decode_frame,
    derive_channel_seed,
    encode_frame,
    int_from_bytes,
    int_to_bytes,
    scalar_width_bytes,
)
from ..ec.curves import get_curve
from ..obs import runtime as _obs_runtime
from ..protocols.peeters_hermans import (
    PeetersHermansReader,
    PeetersHermansTag,
)
from ..protocols.session import RetransmissionPolicy
from .defense import DefenseConfig, WakeUpRadio, WAKE_TOKEN_BYTES
from .errors import AdversaryError, BudgetExhaustedError

__all__ = ["ADVERSARY_NAMES", "SESSION_KINDS", "AttackSessionResult",
           "run_attack_session", "make_attack_policy"]

#: The malicious-reader workloads the lab drives.
ADVERSARY_NAMES = ("bogus-flood", "replay-flood", "amplification",
                   "abandonment")

#: Everything a soak session can be: an adversary, or honest traffic
#: mixed in to prove the defended tag still serves it.
SESSION_KINDS = ADVERSARY_NAMES + ("legit",)

_TAG, _ADVERSARY = 0, 1

#: How many wake attempts an adversary (or reader) makes before giving
#: up on a tag that will not power up, and their spacing.
_WAKE_ATTEMPTS = 3
_WAKE_INTERVAL_S = 0.02

#: Replay-flood burst: copies of the captured challenge per epoch.
_REPLAY_BURST = 4
_REPLAY_SPACING_S = 0.005


@dataclass
class AttackSessionResult:
    """One attack (or mixed-in honest) session, fully accounted."""

    kind: str
    session_index: int
    seed: int
    outcome: str          # refused|budget_exhausted|aborted|accepted|rejected
    detail: str
    epochs_used: int
    frames_sent: int      # tag-side frames
    wake_attempts: int
    wake_refusals: int
    replay_rejections: int
    stale_rejections: int
    payload_rejections: int
    responses_emitted: int
    budget_refusals: int
    tag_uj: float
    adversary_uj: float
    elapsed_s: float
    started_at: float
    events: List[str] = dataclass_field(default_factory=list)

    @property
    def amplification(self) -> float:
        """Drained tag µJ per adversary µJ — the attack's leverage."""
        if self.adversary_uj <= 0:
            return 0.0
        return self.tag_uj / self.adversary_uj

    def summary(self) -> str:
        return (
            f"{self.kind} session {self.session_index}: {self.outcome} "
            f"after {self.epochs_used} epoch(s); tag {self.tag_uj:.2f} uJ "
            f"vs adversary {self.adversary_uj:.2f} uJ "
            f"(amplification {self.amplification:.1f}x)"
        )


# ----------------------------------------------------------------------
# adversary scripts
# ----------------------------------------------------------------------

class _Policy:
    """One scripted counterpart to the tag (malicious or honest)."""

    kind = "abstract"
    knows_wake_key = False

    def __init__(self, engine: "_AttackEngine"):
        self.engine = engine
        self.challenges_sent = 0

    def _challenge_scalar(self, epoch: int) -> int:
        """A deterministic in-range challenge (forged or drawn)."""
        e = self.engine
        n = e.domain.scalar_ring.n
        draw = derive_channel_seed(e.seed, f"adversary/{self.kind}/e",
                                   e.session_index, epoch, 0)
        return 1 + draw % (n - 1)

    def on_commit(self, frame: Frame) -> None:
        """The tag's m0 arrived (one per epoch)."""

    def on_response(self, frame: Frame) -> None:
        """The tag's m2 arrived."""


class _BogusFlood(_Policy):
    """Solicit commits, never answer: pure commit drain."""

    kind = "bogus-flood"


class _ReplayFlood(_Policy):
    """Capture one challenge, replay it into every state forever."""

    kind = "replay-flood"

    def __init__(self, engine):
        super().__init__(engine)
        self.captured: Optional[Tuple[int, int, bytes]] = None

    def on_commit(self, frame: Frame) -> None:
        e = self.engine
        if self.captured is None:
            scalar = self._challenge_scalar(frame.epoch)
            payload = int_to_bytes(scalar, e.scalar_width)
            self.captured = (frame.epoch, 0, payload)
            self.challenges_sent += 1
            e.adv_send(frame.epoch, 1, 0, "e", payload)
            # ... then hammer the live epoch with exact copies: the
            # tag must reject every one (nonce single-use), or leak s
            # twice under one r.
            epoch, attempt, data = self.captured
            for i in range(_REPLAY_BURST):
                e.push(e.now + (i + 1) * _REPLAY_SPACING_S,
                       "adv-replay", epoch, attempt, data)
        else:
            # Later epochs only ever see the stale capture.
            epoch, attempt, data = self.captured
            e.adv_send(epoch, 1, attempt, "e", data, replayed=True)


class _Amplification(_Policy):
    """Answer honestly, then claim loss: one cheap retransmitted
    challenge forces a full fresh epoch (the spent nonce cannot be
    reused) — retransmission amplification over the lossy channel."""

    kind = "amplification"

    def __init__(self, engine):
        super().__init__(engine)
        self._payloads = {}

    def on_commit(self, frame: Frame) -> None:
        e = self.engine
        payload = int_to_bytes(self._challenge_scalar(frame.epoch),
                               e.scalar_width)
        self._payloads[frame.epoch] = payload
        self.challenges_sent += 1
        e.adv_send(frame.epoch, 1, 0, "e", payload)

    def on_response(self, frame: Frame) -> None:
        # The response arrived fine — pretend it did not: bump the
        # attempt counter so the tag presumes loss and burns an epoch.
        e = self.engine
        payload = self._payloads.get(frame.epoch)
        if payload is not None:
            e.adv_send(frame.epoch, 1, 1, "e", payload, replayed=True)


class _Abandonment(_Policy):
    """Trigger the expensive respond(), then vanish mid-handshake."""

    kind = "abandonment"

    def on_commit(self, frame: Frame) -> None:
        if self.challenges_sent:
            return  # vanished
        e = self.engine
        payload = int_to_bytes(self._challenge_scalar(frame.epoch),
                               e.scalar_width)
        self.challenges_sent += 1
        e.adv_send(frame.epoch, 1, 0, "e", payload)


class _Legit(_Policy):
    """The honest reader, for mixed soaks: completes identification."""

    kind = "legit"
    knows_wake_key = True

    def on_commit(self, frame: Frame) -> None:
        e = self.engine
        try:
            payload = e.reader_handle_m0(frame)
        except AdversaryError:
            return
        if payload is not None:
            self.challenges_sent += 1
            e.adv_send(frame.epoch, 1, 0, "e", payload)

    def on_response(self, frame: Frame) -> None:
        self.engine.reader_conclude(frame)


_POLICIES = {
    "bogus-flood": _BogusFlood,
    "replay-flood": _ReplayFlood,
    "amplification": _Amplification,
    "abandonment": _Abandonment,
    "legit": _Legit,
}


def make_attack_policy(kind: str, engine: "_AttackEngine") -> _Policy:
    try:
        cls = _POLICIES[kind]
    except KeyError:
        known = ", ".join(SESSION_KINDS)
        raise AdversaryError(
            f"unknown session kind {kind!r}; known: {known}") from None
    return cls(engine)


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

class _AttackEngine:
    """One tag under one scripted counterpart over one lossy channel.

    The tag side is the session layer's initiator state machine with
    two graceful-degradation hooks spliced in front of every energy
    spend: the wake gate (no protocol work without an authenticated
    wake) and the energy budget (no charge past the per-window cap).
    """

    def __init__(self, kind: str, defense: DefenseConfig,
                 channel: BodyAreaChannel, policy: RetransmissionPolicy,
                 seed: int, session_index: int, *,
                 curve: str = "TOY-B17",
                 distance_m: float = 0.5,
                 start_at: float = 0.0,
                 budget=None,
                 wake: Optional[WakeUpRadio] = None):
        from ..energy.comparison import ComputeEnergyTable
        from ..energy.radio import RadioModel

        self.kind = kind
        self.defense = defense
        self.channel = channel
        self.policy = policy
        self.seed = seed
        self.session_index = session_index
        self.distance_m = distance_m
        self.budget = budget if budget is not None else defense.budget()
        self.domain = get_curve(curve)
        self.scalar_width = scalar_width_bytes(self.domain.order)
        self.table = ComputeEnergyTable()
        self.radio = RadioModel()

        self.session_id = derive_channel_seed(
            seed, "adversary/session-id", session_index, 0, 0) & 0xFFFFFFFF
        self.rng_tag = random.Random(derive_channel_seed(
            seed, "adversary/role/tag", session_index, 0, 0))
        self.rng_reader = random.Random(derive_channel_seed(
            seed, "adversary/role/reader", session_index, 0, 0))

        # Real endpoints: the honest reader provisions the tag (it
        # holds Y = y*P); attack policies never touch the reader.
        key_rng = random.Random(derive_channel_seed(
            seed, "adversary/keys", session_index, 0, 0))
        ring = self.domain.scalar_ring
        curve_obj = self.domain.curve
        self.reader = PeetersHermansReader(self.domain,
                                           ring.random_scalar(key_rng))
        self.tag = PeetersHermansTag(
            self.domain, ring.random_scalar(key_rng), self.reader.public,
            multiplier=lambda k, point, rng: curve_obj.multiply_naive(
                k, point))
        self.reader.register(session_index + 1, self.tag.identity_point)
        self._commitment = None
        self._reader_challenge: Optional[int] = None

        self.wake = wake if wake is not None else WakeUpRadio(
            WakeUpRadio.derive_key(seed))

        # Per-action tag costs in µJ (compute side; radio priced per
        # frame at send/receive time).
        n_bits = ring.n.bit_length()
        self._commit_uj = (self.table.point_multiplication_j
                           + n_bits * self.table.random_bit_j) * 1e6
        self._respond_uj = (self.table.point_multiplication_j
                            + self.table.modular_multiplication_j) * 1e6

        self.now = start_at
        self.started_at = start_at
        self._queue: list = []
        self._seq = 0
        self._timer_seq = 0

        # tag state
        self.tag_state = "dark"
        self.epoch = -1
        self.consumed_m1_attempt: Optional[int] = None
        self.aborted_phase: Optional[str] = None
        self.budget_dead = False

        # verdicts / bookkeeping
        self.concluded: Optional[Tuple[bool, Optional[int], str]] = None
        self.frames_sent = 0
        self.wake_attempts = 0
        self.wake_refusals = 0
        self.replayed = 0
        self.stale = 0
        self.payload_rejected = 0
        self.responses_emitted = 0
        self.budget_refusals = 0
        self.tag_uj = 0.0
        self.adversary_uj = 0.0
        self.log: List[str] = []

        self.policy_script = make_attack_policy(kind, self)

    # -- helpers -------------------------------------------------------

    @property
    def max_epochs(self) -> int:
        if self.defense.max_session_epochs:
            return min(self.policy.max_epochs,
                       self.defense.max_session_epochs)
        return self.policy.max_epochs

    def push(self, at: float, event: str, *args) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, event, args))

    def _note(self, text: str) -> None:
        self.log.append(
            f"{(self.now - self.started_at) * 1000:9.3f}ms {text}")

    def _tx_uj(self, nbytes: int) -> float:
        return self.radio.transmit_energy(nbytes * 8, self.distance_m) \
            * 1e6

    def _rx_uj(self, nbytes: int) -> float:
        return self.radio.receive_energy(nbytes * 8) * 1e6

    def _charge_tag(self, uj: float, what: str) -> bool:
        """Spend tag energy, or refuse via the budget and go dark."""
        if self.budget is not None:
            try:
                self.budget.charge(uj, self.now)
            except BudgetExhaustedError as exc:
                self.budget_refusals += 1
                self.budget_dead = True
                self._note(f"budget refused {what}: {exc}")
                return False
        self.tag_uj += uj
        return True

    # -- wire ----------------------------------------------------------

    def adv_send(self, epoch: int, round_index: int, attempt: int,
                 label: str, payload: bytes, *,
                 replayed: bool = False) -> None:
        """The counterpart transmits one protocol frame."""
        frame = Frame(self.session_id, epoch % 256, round_index,
                      attempt, _ADVERSARY, label, payload)
        data = encode_frame(frame)
        self.adversary_uj += self._tx_uj(len(data))
        frame_id = epoch * 3 + round_index
        deliveries = self.channel.transmit(data, frame_id, attempt,
                                           self.now)
        self._note(f"tx adversary {label} epoch={epoch} "
                   f"attempt={attempt}"
                   + (" (replayed)" if replayed else ""))
        for delivery in deliveries:
            self.push(delivery.at, "deliver", _TAG, delivery.data)

    def _tag_send(self, round_index: int, label: str,
                  payload: bytes) -> bool:
        frame = Frame(self.session_id, self.epoch % 256, round_index, 0,
                      _TAG, label, payload)
        data = encode_frame(frame)
        # Compute already charged by the caller; the frame's bits are
        # charged here — every retransmitted bit is an energy event.
        if not self._charge_tag(self._tx_uj(len(data)),
                                f"tx {label}"):
            return False
        self.tag.ops.tx_bits += len(data) * 8
        self.frames_sent += 1
        frame_id = self.epoch * 3 + round_index
        deliveries = self.channel.transmit(data, frame_id, 0, self.now)
        self._note(f"tx tag {label} epoch={self.epoch} "
                   f"bytes={len(data)} -> {len(deliveries)} copies")
        for delivery in deliveries:
            self.push(delivery.at, "deliver", _ADVERSARY, delivery.data)
        return True

    # -- wake gating ---------------------------------------------------

    def _send_wakes(self) -> None:
        """The counterpart's wake schedule (legit: authentic token)."""
        if self.policy_script.knows_wake_key:
            token = self.wake.token(self.session_id)
        else:
            forged = derive_channel_seed(self.seed, "adversary/forged",
                                         self.session_index, 0, 0)
            token = forged.to_bytes(WAKE_TOKEN_BYTES, "big")
        for attempt in range(_WAKE_ATTEMPTS):
            self.push(self.started_at + attempt * _WAKE_INTERVAL_S,
                      "wake-tx", token, attempt)

    def _wake_rx(self, token: bytes) -> None:
        """The always-on wake receiver hears a token (budget-exempt)."""
        self.tag_uj += self.defense.wake_rx_uj
        self.wake_attempts += 1
        if self.tag_state != "dark":
            return  # already up; late wake copies are noise
        if self.defense.wake_gating \
                and not self.wake.verify(self.session_id, token):
            self.wake_refusals += 1
            self._note("wake refused: invalid wake token, protocol "
                       "layer stays dark")
            return
        self._note("wake accepted: protocol layer powering up")
        self._start_epoch()

    # -- tag state machine (the session layer's initiator) -------------

    def _arm_timer(self, at: float) -> None:
        self._timer_seq += 1
        self.push(at, "timer", self._timer_seq)

    def _start_epoch(self) -> None:
        if self.budget_dead:
            return
        if self.epoch + 1 >= self.max_epochs:
            self.aborted_phase = self.tag_state
            self._note(f"abort: epoch budget exhausted in "
                       f"{self.tag_state}")
            return
        if self.epoch >= 0:
            self.tag.abort()
        if not self._charge_tag(self._commit_uj, "commit"):
            return
        self.epoch += 1
        self.consumed_m1_attempt = None
        self.tag_state = "await-m1"
        payload = compress_point(self.domain.curve,
                                 self.tag.commit(self.rng_tag))
        if self._tag_send(0, "R", payload):
            self._arm_timer(self.now + self.policy.round_deadline_s)

    def _restart_epoch(self, reason: str) -> None:
        if self.budget_dead or self.aborted_phase is not None:
            return
        self._note(f"epoch {self.epoch} failed ({reason})")
        delay = self.policy.epoch_backoff(self.seed, self.session_index,
                                          self.epoch + 1) \
            * self.defense.restart_backoff_scale
        self.tag_state = "backoff"
        self.push(self.now + delay, "epoch")

    def _tag_frame(self, frame: Frame) -> None:
        if frame.round_index != 1:
            self.stale += 1
            return
        if frame.epoch != self.epoch % 256:
            self.stale += 1
            self._note(f"rx tag: stale challenge (epoch {frame.epoch})")
            return
        if self.tag_state == "await-m1":
            if len(frame.payload) != self.scalar_width:
                self.payload_rejected += 1
                return
            if not self._charge_tag(self._respond_uj, "respond"):
                return
            try:
                s = self.tag.respond(int_from_bytes(frame.payload),
                                     self.rng_tag)
            except ValueError:
                self.payload_rejected += 1
                # the charge was optimistic; the energy price of
                # validating a garbage scalar is negligible and the
                # point multiplication never ran — refund it.
                self.tag_uj -= self._respond_uj
                if self.budget is not None:
                    self.budget.window_spent_uj = max(
                        0.0, self.budget.window_spent_uj
                        - self._respond_uj)
                    self.budget.total_spent_uj = max(
                        0.0, self.budget.total_spent_uj
                        - self._respond_uj)
                return
            self.responses_emitted += 1
            self.consumed_m1_attempt = frame.attempt
            if self._tag_send(2, "s",
                              int_to_bytes(s, self.scalar_width)):
                self.tag_state = "closing"
                self._arm_timer(self.now + self.policy.round_deadline_s)
        elif self.tag_state == "closing":
            self.replayed += 1
            if frame.attempt > (self.consumed_m1_attempt or 0):
                # Retransmitted challenge after our response: the
                # nonce is spent, the only safe recovery is a fresh
                # epoch — exactly the lever amplification pulls.
                self._note("rx tag: retransmitted challenge after "
                           "response; response presumed lost")
                self._restart_epoch("response presumed lost")
            else:
                self._note("rx tag: duplicate challenge replayed; "
                           "nonce already consumed, rejected")

    def _tag_timeout(self) -> None:
        if self.tag_state in ("await-m1", "closing"):
            self._restart_epoch(f"deadline expired in {self.tag_state}")

    # -- honest reader side (legit sessions only) ----------------------

    def reader_handle_m0(self, frame: Frame) -> Optional[bytes]:
        from ..channel import decompress_point
        try:
            self._commitment = decompress_point(self.domain.curve,
                                                frame.payload)
        except FrameError:
            return None
        self._reader_challenge = self.reader.challenge(self.rng_reader)
        return int_to_bytes(self._reader_challenge, self.scalar_width)

    def reader_conclude(self, frame: Frame) -> None:
        if len(frame.payload) != self.scalar_width:
            return
        identity = self.reader.identify(self._commitment,
                                        self._reader_challenge,
                                        int_from_bytes(frame.payload))
        if identity is None:
            self.concluded = (False, None, "tag not in the database")
        else:
            self.concluded = (True, identity,
                              f"identified tag {identity}")
        self._note(f"concluded: {self.concluded[2]}")

    # -- main loop -----------------------------------------------------

    def run(self) -> AttackSessionResult:
        self._send_wakes()
        while self._queue:
            if self.concluded is not None or self.budget_dead \
                    or self.aborted_phase is not None:
                break
            at, _seq, event, args = heapq.heappop(self._queue)
            self.now = max(self.now, at)
            if event == "wake-tx":
                token, attempt = args
                self.adversary_uj += self._tx_uj(len(token))
                deliveries = self.channel.transmit(
                    token, -(attempt + 1), attempt, self.now)
                for delivery in deliveries:
                    self.push(delivery.at, "wake-rx", delivery.data)
            elif event == "wake-rx":
                (token,) = args
                self._wake_rx(token)
            elif event == "deliver":
                role, data = args
                if role == _ADVERSARY:
                    self.adversary_uj += self._rx_uj(len(data))
                    try:
                        frame = decode_frame(data)
                    except (FrameCorruptedError, FrameError):
                        continue
                    if frame.sender != _TAG:
                        continue
                    if frame.round_index == 0:
                        self.policy_script.on_commit(frame)
                    elif frame.round_index == 2:
                        self.policy_script.on_response(frame)
                else:
                    if self.tag_state == "dark":
                        # main radio is off; nothing to receive
                        continue
                    if not self._charge_tag(self._rx_uj(len(data)),
                                            "rx frame"):
                        continue
                    self.tag.ops.rx_bits += len(data) * 8
                    try:
                        frame = decode_frame(data)
                    except (FrameCorruptedError, FrameError):
                        continue
                    if frame.session != self.session_id \
                            or frame.sender != _ADVERSARY:
                        self.stale += 1
                        continue
                    self._tag_frame(frame)
            elif event == "adv-replay":
                epoch, attempt, data = args
                self.adv_send(epoch, 1, attempt, "e", data,
                              replayed=True)
            elif event == "timer":
                (seq,) = args
                if seq != self._timer_seq:
                    continue
                self._tag_timeout()
            elif event == "epoch":
                self._start_epoch()
        return self._result()

    # -- verdict -------------------------------------------------------

    def _result(self) -> AttackSessionResult:
        if self.concluded is not None:
            accepted, _identity, detail = self.concluded
            outcome = "accepted" if accepted else "rejected"
        elif self.budget_dead:
            outcome = "budget_exhausted"
            detail = ("energy budget cap reached; tag dark until the "
                      "window rolls")
        elif self.tag_state == "dark":
            outcome = "refused"
            detail = (f"all {self.wake_refusals} wake attempt(s) "
                      "carried invalid tokens; protocol layer never "
                      "powered up")
        else:
            outcome = "aborted"
            detail = "epoch budget exhausted under attack"
        return AttackSessionResult(
            kind=self.kind,
            session_index=self.session_index,
            seed=self.seed,
            outcome=outcome,
            detail=detail,
            epochs_used=self.epoch + 1,
            frames_sent=self.frames_sent,
            wake_attempts=self.wake_attempts,
            wake_refusals=self.wake_refusals,
            replay_rejections=self.replayed,
            stale_rejections=self.stale,
            payload_rejections=self.payload_rejected,
            responses_emitted=self.responses_emitted,
            budget_refusals=self.budget_refusals,
            tag_uj=self.tag_uj,
            adversary_uj=self.adversary_uj,
            elapsed_s=self.now - self.started_at,
            started_at=self.started_at,
            events=self.log,
        )


def run_attack_session(
    kind: str,
    defense: Optional[DefenseConfig] = None,
    profile: Optional[LossProfile] = None,
    policy: Optional[RetransmissionPolicy] = None,
    seed: int = 0,
    session_index: int = 0,
    *,
    curve: str = "TOY-B17",
    distance_m: float = 0.5,
    start_at: float = 0.0,
    budget=None,
    wake: Optional[WakeUpRadio] = None,
    registry=None,
) -> AttackSessionResult:
    """Run one adversarial (or honest) session against one tag.

    Deterministic: the result is a pure function of ``(kind, defense,
    profile, policy, seed, session_index)``.  ``budget`` and ``wake``
    let a cohort share one tag's guards across a whole flood — the
    per-window µJ bound is only meaningful across sessions.
    ``registry`` routes the session's metrics explicitly (a soak
    cohort's deterministic snapshot); otherwise they land in the live
    obs runtime's registry when one is configured.
    """
    defense = defense if defense is not None else DefenseConfig()
    profile = profile if profile is not None else LossProfile()
    policy = policy or RetransmissionPolicy()
    channel = BodyAreaChannel(profile, seed=seed, session=session_index)
    engine = _AttackEngine(
        kind, defense, channel, policy, seed, session_index,
        curve=curve, distance_m=distance_m, start_at=start_at,
        budget=budget, wake=wake)
    rt = _obs_runtime.current()
    if rt is not None:
        with rt.span("adversary.session", key=session_index,
                     adversary=kind, defense=defense.name) as span:
            result = engine.run()
            if span is not None:
                span.set(outcome=result.outcome,
                         epochs=result.epochs_used,
                         tag_uj=round(result.tag_uj, 3))
    else:
        result = engine.run()
    if registry is None and rt is not None:
        registry = rt.registry
    if registry is not None:
        _record_attack_metrics(registry, result)
    return result


def _record_attack_metrics(registry, result: AttackSessionResult) -> None:
    """One finished attack session into the live counters."""
    registry.counter(
        "repro_adversary_sessions_total",
        "adversary-lab sessions by kind and outcome",
    ).inc(adversary=result.kind, outcome=result.outcome)
    energy = registry.counter(
        "repro_adversary_energy_uj_total",
        "microjoules drained (tag) and spent (adversary)",
    )
    energy.inc(result.tag_uj, role="tag")
    energy.inc(result.adversary_uj, role="adversary")
    refusals = registry.counter(
        "repro_adversary_refusals_total",
        "protocol work refused by a defense, by reason",
    )
    if result.wake_refusals:
        refusals.inc(result.wake_refusals, reason="wake-token")
    if result.budget_refusals:
        refusals.inc(result.budget_refusals, reason="budget")
    rejections = registry.counter(
        "repro_adversary_rejections_total",
        "tag-side frame rejections under attack, by kind",
    )
    for reason, count in (("replay", result.replay_rejections),
                          ("stale", result.stale_rejections),
                          ("payload", result.payload_rejections)):
        if count:
            rejections.inc(count, adversary=result.kind, kind=reason)
    registry.counter(
        "repro_adversary_epochs_total",
        "tag epochs burned under the adversary lab",
    ).inc(result.epochs_used, adversary=result.kind)
