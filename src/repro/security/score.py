"""A scalar security score, so security can sit beside area and power.

The paper's thesis is that security is an extra *design dimension*;
a design-space explorer therefore needs security as an objective it
can rank and constrain.  :func:`score_design` turns a coprocessor
configuration into the fraction of modelled threats whose doors are
closed:

* the pyramid decides the baseline — a threat with no primary
  countermeasure in :func:`~repro.security.pyramid.pyramid_for_config`
  is an open door,
* operating below the nominal core voltage opens ``fault-attack``
  (reduced noise margins make glitch and brown-out injection easier,
  the classic low-voltage trade-off the paper's Section 6 warns
  about),
* a non-resistant white-box finding opens the threat the attack
  demonstrates, even when the pyramid claims coverage — measurement
  beats paperwork.

The score is ``closed / total`` in [0, 1]; the paper's protected
design at nominal voltage scores 1.0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from ..power.technology import TechnologyParams, UMC_130NM
from .pyramid import (BATTERY_DEPLETION_THREAT, KEY_COMPROMISE_THREAT,
                      PAPER_THREATS, POWER_INTERRUPTION_THREAT,
                      defense_countermeasures, intermittent_countermeasures,
                      pyramid_for_config, session_countermeasures)

__all__ = ["ATTACK_THREATS", "SecurityScore", "score_design"]

#: White-box attack name -> the pyramid threat it demonstrates.
ATTACK_THREATS = {
    "timing": "timing-attack",
    "spa": "spa",
    "dpa": "dpa",
    "tvla": "dpa",
}


@dataclass(frozen=True)
class SecurityScore:
    """Closed vs open threat doors of one design point."""

    closed: tuple
    open_doors: tuple
    vdd: float

    @property
    def total(self) -> int:
        return len(self.closed) + len(self.open_doors)

    @property
    def value(self) -> float:
        """Fraction of modelled threats closed, in [0, 1]."""
        if self.total == 0:
            return 1.0
        return len(self.closed) / self.total

    def to_dict(self) -> dict:
        return {
            "value": self.value,
            "closed": list(self.closed),
            "open": list(self.open_doors),
            "vdd": self.vdd,
        }

    def __str__(self) -> str:
        doors = ", ".join(self.open_doors) if self.open_doors else "none"
        return (f"{len(self.closed)}/{self.total} threats closed "
                f"(open: {doors})")


def _resolve_defenses(defenses):
    """Accept a named defense set, a dict of knobs, or a
    DefenseConfig-shaped object (duck-typed: the adversary package is
    only imported when a name or dict must be resolved)."""
    if isinstance(defenses, str):
        from ..adversary.defense import defense_config
        return defense_config(defenses)
    if isinstance(defenses, dict):
        from ..adversary.defense import DefenseConfig
        return DefenseConfig(**defenses)
    return defenses


def _resolve_session(session):
    """Accept a dict of knobs (``rekey_epoch``,
    ``private_identification``, ``erase_keys``) or an
    AmortizedSpec-shaped object (duck-typed like the resolvers
    above)."""
    if isinstance(session, dict):
        from types import SimpleNamespace
        return SimpleNamespace(**session)
    return session


def _resolve_checkpoint(checkpoint):
    """Accept ``True`` (the default checkpointing posture), a dict of
    knobs, or an IntermittentSpec-shaped object (duck-typed like
    :func:`_resolve_defenses` — the intermittent package is imported
    only when the default must be built)."""
    if checkpoint is True:
        from ..intermittent import IntermittentSpec
        return IntermittentSpec()
    if isinstance(checkpoint, dict):
        from types import SimpleNamespace
        return SimpleNamespace(**checkpoint)
    return checkpoint


def score_design(config,
                 vdd: Optional[float] = None,
                 findings: Iterable = (),
                 technology: TechnologyParams = UMC_130NM,
                 defenses=None,
                 checkpoint=None,
                 session=None,
                 ) -> SecurityScore:
    """Score one design point.

    Parameters
    ----------
    config:
        The :class:`~repro.arch.CoprocessorConfig` under evaluation.
    vdd:
        Core voltage of the operating point; below the technology's
        nominal voltage the fault-attack door opens.  None means
        nominal.
    findings:
        Optional white-box results — :class:`AttackFinding` objects or
        ``{"attack": ..., "resistant": ...}`` dicts.  A non-resistant
        finding opens the threat in :data:`ATTACK_THREATS`.
    defenses:
        Optional battery-depletion posture — a defense-set name from
        :data:`repro.adversary.defense.DEFENSE_SETS`, a dict of
        :class:`~repro.adversary.defense.DefenseConfig` knobs, or the
        config itself.  When given, the ``battery-depletion`` threat
        joins the scored set and is closed only by a *primary*
        depletion countermeasure (wake gating or an energy budget
        cap); None keeps the paper's original eight-threat score
        byte-identical.
    checkpoint:
        Optional intermittent-power posture — ``True`` for the default
        :class:`~repro.intermittent.IntermittentSpec`, a dict of its
        knobs (``durable``, ``checkpoint_interval``), or the spec
        itself.  When given, the ``power-interruption`` threat joins
        the scored set and is closed only by a *primary* checkpointing
        countermeasure (the commit-before-use nonce vault); None keeps
        prior scores byte-identical.
    session:
        Optional session-amortization posture — a dict of knobs
        (``rekey_epoch``: messages per asymmetric handshake, None for
        a design that never rekeys; ``private_identification``:
        whether each epoch still runs the Peeters-Hermans private
        handshake; ``erase_keys``) or an
        :class:`~repro.protocols.amortized.AmortizedSpec`-shaped
        object.  When given, the ``key-compromise`` threat joins the
        scored set and is closed only by a *primary* bounded
        forward-secrecy window (a finite rekeying epoch); a posture
        without private identification also opens the paper's
        ``tracking`` threat (a fixed symmetric identity is linkable).
        None keeps prior scores byte-identical.
    """
    pyramid = pyramid_for_config(config)
    open_doors = {t.name for t in pyramid.uncovered_threats()}
    if vdd is not None and vdd < technology.nominal_vdd:
        open_doors.add("fault-attack")
    for finding in findings:
        if isinstance(finding, dict):
            attack = finding.get("attack")
            resistant = finding.get("resistant")
        else:
            attack = finding.attack
            resistant = finding.resistant
        if not resistant and attack in ATTACK_THREATS:
            open_doors.add(ATTACK_THREATS[attack])
    order = [t.name for t in PAPER_THREATS]
    if defenses is not None:
        resolved = _resolve_defenses(defenses)
        order.append(BATTERY_DEPLETION_THREAT.name)
        if not any(cm.primary
                   for cm in defense_countermeasures(resolved)):
            open_doors.add(BATTERY_DEPLETION_THREAT.name)
    if checkpoint is not None:
        posture = _resolve_checkpoint(checkpoint)
        order.append(POWER_INTERRUPTION_THREAT.name)
        if not any(cm.primary
                   for cm in intermittent_countermeasures(posture)):
            open_doors.add(POWER_INTERRUPTION_THREAT.name)
    if session is not None:
        posture = _resolve_session(session)
        order.append(KEY_COMPROMISE_THREAT.name)
        if not any(cm.primary
                   for cm in session_countermeasures(posture)):
            open_doors.add(KEY_COMPROMISE_THREAT.name)
        if not getattr(posture, "private_identification", True):
            open_doors.add("tracking")
    return SecurityScore(
        closed=tuple(n for n in order if n not in open_doors),
        open_doors=tuple(n for n in order if n in open_doors),
        vdd=technology.nominal_vdd if vdd is None else vdd,
    )
