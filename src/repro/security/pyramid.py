"""The security pyramid (Figure 1) as an explicit data model.

The paper's central methodological claim: countermeasures live at four
abstraction levels — protocol/system, algorithm, architecture, circuit
— and "skipping a countermeasure means opening the door for a possible
attack".  :func:`default_pyramid` encodes the paper's own design as a
threat/countermeasure matrix, and :meth:`SecurityPyramid.coverage`
answers the designer's question: which threats remain open given the
countermeasures actually enabled in a configuration?
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field as dataclass_field

__all__ = ["AbstractionLevel", "Threat", "Countermeasure", "SecurityPyramid",
           "default_pyramid", "pyramid_for_config",
           "BATTERY_DEPLETION_THREAT", "defense_countermeasures",
           "pyramid_with_defenses", "POWER_INTERRUPTION_THREAT",
           "intermittent_countermeasures", "pyramid_with_intermittent",
           "KEY_COMPROMISE_THREAT", "session_countermeasures",
           "pyramid_with_session"]


class AbstractionLevel(enum.IntEnum):
    """Design abstraction levels, top (biggest leverage) first."""

    PROTOCOL = 4
    ALGORITHM = 3
    ARCHITECTURE = 2
    CIRCUIT = 1


@dataclass(frozen=True)
class Threat:
    """An attack class the device must survive."""

    name: str
    description: str


@dataclass(frozen=True)
class Countermeasure:
    """A defence, anchored at one abstraction level.

    ``primary`` distinguishes the countermeasures that *close* a
    threat from circuit-level hygiene that merely raises the attack
    effort (Section 6: the standard-cell tricks "do not provide the
    same level of protection as specialized logic styles do").
    """

    name: str
    level: AbstractionLevel
    addresses: tuple
    implemented_in: str  # module path in this library
    primary: bool = True


@dataclass
class SecurityPyramid:
    """A set of threats and the countermeasures deployed against them."""

    threats: list = dataclass_field(default_factory=list)
    countermeasures: list = dataclass_field(default_factory=list)

    def add_threat(self, threat: Threat) -> None:
        """Register a threat."""
        self.threats.append(threat)

    def add_countermeasure(self, cm: Countermeasure) -> None:
        """Register a countermeasure; its threats must be known."""
        known = {t.name for t in self.threats}
        for name in cm.addresses:
            if name not in known:
                raise ValueError(f"countermeasure addresses unknown threat {name!r}")
        self.countermeasures.append(cm)

    def defences_for(self, threat_name: str) -> list:
        """All countermeasures addressing one threat."""
        return [cm for cm in self.countermeasures if threat_name in cm.addresses]

    def uncovered_threats(self) -> list:
        """Threats with no *primary* countermeasure — the open doors.

        Supporting (non-primary) measures raise attack effort but do
        not close the threat by themselves.
        """
        return [
            t for t in self.threats
            if not any(cm.primary for cm in self.defences_for(t.name))
        ]

    def coverage(self) -> dict:
        """Threat name -> list of (level, countermeasure-name) pairs."""
        return {
            t.name: [(cm.level.name, cm.name) for cm in self.defences_for(t.name)]
            for t in self.threats
        }

    def levels_used(self) -> list:
        """The abstraction levels the deployed defences span."""
        return sorted({cm.level for cm in self.countermeasures}, reverse=True)

    def report(self) -> str:
        """Human-readable coverage matrix."""
        lines = ["Security pyramid coverage", "=" * 60]
        for level in sorted(AbstractionLevel, reverse=True):
            members = [cm for cm in self.countermeasures if cm.level == level]
            lines.append(f"[{level.name}]")
            if not members:
                lines.append("  (no countermeasures at this level)")
            for cm in members:
                lines.append(f"  {cm.name}  ->  {', '.join(cm.addresses)}")
        open_threats = self.uncovered_threats()
        lines.append("-" * 60)
        if open_threats:
            lines.append("OPEN DOORS: " + ", ".join(t.name for t in open_threats))
        else:
            lines.append("All modelled threats have at least one countermeasure.")
        return "\n".join(lines)


#: The threats the paper's analysis enumerates (Sections 2, 6, 7).
PAPER_THREATS = [
    Threat("eavesdropping", "wireless link interception of medical data"),
    Threat("impersonation", "fake reader/server reprograms the implant"),
    Threat("data-tampering", "modified telemetry corrupts the therapy"),
    Threat("tracking", "location privacy loss via tag linkability"),
    Threat("timing-attack", "key-dependent execution time"),
    Threat("spa", "single-trace power signature analysis"),
    Threat("dpa", "statistical power analysis over many traces"),
    Threat("fault-attack", "active glitch/laser state corruption"),
]


def default_pyramid() -> SecurityPyramid:
    """The pyramid instantiated with the paper's full countermeasure set."""
    pyramid = SecurityPyramid()
    for threat in PAPER_THREATS:
        pyramid.add_threat(threat)
    for cm in [
        Countermeasure("encrypted+authenticated channel (AES-CTR + CMAC)",
                       AbstractionLevel.PROTOCOL,
                       ("eavesdropping", "data-tampering"),
                       "repro.protocols.mutual_auth"),
        Countermeasure("mutual authentication, server first",
                       AbstractionLevel.PROTOCOL,
                       ("impersonation",),
                       "repro.protocols.mutual_auth"),
        Countermeasure("Peeters-Hermans private identification",
                       AbstractionLevel.PROTOCOL,
                       ("tracking", "impersonation"),
                       "repro.protocols.peeters_hermans"),
        Countermeasure("Montgomery powering ladder (regular op sequence)",
                       AbstractionLevel.ALGORITHM,
                       ("timing-attack", "spa"),
                       "repro.ec.ladder"),
        Countermeasure("randomized projective coordinates",
                       AbstractionLevel.ALGORITHM,
                       ("dpa",),
                       "repro.ec.ladder"),
        Countermeasure("input/output point validation",
                       AbstractionLevel.ALGORITHM,
                       ("fault-attack",),
                       "repro.fault.countermeasures"),
        Countermeasure("constant-cycle instruction set + fixed iteration count",
                       AbstractionLevel.ARCHITECTURE,
                       ("timing-attack",),
                       "repro.arch.isa"),
        Countermeasure("secure-zone partitioning (key never on host bus)",
                       AbstractionLevel.ARCHITECTURE,
                       ("spa", "dpa"),
                       "repro.arch.coprocessor",
                       primary=False),
        Countermeasure("balanced mux-select encoding",
                       AbstractionLevel.CIRCUIT,
                       ("spa",),
                       "repro.arch.control"),
        Countermeasure("no data-dependent clock gating",
                       AbstractionLevel.CIRCUIT,
                       ("spa",),
                       "repro.arch.clockgate"),
        Countermeasure("datapath input isolation",
                       AbstractionLevel.CIRCUIT,
                       ("dpa",),
                       "repro.arch.coprocessor",
                       primary=False),
        Countermeasure("glitch avoidance",
                       AbstractionLevel.CIRCUIT,
                       ("dpa",),
                       "repro.arch.coprocessor",
                       primary=False),
    ]:
        pyramid.add_countermeasure(cm)
    return pyramid


#: The active-adversary threat the adversary lab adds (not part of
#: :data:`PAPER_THREATS`, whose length is the paper's own account):
#: a malicious reader floods the tag with protocol work until the
#: battery dies.  Only scored when a design declares its depletion
#: defenses (see :func:`repro.security.score.score_design`).
BATTERY_DEPLETION_THREAT = Threat(
    "battery-depletion",
    "active flood forces protocol work until the battery dies")


def defense_countermeasures(defenses) -> list:
    """Countermeasures implied by an adversary-lab defense posture.

    ``defenses`` is duck-typed (a
    :class:`repro.adversary.defense.DefenseConfig` or anything with
    its attributes) so the security layer never imports the adversary
    package at module import time.  Wake gating and the energy budget
    are primary — each alone bounds what a flood can drain; restart
    throttling only slows the bleed, so it is supporting hygiene.
    """
    measures = []
    if getattr(defenses, "wake_gating", False):
        measures.append(Countermeasure(
            "authenticated wake-up radio gating",
            AbstractionLevel.PROTOCOL,
            ("battery-depletion",),
            "repro.adversary.defense"))
    if getattr(defenses, "budget_cap_uj", 0.0) > 0:
        measures.append(Countermeasure(
            "per-window energy budget cap",
            AbstractionLevel.ARCHITECTURE,
            ("battery-depletion",),
            "repro.adversary.defense"))
    if getattr(defenses, "restart_backoff_scale", 1.0) > 1.0 \
            or getattr(defenses, "max_session_epochs", 0) > 0:
        measures.append(Countermeasure(
            "bounded restart backoff / epoch throttling",
            AbstractionLevel.PROTOCOL,
            ("battery-depletion",),
            "repro.adversary.defense",
            primary=False))
    return measures


def pyramid_with_defenses(config, defenses) -> SecurityPyramid:
    """:func:`pyramid_for_config` extended with the battery-depletion
    threat and whatever depletion defenses the design deploys."""
    pyramid = pyramid_for_config(config)
    pyramid.add_threat(BATTERY_DEPLETION_THREAT)
    for cm in defense_countermeasures(defenses):
        pyramid.add_countermeasure(cm)
    return pyramid


#: The intermittent-power threat (also opt-in): a reader that owns the
#: tag's field can cut it mid-session, forcing a restart that — on a
#: naive tag — re-derives a consumed nonce and leaks the key (see
#: :mod:`repro.adversary.fieldcut`), or tears the durable state.
POWER_INTERRUPTION_THREAT = Threat(
    "power-interruption",
    "field cuts mid-session force nonce reuse or torn state")


def intermittent_countermeasures(posture) -> list:
    """Countermeasures implied by an intermittent-power posture.

    ``posture`` is duck-typed (an
    :class:`~repro.intermittent.IntermittentSpec`, or anything with a
    ``checkpoint_interval`` and optionally a ``durable`` flag).  The
    commit-before-use nonce vault and the two-phase atomic store are
    primary — together they make a second response under one nonce
    impossible and a torn committed record unconstructible.  Periodic
    ladder checkpointing only bounds the re-execution bill, so it is
    supporting hygiene.
    """
    measures = []
    if getattr(posture, "durable", True):
        measures.append(Countermeasure(
            "commit-before-use nonce checkpointing",
            AbstractionLevel.PROTOCOL,
            ("power-interruption",),
            "repro.intermittent.checkpoint"))
        measures.append(Countermeasure(
            "two-phase atomic NVM commit",
            AbstractionLevel.ARCHITECTURE,
            ("power-interruption",),
            "repro.intermittent.checkpoint"))
    if getattr(posture, "checkpoint_interval", 0) > 0:
        measures.append(Countermeasure(
            "periodic ladder-state checkpointing",
            AbstractionLevel.ALGORITHM,
            ("power-interruption",),
            "repro.intermittent.engine",
            primary=False))
    return measures


def pyramid_with_intermittent(config, posture) -> SecurityPyramid:
    """:func:`pyramid_for_config` extended with the power-interruption
    threat and whatever checkpointing posture the design deploys."""
    pyramid = pyramid_for_config(config)
    pyramid.add_threat(POWER_INTERRUPTION_THREAT)
    for cm in intermittent_countermeasures(posture):
        pyramid.add_countermeasure(cm)
    return pyramid


#: The session-amortization threat (opt-in like the two above): once
#: a design derives symmetric session keys, a captured key exposes
#: every message sealed under it.  The forward-secrecy *window* — how
#: many messages one key covers — is the design knob; an unbounded
#: window (symmetric-only, never rekeying) leaves the door open.
KEY_COMPROMISE_THREAT = Threat(
    "key-compromise",
    "a captured session key exposes every message in its window")


def session_countermeasures(posture) -> list:
    """Countermeasures implied by a session-amortization posture.

    ``posture`` is duck-typed (an
    :class:`~repro.protocols.amortized.AmortizedSpec`, a plain
    namespace, or anything with a ``rekey_epoch``).  A *finite*
    rekeying epoch is primary — it bounds what any captured key can
    expose to one forward-secrecy window, and each epoch key is
    derived from a fresh asymmetric handshake rather than chained
    from its predecessor.  Erasing retired epoch keys is supporting
    hygiene: it shrinks the capture surface but cannot bound a live
    key's window by itself.
    """
    measures = []
    epoch = getattr(posture, "rekey_epoch", None)
    if isinstance(epoch, int) and not isinstance(epoch, bool) \
            and epoch >= 1:
        measures.append(Countermeasure(
            "epoch-bounded session rekeying (forward-secrecy window)",
            AbstractionLevel.PROTOCOL,
            ("key-compromise",),
            "repro.protocols.amortized"))
    if getattr(posture, "erase_keys", False):
        measures.append(Countermeasure(
            "retired epoch-key erasure",
            AbstractionLevel.PROTOCOL,
            ("key-compromise",),
            "repro.protocols.amortized",
            primary=False))
    return measures


def pyramid_with_session(config, posture) -> SecurityPyramid:
    """:func:`pyramid_for_config` extended with the key-compromise
    threat and whatever rekeying posture the design deploys."""
    pyramid = pyramid_for_config(config)
    pyramid.add_threat(KEY_COMPROMISE_THREAT)
    for cm in session_countermeasures(posture):
        pyramid.add_countermeasure(cm)
    return pyramid


def pyramid_for_config(config) -> SecurityPyramid:
    """Build the pyramid that matches an actual coprocessor config.

    Drops the countermeasures the configuration disables, so
    :meth:`SecurityPyramid.uncovered_threats` shows exactly which doors
    a given design point leaves open.
    """
    from ..arch.clockgate import ClockGatingPolicy
    from ..arch.control import BalancedEncoding

    full = default_pyramid()
    dropped = set()
    if not config.randomize_z:
        dropped.add("randomized projective coordinates")
    if not isinstance(config.mux_encoding, BalancedEncoding):
        dropped.add("balanced mux-select encoding")
    if config.clock_gating is not ClockGatingPolicy.ALWAYS_ON:
        dropped.add("no data-dependent clock gating")
    if not config.input_isolation:
        dropped.add("datapath input isolation")
    if config.glitch_factor > 0:
        dropped.add("glitch avoidance")
    pruned = SecurityPyramid()
    for threat in full.threats:
        pruned.add_threat(threat)
    for cm in full.countermeasures:
        if cm.name not in dropped:
            pruned.add_countermeasure(cm)
    return pruned
