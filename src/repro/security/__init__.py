"""The security-pyramid model (Figure 1) and the white-box evaluation
harness (Section 7 / Figure 4)."""

from .evaluation import AttackFinding, EvaluationReport, WhiteBoxEvaluation
from .score import ATTACK_THREATS, SecurityScore, score_design
from .pyramid import (
    AbstractionLevel,
    BATTERY_DEPLETION_THREAT,
    Countermeasure,
    POWER_INTERRUPTION_THREAT,
    SecurityPyramid,
    Threat,
    default_pyramid,
    defense_countermeasures,
    intermittent_countermeasures,
    pyramid_for_config,
    pyramid_with_defenses,
    pyramid_with_intermittent,
)

__all__ = [
    "AbstractionLevel",
    "Threat",
    "Countermeasure",
    "SecurityPyramid",
    "default_pyramid",
    "pyramid_for_config",
    "BATTERY_DEPLETION_THREAT",
    "POWER_INTERRUPTION_THREAT",
    "defense_countermeasures",
    "intermittent_countermeasures",
    "pyramid_with_defenses",
    "pyramid_with_intermittent",
    "AttackFinding",
    "EvaluationReport",
    "WhiteBoxEvaluation",
    "ATTACK_THREATS",
    "SecurityScore",
    "score_design",
]
