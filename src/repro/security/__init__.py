"""The security-pyramid model (Figure 1) and the white-box evaluation
harness (Section 7 / Figure 4)."""

from .evaluation import AttackFinding, EvaluationReport, WhiteBoxEvaluation
from .score import ATTACK_THREATS, SecurityScore, score_design
from .pyramid import (
    AbstractionLevel,
    Countermeasure,
    SecurityPyramid,
    Threat,
    default_pyramid,
    pyramid_for_config,
)

__all__ = [
    "AbstractionLevel",
    "Threat",
    "Countermeasure",
    "SecurityPyramid",
    "default_pyramid",
    "pyramid_for_config",
    "AttackFinding",
    "EvaluationReport",
    "WhiteBoxEvaluation",
    "ATTACK_THREATS",
    "SecurityScore",
    "score_design",
]
