"""The white-box security evaluation harness (Section 7 / Figure 4).

"A security evaluation typically starts with a white-box evaluation of
a prototype chip": the evaluator knows every implementation detail,
controls the randomness, and runs the full attack battery.  This
harness does exactly that against any coprocessor configuration:

1. timing — cycle counts over many keys (constant?),
2. SPA — single-trace clustering on the control channel,
3. DPA — difference-of-means in the unprotected / known-randomness /
   protected scenarios,
4. TVLA — fixed-vs-random t-test screen over the iteration windows.

The verdict strings mirror the paper's findings for the protected
default configuration: timing-immune, SPA-resistant (modulo the
profiled residual), DPA-resistant with randomization on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

import numpy as np

from ..arch.coprocessor import CoprocessorConfig, EccCoprocessor
from ..power.simulator import PowerTraceSimulator
from ..sca.dpa import LadderDpa
from ..sca.spa import transition_spa
from ..sca.timing import coprocessor_timing_report
from ..sca.ttest import tvla_fixed_vs_random
from .pyramid import pyramid_for_config

__all__ = ["AttackFinding", "EvaluationReport", "WhiteBoxEvaluation"]


@dataclass(frozen=True)
class AttackFinding:
    """One attack's outcome against the device under evaluation."""

    attack: str
    resistant: bool
    detail: str


@dataclass
class EvaluationReport:
    """Full white-box evaluation outcome."""

    configuration: str
    findings: list = dataclass_field(default_factory=list)

    @property
    def all_resistant(self) -> bool:
        """True when no attack succeeded."""
        return all(f.resistant for f in self.findings)

    def finding(self, attack: str) -> AttackFinding:
        """Look up one attack's finding."""
        for f in self.findings:
            if f.attack == attack:
                return f
        raise KeyError(f"no finding for attack {attack!r}")

    def render(self) -> str:
        """Human-readable report."""
        lines = [f"White-box evaluation: {self.configuration}", "=" * 64]
        for f in self.findings:
            verdict = "RESISTANT " if f.resistant else "VULNERABLE"
            lines.append(f"  [{verdict}] {f.attack}: {f.detail}")
        lines.append("=" * 64)
        lines.append(
            "overall: " + ("all attacks defeated" if self.all_resistant
                           else "open attack paths remain")
        )
        return "\n".join(lines)


class WhiteBoxEvaluation:
    """Runs the attack battery against one coprocessor configuration.

    Parameters
    ----------
    config:
        The design point to evaluate.
    noise_sigma:
        Measurement noise of the virtual oscilloscope.
    n_traces:
        DPA/TVLA campaign size (the unit-scale default keeps the
        harness fast; benches crank it up to paper scale).
    n_bits:
        Key bits targeted by the DPA stage.
    seed:
        Master seed; the whole evaluation is reproducible.
    """

    def __init__(self, config: Optional[CoprocessorConfig] = None,
                 noise_sigma: float = 38.0, n_traces: int = 120,
                 n_bits: int = 2, seed: int = 2013):
        self.config = config or CoprocessorConfig()
        self.coprocessor = EccCoprocessor(self.config)
        self.noise_sigma = noise_sigma
        self.n_traces = n_traces
        self.n_bits = n_bits
        self.seed = seed

    # ------------------------------------------------------------------

    def _points(self, count: int, rng) -> list:
        curve = self.coprocessor.domain.curve
        points = []
        while len(points) < count:
            p = curve.double(curve.random_point(rng))
            if not p.is_infinity and p.x != 0:
                points.append(p)
        return points

    def evaluate_timing(self) -> AttackFinding:
        """Cycle-count constancy over random keys."""
        rng = random.Random(self.seed)
        ring = self.coprocessor.domain.scalar_ring
        keys = [ring.random_scalar(rng) for _ in range(4)] + [1]
        report = coprocessor_timing_report(self.coprocessor, keys)
        return AttackFinding(
            attack="timing",
            resistant=report.is_constant_time,
            detail=(
                f"cycle counts over {len(keys)} keys: "
                f"{sorted(set(report.cycle_counts))}"
            ),
        )

    def evaluate_spa(self) -> AttackFinding:
        """Single-trace clustering SPA on the control channel."""
        rng = random.Random(self.seed + 1)
        sim = PowerTraceSimulator(noise_sigma=self.noise_sigma,
                                  seed=self.seed + 1)
        key = self.coprocessor.domain.scalar_ring.random_scalar(rng)
        execution = self.coprocessor.point_multiply(
            key, self.coprocessor.domain.generator,
            initial_z=rng.getrandbits(160) | 1,
        )
        result = transition_spa(sim.measure(execution),
                                execution.iteration_slices(),
                                execution.key_bits)
        error_rate = result.bit_errors / len(result.true_bits)
        return AttackFinding(
            attack="spa",
            resistant=error_rate > 0.25,
            detail=f"single-trace clustering bit error rate {error_rate:.0%}",
        )

    def evaluate_dpa(self) -> AttackFinding:
        """DPA in the configuration's own randomization scenario."""
        rng = random.Random(self.seed + 2)
        sim = PowerTraceSimulator(noise_sigma=self.noise_sigma,
                                  seed=self.seed + 2)
        key = self.coprocessor.domain.scalar_ring.random_scalar(rng)
        points = self._points(self.n_traces, rng)
        scenario = "protected" if self.config.randomize_z else "unprotected"
        traces = sim.campaign(self.coprocessor, key, points, rng=rng,
                              scenario=scenario,
                              max_iterations=self.n_bits + 1)
        attack = LadderDpa(self.coprocessor)
        result = attack.recover_bits(traces, self.n_bits)
        # The DoM statistic is Welch-normalized, so the TVLA 4.5
        # threshold applies: a "successful" recovery whose peaks sit at
        # the max-over-cycles noise floor is a coin flip, not a break.
        peaks = [max(d.statistic_zero, d.statistic_one)
                 for d in result.decisions]
        significant = all(p > 4.5 for p in peaks)
        return AttackFinding(
            attack="dpa",
            resistant=not (result.success and significant),
            detail=(
                f"{scenario} scenario, {self.n_traces} traces: "
                f"{result.num_correct}/{self.n_bits} bits recovered, "
                f"peak statistics {[round(p, 1) for p in peaks]}"
            ),
        )

    def _secret_dependent_cycle_mask(self, n_cycles: int) -> np.ndarray:
        """Cycles whose activity may carry *secret*-dependent data.

        A white-box evaluator knows the (constant) instruction
        schedule, so it excludes the cycles where the datapath is
        driven directly by the public base point (operand loads and
        multiplications reading the XB register) — their trivially
        input-dependent activity would otherwise drown the assessment.
        """
        from ..arch.coprocessor import XB
        from ..arch.isa import Opcode

        reference = self.coprocessor.point_multiply(
            3, self.coprocessor.domain.generator, initial_z=1,
            max_iterations=2,
        )
        mask = np.ones(n_cycles, dtype=bool)
        for instr in reference.instructions:
            public = instr.opcode is Opcode.LDI or XB in (instr.ra, instr.rb)
            if public:
                end = min(instr.start_cycle + instr.cycles, n_cycles)
                mask[instr.start_cycle:end] = False
        return mask

    def evaluate_tvla(self) -> AttackFinding:
        """Fixed-vs-random-input t-test over secret-dependent cycles.

        With the Z-randomization off, the ladder intermediates are a
        deterministic function of the input, so the fixed-input
        population's mean activity deviates measurably from the
        random-input population's — the test flags the DPA channel.
        With the countermeasure on, the intermediates are masked by
        the random Z in *both* populations and the test comes back
        clean.  Cycles carrying the raw public operand are excluded
        (see :meth:`_secret_dependent_cycle_mask`).
        """
        rng = random.Random(self.seed + 3)
        sim = PowerTraceSimulator(noise_sigma=self.noise_sigma,
                                  seed=self.seed + 3)
        key = self.coprocessor.domain.scalar_ring.random_scalar(rng)
        half = max(10, self.n_traces // 2)
        fixed_point = self._points(1, rng)[0]
        scenario = "protected" if self.config.randomize_z else "unprotected"
        fixed = sim.campaign(self.coprocessor, key, [fixed_point] * half,
                             rng=rng, scenario=scenario, max_iterations=2)
        randoms = sim.campaign(self.coprocessor, key, self._points(half, rng),
                               rng=rng, scenario=scenario, max_iterations=2)
        mask = self._secret_dependent_cycle_mask(fixed.n_samples)
        report = tvla_fixed_vs_random(
            np.asarray(fixed.samples)[:, mask],
            np.asarray(randoms.samples)[:, mask],
        )
        return AttackFinding(
            attack="tvla",
            resistant=not report.leaks,
            detail="fixed vs random input (secret-dependent cycles): "
                   + str(report),
        )

    def run(self) -> EvaluationReport:
        """Full battery, in the Figure 4 order."""
        pyramid = pyramid_for_config(self.config)
        open_doors = ", ".join(t.name for t in pyramid.uncovered_threats()) \
            or "none"
        report = EvaluationReport(
            configuration=(
                f"{self.coprocessor.domain.name}, d={self.config.digit_size}, "
                f"randomize_z={self.config.randomize_z}, "
                f"pyramid open doors: {open_doors}"
            )
        )
        report.findings.append(self.evaluate_timing())
        report.findings.append(self.evaluate_spa())
        report.findings.append(self.evaluate_dpa())
        report.findings.append(self.evaluate_tvla())
        return report
