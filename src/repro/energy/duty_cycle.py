"""Duty-cycle modelling: what the device does between protocol runs.

The implant spends almost all of its life asleep; the average power
that determines battery life is dominated by sleep current plus the
duty-cycled bursts of sensing, crypto and radio.  This model turns a
daily activity schedule into average power and battery-lifetime
figures, closing the loop between the paper's per-operation energies
and its "5 to 15 years" battery requirement (Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

__all__ = ["Activity", "DutyCycleModel"]

_SECONDS_PER_DAY = 86_400.0


@dataclass(frozen=True)
class Activity:
    """One recurring task: energy per occurrence and daily frequency."""

    name: str
    energy_joules: float
    times_per_day: float

    def __post_init__(self):
        if self.energy_joules < 0 or self.times_per_day < 0:
            raise ValueError("energy and frequency must be non-negative")

    @property
    def daily_joules(self) -> float:
        """Energy per day for this activity."""
        return self.energy_joules * self.times_per_day


@dataclass
class DutyCycleModel:
    """Sleep floor plus a schedule of recurring activities."""

    sleep_power_watts: float = 1e-6  # pacemaker-class sleep current
    activities: list = dataclass_field(default_factory=list)

    def add(self, name: str, energy_joules: float,
            times_per_day: float) -> "DutyCycleModel":
        """Add a recurring activity (chainable)."""
        self.activities.append(Activity(name, energy_joules, times_per_day))
        return self

    @property
    def daily_active_joules(self) -> float:
        """Energy per day spent on the scheduled activities."""
        return sum(a.daily_joules for a in self.activities)

    @property
    def average_power_watts(self) -> float:
        """Sleep floor plus amortized activity power."""
        return self.sleep_power_watts + \
            self.daily_active_joules / _SECONDS_PER_DAY

    def lifetime_years(self, battery_joules: float) -> float:
        """Battery life under this schedule."""
        if battery_joules <= 0:
            raise ValueError("battery energy must be positive")
        seconds = battery_joules / self.average_power_watts
        return seconds / (365.25 * 24 * 3600)

    def breakdown(self) -> dict:
        """Share of the average power per contributor (incl. sleep)."""
        total = self.average_power_watts
        shares = {"sleep": self.sleep_power_watts / total}
        for activity in self.activities:
            shares[activity.name] = (
                activity.daily_joules / _SECONDS_PER_DAY / total
            )
        return shares
