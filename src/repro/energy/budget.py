"""Device energy budgets: what security may cost an implant.

Section 1: "the battery of a pacemaker will last for 5 to 15 years
before it is replaced" — security operations must fit inside a small
fraction of that budget.  This module turns battery capacity, expected
lifetime and a security-budget fraction into the number the designer
actually needs: how many cryptographic operations per day the device
can afford.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DeviceBudget", "PACEMAKER_BUDGET"]

_SECONDS_PER_YEAR = 365.25 * 24 * 3600


@dataclass(frozen=True)
class DeviceBudget:
    """Battery-backed device energy envelope.

    Parameters
    ----------
    battery_joules:
        Usable battery energy (a pacemaker cell ~ 1.5 Ah at 2.8 V with
        ~80% usable is roughly 12 kJ).
    target_lifetime_years:
        The replacement interval the therapy demands.
    security_fraction:
        Share of the total budget the security subsystem may consume.
    """

    battery_joules: float = 12_000.0
    target_lifetime_years: float = 10.0
    security_fraction: float = 0.05

    def __post_init__(self):
        if self.battery_joules <= 0 or self.target_lifetime_years <= 0:
            raise ValueError("battery and lifetime must be positive")
        if not 0 < self.security_fraction <= 1:
            raise ValueError("security fraction must be in (0, 1]")

    @property
    def security_joules(self) -> float:
        """Lifetime energy allowance of the security subsystem."""
        return self.battery_joules * self.security_fraction

    @property
    def average_security_power_watts(self) -> float:
        """Average power the allowance sustains over the lifetime."""
        return self.security_joules / (
            self.target_lifetime_years * _SECONDS_PER_YEAR
        )

    def operations_per_day(self, energy_per_operation_joules: float) -> float:
        """How many operations/day the allowance supports."""
        if energy_per_operation_joules <= 0:
            raise ValueError("per-operation energy must be positive")
        per_day = self.security_joules / (
            energy_per_operation_joules * self.target_lifetime_years * 365.25
        )
        return per_day

    def lifetime_years_at(self, operations_per_day: float,
                          energy_per_operation_joules: float) -> float:
        """Security-budget lifetime under a given usage rate."""
        if operations_per_day <= 0:
            raise ValueError("operation rate must be positive")
        daily = operations_per_day * energy_per_operation_joules
        return self.security_joules / (daily * 365.25)


#: The paper's motivating device.
PACEMAKER_BUDGET = DeviceBudget()
