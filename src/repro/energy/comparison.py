"""Computation-vs-communication energy comparison of security protocols.

Reproduces the Section 4 analysis ([4, 5]): secret-key protocols are
cheaper in *computation* but "not necessarily in communication cost";
whether AES-based or ECC-based authentication wins overall depends on
the radio distance.  This module converts per-party
:class:`~repro.protocols.ops.OperationCount` ledgers into joules with
a computation-energy table calibrated to the paper's chip and a
distance-parametric radio model, and locates the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..protocols.ops import OperationCount
from .radio import RadioModel

__all__ = ["ComputeEnergyTable", "ProtocolEnergy", "protocol_energy",
           "crossover_distance"]


@dataclass(frozen=True)
class ComputeEnergyTable:
    """Joules per primitive operation on the constrained device.

    Defaults: the point multiplication is the paper's measured 5.1 uJ;
    the AES block cost is scaled from compact-AES-core figures at a
    comparable node (Feldhofer-class core, ~0.05 uJ/block); a modular
    multiplication is one 41-cycle MALU pass; hashing per block sits
    between AES and the MALU pass; randomness is TRNG conditioning
    cost per bit.
    """

    point_multiplication_j: float = 5.1e-6
    modular_multiplication_j: float = 3.0e-9
    point_addition_j: float = 40e-9
    aes_block_j: float = 50e-9
    hash_block_j: float = 30e-9
    random_bit_j: float = 0.1e-9

    def computation_energy(self, ops: OperationCount) -> float:
        """Total computation joules of one party's ledger."""
        return (
            ops.point_multiplications * self.point_multiplication_j
            + ops.modular_multiplications * self.modular_multiplication_j
            + ops.point_additions * self.point_addition_j
            + ops.aes_blocks * self.aes_block_j
            + ops.hash_blocks * self.hash_block_j
            + ops.random_bits * self.random_bit_j
        )


@dataclass(frozen=True)
class ProtocolEnergy:
    """Energy decomposition of one protocol run for one party."""

    name: str
    computation_j: float
    transmit_j: float
    receive_j: float

    @property
    def communication_j(self) -> float:
        """Radio joules (both directions)."""
        return self.transmit_j + self.receive_j

    @property
    def total_j(self) -> float:
        """Computation + communication."""
        return self.computation_j + self.communication_j

    def __str__(self) -> str:
        return (
            f"{self.name}: compute {self.computation_j * 1e6:.2f} uJ + "
            f"radio {self.communication_j * 1e6:.2f} uJ = "
            f"{self.total_j * 1e6:.2f} uJ"
        )


def protocol_energy(
    name: str,
    ops: OperationCount,
    distance_m: float,
    radio: RadioModel = RadioModel(),
    table: ComputeEnergyTable = ComputeEnergyTable(),
) -> ProtocolEnergy:
    """Energy of one party's protocol participation at a radio distance."""
    return ProtocolEnergy(
        name=name,
        computation_j=table.computation_energy(ops),
        transmit_j=radio.transmit_energy(ops.tx_bits, distance_m),
        receive_j=radio.receive_energy(ops.rx_bits),
    )


def crossover_distance(
    ops_cheap_compute: OperationCount,
    ops_heavy_compute: OperationCount,
    radio: RadioModel = RadioModel(),
    table: ComputeEnergyTable = ComputeEnergyTable(),
    max_distance_m: float = 10_000.0,
) -> float:
    """Distance beyond which the computation-heavy protocol wins.

    The secret-key protocol computes almost nothing but may ship more
    bits; the public-key protocol pays a fixed compute premium.  As
    distance grows, per-bit radio cost dominates and the protocol with
    fewer bits wins regardless of compute.  Returns ``inf`` when the
    cheap-compute protocol also sends fewer-or-equal bits (no
    crossover exists).
    """
    bits_cheap = ops_cheap_compute.tx_bits
    bits_heavy = ops_heavy_compute.tx_bits
    if bits_cheap <= bits_heavy:
        return float("inf")
    compute_gap = (
        table.computation_energy(ops_heavy_compute)
        - table.computation_energy(ops_cheap_compute)
    )
    rx_gap = radio.receive_energy(ops_heavy_compute.rx_bits) - \
        radio.receive_energy(ops_cheap_compute.rx_bits)
    # Solve: compute_gap + rx_gap + tx(bits_heavy, d) = tx(bits_cheap, d)
    lo, hi = 0.0, max_distance_m
    def gap(d: float) -> float:
        return (
            compute_gap
            + rx_gap
            + radio.transmit_energy(bits_heavy, d)
            - radio.transmit_energy(bits_cheap, d)
        )
    if gap(hi) > 0:
        return float("inf")
    if gap(lo) <= 0:
        return 0.0
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if gap(mid) > 0:
            lo = mid
        else:
            hi = mid
    return hi
