"""System-level energy analysis.

Radio cost model, device (pacemaker) energy budgets and the secret-key
vs public-key computation/communication comparison of Section 4.
"""

from .budget import DeviceBudget, PACEMAKER_BUDGET
from .duty_cycle import Activity, DutyCycleModel
from .comparison import (
    ComputeEnergyTable,
    ProtocolEnergy,
    crossover_distance,
    protocol_energy,
)
from .radio import BAN_RADIO, RadioModel

__all__ = [
    "RadioModel",
    "BAN_RADIO",
    "DeviceBudget",
    "Activity",
    "DutyCycleModel",
    "PACEMAKER_BUDGET",
    "ComputeEnergyTable",
    "ProtocolEnergy",
    "protocol_energy",
    "crossover_distance",
]
