"""Radio energy model: the cost of moving bits over the air.

Section 4: "the communication should be minimized since wireless
communication is power-hungry", and the secret-key vs public-key
comparison "depends on the cryptographic algorithm, the digital
platform and the wireless distance over which the communication occurs"
[4, 5].  The standard first-order radio model makes the distance
dependence explicit:

    E_tx(bits, d) = bits * (e_elec + e_amp * d^gamma)
    E_rx(bits)    = bits * e_elec

with ``gamma = 2`` free-space loss for short ranges.  Defaults follow
the wireless-sensor-network literature the paper cites.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RadioModel", "BAN_RADIO"]


@dataclass(frozen=True)
class RadioModel:
    """First-order transceiver energy model.

    Parameters
    ----------
    electronics_j_per_bit:
        Energy of the TX/RX circuitry per bit (e_elec).
    amplifier_j_per_bit_m2:
        Amplifier energy per bit per m^gamma (e_amp).
    path_loss_exponent:
        gamma; 2 for free space, up to ~4 around the human body.
    """

    electronics_j_per_bit: float = 50e-9
    amplifier_j_per_bit_m2: float = 100e-12
    path_loss_exponent: float = 2.0

    def __post_init__(self):
        if self.electronics_j_per_bit < 0 or self.amplifier_j_per_bit_m2 < 0:
            raise ValueError("energy coefficients must be non-negative")
        if self.path_loss_exponent < 1:
            raise ValueError("path-loss exponent must be >= 1")

    def transmit_energy(self, bits: int, distance_m: float) -> float:
        """Joules to transmit ``bits`` over ``distance_m`` meters."""
        if bits < 0 or distance_m < 0:
            raise ValueError("bits and distance must be non-negative")
        return bits * (
            self.electronics_j_per_bit
            + self.amplifier_j_per_bit_m2
            * distance_m ** self.path_loss_exponent
        )

    def receive_energy(self, bits: int) -> float:
        """Joules to receive ``bits``."""
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return bits * self.electronics_j_per_bit


#: Body-area-network radio with a lossier around-the-body channel.
BAN_RADIO = RadioModel(path_loss_exponent=3.0)
