"""Typed campaign failures and the shard-failure taxonomy.

A multi-hour acquisition campaign fails in qualitatively different
ways, and the supervisor's policy hangs off that difference:

* **transient** — the *environment* hiccuped: a worker process died
  without delivering a result, a watchdog killed a hung worker, an
  OS-level I/O error.  Nothing about the shard itself is suspect, so
  these earn the most retries.
* **deterministic** — the *task* raised: the same spec and shard index
  will, barring cosmic luck, raise again.  One confirmation retry
  distinguishes "looked deterministic but was not" from a real bug,
  then the shard is quarantined so the rest of the campaign can
  finish.
* **data_integrity** — the worker reported success but the bytes on
  disk do not match the digests it computed (torn write, disk error,
  or an injected chaos corruption).  The files are untrustworthy but
  a rewrite usually fixes it, so these retry like transients.

Every failure path raises (or logs) with enough identity to act on:
the shard index and the campaign spec digest, so a log line from a
directory full of campaigns is never ambiguous.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["CampaignError", "ScheduleMismatchError", "PartialStoreError",
           "TRANSIENT", "DETERMINISTIC", "DATA_INTEGRITY", "FAILURE_KINDS",
           "classify_exception"]

#: A failure the environment caused; the shard is fine — retry freely.
TRANSIENT = "transient"
#: A failure the task raised; likely to repeat — retry once, then quarantine.
DETERMINISTIC = "deterministic"
#: The worker said "done" but the bytes disagree — rewrite and retry.
DATA_INTEGRITY = "data_integrity"

FAILURE_KINDS = (TRANSIENT, DETERMINISTIC, DATA_INTEGRITY)


class CampaignError(RuntimeError):
    """A campaign-level failure with shard and spec identity attached.

    ``shard_index`` and ``spec_digest`` are optional because some
    failures are campaign-wide (e.g. refusing a partial store); when
    present they are appended to the message so the plain ``str(exc)``
    a CLI prints is self-contained.
    """

    def __init__(self, message: str, *,
                 shard_index: Optional[int] = None,
                 spec_digest: Optional[str] = None,
                 kind: Optional[str] = None):
        if kind is not None and kind not in FAILURE_KINDS:
            raise ValueError(f"unknown failure kind {kind!r}")
        context = []
        if shard_index is not None:
            context.append(f"shard {shard_index}")
        if spec_digest is not None:
            context.append(f"spec {spec_digest}")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)
        self.shard_index = shard_index
        self.spec_digest = spec_digest
        self.kind = kind


class ScheduleMismatchError(CampaignError):
    """Shards disagree on the ladder iteration schedule.

    Either the device under test is not constant-time (a finding in
    itself) or the spec changed underneath a resumed campaign; both
    invalidate the whole store, so this is fatal, not retryable.
    """


class PartialStoreError(CampaignError):
    """An attack refused an incomplete store without ``allow_partial``.

    Statistics silently computed over a subset of the planned traces
    are how wrong side-channel conclusions get published; degrading
    must be an explicit caller decision.
    """


#: Exception type names (from a worker, possibly another process, so
#: names not classes) whose cause is plausibly environmental.
_TRANSIENT_TYPE_NAMES = frozenset({
    "OSError", "IOError", "PermissionError", "BlockingIOError",
    "InterruptedError", "TimeoutError", "ConnectionError",
    "ConnectionResetError", "BrokenPipeError", "EOFError", "MemoryError",
})


def classify_exception(type_name: str) -> str:
    """Failure kind for an exception a shard task raised.

    Takes the type *name* because worker exceptions cross a process
    boundary as strings, never as live objects.
    """
    if type_name in _TRANSIENT_TYPE_NAMES:
        return TRANSIENT
    return DETERMINISTIC
