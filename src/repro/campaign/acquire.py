"""Parallel, resumable, fault-tolerant trace acquisition.

The engine fans shards out over supervised worker processes.  Each
shard is a self-contained unit of work: the worker rebuilds the device
under test from the (JSON-serializable) spec, derives its own RNG
streams from ``(master seed, stream label, shard index)``, simulates
its traces and writes its two shard files — no state crosses process
boundaries except the spec going in and a small record dict coming
back.  That is what makes the campaign:

* **deterministic** — a shard's bytes depend only on the spec, never
  on which worker ran it, in what order, or alongside what else;
* **resumable** — the coordinator checkpoints the manifest after every
  completed shard, so a killed campaign re-run with the same spec
  acquires only the missing shards;
* **scalable** — the coprocessor simulation is pure Python and CPU
  bound, so worker processes (not threads, which the GIL would
  serialize) are the right executor;
* **fault-tolerant** — execution goes through
  :class:`~repro.campaign.supervisor.ShardSupervisor`: every attempt
  runs in its own ``spawn``-ed process under a watchdog, failures are
  classified and retried with backoff, repeat offenders are
  quarantined (the campaign finishes *degraded*, never dead), and
  every event lands in the directory's ``failures.jsonl``.
"""

from __future__ import annotations

import contextlib
import os
import time
from typing import Optional

import numpy as np

from ..obs import runtime as obs_runtime
from ..obs.tracing import derive_span_id
from ..power.simulator import PowerTraceSimulator
from .chaos import ChaosConfig
from .errors import DATA_INTEGRITY, ScheduleMismatchError
from .progress import (
    CampaignMetrics,
    CampaignReporter,
    NullReporter,
    ShardEvent,
)
from .spec import CampaignSpec, derive_rng, derive_seed
from .store import ShardRecord, TraceStore
from .supervisor import FailureLog, Quarantine, RetryPolicy, ShardSupervisor

__all__ = ["AcquisitionEngine", "acquire_shard", "default_workers",
           "random_protocol_point"]


def default_workers(requested: Optional[int] = None) -> int:
    """Resolve a worker count (None -> all cores, capped at 8)."""
    if requested is not None:
        if requested < 1:
            raise ValueError("worker count must be positive")
        return requested
    return max(1, min(8, os.cpu_count() or 1))


def random_protocol_point(domain, rng):
    """One random prime-order-subgroup point with x != 0.

    Doubling a random curve point lands in the order-n subgroup for
    the cofactor-2 Koblitz/binary curves used here; protocol points
    always satisfy x != 0.
    """
    curve = domain.curve
    while True:
        p = curve.double(curve.random_point(rng))
        if not p.is_infinity and p.x != 0:
            return p


def acquire_shard(spec: CampaignSpec, directory: str,
                  shard_index: int) -> dict:
    """Simulate and write one shard; returns its manifest record dict.

    Runs in a worker process (but is an ordinary function — tests call
    it inline).  RNG streams are derived per shard:

    * ``points/<shard>`` — the per-trace base points,
    * ``z/<shard>``      — the per-trace Z-randomization,
    * ``noise/<shard>``  — the oscilloscope noise (numpy Generator).

    When tracing is on (the coordinator configured :mod:`repro.obs`),
    the shard emits ``shard`` > ``trace`` > ``ladder.step`` spans with
    cycle and µJ attribution and writes its metric snapshot for the
    coordinator to merge; the traces themselves are byte-identical
    either way — observation never perturbs the measurement.
    """
    with obs_runtime.shard_scope(shard_index) as obs:
        return _acquire_shard_observed(spec, directory, shard_index, obs)


def _shard_energy_reporter(spec: CampaignSpec, coprocessor, obs):
    """Per-execution (total µJ, per-cycle consumed) attribution, or a
    no-op when tracing is off (the energy model costs a calibration
    point-multiply, so it is only built under observation)."""
    if obs is None:
        return None
    from ..power.energy import calibrate_energy_model

    model = calibrate_energy_model(coprocessor)

    def attribute(execution):
        report = model.report(execution)
        consumed = model.leakage_model.consumed(execution)
        return report.energy_joules * 1e6, consumed

    return attribute


def _acquire_shard_observed(spec: CampaignSpec, directory: str,
                            shard_index: int, obs) -> dict:
    started = time.perf_counter()
    coprocessor = spec.build_coprocessor()
    simulator = PowerTraceSimulator(
        noise_sigma=spec.noise_sigma,
        seed=derive_seed(spec.seed, "noise", shard_index),
    )
    point_rng = derive_rng(spec.seed, "points", shard_index)
    z_rng = derive_rng(spec.seed, "z", shard_index)
    key = spec.resolve_key()
    field = coprocessor.domain.field
    attribute = _shard_energy_reporter(spec, coprocessor, obs)

    n = spec.shard_trace_count(shard_index)
    rows, points = [], []
    z_values = [] if spec.scenario == "known_randomness" else None
    iteration_slices = None
    key_bits = None
    shard_uj = 0.0
    with contextlib.ExitStack() as stack:
        shard_span = None
        if obs is not None:
            # the shard's parent is the engine's root span, derived —
            # not communicated — so worker and coordinator agree on it.
            root_id = derive_span_id(obs.tracer.trace_id, None,
                                     "campaign.acquire", 0)
            shard_span = stack.enter_context(obs.tracer.span(
                "shard", key=shard_index, parent_id=root_id,
                shard=shard_index,
            ))
        for trace_index in range(n):
            point = random_protocol_point(coprocessor.domain, point_rng)
            if spec.scenario == "unprotected":
                z0 = 1
            else:
                z0 = 0
                while z0 == 0:
                    z0 = z_rng.getrandbits(field.m) & (field.order - 1)
            with contextlib.ExitStack() as trace_stack:
                trace_span = None
                if obs is not None:
                    trace_span = trace_stack.enter_context(
                        obs.tracer.span("trace", key=trace_index)
                    )
                execution = coprocessor.point_multiply(
                    key,
                    point,
                    initial_z=z0,
                    max_iterations=spec.max_iterations,
                    recover_y=False,
                )
                rows.append(simulator.measure(execution))
                if trace_span is not None:
                    uj = _attribute_trace(obs, trace_span, execution,
                                          attribute)
                    shard_uj += uj
            points.append(point)
            if z_values is not None:
                z_values.append(z0)
            if iteration_slices is None:
                iteration_slices = execution.iteration_slices()
                key_bits = list(execution.key_bits)
        if shard_span is not None:
            shard_span.set(uj=shard_uj, traces=n)
            obs.registry.counter(
                "repro_campaign_energy_uj_total",
                "simulated microjoules across acquired traces",
            ).inc(shard_uj)

    store = TraceStore(directory)
    record = store.write_shard(shard_index, np.vstack(rows), points, z_values)
    record["wall_seconds"] = time.perf_counter() - started
    record["iteration_slices"] = iteration_slices
    record["key_bits"] = key_bits
    return record


def _attribute_trace(obs, trace_span, execution, attribute) -> float:
    """Set the trace span's cycles/µJ and emit its ladder.step events.

    Each ladder iteration's share is its fraction of the execution's
    per-cycle consumed charge, so the children partition exactly the
    window they cover and the prologue/epilogue stays with the trace —
    the rollup's total equals the model's total by construction.
    """
    uj, consumed = attribute(execution)
    trace_span.set(cycles=execution.cycles, uj=uj)
    total = float(consumed.sum())
    for step_index, span in enumerate(execution.iterations):
        share = 0.0
        if total > 0:
            share = uj * float(
                consumed[span.start:span.end].sum()
            ) / total
        obs.tracer.event(
            "ladder.step", key=step_index, level=2,
            cycles=span.end - span.start, uj=share, bit=span.key_bit,
        )
    return uj


class AcquisitionEngine:
    """Coordinates a campaign: plan, fan out, checkpoint, report.

    Parameters
    ----------
    directory:
        Campaign directory (created if needed).
    spec:
        What to acquire; must match the directory's manifest when
        resuming.
    workers:
        Process count (1 = run inline, no processes); None picks from
        the machine's core count.
    reporter:
        Progress observer (see :mod:`repro.campaign.progress`).
    verify_resume:
        On resume, digest-check shards already on disk and re-acquire
        any that fail (slower start, but catches torn writes).
    shard_timeout:
        Watchdog seconds per shard attempt (worker processes only);
        None disables the watchdog.
    retry_policy:
        :class:`~repro.campaign.supervisor.RetryPolicy` governing
        backoff and quarantine; None uses the defaults.
    chaos:
        Optional :class:`~repro.campaign.chaos.ChaosConfig` injecting
        seeded faults into every shard attempt (tests/CI only).
    """

    def __init__(
        self,
        directory: str,
        spec: CampaignSpec,
        workers: Optional[int] = None,
        reporter: Optional[CampaignReporter] = None,
        verify_resume: bool = True,
        shard_timeout: Optional[float] = None,
        retry_policy: Optional[RetryPolicy] = None,
        chaos: Optional[ChaosConfig] = None,
    ):
        self.directory = str(directory)
        self.spec = spec
        self.workers = default_workers(workers)
        self.reporter = reporter or NullReporter()
        self.verify_resume = verify_resume
        self.shard_timeout = shard_timeout
        self.retry_policy = retry_policy or RetryPolicy()
        self.chaos = chaos
        self.failure_log = FailureLog(self.directory)
        self.quarantine = Quarantine(self.directory)
        #: "clean" or "degraded" after :meth:`run`; None before.
        self.outcome: Optional[str] = None

    # ------------------------------------------------------------------

    def plan(self) -> tuple:
        """(store, pending shard indices) after manifest reconciliation."""
        store = TraceStore(self.directory)
        store.initialize(self.spec)
        pending = store.missing_shards(verify_digests=self.verify_resume)
        recorded_but_bad = [
            i for i in pending if any(r.index == i for r in store.shard_records)
        ]
        if recorded_but_bad:
            store.forget_shards(recorded_but_bad)
            store.save_manifest()
        return store, pending

    def _absorb(self, store: TraceStore, record: dict) -> ShardRecord:
        """Fold one worker result into the manifest (checkpoint)."""
        record = dict(record)
        iteration_slices = [tuple(s) for s in record.pop("iteration_slices")]
        key_bits = list(record.pop("key_bits"))
        if not store.iteration_slices:
            store.iteration_slices = iteration_slices
            store.key_bits = key_bits
        elif (store.iteration_slices != iteration_slices
              or store.key_bits != key_bits):
            raise ScheduleMismatchError(
                "shards disagree on the iteration schedule — the device "
                "is not constant-time, or the spec changed under us",
                shard_index=record.get("index"),
                spec_digest=self.spec.digest(),
                kind=DATA_INTEGRITY,
            )
        shard = ShardRecord.from_dict(record)
        store.record_shard(shard)
        store.save_manifest()
        return shard

    def run(self) -> TraceStore:
        """Acquire every missing, non-quarantined shard.

        Returns the store — complete, or degraded when shards are
        quarantined (check :attr:`outcome` / ``metrics.degraded``;
        ``campaign doctor --clear`` releases quarantined shards for
        the next run).
        """
        started = time.perf_counter()
        obs = obs_runtime.current()
        with contextlib.ExitStack() as stack:
            root_span = None
            if obs is not None:
                # key=0 and no parent: this is the id every shard
                # worker independently derives as its parent.
                root_span = stack.enter_context(obs.tracer.span(
                    "campaign.acquire", key=0,
                    spec=self.spec.digest(),
                    traces=self.spec.n_traces,
                    shards=self.spec.n_shards,
                ))
            with (obs.tracer.span("campaign.plan")
                  if obs is not None else contextlib.nullcontext()):
                store, pending = self.plan()
            spec = self.spec
            held = [i for i in self.quarantine.indices()
                    if i in set(pending)]
            attemptable = [i for i in pending if i not in set(held)]
            metrics = CampaignMetrics(
                total_shards=spec.n_shards,
                total_traces=spec.n_traces,
                skipped_shards=spec.n_shards - len(pending),
                quarantined_shards=list(held),
            )
            workers = min(self.workers, len(attemptable)) or 1
            self.reporter.on_start(spec.n_shards, spec.n_traces,
                                   len(attemptable), workers)
            completed: list = []
            if attemptable:
                def on_success(record: dict, attempt: int) -> None:
                    shard = self._absorb(store, record)
                    completed.append(shard.index)
                    self._note_shard(store, shard, metrics, started)

                supervisor = ShardSupervisor(
                    spec, self.directory,
                    workers=workers,
                    use_processes=self.workers > 1,
                    policy=self.retry_policy,
                    chaos=self.chaos,
                    shard_timeout=self.shard_timeout,
                    on_success=on_success,
                    on_event=self._on_failure_event,
                )
                result = supervisor.run(attemptable)
                metrics.retried_attempts = result.retried_attempts
                metrics.failure_events = result.failure_events
                metrics.quarantined_shards = sorted(
                    set(held) | set(result.quarantined)
                )
            metrics.elapsed_seconds = time.perf_counter() - started
            self.metrics = metrics
            self.outcome = ("degraded" if metrics.quarantined_shards
                            else "clean")
            if obs is not None:
                self._record_run_metrics(obs, metrics, completed)
                root_span.set(outcome=self.outcome,
                              acquired=metrics.acquired_shards,
                              quarantined=len(metrics.quarantined_shards))
            self.reporter.on_finish(metrics)
        return store

    def _on_failure_event(self, event) -> None:
        obs = obs_runtime.current()
        if obs is not None:
            obs.registry.counter(
                "repro_campaign_failures_total",
                "failed shard attempts by kind and action",
            ).inc(kind=event.kind, action=event.action)
        self.reporter.on_failure(event)

    def _record_run_metrics(self, obs, metrics: CampaignMetrics,
                            completed: list) -> None:
        """Fold worker snapshots + run totals into the coordinator.

        Shard snapshots merge in shard order (not completion order),
        so the final registry is identical whatever the scheduling.
        """
        obs_runtime.merge_shard_metrics(obs, completed)
        registry = obs.registry
        registry.counter(
            "repro_campaign_shards_total", "shards acquired this run",
        ).inc(metrics.acquired_shards)
        registry.counter(
            "repro_campaign_traces_total", "traces acquired this run",
        ).inc(metrics.acquired_traces)
        registry.counter(
            "repro_campaign_retries_total",
            "failed attempts that were retried",
        ).inc(metrics.retried_attempts)
        registry.gauge(
            "repro_campaign_quarantined", "shards quarantined",
        ).set(len(metrics.quarantined_shards))
        registry.gauge(
            "repro_campaign_resumed_shards",
            "shards already on disk when this run started",
        ).set(metrics.skipped_shards)
        walls = registry.histogram(
            "repro_campaign_shard_wall_seconds",
            "per-shard acquisition wall clock",
            buckets=(0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0),
        )
        for wall in metrics.shard_walls:
            walls.observe(wall)
        registry.gauge(
            "repro_campaign_rate_traces_per_second",
            "coordinator-side acquisition throughput",
        ).set(metrics.traces_per_second)

    def _note_shard(self, store, shard, metrics, started) -> None:
        metrics.acquired_shards += 1
        metrics.acquired_traces += shard.n_traces
        metrics.shard_walls.append(shard.wall_seconds)
        elapsed = time.perf_counter() - started
        done_shards = metrics.acquired_shards + metrics.skipped_shards
        done_traces = store.n_traces_on_disk
        rate = metrics.acquired_traces / elapsed if elapsed > 0 else 0.0
        remaining = metrics.total_traces - done_traces
        eta = remaining / rate if rate > 0 else float("inf")
        self.reporter.on_shard(ShardEvent(
            index=shard.index,
            n_traces=shard.n_traces,
            wall_seconds=shard.wall_seconds,
            done_shards=done_shards,
            total_shards=metrics.total_shards,
            done_traces=done_traces,
            total_traces=metrics.total_traces,
            elapsed_seconds=elapsed,
            traces_per_second=rate,
            eta_seconds=eta,
        ))
