"""Parallel, resumable trace acquisition.

The engine fans shards out over a ``multiprocessing`` pool.  Each
shard is a self-contained unit of work: the worker rebuilds the device
under test from the (JSON-serializable) spec, derives its own RNG
streams from ``(master seed, stream label, shard index)``, simulates
its traces and writes its two shard files — no state crosses process
boundaries except the spec going in and a small record dict coming
back.  That is what makes the campaign:

* **deterministic** — a shard's bytes depend only on the spec, never
  on which worker ran it, in what order, or alongside what else;
* **resumable** — the coordinator checkpoints the manifest after every
  completed shard, so a killed campaign re-run with the same spec
  acquires only the missing shards;
* **scalable** — the coprocessor simulation is pure Python and CPU
  bound, so a process pool (not threads, which the GIL would
  serialize) is the right executor.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Optional

import numpy as np

from ..power.simulator import PowerTraceSimulator
from .progress import (
    CampaignMetrics,
    CampaignReporter,
    NullReporter,
    ShardEvent,
)
from .spec import CampaignSpec, derive_rng, derive_seed
from .store import ShardRecord, TraceStore

__all__ = ["AcquisitionEngine", "acquire_shard", "default_workers",
           "random_protocol_point"]


def default_workers(requested: Optional[int] = None) -> int:
    """Resolve a worker count (None -> all cores, capped at 8)."""
    if requested is not None:
        if requested < 1:
            raise ValueError("worker count must be positive")
        return requested
    return max(1, min(8, os.cpu_count() or 1))


def random_protocol_point(domain, rng):
    """One random prime-order-subgroup point with x != 0.

    Doubling a random curve point lands in the order-n subgroup for
    the cofactor-2 Koblitz/binary curves used here; protocol points
    always satisfy x != 0.
    """
    curve = domain.curve
    while True:
        p = curve.double(curve.random_point(rng))
        if not p.is_infinity and p.x != 0:
            return p


def acquire_shard(spec: CampaignSpec, directory: str,
                  shard_index: int) -> dict:
    """Simulate and write one shard; returns its manifest record dict.

    Runs in a worker process (but is an ordinary function — tests call
    it inline).  RNG streams are derived per shard:

    * ``points/<shard>`` — the per-trace base points,
    * ``z/<shard>``      — the per-trace Z-randomization,
    * ``noise/<shard>``  — the oscilloscope noise (numpy Generator).
    """
    started = time.perf_counter()
    coprocessor = spec.build_coprocessor()
    simulator = PowerTraceSimulator(
        noise_sigma=spec.noise_sigma,
        seed=derive_seed(spec.seed, "noise", shard_index),
    )
    point_rng = derive_rng(spec.seed, "points", shard_index)
    z_rng = derive_rng(spec.seed, "z", shard_index)
    key = spec.resolve_key()
    field = coprocessor.domain.field

    n = spec.shard_trace_count(shard_index)
    rows, points = [], []
    z_values = [] if spec.scenario == "known_randomness" else None
    iteration_slices = None
    key_bits = None
    for _ in range(n):
        point = random_protocol_point(coprocessor.domain, point_rng)
        if spec.scenario == "unprotected":
            z0 = 1
        else:
            z0 = 0
            while z0 == 0:
                z0 = z_rng.getrandbits(field.m) & (field.order - 1)
        execution = coprocessor.point_multiply(
            key,
            point,
            initial_z=z0,
            max_iterations=spec.max_iterations,
            recover_y=False,
        )
        rows.append(simulator.measure(execution))
        points.append(point)
        if z_values is not None:
            z_values.append(z0)
        if iteration_slices is None:
            iteration_slices = execution.iteration_slices()
            key_bits = list(execution.key_bits)

    store = TraceStore(directory)
    record = store.write_shard(shard_index, np.vstack(rows), points, z_values)
    record["wall_seconds"] = time.perf_counter() - started
    record["iteration_slices"] = iteration_slices
    record["key_bits"] = key_bits
    return record


def _acquire_shard_task(args) -> dict:
    spec_dict, directory, shard_index = args
    return acquire_shard(CampaignSpec.from_dict(spec_dict), directory,
                         shard_index)


class AcquisitionEngine:
    """Coordinates a campaign: plan, fan out, checkpoint, report.

    Parameters
    ----------
    directory:
        Campaign directory (created if needed).
    spec:
        What to acquire; must match the directory's manifest when
        resuming.
    workers:
        Process count (1 = run inline, no pool); None picks from the
        machine's core count.
    reporter:
        Progress observer (see :mod:`repro.campaign.progress`).
    verify_resume:
        On resume, digest-check shards already on disk and re-acquire
        any that fail (slower start, but catches torn writes).
    """

    def __init__(
        self,
        directory: str,
        spec: CampaignSpec,
        workers: Optional[int] = None,
        reporter: Optional[CampaignReporter] = None,
        verify_resume: bool = True,
    ):
        self.directory = str(directory)
        self.spec = spec
        self.workers = default_workers(workers)
        self.reporter = reporter or NullReporter()
        self.verify_resume = verify_resume

    # ------------------------------------------------------------------

    def plan(self) -> tuple:
        """(store, pending shard indices) after manifest reconciliation."""
        store = TraceStore(self.directory)
        store.initialize(self.spec)
        pending = store.missing_shards(verify_digests=self.verify_resume)
        recorded_but_bad = [
            i for i in pending if any(r.index == i for r in store.shard_records)
        ]
        if recorded_but_bad:
            store.forget_shards(recorded_but_bad)
            store.save_manifest()
        return store, pending

    def _absorb(self, store: TraceStore, record: dict) -> ShardRecord:
        """Fold one worker result into the manifest (checkpoint)."""
        iteration_slices = [tuple(s) for s in record.pop("iteration_slices")]
        key_bits = list(record.pop("key_bits"))
        if not store.iteration_slices:
            store.iteration_slices = iteration_slices
            store.key_bits = key_bits
        elif (store.iteration_slices != iteration_slices
              or store.key_bits != key_bits):
            raise AssertionError(
                "shards disagree on the iteration schedule — the device "
                "is not constant-time, or the spec changed under us"
            )
        shard = ShardRecord.from_dict(record)
        store.record_shard(shard)
        store.save_manifest()
        return shard

    def run(self) -> TraceStore:
        """Acquire every missing shard; returns the completed store."""
        started = time.perf_counter()
        store, pending = self.plan()
        spec = self.spec
        metrics = CampaignMetrics(
            total_shards=spec.n_shards,
            total_traces=spec.n_traces,
            skipped_shards=spec.n_shards - len(pending),
        )
        workers = min(self.workers, len(pending)) or 1
        self.reporter.on_start(spec.n_shards, spec.n_traces, len(pending),
                               workers)
        if pending:
            tasks = [(spec.to_dict(), self.directory, i) for i in pending]
            if workers == 1:
                results = map(_acquire_shard_task, tasks)
                self._drain(store, results, metrics, started)
            else:
                with multiprocessing.get_context().Pool(workers) as pool:
                    results = pool.imap_unordered(_acquire_shard_task, tasks)
                    self._drain(store, results, metrics, started)
        metrics.elapsed_seconds = time.perf_counter() - started
        self.metrics = metrics
        self.reporter.on_finish(metrics)
        return store

    def _drain(self, store, results, metrics, started) -> None:
        for record in results:
            shard = self._absorb(store, record)
            metrics.acquired_shards += 1
            metrics.acquired_traces += shard.n_traces
            metrics.shard_walls.append(shard.wall_seconds)
            elapsed = time.perf_counter() - started
            done_shards = metrics.acquired_shards + metrics.skipped_shards
            done_traces = store.n_traces_on_disk
            rate = metrics.acquired_traces / elapsed if elapsed > 0 else 0.0
            remaining = metrics.total_traces - done_traces
            eta = remaining / rate if rate > 0 else float("inf")
            self.reporter.on_shard(ShardEvent(
                index=shard.index,
                n_traces=shard.n_traces,
                wall_seconds=shard.wall_seconds,
                done_shards=done_shards,
                total_shards=metrics.total_shards,
                done_traces=done_traces,
                total_traces=metrics.total_traces,
                elapsed_seconds=elapsed,
                traces_per_second=rate,
                eta_seconds=eta,
            ))
