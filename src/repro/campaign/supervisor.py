"""Fault-tolerant shard execution: supervise, retry, quarantine, log.

The first engine fanned shards out with ``Pool.imap_unordered`` and
hoped: one worker exception aborted the whole campaign, a hung worker
stalled it forever, and nothing recorded *why*.  This module replaces
hope with supervision:

* each shard attempt runs in its **own spawned process** (a crashed or
  hung attempt can be reaped or killed without poisoning a shared
  pool; ``spawn`` also sidesteps the fork-vs-BLAS-threads deadlock);
* a **watchdog deadline** per attempt turns hangs into ordinary,
  retryable failures;
* failures are **classified** (:mod:`repro.campaign.errors`) and
  **retried** with capped exponential backoff and deterministic
  jitter; shards that keep failing are **quarantined** so the rest of
  the campaign completes degraded instead of dying;
* every worker result passes a **post-completion integrity check**
  (the files on disk re-hashed against the digests the worker
  reported) before it may touch the manifest;
* every failure is appended to ``failures.jsonl`` in the campaign
  directory — the campaign's black box recorder — and the current
  quarantine set lives in ``quarantine.json`` until
  ``campaign doctor --clear`` releases it.

With ``workers=1`` the supervisor runs attempts inline (no processes,
no watchdog) but keeps the identical retry/quarantine/logging policy,
so tests exercise the recovery matrix without spawning anything.
"""

from __future__ import annotations

import heapq
import json
import multiprocessing
import os
import time
from collections import deque
from dataclasses import dataclass, field as dataclass_field
from multiprocessing.connection import wait as _wait_for_any
from typing import Callable, Optional

from .chaos import ChaosConfig, chaos_acquire_shard
from .errors import (
    DATA_INTEGRITY,
    TRANSIENT,
    classify_exception,
)
from .spec import CampaignSpec, derive_seed
from .store import _atomic_write_bytes, file_digest

__all__ = ["RetryPolicy", "FailureEvent", "FailureLog", "Quarantine",
           "ShardSupervisor", "SupervisorOutcome", "run_shard_attempt",
           "FAILURES_NAME", "QUARANTINE_NAME"]

FAILURES_NAME = "failures.jsonl"
QUARANTINE_NAME = "quarantine.json"


# ----------------------------------------------------------------------
# retry policy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetryPolicy:
    """How many times, and how patiently, a failing shard is retried.

    ``delay`` grows as ``base_delay * 2**attempt`` capped at
    ``max_delay``, with a multiplicative jitter of ±``jitter`` whose
    draw is *derived* from ``(seed, shard, attempt)`` — desynchronized
    retries without nondeterministic tests.
    """

    max_attempts: int = 4
    deterministic_attempts: int = 2
    base_delay: float = 0.25
    max_delay: float = 30.0
    jitter: float = 0.25

    def __post_init__(self):
        if self.max_attempts < 1 or self.deterministic_attempts < 1:
            raise ValueError("attempt budgets must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def attempts_for(self, kind: str) -> int:
        """Budget of *failures of this kind* before quarantine.

        A shard is quarantined when its failures of any single kind
        exhaust that kind's budget, or its total attempts reach
        ``max_attempts`` — so one deterministic hiccup on a shard that
        already weathered a transient crash does not condemn it, but
        two deterministic failures (the task itself is broken) do.
        """
        from .errors import DETERMINISTIC

        if kind == DETERMINISTIC:
            return min(self.deterministic_attempts, self.max_attempts)
        return self.max_attempts

    def delay(self, attempt: int, shard_index: int = 0,
              seed: int = 0) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        raw = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if raw <= 0.0 or self.jitter <= 0.0:
            return max(raw, 0.0)
        draw = derive_seed(seed, "backoff", shard_index * 65537 + attempt)
        unit = draw / 2.0 ** 64                      # uniform [0, 1)
        return raw * (1.0 + self.jitter * (2.0 * unit - 1.0))


# ----------------------------------------------------------------------
# failure log + quarantine (the on-disk state)
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class FailureEvent:
    """One failed shard attempt and what the supervisor did about it."""

    shard_index: int
    attempt: int             # 0-based attempt number that failed
    kind: str                # transient / deterministic / data_integrity
    reason: str
    action: str              # "retry" or "quarantine"
    delay_seconds: float = 0.0
    wall_time: float = 0.0
    spec_digest: str = ""
    attempt_wall_seconds: float = 0.0   # how long the attempt ran
    worker_pid: int = 0                 # 0 when unknown (e.g. old logs)

    def to_dict(self) -> dict:
        return {
            "shard": self.shard_index,
            "attempt": self.attempt,
            "kind": self.kind,
            "reason": self.reason,
            "action": self.action,
            "delay_seconds": round(self.delay_seconds, 4),
            "wall_time": self.wall_time,
            "spec_digest": self.spec_digest,
            "attempt_wall_seconds": round(self.attempt_wall_seconds, 4),
            "worker_pid": self.worker_pid,
        }


class FailureLog:
    """Append-only ``failures.jsonl`` in the campaign directory.

    One JSON object per line, flushed per event, so the history
    survives whatever killed the campaign.  Reading tolerates a
    truncated final line (a crash mid-append) by skipping it.
    """

    def __init__(self, directory: str):
        self.directory = str(directory)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, FAILURES_NAME)

    @property
    def exists(self) -> bool:
        return os.path.exists(self.path)

    def append(self, event: FailureEvent) -> None:
        os.makedirs(self.directory, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as f:
            f.write(json.dumps(event.to_dict()) + "\n")
            f.flush()
            os.fsync(f.fileno())

    def events(self) -> list:
        """Every recorded event as a dict, oldest first."""
        if not self.exists:
            return []
        events = []
        with open(self.path, "r", encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    continue   # torn final line from a crashed appender
        return events

    def tally(self) -> dict:
        """``{"by_kind": {...}, "retries": n, "quarantines": n}``."""
        by_kind: dict = {}
        retries = quarantines = 0
        for event in self.events():
            kind = event.get("kind", "?")
            by_kind[kind] = by_kind.get(kind, 0) + 1
            if event.get("action") == "retry":
                retries += 1
            elif event.get("action") == "quarantine":
                quarantines += 1
        return {"by_kind": by_kind, "retries": retries,
                "quarantines": quarantines}


class Quarantine:
    """The set of shards acquisition refuses to touch until cleared.

    Persisted as ``quarantine.json`` (atomic write) so a resumed
    campaign skips known-bad shards instead of burning its retry
    budget on them again; ``campaign doctor --clear`` deletes the file
    and the next acquire re-attempts them.
    """

    def __init__(self, directory: str):
        self.directory = str(directory)

    @property
    def path(self) -> str:
        return os.path.join(self.directory, QUARANTINE_NAME)

    def entries(self) -> dict:
        """``{shard_index: {kind, reason, attempts}}`` currently held."""
        if not os.path.exists(self.path):
            return {}
        with open(self.path, "r", encoding="utf-8") as f:
            raw = json.load(f)
        return {int(k): v for k, v in raw.get("shards", {}).items()}

    def indices(self) -> list:
        return sorted(self.entries())

    def add(self, shard_index: int, kind: str, reason: str,
            attempts: int) -> None:
        entries = self.entries()
        entries[shard_index] = {
            "kind": kind, "reason": reason, "attempts": attempts,
        }
        os.makedirs(self.directory, exist_ok=True)
        payload = json.dumps(
            {"shards": {str(k): entries[k] for k in sorted(entries)}},
            indent=1,
        ).encode()
        _atomic_write_bytes(self.path, payload)

    def clear(self) -> list:
        """Release every quarantined shard; returns their indices."""
        released = self.indices()
        if os.path.exists(self.path):
            os.remove(self.path)
        return released


# ----------------------------------------------------------------------
# the shard task (worker side)
# ----------------------------------------------------------------------

def run_shard_attempt(spec_dict: dict, directory: str, shard_index: int,
                      attempt: int, chaos_dict: Optional[dict]) -> dict:
    """One shard attempt, with chaos faults applied when configured.

    Module-level (and dict-in, dict-out) so it crosses the ``spawn``
    pickle boundary; also called inline when ``workers=1``.
    """
    from .acquire import acquire_shard

    spec = CampaignSpec.from_dict(spec_dict)
    if chaos_dict is not None:
        return chaos_acquire_shard(spec, directory, shard_index, attempt,
                                   ChaosConfig.from_dict(chaos_dict))
    return acquire_shard(spec, directory, shard_index)


def _shard_worker_main(conn, task, spec_dict, directory, shard_index,
                       attempt, chaos_dict) -> None:
    """Entry point of a supervised worker process.

    Sends exactly one ``("ok", record)`` or ``("error", info)`` on the
    pipe; a hard crash (chaos ``os._exit``, a segfault, ``kill -9``)
    sends nothing, which the supervisor reads as a transient failure.
    """
    try:
        record = task(spec_dict, directory, shard_index, attempt,
                      chaos_dict)
        conn.send(("ok", record))
    except BaseException as exc:      # noqa: BLE001 — ferry it, typed
        try:
            conn.send(("error", {"type": type(exc).__name__,
                                 "message": str(exc)}))
        except Exception:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass


# ----------------------------------------------------------------------
# the supervisor (coordinator side)
# ----------------------------------------------------------------------

@dataclass
class SupervisorOutcome:
    """What one supervised run accomplished (and failed to)."""

    completed: list = dataclass_field(default_factory=list)
    quarantined: list = dataclass_field(default_factory=list)
    retried_attempts: int = 0
    failure_events: int = 0


class _Active:
    """One in-flight worker process and its result pipe."""

    __slots__ = ("shard", "attempt", "process", "conn", "deadline",
                 "started")

    def __init__(self, shard, attempt, process, conn, deadline, started):
        self.shard = shard
        self.attempt = attempt
        self.process = process
        self.conn = conn
        self.deadline = deadline
        self.started = started


class ShardSupervisor:
    """Runs shard attempts under the retry/quarantine policy.

    Parameters
    ----------
    spec, directory:
        The campaign being acquired.
    workers:
        1 = inline (no processes, no watchdog); >1 = one spawned
        process per in-flight shard attempt, at most ``workers`` live.
    policy:
        :class:`RetryPolicy`; defaults to the standard budgets.
    chaos:
        Optional :class:`~repro.campaign.chaos.ChaosConfig` forwarded
        to every attempt.  Crash/hang faults require ``workers > 1``.
    shard_timeout:
        Watchdog seconds per attempt (process mode only); None
        disables the watchdog.
    on_success:
        Called with ``(record_dict, attempt)`` after the integrity
        check passes — the engine absorbs/checkpoints here.  An
        exception from this callback is fatal (active workers are
        killed, the error propagates).
    on_event:
        Called with each :class:`FailureEvent` (reporters hook here).
    task:
        The attempt callable (tests inject flaky ones); must be
        picklable for process mode.
    use_processes:
        Force process (True) or inline (False) execution; default
        follows ``workers > 1``.  Lets the engine keep real worker
        processes even when only one shard remains pending.
    """

    def __init__(self, spec: CampaignSpec, directory: str, *,
                 workers: int = 1,
                 policy: Optional[RetryPolicy] = None,
                 chaos: Optional[ChaosConfig] = None,
                 shard_timeout: Optional[float] = None,
                 on_success: Optional[Callable] = None,
                 on_event: Optional[Callable] = None,
                 task: Callable = run_shard_attempt,
                 sleep: Callable = time.sleep,
                 use_processes: Optional[bool] = None):
        if workers < 1:
            raise ValueError("worker count must be positive")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive (or None)")
        if use_processes is None:
            use_processes = workers > 1
        if chaos is not None and chaos.needs_processes and not use_processes:
            raise ValueError(
                "chaos crash/hang faults need worker processes "
                "(workers > 1): inline faults would kill or stall the "
                "coordinator itself"
            )
        self.use_processes = use_processes
        self.spec = spec
        self.spec_dict = spec.to_dict()
        self.spec_digest = spec.digest()
        self.directory = str(directory)
        self.workers = workers
        self.policy = policy or RetryPolicy()
        self.chaos_dict = None if chaos is None else chaos.to_dict()
        self.shard_timeout = shard_timeout
        self.on_success = on_success or (lambda record, attempt: None)
        self.on_event = on_event
        self.task = task
        self.sleep = sleep
        self.failure_log = FailureLog(self.directory)
        self.quarantine = Quarantine(self.directory)

    # ------------------------------------------------------------------

    def run(self, pending: list) -> SupervisorOutcome:
        """Drive every pending shard to completion or quarantine."""
        outcome = SupervisorOutcome()
        self._kind_counts = {}        # {shard: {kind: failures}}
        if not pending:
            return outcome
        if self.use_processes:
            self._run_processes(sorted(pending), outcome)
        else:
            self._run_inline(sorted(pending), outcome)
        return outcome

    # ------------------------------------------------------------------
    # inline mode
    # ------------------------------------------------------------------

    def _run_inline(self, pending: list, outcome: SupervisorOutcome) -> None:
        queue = deque((index, 0, 0.0) for index in pending)
        while queue:
            now = time.monotonic()
            position = next(
                (k for k, item in enumerate(queue) if item[2] <= now), None
            )
            if position is None:      # every remaining item backs off
                earliest = min(item[2] for item in queue)
                self.sleep(max(0.0, earliest - now))
                continue
            queue.rotate(-position)
            shard, attempt, _ = queue.popleft()

            def schedule(delay, shard=shard, attempt=attempt):
                queue.append((shard, attempt + 1,
                              time.monotonic() + delay))

            started = time.monotonic()
            try:
                record = self.task(self.spec_dict, self.directory, shard,
                                   attempt, self.chaos_dict)
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                self._failed(shard, attempt,
                             classify_exception(type(exc).__name__),
                             f"{type(exc).__name__}: {exc}",
                             outcome, schedule,
                             attempt_wall=time.monotonic() - started,
                             pid=os.getpid())
                continue
            self._complete(shard, attempt, record, outcome, schedule,
                           attempt_wall=time.monotonic() - started,
                           pid=os.getpid())

    # ------------------------------------------------------------------
    # process mode
    # ------------------------------------------------------------------

    def _run_processes(self, pending: list,
                       outcome: SupervisorOutcome) -> None:
        # spawn, not fork: fork can deadlock with NumPy/BLAS threads
        # and silently shares parent state; spawn starts clean.
        context = multiprocessing.get_context("spawn")
        queue = deque((index, 0) for index in pending)
        retries: list = []                     # heap of (ready_at, shard, attempt)
        active: list = []

        def schedule_for(shard, attempt):
            def schedule(delay):
                heapq.heappush(
                    retries,
                    (time.monotonic() + delay, shard, attempt + 1),
                )
            return schedule

        try:
            while queue or retries or active:
                now = time.monotonic()
                while retries and retries[0][0] <= now:
                    _, shard, attempt = heapq.heappop(retries)
                    queue.append((shard, attempt))
                while queue and len(active) < self.workers:
                    shard, attempt = queue.popleft()
                    active.append(self._launch(context, shard, attempt))
                if not active:                 # only future retries left
                    self.sleep(max(0.0, retries[0][0] - time.monotonic()))
                    continue
                _wait_for_any(
                    [obj for slot in active
                     for obj in (slot.conn, slot.process.sentinel)],
                    timeout=self._wait_timeout(retries, active),
                )
                active = [
                    slot for slot in active
                    if not self._settle(slot, outcome,
                                        schedule_for(slot.shard,
                                                     slot.attempt))
                ]
        except BaseException:
            for slot in active:
                self._kill(slot)
            raise

    def _launch(self, context, shard: int, attempt: int) -> _Active:
        receiver, sender = context.Pipe(duplex=False)
        process = context.Process(
            target=_shard_worker_main,
            args=(sender, self.task, self.spec_dict, self.directory,
                  shard, attempt, self.chaos_dict),
            daemon=True,
        )
        process.start()
        sender.close()                # child holds the only send end now
        started = time.monotonic()
        deadline = (None if self.shard_timeout is None
                    else started + self.shard_timeout)
        return _Active(shard, attempt, process, receiver, deadline,
                       started)

    def _wait_timeout(self, retries: list, active: list) -> Optional[float]:
        bounds = [ready_at for ready_at, _, _ in retries[:1]]
        bounds += [slot.deadline for slot in active
                   if slot.deadline is not None]
        if not bounds:
            return None               # sentinel/conn activity wakes us
        return max(0.01, min(bounds) - time.monotonic())

    def _settle(self, slot: _Active, outcome: SupervisorOutcome,
                schedule: Callable) -> bool:
        """Handle one slot; True when it no longer occupies a worker."""
        message = None
        pid = slot.process.pid or 0
        wall = time.monotonic() - slot.started
        if slot.conn.poll():
            try:
                message = slot.conn.recv()
            except (EOFError, OSError):
                message = None        # died mid-send: treat as a crash
        if message is not None:
            tag, payload = message
            self._reap(slot)
            if tag == "ok":
                self._complete(slot.shard, slot.attempt, payload,
                               outcome, schedule,
                               attempt_wall=wall, pid=pid)
            else:
                kind = classify_exception(payload.get("type", ""))
                reason = (f"{payload.get('type', 'Exception')}: "
                          f"{payload.get('message', '')}")
                self._failed(slot.shard, slot.attempt, kind, reason,
                             outcome, schedule,
                             attempt_wall=wall, pid=pid)
            return True
        if not slot.process.is_alive():
            exitcode = slot.process.exitcode
            self._reap(slot)
            self._failed(slot.shard, slot.attempt, TRANSIENT,
                         f"worker exited with code {exitcode} without "
                         "delivering a result",
                         outcome, schedule,
                         attempt_wall=wall, pid=pid)
            return True
        if slot.deadline is not None and time.monotonic() >= slot.deadline:
            self._kill(slot)
            # The worker is gone and took its telemetry with it; the
            # coordinator dumps its own black box with the failure
            # context so the hang leaves a post-mortem artifact (see
            # repro.obs.flightrec).
            from ..obs import runtime as _obs_runtime

            _obs_runtime.flight_dump(
                "watchdog", tag=f"watchdog-{slot.shard:05d}",
                shard=slot.shard, attempt=slot.attempt,
                timeout_s=self.shard_timeout)
            self._failed(slot.shard, slot.attempt, TRANSIENT,
                         f"watchdog: no result within "
                         f"{self.shard_timeout:.1f}s; worker killed",
                         outcome, schedule,
                         attempt_wall=wall, pid=pid)
            return True
        return False

    def _reap(self, slot: _Active) -> None:
        slot.process.join(timeout=5)
        try:
            slot.conn.close()
        except OSError:
            pass

    def _kill(self, slot: _Active) -> None:
        try:
            if slot.process.is_alive():
                slot.process.terminate()
                slot.process.join(timeout=2)
                if slot.process.is_alive():
                    slot.process.kill()
                    slot.process.join(timeout=5)
            else:
                slot.process.join(timeout=1)
        finally:
            try:
                slot.conn.close()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # shared completion / failure policy
    # ------------------------------------------------------------------

    def _complete(self, shard: int, attempt: int, record: dict,
                  outcome: SupervisorOutcome, schedule: Callable,
                  attempt_wall: float = 0.0, pid: int = 0) -> None:
        reason = self._integrity_reason(record)
        if reason is not None:
            self._failed(shard, attempt, DATA_INTEGRITY, reason,
                         outcome, schedule,
                         attempt_wall=attempt_wall, pid=pid)
            return
        self.on_success(record, attempt)
        outcome.completed.append(shard)

    def _integrity_reason(self, record: dict) -> Optional[str]:
        """Re-hash the shard files against the worker's own digests.

        A record may carry an explicit ``"artifacts"`` list of
        ``[relpath, sha256]`` pairs (how non-acquisition tasks such as
        the design-space engine describe their outputs); records
        without one use the acquisition layout's fixed file pair.
        """
        artifacts = record.get("artifacts")
        if artifacts is None:
            artifacts = [(record[file_key], record[digest_key])
                         for file_key, digest_key
                         in (("samples_file", "samples_sha256"),
                             ("aux_file", "aux_sha256"))]
        for relpath, digest in artifacts:
            path = os.path.join(self.directory, relpath)
            if not os.path.exists(path):
                return (f"{relpath} vanished after the worker "
                        "reported success")
            if file_digest(path) != digest:
                return (f"{relpath} on disk does not match the "
                        "digest its writer computed")
        return None

    def _failed(self, shard: int, attempt: int, kind: str, reason: str,
                outcome: SupervisorOutcome, schedule: Callable,
                attempt_wall: float = 0.0, pid: int = 0) -> None:
        attempts_used = attempt + 1
        counts = self._kind_counts.setdefault(shard, {})
        counts[kind] = counts.get(kind, 0) + 1
        if (attempts_used >= self.policy.max_attempts
                or counts[kind] >= self.policy.attempts_for(kind)):
            action, delay = "quarantine", 0.0
            self.quarantine.add(shard, kind=kind, reason=reason,
                                attempts=attempts_used)
            outcome.quarantined.append(shard)
        else:
            action = "retry"
            delay = self.policy.delay(attempt, shard, seed=self.spec.seed)
            outcome.retried_attempts += 1
            schedule(delay)
        event = FailureEvent(
            shard_index=shard, attempt=attempt, kind=kind, reason=reason,
            action=action, delay_seconds=delay, wall_time=time.time(),
            spec_digest=self.spec_digest,
            attempt_wall_seconds=attempt_wall, worker_pid=pid,
        )
        self.failure_log.append(event)
        outcome.failure_events += 1
        if self.on_event is not None:
            self.on_event(event)
