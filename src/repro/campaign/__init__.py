"""``repro.campaign`` — the industrial side of a security evaluation.

The paper's Section 7 numbers are measurement campaigns (200 traces to
break the unprotected core, 20 000 failing against the randomized
one).  This package treats that workload as the data pipeline it is:

* :mod:`~repro.campaign.spec` — a JSON design point from which every
  random choice is derived (seed + shard index), so campaigns are
  bit-for-bit reproducible at any parallelism;
* :mod:`~repro.campaign.acquire` — a multiprocessing acquisition
  engine with per-shard checkpointing and resume;
* :mod:`~repro.campaign.supervisor` — fault-tolerant shard execution:
  watchdog timeouts, classified retries with backoff, quarantine, and
  an append-only ``failures.jsonl``;
* :mod:`~repro.campaign.chaos` — deterministic fault injection
  (crashes, hangs, slowdowns, corruption) for exercising the above;
* :mod:`~repro.campaign.store` — sharded, digest-verified, mmap-read
  trace storage;
* :mod:`~repro.campaign.streaming` — the :mod:`repro.sca` attacks
  re-expressed over online accumulators so analysis never materializes
  an ``(n_traces, n_samples)`` array;
* :mod:`~repro.campaign.progress` — traces/sec, ETA and per-shard
  wall-clock reporting.

Quick start::

    from repro.campaign import AcquisitionEngine, CampaignSpec, StreamingDpa

    spec = CampaignSpec(n_traces=2000, shard_size=250,
                        scenario="unprotected", max_iterations=3, seed=7)
    store = AcquisitionEngine("campaigns/demo", spec, workers=4).run()
    result = StreamingDpa(store).recover_bits(n_bits=2)
"""

from .acquire import (
    AcquisitionEngine,
    acquire_shard,
    default_workers,
    random_protocol_point,
)
from .chaos import (
    CHAOS_CRASH_EXIT_CODE,
    ChaosConfig,
    ChaosInjectedError,
    chaos_acquire_shard,
)
from .errors import (
    DATA_INTEGRITY,
    DETERMINISTIC,
    FAILURE_KINDS,
    TRANSIENT,
    CampaignError,
    PartialStoreError,
    ScheduleMismatchError,
    classify_exception,
)
from .progress import (
    CampaignMetrics,
    CampaignReporter,
    CollectingReporter,
    ConsoleReporter,
    NullReporter,
    ShardEvent,
)
from .spec import SCHEMA_VERSION, CampaignSpec, derive_generator, \
    derive_rng, derive_seed
from .store import CorruptShardError, CoverageReport, ShardRecord, \
    ShardView, TraceStore, file_digest
from .streaming import (
    AttackProvenance,
    OnlineMoments,
    StreamingCpa,
    StreamingDpa,
    store_provenance,
    streaming_average_trace,
    streaming_spa,
    streaming_tvla,
)
from .supervisor import (
    FailureEvent,
    FailureLog,
    Quarantine,
    RetryPolicy,
    ShardSupervisor,
    SupervisorOutcome,
)

__all__ = [
    "AcquisitionEngine",
    "AttackProvenance",
    "CHAOS_CRASH_EXIT_CODE",
    "CampaignError",
    "CampaignMetrics",
    "CampaignReporter",
    "CampaignSpec",
    "ChaosConfig",
    "ChaosInjectedError",
    "CollectingReporter",
    "ConsoleReporter",
    "CorruptShardError",
    "CoverageReport",
    "DATA_INTEGRITY",
    "DETERMINISTIC",
    "FAILURE_KINDS",
    "FailureEvent",
    "FailureLog",
    "NullReporter",
    "OnlineMoments",
    "PartialStoreError",
    "Quarantine",
    "RetryPolicy",
    "SCHEMA_VERSION",
    "ScheduleMismatchError",
    "ShardEvent",
    "ShardRecord",
    "ShardSupervisor",
    "ShardView",
    "StreamingCpa",
    "StreamingDpa",
    "SupervisorOutcome",
    "TRANSIENT",
    "TraceStore",
    "acquire_shard",
    "chaos_acquire_shard",
    "classify_exception",
    "default_workers",
    "derive_generator",
    "derive_rng",
    "derive_seed",
    "file_digest",
    "random_protocol_point",
    "store_provenance",
    "streaming_average_trace",
    "streaming_spa",
    "streaming_tvla",
]
