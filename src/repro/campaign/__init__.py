"""``repro.campaign`` — the industrial side of a security evaluation.

The paper's Section 7 numbers are measurement campaigns (200 traces to
break the unprotected core, 20 000 failing against the randomized
one).  This package treats that workload as the data pipeline it is:

* :mod:`~repro.campaign.spec` — a JSON design point from which every
  random choice is derived (seed + shard index), so campaigns are
  bit-for-bit reproducible at any parallelism;
* :mod:`~repro.campaign.acquire` — a multiprocessing acquisition
  engine with per-shard checkpointing and resume;
* :mod:`~repro.campaign.store` — sharded, digest-verified, mmap-read
  trace storage;
* :mod:`~repro.campaign.streaming` — the :mod:`repro.sca` attacks
  re-expressed over online accumulators so analysis never materializes
  an ``(n_traces, n_samples)`` array;
* :mod:`~repro.campaign.progress` — traces/sec, ETA and per-shard
  wall-clock reporting.

Quick start::

    from repro.campaign import AcquisitionEngine, CampaignSpec, StreamingDpa

    spec = CampaignSpec(n_traces=2000, shard_size=250,
                        scenario="unprotected", max_iterations=3, seed=7)
    store = AcquisitionEngine("campaigns/demo", spec, workers=4).run()
    result = StreamingDpa(store).recover_bits(n_bits=2)
"""

from .acquire import (
    AcquisitionEngine,
    acquire_shard,
    default_workers,
    random_protocol_point,
)
from .progress import (
    CampaignMetrics,
    CampaignReporter,
    CollectingReporter,
    ConsoleReporter,
    NullReporter,
    ShardEvent,
)
from .spec import SCHEMA_VERSION, CampaignSpec, derive_generator, \
    derive_rng, derive_seed
from .store import CorruptShardError, ShardRecord, ShardView, TraceStore, \
    file_digest
from .streaming import (
    OnlineMoments,
    StreamingCpa,
    StreamingDpa,
    streaming_average_trace,
    streaming_spa,
    streaming_tvla,
)

__all__ = [
    "AcquisitionEngine",
    "CampaignMetrics",
    "CampaignReporter",
    "CampaignSpec",
    "CollectingReporter",
    "ConsoleReporter",
    "CorruptShardError",
    "NullReporter",
    "OnlineMoments",
    "SCHEMA_VERSION",
    "ShardEvent",
    "ShardRecord",
    "ShardView",
    "StreamingCpa",
    "StreamingDpa",
    "TraceStore",
    "acquire_shard",
    "default_workers",
    "derive_generator",
    "derive_rng",
    "derive_seed",
    "file_digest",
    "random_protocol_point",
    "streaming_average_trace",
    "streaming_spa",
    "streaming_tvla",
]
