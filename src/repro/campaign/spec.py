"""Campaign specification: one JSON-serializable design point.

A :class:`CampaignSpec` pins down *everything* that determines a
side-channel campaign's measurements: the device configuration, the
evaluation scenario, the campaign size and sharding, the virtual
oscilloscope's noise level, and a single master seed.  Every random
choice in the campaign — the secret key, each trace's base point, each
trace's Z-randomization, the measurement noise — is derived from that
seed and the shard index alone, so a 20 000-trace campaign acquired on
one worker is bit-for-bit identical to the same campaign acquired on
sixteen, and an interrupted campaign resumes without any drift.

The derivation uses SHA-256 over ``(seed, stream-label, shard-index)``
rather than Python's ``hash`` (randomized per process) or ad-hoc
``seed + offset`` arithmetic (streams collide), mirroring numpy's
``SeedSequence`` philosophy with a stdlib-only construction.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field as dataclass_field

import numpy as np

from ..arch.clockgate import ClockGatingPolicy
from ..arch.control import BalancedEncoding, MuxEncoding, UnbalancedEncoding
from ..arch.coprocessor import CoprocessorConfig, EccCoprocessor
from ..ec.curves import get_curve

__all__ = ["SCHEMA_VERSION", "CampaignSpec", "derive_seed", "derive_rng",
           "derive_generator", "SCENARIOS"]

#: Manifest/spec schema version; bumped on incompatible layout changes.
SCHEMA_VERSION = 1

#: The Section 7 evaluation scenarios (see PowerTraceSimulator.campaign).
SCENARIOS = ("unprotected", "known_randomness", "protected")

_MUX_ENCODINGS = {"balanced": BalancedEncoding, "unbalanced": UnbalancedEncoding}


def derive_seed(master_seed: int, stream: str, index: int = 0) -> int:
    """A 64-bit child seed for one named stream of one shard."""
    message = f"repro.campaign/{master_seed}/{stream}/{index}".encode()
    return int.from_bytes(hashlib.sha256(message).digest()[:8], "big")


def derive_rng(master_seed: int, stream: str, index: int = 0) -> random.Random:
    """A stdlib RNG on its own derived stream."""
    return random.Random(derive_seed(master_seed, stream, index))


def derive_generator(master_seed: int, stream: str,
                     index: int = 0) -> np.random.Generator:
    """A numpy Generator on its own derived stream."""
    return np.random.default_rng(derive_seed(master_seed, stream, index))


def _mux_name(encoding: MuxEncoding) -> str:
    for name, cls in _MUX_ENCODINGS.items():
        if type(encoding) is cls:
            return name
    raise ValueError(f"unserializable mux encoding {type(encoding).__name__}")


@dataclass(frozen=True)
class CampaignSpec:
    """Everything that determines a campaign's traces.

    Attributes
    ----------
    n_traces, shard_size:
        Campaign size and how it is cut into shards; the last shard may
        be short.
    scenario:
        ``"unprotected"`` (Z = 1), ``"known_randomness"`` (random Z,
        recorded per trace for the white-box adversary) or
        ``"protected"`` (random Z, secret).
    seed:
        Master seed; see the module docstring for the derivation tree.
    key:
        Explicit secret scalar, or None to derive one from ``seed``
        (stream ``"key"``).
    max_iterations:
        Ladder-iteration truncation forwarded to the coprocessor (DPA
        experiments only need the leading bits); None runs full length.
    noise_sigma:
        Virtual-oscilloscope noise, in toggle units.
    curve, digit_size, dedicated_squarer, fetch_overhead, mux_encoding,
    clock_gating, input_isolation, glitch_factor:
        The serializable subset of :class:`CoprocessorConfig`
        (``randomize_z`` is implied by ``scenario``).
    """

    n_traces: int
    shard_size: int = 256
    scenario: str = "protected"
    seed: int = 0
    key: int | None = None
    max_iterations: int | None = None
    noise_sigma: float = 38.0
    curve: str = "K-163"
    digit_size: int = 4
    dedicated_squarer: bool = False
    fetch_overhead: int = 8
    mux_encoding: str = "balanced"
    clock_gating: str = "always_on"
    input_isolation: bool = True
    glitch_factor: float = 0.0
    schema_version: int = dataclass_field(default=SCHEMA_VERSION)

    def __post_init__(self):
        if self.n_traces < 1:
            raise ValueError("a campaign needs at least one trace")
        if self.shard_size < 1:
            raise ValueError("shard size must be positive")
        if self.scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {self.scenario!r}")
        if self.mux_encoding not in _MUX_ENCODINGS:
            raise ValueError(f"unknown mux encoding {self.mux_encoding!r}")
        ClockGatingPolicy(self.clock_gating)  # raises on unknown policy
        get_curve(self.curve)                 # raises on unknown curve
        if self.schema_version != SCHEMA_VERSION:
            raise ValueError(
                f"spec schema v{self.schema_version} is not supported "
                f"by this reader (v{SCHEMA_VERSION})"
            )

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        """Number of shards covering ``n_traces``."""
        return (self.n_traces + self.shard_size - 1) // self.shard_size

    def shard_trace_count(self, shard_index: int) -> int:
        """Trace count of one shard (the last one may be short)."""
        if not 0 <= shard_index < self.n_shards:
            raise ValueError("shard index out of range")
        start = shard_index * self.shard_size
        return min(self.shard_size, self.n_traces - start)

    @property
    def randomize_z(self) -> bool:
        """Whether the Z-randomization countermeasure is active."""
        return self.scenario != "unprotected"

    # ------------------------------------------------------------------
    # device reconstruction
    # ------------------------------------------------------------------

    def coprocessor_config(self) -> CoprocessorConfig:
        """The device-under-test configuration this spec describes."""
        return CoprocessorConfig(
            domain=get_curve(self.curve),
            digit_size=self.digit_size,
            dedicated_squarer=self.dedicated_squarer,
            fetch_overhead=self.fetch_overhead,
            mux_encoding=_MUX_ENCODINGS[self.mux_encoding](),
            clock_gating=ClockGatingPolicy(self.clock_gating),
            input_isolation=self.input_isolation,
            glitch_factor=self.glitch_factor,
            randomize_z=self.randomize_z,
        )

    def build_coprocessor(self) -> EccCoprocessor:
        """A fresh device-under-test for this spec."""
        return EccCoprocessor(self.coprocessor_config())

    def resolve_key(self) -> int:
        """The campaign's secret scalar (explicit, or seed-derived)."""
        if self.key is not None:
            return self.key
        ring = get_curve(self.curve).scalar_ring
        return ring.random_scalar(derive_rng(self.seed, "key"))

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-JSON representation (ints/strings/bools only)."""
        d = asdict(self)
        if d["key"] is not None:
            d["key"] = hex(d["key"])
        return d

    def digest(self) -> str:
        """Short stable fingerprint of this design point.

        Stamped into failure logs and error messages so an event can
        always be traced back to the exact spec that produced it.
        """
        payload = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    @classmethod
    def from_dict(cls, d: dict) -> "CampaignSpec":
        """Inverse of :meth:`to_dict` (hex keys accepted)."""
        d = dict(d)
        if isinstance(d.get("key"), str):
            d["key"] = int(d["key"], 16)
        return cls(**d)

    @classmethod
    def from_config(cls, config: CoprocessorConfig, **kwargs) -> "CampaignSpec":
        """Build a spec from an in-memory :class:`CoprocessorConfig`.

        The scenario (not ``config.randomize_z``) decides the
        countermeasure state, matching ``PowerTraceSimulator.campaign``.
        """
        return cls(
            curve=config.domain.name,
            digit_size=config.digit_size,
            dedicated_squarer=config.dedicated_squarer,
            fetch_overhead=config.fetch_overhead,
            mux_encoding=_mux_name(config.mux_encoding),
            clock_gating=config.clock_gating.value,
            input_isolation=config.input_isolation,
            glitch_factor=config.glitch_factor,
            **kwargs,
        )
