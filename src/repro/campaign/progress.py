"""Campaign progress: traces/sec, ETA, per-shard wall-clock.

The acquisition engine narrates through a tiny callback interface so
the CLI, the benches and tests can each observe a campaign their own
way without the engine knowing about terminals or log files.  All
rates are computed from the *coordinator's* wall clock (work finished
per elapsed second), so they stay honest under any worker count.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field as dataclass_field

__all__ = ["ShardEvent", "CampaignMetrics", "CampaignReporter",
           "NullReporter", "ConsoleReporter", "CollectingReporter"]


@dataclass(frozen=True)
class ShardEvent:
    """One completed shard, as seen by the coordinator."""

    index: int
    n_traces: int
    wall_seconds: float      # worker-side wall-clock of this shard
    done_shards: int
    total_shards: int
    done_traces: int
    total_traces: int
    elapsed_seconds: float   # coordinator wall-clock since start
    traces_per_second: float
    eta_seconds: float


@dataclass
class CampaignMetrics:
    """Aggregate acquisition metrics (what the engine returns)."""

    total_shards: int = 0
    total_traces: int = 0
    acquired_shards: int = 0
    acquired_traces: int = 0
    skipped_shards: int = 0      # already on disk (resume)
    elapsed_seconds: float = 0.0
    shard_walls: list = dataclass_field(default_factory=list)
    retried_attempts: int = 0    # failed attempts that were retried
    failure_events: int = 0      # every failure, retried or not
    quarantined_shards: list = dataclass_field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when the campaign finished without full coverage."""
        return bool(self.quarantined_shards)

    @property
    def traces_per_second(self) -> float:
        """Coordinator-side acquisition throughput."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.acquired_traces / self.elapsed_seconds

    def summary(self) -> str:
        """One-line human summary."""
        walls = ", ".join(f"{w:.2f}s" for w in self.shard_walls[:8])
        if len(self.shard_walls) > 8:
            walls += ", ..."
        return (
            f"{self.acquired_traces}/{self.total_traces} traces in "
            f"{self.acquired_shards} shard(s) "
            f"(+{self.skipped_shards} resumed) in "
            f"{self.elapsed_seconds:.2f}s = "
            f"{self.traces_per_second:.1f} traces/s"
            + (f"; per-shard wall [{walls}]" if self.shard_walls else "")
            + (f"; {self.retried_attempts} retried attempt(s)"
               if self.retried_attempts else "")
            + (f"; QUARANTINED shards {self.quarantined_shards}"
               if self.quarantined_shards else "")
        )


class CampaignReporter:
    """Observer interface; all hooks are optional no-ops."""

    def on_start(self, total_shards: int, total_traces: int,
                 pending_shards: int, workers: int) -> None:
        """Acquisition begins; ``pending_shards`` excludes resumed ones."""

    def on_shard(self, event: ShardEvent) -> None:
        """One shard finished and was checkpointed."""

    def on_failure(self, event) -> None:
        """One shard attempt failed (a
        :class:`~repro.campaign.supervisor.FailureEvent`): it was
        retried or the shard was quarantined."""

    def on_finish(self, metrics: CampaignMetrics) -> None:
        """Acquisition finished — clean, or degraded when
        ``metrics.quarantined_shards`` is non-empty."""


class NullReporter(CampaignReporter):
    """Silence."""


class CollectingReporter(CampaignReporter):
    """Keeps every event in memory (tests, programmatic consumers)."""

    def __init__(self):
        self.started: list = []
        self.events: list = []
        self.failures: list = []
        self.finished: list = []

    def on_start(self, total_shards, total_traces, pending_shards, workers):
        self.started.append(
            (total_shards, total_traces, pending_shards, workers)
        )

    def on_shard(self, event: ShardEvent) -> None:
        self.events.append(event)

    def on_failure(self, event) -> None:
        self.failures.append(event)

    def on_finish(self, metrics: CampaignMetrics) -> None:
        self.finished.append(metrics)


class ConsoleReporter(CampaignReporter):
    """Prints one line per shard: progress, rate, ETA."""

    def __init__(self, stream=None):
        self.stream = stream or sys.stderr

    def _emit(self, text: str) -> None:
        print(text, file=self.stream, flush=True)

    def on_start(self, total_shards, total_traces, pending_shards, workers):
        resumed = total_shards - pending_shards
        note = f" ({resumed} shard(s) already on disk)" if resumed else ""
        self._emit(
            f"[campaign] acquiring {total_traces} traces / "
            f"{total_shards} shard(s) with {workers} worker(s){note}"
        )

    def on_shard(self, event: ShardEvent) -> None:
        self._emit(
            f"[campaign] shard {event.index:>4} done "
            f"({event.n_traces} traces, {event.wall_seconds:.2f}s) | "
            f"{event.done_shards}/{event.total_shards} shards, "
            f"{event.done_traces}/{event.total_traces} traces | "
            f"{event.traces_per_second:.1f} traces/s | "
            f"ETA {event.eta_seconds:.0f}s"
        )

    def on_failure(self, event) -> None:
        if event.action == "retry":
            outcome = f"retry in {event.delay_seconds:.2f}s"
        else:
            outcome = "QUARANTINED"
        self._emit(
            f"[campaign] shard {event.shard_index:>4} attempt "
            f"{event.attempt + 1} failed ({event.kind}: {event.reason}) "
            f"— {outcome}"
        )

    def on_finish(self, metrics: CampaignMetrics) -> None:
        self._emit("[campaign] " + metrics.summary())


class Stopwatch:
    """Tiny perf_counter wrapper (monkeypatchable in tests)."""

    def __init__(self):
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        return time.perf_counter() - self._start
