"""Disk-backed sharded trace store with a JSON manifest.

Layout of a campaign directory::

    campaign-dir/
      manifest.json                # spec + per-shard records (atomic)
      shard-00000.samples.npy      # (n, n_samples) float64, mmap-able
      shard-00000.aux.json         # base points (and Z values) per trace
      shard-00001.samples.npy
      ...

Samples live in plain ``.npy`` files so analysis can open them with
``np.load(..., mmap_mode="r")`` and slice out the few hundred columns
of one ladder iteration without ever paging in the other ~85 000
samples per trace — the difference between an 80 MB working set and a
14 GB one at the paper's 20 000-trace scale.  The auxiliary per-trace
inputs (base points, and the Z values in the white-box scenario) are
tiny 163-bit integers, so they ride in a sibling JSON sidecar — unlike
``.npz`` (whose zip headers embed wall-clock timestamps) its bytes are
a pure function of the campaign spec, which keeps shard digests
bit-for-bit reproducible across runs and worker counts.

Every shard file is fingerprinted with SHA-256 in the manifest; the
reader refuses digest mismatches, and the acquisition engine treats a
mismatching shard as missing (so a truncated write from a killed
worker is simply re-acquired on resume).  Manifest updates are
write-to-temp-then-rename, the strongest atomicity a JSON file gets.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from ..ec.point import AffinePoint
from ..obs.metrics import atomic_write_bytes
from .errors import DATA_INTEGRITY, CampaignError
from .spec import SCHEMA_VERSION, CampaignSpec

__all__ = ["ShardRecord", "ShardView", "TraceStore", "CorruptShardError",
           "CoverageReport", "file_digest"]

MANIFEST_NAME = "manifest.json"


class CorruptShardError(CampaignError):
    """A shard file does not match its manifest digest."""


def file_digest(path: str) -> str:
    """SHA-256 hex digest of a file, streamed in 1 MiB chunks."""
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _atomic_write_bytes(path: str, payload: bytes) -> None:
    """Alias of :func:`repro.obs.metrics.atomic_write_bytes` — one
    write-tmp-fsync-rename discipline for every artifact the repo
    persists.  The temp file keeps the ``.tmp`` suffix so
    :meth:`TraceStore.initialize`'s débris sweep still collects
    orphans from crashed writers."""
    atomic_write_bytes(path, payload)


@dataclass(frozen=True)
class ShardRecord:
    """Manifest entry for one completed shard."""

    index: int
    n_traces: int
    samples_file: str
    aux_file: str
    samples_sha256: str
    aux_sha256: str
    wall_seconds: float

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "n_traces": self.n_traces,
            "samples_file": self.samples_file,
            "aux_file": self.aux_file,
            "samples_sha256": self.samples_sha256,
            "aux_sha256": self.aux_sha256,
            "wall_seconds": self.wall_seconds,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ShardRecord":
        return cls(**d)


@dataclass(frozen=True)
class CoverageReport:
    """Partial-completeness accounting for one campaign directory.

    The graceful-degradation contract hangs off this: a degraded
    campaign (quarantined or missing shards) still supports streaming
    attacks under ``allow_partial``, and this report states exactly
    which shards — and how many traces — back any statistic computed
    from the store.
    """

    n_shards_planned: int
    n_traces_planned: int
    completed_shards: tuple
    missing_shards: tuple
    n_traces_on_disk: int

    @property
    def is_complete(self) -> bool:
        return not self.missing_shards

    @property
    def fraction(self) -> float:
        """Completed fraction of the planned traces (0.0–1.0)."""
        if self.n_traces_planned <= 0:
            return 0.0
        return self.n_traces_on_disk / self.n_traces_planned

    def render(self) -> str:
        """One-line human summary."""
        text = (
            f"{self.n_traces_on_disk}/{self.n_traces_planned} traces "
            f"({len(self.completed_shards)}/{self.n_shards_planned} "
            f"shards, {100.0 * self.fraction:.1f}%)"
        )
        if self.missing_shards:
            text += f"; missing shards {list(self.missing_shards)}"
        return text


@dataclass
class ShardView:
    """One shard's data as handed to streaming analysis.

    ``samples`` is a numpy view/array of shape ``(n_traces, width)``;
    when the store was opened with a column window it covers only that
    window.  ``z_values`` is None outside the white-box scenario.
    """

    index: int
    samples: np.ndarray
    points: list
    z_values: Optional[list]
    key_bits: list

    @property
    def n_traces(self) -> int:
        return self.samples.shape[0]


class TraceStore:
    """Reader/writer for one campaign directory.

    Writing happens in two roles: workers call :meth:`write_shard`
    (self-contained, no manifest access, safe from any process) and the
    coordinating engine calls :meth:`record_shard` /
    :meth:`save_manifest` after each completion (checkpointing).
    """

    def __init__(self, directory: str):
        self.directory = str(directory)
        self.spec: Optional[CampaignSpec] = None
        self.iteration_slices: list = []
        self.key_bits: list = []
        self._shards: dict = {}

    # ------------------------------------------------------------------
    # manifest lifecycle
    # ------------------------------------------------------------------

    @property
    def manifest_path(self) -> str:
        return os.path.join(self.directory, MANIFEST_NAME)

    @property
    def exists(self) -> bool:
        """True when the directory already holds a manifest."""
        return os.path.exists(self.manifest_path)

    def initialize(self, spec: CampaignSpec) -> None:
        """Start a fresh campaign (or adopt a matching existing one).

        Re-initializing with a *different* spec than the one on disk is
        an error — a campaign directory is immutable evidence; resuming
        must not silently change what is being measured.
        """
        if self.exists:
            self.load()
            if self.spec.to_dict() != spec.to_dict():
                raise ValueError(
                    "campaign directory already holds a different spec; "
                    "refusing to mix campaigns in one directory"
                )
            self.sweep_stale_tmp()
            return
        os.makedirs(self.directory, exist_ok=True)
        self.sweep_stale_tmp()
        self.spec = spec
        self._shards = {}
        self.iteration_slices = []
        self.key_bits = []
        self.save_manifest()

    def sweep_stale_tmp(self) -> list:
        """Delete ``*.tmp`` débris left by crashed writers.

        Runs before any worker starts (initialize happens in the
        coordinator), so every ``.tmp`` present is an orphan from a
        killed process — never in-flight data — and must go before it
        can be mistaken for shard content.  Returns the removed names.
        """
        removed = []
        if not os.path.isdir(self.directory):
            return removed
        for name in sorted(os.listdir(self.directory)):
            if name.endswith(".tmp"):
                os.remove(os.path.join(self.directory, name))
                removed.append(name)
        return removed

    def load(self) -> "TraceStore":
        """Read the manifest; returns self for chaining."""
        with open(self.manifest_path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
        if manifest.get("schema_version") != SCHEMA_VERSION:
            raise ValueError(
                f"manifest schema v{manifest.get('schema_version')} is not "
                f"supported by this reader (v{SCHEMA_VERSION})"
            )
        self.spec = CampaignSpec.from_dict(manifest["spec"])
        self.iteration_slices = [tuple(s) for s in manifest["iteration_slices"]]
        self.key_bits = list(manifest["key_bits"])
        self._shards = {
            r["index"]: ShardRecord.from_dict(r) for r in manifest["shards"]
        }
        return self

    def save_manifest(self) -> None:
        """Atomically persist the manifest (the resume checkpoint)."""
        manifest = {
            "schema_version": SCHEMA_VERSION,
            "spec": self.spec.to_dict(),
            "iteration_slices": [list(s) for s in self.iteration_slices],
            "key_bits": list(self.key_bits),
            "shards": [
                self._shards[i].to_dict() for i in sorted(self._shards)
            ],
        }
        payload = json.dumps(manifest, indent=1).encode()
        _atomic_write_bytes(self.manifest_path, payload)

    # ------------------------------------------------------------------
    # shard writing
    # ------------------------------------------------------------------

    @staticmethod
    def shard_filenames(index: int) -> tuple:
        """(samples, aux) file names of one shard."""
        return (f"shard-{index:05d}.samples.npy",
                f"shard-{index:05d}.aux.json")

    def write_shard(
        self,
        index: int,
        samples: np.ndarray,
        points: list,
        z_values: Optional[list],
    ) -> tuple:
        """Write one shard's files atomically; returns (record-dict-sans-
        timing) for the engine to complete and register.

        Safe to call from worker processes: touches only the two shard
        files, never the manifest.
        """
        samples = np.ascontiguousarray(samples, dtype=np.float64)
        samples_name, aux_name = self.shard_filenames(index)
        samples_path = os.path.join(self.directory, samples_name)
        aux_path = os.path.join(self.directory, aux_name)

        buffer = io.BytesIO()
        np.save(buffer, samples)
        _atomic_write_bytes(samples_path, buffer.getvalue())

        aux = {
            "points": [[hex(p.x), hex(p.y)] for p in points],
            "z": None if z_values is None else [hex(z) for z in z_values],
        }
        _atomic_write_bytes(aux_path, json.dumps(aux).encode())

        return {
            "index": index,
            "n_traces": int(samples.shape[0]),
            "samples_file": samples_name,
            "aux_file": aux_name,
            "samples_sha256": file_digest(samples_path),
            "aux_sha256": file_digest(aux_path),
        }

    def record_shard(self, record: ShardRecord) -> None:
        """Register a completed shard (call :meth:`save_manifest` after)."""
        self._shards[record.index] = record

    # ------------------------------------------------------------------
    # shard inventory
    # ------------------------------------------------------------------

    @property
    def shard_records(self) -> list:
        """Completed shard records, ordered by index."""
        return [self._shards[i] for i in sorted(self._shards)]

    @property
    def n_traces_on_disk(self) -> int:
        """Traces covered by completed shards."""
        return sum(r.n_traces for r in self._shards.values())

    @property
    def is_complete(self) -> bool:
        """True when every planned shard is recorded."""
        return len(self.missing_shards()) == 0

    def missing_shards(self, verify_digests: bool = False) -> list:
        """Planned shard indices not yet (validly) on disk.

        A recorded shard whose files are gone counts as missing; with
        ``verify_digests`` a digest mismatch also demotes it (the
        resume path uses this so corrupted shards are re-acquired).
        """
        missing = []
        for index in range(self.spec.n_shards):
            record = self._shards.get(index)
            if record is None:
                missing.append(index)
                continue
            samples_path = os.path.join(self.directory, record.samples_file)
            aux_path = os.path.join(self.directory, record.aux_file)
            if not (os.path.exists(samples_path) and os.path.exists(aux_path)):
                missing.append(index)
            elif verify_digests and (
                file_digest(samples_path) != record.samples_sha256
                or file_digest(aux_path) != record.aux_sha256
            ):
                missing.append(index)
        return missing

    def forget_shards(self, indices: list) -> None:
        """Drop manifest records (used when re-acquiring bad shards)."""
        for index in indices:
            self._shards.pop(index, None)

    def coverage(self, verify_digests: bool = False) -> CoverageReport:
        """Partial-completeness accounting of what is (validly) on disk."""
        missing = self.missing_shards(verify_digests=verify_digests)
        missing_set = set(missing)
        completed = tuple(
            index for index in sorted(self._shards)
            if index not in missing_set
        )
        return CoverageReport(
            n_shards_planned=self.spec.n_shards,
            n_traces_planned=self.spec.n_traces,
            completed_shards=completed,
            missing_shards=tuple(missing),
            n_traces_on_disk=sum(
                self._shards[i].n_traces for i in completed
            ),
        )

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def _verify(self, path: str, expected: str) -> None:
        actual = file_digest(path)
        if actual != expected:
            raise CorruptShardError(
                f"{os.path.basename(path)}: digest {actual[:16]}... does "
                f"not match manifest {expected[:16]}...",
                spec_digest=None if self.spec is None else self.spec.digest(),
                kind=DATA_INTEGRITY,
            )

    def open_samples(self, index: int, verify: bool = False) -> np.ndarray:
        """Memory-map one shard's sample matrix (no copy, no full read)."""
        record = self._shards[index]
        path = os.path.join(self.directory, record.samples_file)
        if verify:
            self._verify(path, record.samples_sha256)
        return np.load(path, mmap_mode="r")

    def read_aux(self, index: int, verify: bool = False) -> tuple:
        """(points, z_values) of one shard."""
        record = self._shards[index]
        path = os.path.join(self.directory, record.aux_file)
        if verify:
            self._verify(path, record.aux_sha256)
        with open(path, "r", encoding="utf-8") as f:
            aux = json.load(f)
        points = [AffinePoint(int(x, 16), int(y, 16))
                  for x, y in aux["points"]]
        z_values = (None if aux["z"] is None
                    else [int(z, 16) for z in aux["z"]])
        return points, z_values

    def iter_shards(
        self,
        columns: Optional[tuple] = None,
        max_traces: Optional[int] = None,
        verify: bool = False,
    ) -> Iterator[ShardView]:
        """Stream completed shards in index order.

        ``columns=(start, end)`` restricts the sample matrix to that
        cycle window (sliced straight off the memory-map, so only those
        columns are ever read).  ``max_traces`` truncates the stream
        after that many traces — the streaming equivalent of
        ``TraceSet.subset`` for traces-to-disclosure sweeps.
        ``verify`` checks file digests before trusting the bytes.
        """
        remaining = max_traces
        for record in self.shard_records:
            if remaining is not None and remaining <= 0:
                return
            samples = self.open_samples(record.index, verify=verify)
            points, z_values = self.read_aux(record.index, verify=verify)
            if columns is not None:
                start, end = columns
                samples = samples[:, start:end]
            if remaining is not None and samples.shape[0] > remaining:
                samples = samples[:remaining]
                points = points[:remaining]
                z_values = None if z_values is None else z_values[:remaining]
            samples = np.asarray(samples, dtype=np.float64)
            yield ShardView(
                index=record.index,
                samples=samples,
                points=points,
                z_values=z_values,
                key_bits=self.key_bits,
            )
            if remaining is not None:
                remaining -= samples.shape[0]

    def verify_all(self) -> None:
        """Digest-check every recorded shard (raises on first mismatch)."""
        for record in self.shard_records:
            self._verify(
                os.path.join(self.directory, record.samples_file),
                record.samples_sha256,
            )
            self._verify(
                os.path.join(self.directory, record.aux_file),
                record.aux_sha256,
            )

    # ------------------------------------------------------------------
    # batch-compat escape hatch
    # ------------------------------------------------------------------

    def as_trace_set(self, max_traces: Optional[int] = None):
        """Materialize a batch :class:`~repro.power.simulator.TraceSet`.

        Loads everything into RAM — meant for tests and small campaigns
        that want to cross-check the streaming layer against the batch
        attacks, not for paper-scale analysis.
        """
        from ..power.simulator import TraceSet

        rows, points, z_all = [], [], []
        have_z = self.spec.scenario == "known_randomness"
        for view in self.iter_shards(max_traces=max_traces):
            rows.append(np.asarray(view.samples))
            points.extend(view.points)
            if have_z:
                z_all.extend(view.z_values)
        if not rows:
            raise ValueError("no shards on disk")
        return TraceSet(
            np.vstack(rows),
            points,
            list(self.iteration_slices),
            list(self.key_bits),
            z_all if have_z else None,
        )
