"""Deterministic chaos harness for the campaign's own infrastructure.

:mod:`repro.fault` injects faults into the *device under test*; this
module aims the same idea at our acquisition pipeline.  A
:class:`ChaosConfig` rides along with each shard task and, keyed by
``(chaos seed, fault name, shard index, attempt)``, decides whether
that attempt crashes the worker, hangs it, raises, dawdles, or
corrupts the shard files after a successful write.  Because decisions
hash the *attempt* number, a fault that fires on attempt 0 generally
clears on attempt 1 — exactly the flaky-environment shape the
supervisor's retry policy exists for — while ``only_shards`` plus a
rate of 1.0 models a permanently broken shard that must end in
quarantine.

The harness never touches the trace *content* path: a chaos campaign
that completes is byte-for-byte identical to a fault-free one (the
recovery-matrix tests pin this), which is what makes the fault
tolerance provable rather than anecdotal.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, replace
from typing import Optional

from .spec import derive_seed

__all__ = ["ChaosConfig", "ChaosInjectedError", "chaos_acquire_shard",
           "CHAOS_CRASH_EXIT_CODE"]

#: Exit code of a chaos-crashed worker (recognizable in failures.jsonl).
CHAOS_CRASH_EXIT_CODE = 57

#: Fault precedence: at most one *execution* fault fires per attempt
#: (corruption is independent — it needs a completed write to corrupt).
_EXECUTION_FAULTS = ("crash", "hang", "error", "slow")

_RATE_FIELDS = {
    "crash": "crash_rate",
    "hang": "hang_rate",
    "error": "error_rate",
    "slow": "slow_rate",
    "corrupt": "corrupt_rate",
}


class ChaosInjectedError(RuntimeError):
    """The failure the ``error`` fault injects into a shard task."""


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault rates for the acquisition pipeline.

    Attributes
    ----------
    seed:
        Chaos decisions are a pure function of
        ``(seed, fault, shard, attempt)`` — two runs with the same
        config inject the same faults.
    crash_rate:
        Probability a worker dies hard (``os._exit``) after leaving a
        stale ``.tmp`` file behind, like a writer killed mid-write.
        Needs real worker processes.
    hang_rate:
        Probability the task sleeps ``hang_seconds`` — long enough
        that only the supervisor's watchdog ends it.  Needs real
        worker processes.
    error_rate:
        Probability the task raises :class:`ChaosInjectedError`
        (classified *deterministic* by the supervisor).
    slow_rate / slow_seconds:
        Probability/duration of an injected delay that stays under
        the watchdog — exercises scheduling, not recovery.
    corrupt_rate:
        Probability the shard's sample file is flipped *after* a
        successful write and digest computation — the supervisor's
        post-completion integrity check must catch it.
    only_shards:
        Restrict all faults to these shard indices (None = all); with
        a rate of 1.0 this models a permanently failing shard.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    error_rate: float = 0.0
    slow_rate: float = 0.0
    corrupt_rate: float = 0.0
    slow_seconds: float = 0.05
    hang_seconds: float = 3600.0
    only_shards: Optional[tuple] = None

    def __post_init__(self):
        for fault, field in _RATE_FIELDS.items():
            rate = getattr(self, field)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{field} must be in [0, 1], got {rate}")
        if self.only_shards is not None:
            object.__setattr__(self, "only_shards",
                               tuple(sorted(set(self.only_shards))))

    # ------------------------------------------------------------------
    # decisions
    # ------------------------------------------------------------------

    @property
    def any_faults(self) -> bool:
        return any(getattr(self, f) > 0.0 for f in _RATE_FIELDS.values())

    @property
    def needs_processes(self) -> bool:
        """Crash/hang faults cannot be injected into an inline worker
        (they would take the coordinator down with them)."""
        return self.crash_rate > 0.0 or self.hang_rate > 0.0

    def applies_to(self, shard_index: int) -> bool:
        return self.only_shards is None or shard_index in self.only_shards

    def _roll(self, fault: str, shard_index: int, attempt: int) -> bool:
        rate = getattr(self, _RATE_FIELDS[fault])
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        draw = derive_seed(self.seed, f"chaos/{fault}",
                           shard_index * 65537 + attempt)
        return draw / 2.0 ** 64 < rate

    def execution_fault(self, shard_index: int,
                        attempt: int) -> Optional[str]:
        """The one execution fault (if any) for this shard attempt."""
        if not self.applies_to(shard_index):
            return None
        for fault in _EXECUTION_FAULTS:
            if self._roll(fault, shard_index, attempt):
                return fault
        return None

    def corrupts(self, shard_index: int, attempt: int) -> bool:
        return (self.applies_to(shard_index)
                and self._roll("corrupt", shard_index, attempt))

    # ------------------------------------------------------------------
    # serialization (the config crosses the process boundary as JSON)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "crash_rate": self.crash_rate,
            "hang_rate": self.hang_rate,
            "error_rate": self.error_rate,
            "slow_rate": self.slow_rate,
            "corrupt_rate": self.corrupt_rate,
            "slow_seconds": self.slow_seconds,
            "hang_seconds": self.hang_seconds,
            "only_shards": (None if self.only_shards is None
                            else list(self.only_shards)),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ChaosConfig":
        d = dict(d)
        if d.get("only_shards") is not None:
            d["only_shards"] = tuple(d["only_shards"])
        return cls(**d)

    @classmethod
    def parse(cls, text: str, seed: int = 0,
              only_shards: Optional[tuple] = None) -> "ChaosConfig":
        """Parse a CLI fault spec like ``"crash=0.4,corrupt=0.25"``.

        Keys are the fault names (``crash``, ``hang``, ``error``,
        ``slow``, ``corrupt``) mapping to rates in [0, 1].
        """
        config = cls(seed=seed, only_shards=only_shards)
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"chaos spec {part!r} is not fault=rate")
            fault, _, value = part.partition("=")
            fault = fault.strip()
            if fault not in _RATE_FIELDS:
                raise ValueError(
                    f"unknown chaos fault {fault!r} "
                    f"(know {', '.join(sorted(_RATE_FIELDS))})"
                )
            config = replace(config, **{_RATE_FIELDS[fault]: float(value)})
        return config


# ----------------------------------------------------------------------
# the wrapped shard task
# ----------------------------------------------------------------------

def chaos_acquire_shard(spec, directory: str, shard_index: int,
                        attempt: int, chaos: ChaosConfig) -> dict:
    """:func:`~repro.campaign.acquire.acquire_shard` under injected faults.

    Runs in the worker (inline or subprocess); the supervisor passes
    the attempt number so retries draw fresh fault decisions.
    """
    from .acquire import acquire_shard
    from .store import TraceStore

    fault = chaos.execution_fault(shard_index, attempt)
    if fault == "crash":
        # Die the way a mid-write kill does: a stale .tmp left behind,
        # no result, nonzero exit — TraceStore.initialize must sweep
        # the débris and the supervisor must classify this transient.
        samples_name, _ = TraceStore.shard_filenames(shard_index)
        tmp_path = os.path.join(directory, samples_name + ".tmp")
        with open(tmp_path, "wb") as f:
            f.write(b"chaos: torn write\x00" * 4)
        os._exit(CHAOS_CRASH_EXIT_CODE)
    elif fault == "hang":
        time.sleep(chaos.hang_seconds)
    elif fault == "error":
        raise ChaosInjectedError(
            f"injected task failure (shard {shard_index}, "
            f"attempt {attempt})"
        )
    elif fault == "slow":
        time.sleep(chaos.slow_seconds)

    record = acquire_shard(spec, directory, shard_index)

    if chaos.corrupts(shard_index, attempt):
        # Flip one byte *after* the worker computed its digests: the
        # record now lies about the bytes on disk, which only the
        # supervisor's independent integrity check can notice.
        path = os.path.join(directory, record["samples_file"])
        with open(path, "r+b") as f:
            f.seek(128)
            byte = f.read(1) or b"\x00"
            f.seek(128)
            f.write(bytes([byte[0] ^ 0xFF]))
    return record
