"""Streaming attack adapters: shard-at-a-time DPA/CPA/TVLA/SPA.

The batch attacks in :mod:`repro.sca` take an in-RAM
``(n_traces, n_samples)`` matrix.  These adapters consume a
:class:`~repro.campaign.store.TraceStore` instead, reading one shard's
*iteration window* at a time off the memory-map and folding it into
online accumulators — per-column counts, sums and sums-of-squares (and
cross-products for CPA) — so peak memory is bounded by
``shard_size x window`` regardless of campaign size.

Statistical equivalence to the batch code is exact, not approximate:

* **CPA / TVLA** are pure moment statistics; the accumulators compute
  the same Pearson correlation / Welch t from ``n``, ``Σx``, ``Σx²``,
  ``Σxy`` that the batch code computes from centered arrays (modulo
  float rounding).
* **DPA** (difference-of-means) partitions traces per column by the
  *median* of the prediction gap — an order statistic, which no
  fixed-size accumulator can produce.  The adapter therefore keeps the
  prediction-gap window (small: hypotheses are replayed per shard
  anyway) to take exact medians, then streams the *measurements* —
  the big array — through partitioned sum/sum-of-squares accumulators.
* **SPA** needs only the campaign-average trace, a single running sum.

Decisions come back as the same :class:`~repro.sca.dpa.BitDecision` /
:class:`~repro.sca.dpa.DpaResult` types the batch attacks return.

**Partial stores.**  A degraded campaign (quarantined or missing
shards) is still attackable, but only *explicitly*: every adapter
refuses an incomplete store with
:class:`~repro.campaign.errors.PartialStoreError` unless the caller
passes ``allow_partial=True``, and every attack records an
:class:`AttackProvenance` stating exactly which shards — and how many
traces — backed the statistics it produced.  Silent subsetting is how
wrong side-channel conclusions get published.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from time import perf_counter as _perf_counter
from typing import Optional

import numpy as np

from ..obs import profile as _obs_profile
from ..obs import runtime as _obs_runtime
from ..sca.dpa import BitDecision, DpaResult
from ..sca.predict import ActivityPredictor
from ..sca.spa import SpaResult, transition_spa
from ..sca.ttest import TVLA_THRESHOLD, TvlaReport
from .errors import PartialStoreError
from .store import TraceStore

__all__ = ["AttackProvenance", "OnlineMoments", "StreamingDpa",
           "StreamingCpa", "store_provenance", "streaming_average_trace",
           "streaming_spa", "streaming_tvla"]


@dataclass(frozen=True)
class AttackProvenance:
    """Exactly which data backed a streamed statistic."""

    shard_indices: tuple
    n_traces: int
    n_traces_planned: int

    @property
    def partial(self) -> bool:
        return self.n_traces < self.n_traces_planned

    def describe(self) -> str:
        text = (f"{self.n_traces} trace(s) from shard(s) "
                f"{list(self.shard_indices)} of {self.n_traces_planned} "
                "planned")
        if self.partial:
            text += " — PARTIAL coverage"
        return text


def store_provenance(store: TraceStore,
                     max_traces: Optional[int] = None) -> AttackProvenance:
    """Provenance of a streamed pass over ``store``.

    Mirrors :meth:`TraceStore.iter_shards` exactly: completed shards
    in index order, truncated after ``max_traces``.
    """
    indices, used = [], 0
    for record in store.shard_records:
        if max_traces is not None and used >= max_traces:
            break
        take = record.n_traces
        if max_traces is not None:
            take = min(take, max_traces - used)
        indices.append(record.index)
        used += take
    return AttackProvenance(
        shard_indices=tuple(indices),
        n_traces=used,
        n_traces_planned=store.spec.n_traces,
    )


def _require_complete(store: TraceStore, allow_partial: bool,
                      what: str) -> None:
    coverage = store.coverage()
    if coverage.is_complete or allow_partial:
        return
    raise PartialStoreError(
        f"refusing {what} on an incomplete store — {coverage.render()}; "
        "pass allow_partial=True (CLI: --allow-partial) to accept "
        "degraded statistics",
        spec_digest=store.spec.digest(),
    )


class OnlineMoments:
    """Per-column count/sum/sum-of-squares accumulator.

    ``update`` folds in a ``(rows, columns)`` block, optionally under a
    boolean membership mask of the same shape (rows contribute only to
    the columns where their mask is True) — that is exactly the shape
    of a per-column DPA partition.
    """

    def __init__(self, n_columns: int):
        self.count = np.zeros(n_columns, dtype=np.float64)
        self.total = np.zeros(n_columns, dtype=np.float64)
        self.total_sq = np.zeros(n_columns, dtype=np.float64)

    def update(self, block: np.ndarray,
               mask: Optional[np.ndarray] = None) -> None:
        if _obs_profile.enabled():
            t0 = _perf_counter()
            self._update(block, mask)
            _obs_profile.observe("moments_update", _perf_counter() - t0)
        else:
            self._update(block, mask)

    def _update(self, block: np.ndarray,
                mask: Optional[np.ndarray]) -> None:
        block = np.asarray(block, dtype=np.float64)
        if mask is None:
            self.count += block.shape[0]
            self.total += block.sum(axis=0)
            self.total_sq += (block * block).sum(axis=0)
        else:
            self.count += mask.sum(axis=0)
            self.total += (block * mask).sum(axis=0)
            self.total_sq += (block * block * mask).sum(axis=0)

    def mean(self) -> np.ndarray:
        """Per-column mean (nan where no members)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.total / self.count

    def variance(self) -> np.ndarray:
        """Per-column sample variance, ddof=1 (nan where count < 2)."""
        with np.errstate(divide="ignore", invalid="ignore"):
            centered = self.total_sq - self.count * self.mean() ** 2
            return np.maximum(centered, 0.0) / (self.count - 1)


def _window(store: TraceStore, bit_index: int) -> tuple:
    if not 0 <= bit_index < len(store.iteration_slices):
        raise ValueError("bit index outside the acquired iterations")
    return store.iteration_slices[bit_index]


def _prediction_gap_blocks(store, predictor, bit_index, prefix,
                           use_stored_randomness, max_traces):
    """Yield (shard view, prediction gap P1 - P0) per shard."""
    start, end = _window(store, bit_index)
    for view in store.iter_shards(columns=(start, end),
                                  max_traces=max_traces):
        if use_stored_randomness:
            if view.z_values is None:
                raise ValueError(
                    "store holds no recorded randomness (scenario "
                    f"{store.spec.scenario!r})"
                )
            z = view.z_values
        else:
            z = None
        predictions = {
            h: predictor.prediction_matrix(view.points, prefix, h,
                                           bit_index, z)
            for h in (0, 1)
        }
        yield view, predictions[1] - predictions[0]


class _StreamingLadderAttack:
    """Shared recover-bits / disclosure-sweep driver.

    ``allow_partial=False`` (the default) refuses an incomplete store;
    after any ``recover_bits`` call, :attr:`last_provenance` states
    which shards and traces backed the decisions.
    """

    def __init__(self, store: TraceStore,
                 use_stored_randomness: bool = False,
                 allow_partial: bool = False):
        _require_complete(store, allow_partial, type(self).__name__)
        self.store = store
        self.coprocessor = store.spec.build_coprocessor()
        self.predictor = ActivityPredictor(self.coprocessor)
        self.use_stored_randomness = use_stored_randomness
        self.allow_partial = allow_partial
        self.last_provenance: Optional[AttackProvenance] = None

    def attack_bit(self, bit_index: int, known_prefix: list,
                   max_traces: Optional[int] = None) -> BitDecision:
        raise NotImplementedError

    def recover_bits(self, n_bits: int,
                     max_traces: Optional[int] = None) -> DpaResult:
        """Attack the first ``n_bits`` ladder bits sequentially.

        As in the batch attacks, later bits are attacked under the
        *recovered* prefix, so early mistakes propagate.
        """
        if n_bits < 1 or n_bits > len(self.store.iteration_slices):
            raise ValueError("n_bits out of range for this campaign")
        rt = _obs_runtime.current()
        decisions = []
        prefix = []
        with contextlib.ExitStack() as stack:
            if rt is not None:
                stack.enter_context(rt.span(
                    "campaign.attack",
                    attack=type(self).__name__, bits=n_bits,
                ))
            for bit_index in range(n_bits):
                decision = self.attack_bit(bit_index, prefix, max_traces)
                decisions.append(decision)
                prefix.append(decision.chosen)
                if rt is not None:
                    self._observe_decision(rt, decision)
        self.last_provenance = store_provenance(self.store, max_traces)
        return DpaResult(decisions)

    def _observe_decision(self, rt, decision: BitDecision) -> None:
        """One attacked bit into the span stream and the peak gauges.

        The per-bit ``repro_campaign_attack_peak_statistic`` series is
        the DPA peak evolution an analyst plots to see the attack gain
        (or lose) confidence as it walks down the key.
        """
        rt.tracer.event(
            "attack.bit", key=decision.bit_index, level=2,
            chosen=decision.chosen, true_bit=decision.true_bit,
            statistic_zero=decision.statistic_zero,
            statistic_one=decision.statistic_one,
        )
        peaks = rt.registry.gauge(
            "repro_campaign_attack_peak_statistic",
            "streamed attack peak statistic per bit and hypothesis",
        )
        bit = str(decision.bit_index)
        peaks.set(decision.statistic_zero, bit=bit, hyp="0")
        peaks.set(decision.statistic_one, bit=bit, hyp="1")
        rt.registry.counter(
            "repro_campaign_attack_bits_total",
            "attacked bits by correctness",
        ).inc(correct=str(decision.chosen == decision.true_bit).lower())

    def _significance_threshold(self, n: int) -> float:
        return 4.5

    def traces_to_disclosure(self, n_bits: int,
                             grid: list) -> Optional[int]:
        """Smallest campaign prefix in ``grid`` that significantly
        recovers all bits; None if even the full store fails."""
        for n in sorted(grid):
            result = self.recover_bits(n_bits, max_traces=n)
            if result.significant_success(self._significance_threshold(n)):
                return n
        return None


class StreamingDpa(_StreamingLadderAttack):
    """Difference-of-means DPA over a sharded store.

    Mirrors :class:`repro.sca.dpa.LadderDpa` decision-for-decision (see
    the module docstring for why the gap window is retained while the
    measurements stream through partitioned accumulators).
    """

    def __init__(self, store: TraceStore, min_partition: int = 5,
                 use_stored_randomness: bool = False,
                 allow_partial: bool = False):
        super().__init__(store, use_stored_randomness, allow_partial)
        if min_partition < 1:
            raise ValueError("min_partition must be positive")
        self.min_partition = min_partition

    def attack_bit(self, bit_index: int, known_prefix: list,
                   max_traces: Optional[int] = None) -> BitDecision:
        """Decide one key bit with two streaming passes."""
        # Pass 1: hypothesis replay per shard; keep only the gap window.
        gap_blocks = []
        for _view, gap in _prediction_gap_blocks(
            self.store, self.predictor, bit_index, known_prefix,
            self.use_stored_randomness, max_traces,
        ):
            gap_blocks.append(gap)
        gap = np.vstack(gap_blocks)
        medians = np.median(gap, axis=0)
        membership = gap > medians          # (n_traces, window) bool

        # Pass 2: stream the measurements into partitioned accumulators.
        width = gap.shape[1]
        high = OnlineMoments(width)
        low = OnlineMoments(width)
        start, end = _window(self.store, bit_index)
        row = 0
        for view in self.store.iter_shards(columns=(start, end),
                                           max_traces=max_traces):
            block = view.samples
            labels = membership[row:row + block.shape[0]]
            high.update(block, labels)
            low.update(block, ~labels)
            row += block.shape[0]

        evidence_zero, evidence_one = self._dom_from_moments(high, low)
        chosen = 1 if evidence_one >= evidence_zero else 0
        return BitDecision(
            bit_index=bit_index,
            chosen=chosen,
            statistic_zero=evidence_zero,
            statistic_one=evidence_one,
            true_bit=self.store.key_bits[bit_index],
        )

    def _dom_from_moments(self, high: OnlineMoments,
                          low: OnlineMoments) -> tuple:
        """The batch `_signed_dom_statistics`, computed from moments."""
        with np.errstate(divide="ignore", invalid="ignore"):
            diff = high.mean() - low.mean()
            pooled = np.sqrt(high.variance() / high.count
                             + low.variance() / low.count)
            statistic = diff / pooled
        valid = (
            (high.count >= self.min_partition)
            & (low.count >= self.min_partition)
            & (pooled > 0)
            & np.isfinite(statistic)
        )
        statistic = statistic[valid]
        if statistic.size == 0:
            return 0.0, 0.0
        best_pos = float(max(statistic.max(), 0.0))
        best_neg = float(max(-statistic.min(), 0.0))
        return best_neg, best_pos


class StreamingCpa(_StreamingLadderAttack):
    """Correlation power analysis over a sharded store.

    Single-pass: Pearson needs only ``n, Σd, Σd², Σo, Σo², Σdo`` per
    column, so the gap is consumed shard by shard and nothing but the
    six accumulator vectors persists.
    """

    def attack_bit(self, bit_index: int, known_prefix: list,
                   max_traces: Optional[int] = None) -> BitDecision:
        """Decide one key bit by maximum absolute streamed correlation."""
        acc = None
        for view, gap in _prediction_gap_blocks(
            self.store, self.predictor, bit_index, known_prefix,
            self.use_stored_randomness, max_traces,
        ):
            observed = view.samples
            if acc is None:
                width = gap.shape[1]
                acc = {
                    "n": 0.0,
                    "d": np.zeros(width), "dd": np.zeros(width),
                    "o": np.zeros(width), "oo": np.zeros(width),
                    "do": np.zeros(width),
                }
            acc["n"] += gap.shape[0]
            acc["d"] += gap.sum(axis=0)
            acc["dd"] += (gap * gap).sum(axis=0)
            acc["o"] += observed.sum(axis=0)
            acc["oo"] += (observed * observed).sum(axis=0)
            acc["do"] += (gap * observed).sum(axis=0)
        if acc is None:
            raise ValueError("no shards on disk")

        n = acc["n"]
        numerator = acc["do"] - acc["d"] * acc["o"] / n
        var_d = np.maximum(acc["dd"] - acc["d"] ** 2 / n, 0.0)
        var_o = np.maximum(acc["oo"] - acc["o"] ** 2 / n, 0.0)
        denominator = np.sqrt(var_d * var_o)
        with np.errstate(divide="ignore", invalid="ignore"):
            corr = np.where(denominator > 0, numerator / denominator, 0.0)
        evidence_one = float(max(corr.max(), 0.0))
        evidence_zero = float(max(-corr.min(), 0.0))
        chosen = 1 if evidence_one >= evidence_zero else 0
        return BitDecision(
            bit_index=bit_index,
            chosen=chosen,
            statistic_zero=evidence_zero,
            statistic_one=evidence_one,
            true_bit=self.store.key_bits[bit_index],
        )

    def _significance_threshold(self, n: int) -> float:
        # Correlation peaks are significant beyond ~4.5 standard errors.
        return 4.5 / np.sqrt(n)


# ----------------------------------------------------------------------
# SPA and TVLA
# ----------------------------------------------------------------------

def streaming_average_trace(store: TraceStore,
                            max_traces: Optional[int] = None,
                            allow_partial: bool = False) -> np.ndarray:
    """Campaign-average trace via a running sum (full trace width)."""
    _require_complete(store, allow_partial, "streaming_average_trace")
    total = None
    count = 0
    for view in store.iter_shards(max_traces=max_traces):
        block = np.asarray(view.samples, dtype=np.float64)
        partial = block.sum(axis=0)
        total = partial if total is None else total + partial
        count += block.shape[0]
    if total is None:
        raise ValueError("no shards on disk")
    return total / count


def streaming_spa(store: TraceStore,
                  max_traces: Optional[int] = None,
                  window_size: int = 1,
                  allow_partial: bool = False) -> SpaResult:
    """Clustering SPA on the campaign-average trace."""
    averaged = streaming_average_trace(store, max_traces,
                                       allow_partial=allow_partial)
    return transition_spa(averaged, list(store.iteration_slices),
                          list(store.key_bits), window_size=window_size)


def streaming_tvla(fixed_store: TraceStore, random_store: TraceStore,
                   columns: Optional[tuple] = None,
                   threshold: float = TVLA_THRESHOLD,
                   allow_partial: bool = False) -> TvlaReport:
    """Fixed-vs-random Welch t-test between two stores, streamed.

    ``columns`` restricts the test to a cycle window (e.g. the
    secret-dependent cycles); default is the full trace width.
    """
    _require_complete(fixed_store, allow_partial, "streaming_tvla")
    _require_complete(random_store, allow_partial, "streaming_tvla")

    def moments(store: TraceStore) -> OnlineMoments:
        acc = None
        for view in store.iter_shards(columns=columns):
            if acc is None:
                acc = OnlineMoments(view.samples.shape[1])
            acc.update(view.samples)
        if acc is None:
            raise ValueError("no shards on disk")
        return acc

    a, b = moments(fixed_store), moments(random_store)
    if a.count.min() < 2 or b.count.min() < 2:
        raise ValueError("each population needs at least two traces")
    mean_diff = a.mean() - b.mean()
    var_term = a.variance() / a.count + b.variance() / b.count
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(var_term > 0, mean_diff / np.sqrt(var_term), 0.0)
    abs_t = np.abs(t)
    return TvlaReport(
        max_abs_t=float(abs_t.max()),
        num_leaky_samples=int((abs_t > threshold).sum()),
        n_samples=int(t.shape[0]),
        threshold=threshold,
    )
