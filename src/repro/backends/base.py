"""The common backend protocol: cycles, activity, area, seal/open.

A :class:`CryptoBackend` is the symmetric-side counterpart of the ECC
coprocessor model: a functional primitive (seal/open really encrypt
and authenticate bytes) that *also* reports what the hardware engine
underneath would have done — how many cycles it ran and how much
switching activity it generated, in the same toggle units the
Hamming-distance leakage model assigns to the ECC datapath.  That
shared unit is what lets :mod:`repro.dse` price an ECC point
multiplication and a Simon AEAD message with one calibrated
per-toggle energy constant.

The backend *axis* of a design space is a list of labels parsed by
:func:`parse_backend_point`:

* ``"ecc"`` — the paper's public-key design (one handshake per
  message),
* ``"simon-aead"`` / ``"sha1-aead"`` — symmetric-only designs (no
  asymmetric handshake, no private identification),
* ``"hybrid:<k>"`` (or ``"hybrid:<engine>:<k>"``) — the amortized
  design: one ECC handshake per ``k`` messages derives a session key
  for the symmetric engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["AeadTagError", "BackendPoint", "CryptoBackend",
           "EngineTrace", "OpenResult", "SealResult",
           "SYMMETRIC_BACKEND_NAMES", "get_backend",
           "parse_backend_point", "register_backend"]

#: Symmetric engine names the backend axis accepts (static so the DSE
#: spec can validate without importing the engines).
SYMMETRIC_BACKEND_NAMES = ("simon-aead", "sha1-aead")


class AeadTagError(Exception):
    """Authentication tag mismatch on :meth:`CryptoBackend.open`.

    Carries the :class:`EngineTrace` of the failed attempt — a
    rejected frame still costs the receiver real cycles and energy,
    which is exactly the asymmetry battery-depletion adversaries
    exploit.
    """

    def __init__(self, message: str, trace: "EngineTrace"):
        super().__init__(message)
        self.trace = trace


@dataclass(frozen=True)
class EngineTrace:
    """What one engine pass did: cycles and switching activity.

    ``consumed`` is summed Hamming distance between consecutive
    register states — the same toggle unit
    :class:`~repro.power.models.CmosLeakageModel` assigns to the ECC
    datapath, so one :class:`~repro.power.energy.EnergyModel` prices
    both worlds.
    """

    cycles: int
    consumed: float

    def __add__(self, other: "EngineTrace") -> "EngineTrace":
        return EngineTrace(self.cycles + other.cycles,
                           self.consumed + other.consumed)

    @classmethod
    def zero(cls) -> "EngineTrace":
        return cls(0, 0.0)


@dataclass(frozen=True)
class SealResult:
    """An authenticated-encrypted message plus its engine bill."""

    ciphertext: bytes
    tag: bytes
    trace: EngineTrace


@dataclass(frozen=True)
class OpenResult:
    """A verified-and-decrypted message plus its engine bill."""

    plaintext: bytes
    trace: EngineTrace


class CryptoBackend:
    """One symmetric engine behind the common protocol.

    Subclasses set ``name`` / ``key_bytes`` / ``nonce_bytes`` /
    ``tag_bytes`` and implement :meth:`area_ge`, :meth:`seal` and
    :meth:`open`.  ``seal``/``open`` are deterministic functions of
    their arguments (the caller owns nonce uniqueness), and every
    block operation they run is metered into the returned
    :class:`EngineTrace`.
    """

    name: str = ""
    key_bytes: int = 0
    nonce_bytes: int = 0
    tag_bytes: int = 0

    def area_ge(self) -> float:
        """Gate-equivalent area of the engine."""
        raise NotImplementedError

    def seal(self, key: bytes, nonce: bytes, plaintext: bytes,
             aad: bytes = b"") -> SealResult:
        raise NotImplementedError

    def open(self, key: bytes, nonce: bytes, ciphertext: bytes,
             tag: bytes, aad: bytes = b"") -> OpenResult:
        raise NotImplementedError

    def message_trace(self, plaintext_bytes: int,
                      aad_bytes: int = 0) -> EngineTrace:
        """The engine bill of sealing one canonical message.

        Deterministic (fixed derived key/nonce/payload), so the DSE
        measurement cache can store it under a stable digest.
        """
        from ..primitives.sha1 import sha1

        def stream(label: str, n: int) -> bytes:
            out = b""
            counter = 0
            while len(out) < n:
                out += sha1(f"repro.backends/{self.name}/{label}/"
                            f"{counter}".encode())
                counter += 1
            return out[:n]

        result = self.seal(stream("key", self.key_bytes),
                           stream("nonce", self.nonce_bytes),
                           stream("message", plaintext_bytes),
                           stream("aad", aad_bytes))
        return result.trace


#: name -> backend factory; populated by :func:`register_backend`.
_REGISTRY: dict = {}


def register_backend(cls):
    """Class decorator: expose a backend under its ``name``."""
    _REGISTRY[cls.name] = cls
    return cls


def get_backend(name: str) -> CryptoBackend:
    """Instantiate a symmetric backend by name."""
    if not _REGISTRY:
        from . import aead  # noqa: F401  (registers on import)
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown backend {name!r} (know {known})") \
            from None


@dataclass(frozen=True)
class BackendPoint:
    """One parsed entry of a design space's backend axis."""

    label: str            # the axis entry as written, e.g. "hybrid:16"
    kind: str             # "ecc" | "symmetric" | "hybrid"
    engine: Optional[str]  # symmetric engine name (None for pure ECC)
    epoch: Optional[int]  # messages per handshake (hybrid only)


def parse_backend_point(label: str) -> BackendPoint:
    """Parse one backend-axis label; raises ``ValueError`` when bad."""
    if label == "ecc":
        return BackendPoint(label=label, kind="ecc", engine=None,
                            epoch=None)
    if label in SYMMETRIC_BACKEND_NAMES:
        return BackendPoint(label=label, kind="symmetric", engine=label,
                            epoch=None)
    if label.startswith("hybrid:"):
        parts = label.split(":")[1:]
        engine = SYMMETRIC_BACKEND_NAMES[0]
        if len(parts) == 2:
            engine, parts = parts[0], parts[1:]
        if len(parts) != 1:
            raise ValueError(
                f"bad hybrid backend {label!r} "
                f"(want hybrid:<epoch> or hybrid:<engine>:<epoch>)")
        if engine not in SYMMETRIC_BACKEND_NAMES:
            known = ", ".join(SYMMETRIC_BACKEND_NAMES)
            raise ValueError(
                f"unknown engine in {label!r} (know {known})")
        try:
            epoch = int(parts[0])
        except ValueError:
            raise ValueError(
                f"bad epoch in {label!r} (want an integer)") from None
        if epoch < 1:
            raise ValueError(f"epoch in {label!r} must be >= 1")
        return BackendPoint(label=label, kind="hybrid", engine=engine,
                            epoch=epoch)
    known = ", ".join(("ecc",) + SYMMETRIC_BACKEND_NAMES
                      + ("hybrid:<epoch>",))
    raise ValueError(f"unknown backend {label!r} (know {known})")
