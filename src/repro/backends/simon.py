"""Simon 32/64: the round function as a cycle-accurate engine.

Simon 32/64 (Beaulieu et al., *The SIMON and SPECK Families of
Lightweight Block Ciphers*, 2013) is the smallest published block
cipher in hardware — the serialized ASIC implementation is 523 GE,
an order of magnitude under the paper's 5 527-GE SHA-1 unit and two
under the ~12 k-GE ECC core.  The crypto-engine literature followed
up with sub-pJ/bit Simon datapaths in 40 nm, which is exactly the
secret-key end of the paper's secret-key vs. public-key trade-off.

The model here is the bit-serial-friendly round engine:

* one round per cycle (the AND/rotate/XOR round function is
  combinational), plus a 4-cycle load/unload overhead per block;
* the key schedule runs *on the fly*, one scheduled word per round
  cycle, so a block costs ``ROUNDS + 4`` cycles;
* switching activity is the Hamming distance between consecutive
  state-register values — the (x, y) text registers and the 64-bit
  key register window — the same leakage currency
  :class:`~repro.power.models.CmosLeakageModel` uses for the ECC
  datapath.

>>> key = bytes.fromhex("1918111009080100")
>>> simon32_encrypt(key, bytes.fromhex("65656877")).hex()
'c69be9bb'
>>> simon32_decrypt(key, bytes.fromhex("c69be9bb")).hex()
'65656877'
"""

from __future__ import annotations

from typing import List, Tuple

from .base import EngineTrace

__all__ = ["ROUNDS", "SIMON32_64_GATES", "Simon32Engine",
           "simon32_decrypt", "simon32_encrypt"]

#: Serialized ASIC gate count of Simon 32/64 (Beaulieu et al. 2013).
SIMON32_64_GATES = 523.0

#: Rounds of the 32/64 parameter set.
ROUNDS = 32

#: Load plaintext + unload ciphertext around the round loop.
_IO_CYCLES = 4

_MASK = 0xFFFF

#: The z0 constant sequence (62 bits, repeating); bit ``j`` of the
#: schedule is bit ``j`` of this integer counted from the LSB.
_Z0 = 0b01100111000011010100100010111110110011100001101010010001011111


def _rol(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (16 - amount))) & _MASK


def _ror(value: int, amount: int) -> int:
    return ((value >> amount) | (value << (16 - amount))) & _MASK


def _z_bit(j: int) -> int:
    return (_Z0 >> (j % 62)) & 1


def _popcount(value: int) -> int:
    return bin(value).count("1")


def _load_key(key: bytes) -> List[int]:
    """Round keys k[0..3] from the 8-byte key (k[3] printed first in
    the spec's test vectors, k[0] used in round 0)."""
    if len(key) != 8:
        raise ValueError(f"Simon 32/64 key must be 8 bytes, "
                         f"got {len(key)}")
    words = [int.from_bytes(key[i:i + 2], "big") for i in (0, 2, 4, 6)]
    return [words[3], words[2], words[1], words[0]]


def _expand_key(key: bytes) -> Tuple[List[int], float]:
    """All 32 round keys plus the key-register switching activity.

    The engine holds a 4-word (64-bit) key window; each schedule step
    shifts one new word in, so its activity is the Hamming distance
    between consecutive window states.
    """
    k = _load_key(key)
    consumed = 0.0
    for i in range(4, ROUNDS):
        tmp = _ror(k[i - 1], 3) ^ k[i - 3]
        tmp ^= _ror(tmp, 1)
        new = (~k[i - 4] & _MASK) ^ tmp ^ _z_bit(i - 4) ^ 3
        k.append(new)
        # window (k[i-4..i-1]) -> (k[i-3..i]): k[i-4] leaves, new enters
        consumed += _popcount(k[i - 4] ^ new)
    return k, consumed


def _block_words(block: bytes) -> Tuple[int, int]:
    if len(block) != 4:
        raise ValueError(f"Simon 32/64 block must be 4 bytes, "
                         f"got {len(block)}")
    return (int.from_bytes(block[:2], "big"),
            int.from_bytes(block[2:], "big"))


class Simon32Engine:
    """A metered Simon 32/64 block engine (one key, many blocks).

    The key schedule is modeled on the fly — every block pays its
    schedule activity again, as a 523-GE serialized core with a
    4-word key register really does.
    """

    block_bytes = 4
    key_bytes = 8

    def __init__(self, key: bytes):
        self._round_keys, self._schedule_consumed = _expand_key(key)

    def encrypt_block(self, block: bytes) -> Tuple[bytes, EngineTrace]:
        x, y = _block_words(block)
        consumed = self._schedule_consumed
        for i in range(ROUNDS):
            nx = (y ^ (_rol(x, 1) & _rol(x, 8)) ^ _rol(x, 2)
                  ^ self._round_keys[i])
            consumed += _popcount(x ^ nx) + _popcount(y ^ x)
            x, y = nx, x
        data = x.to_bytes(2, "big") + y.to_bytes(2, "big")
        return data, EngineTrace(ROUNDS + _IO_CYCLES, float(consumed))

    def decrypt_block(self, block: bytes) -> Tuple[bytes, EngineTrace]:
        x, y = _block_words(block)
        consumed = self._schedule_consumed
        for i in reversed(range(ROUNDS)):
            ny = (x ^ (_rol(y, 1) & _rol(y, 8)) ^ _rol(y, 2)
                  ^ self._round_keys[i])
            consumed += _popcount(y ^ ny) + _popcount(x ^ y)
            x, y = y, ny
        data = x.to_bytes(2, "big") + y.to_bytes(2, "big")
        return data, EngineTrace(ROUNDS + _IO_CYCLES, float(consumed))


def simon32_encrypt(key: bytes, block: bytes) -> bytes:
    """One-shot ECB encryption of a single 4-byte block."""
    return Simon32Engine(key).encrypt_block(block)[0]


def simon32_decrypt(key: bytes, block: bytes) -> bytes:
    """One-shot ECB decryption of a single 4-byte block."""
    return Simon32Engine(key).decrypt_block(block)[0]
