"""Pluggable symmetric crypto backends (Section 4's other column).

The paper's gate-count argument — a SHA-1 unit at 5 527 GE against
~12 k GE for the ECC core — makes secret-key vs. public-key a design
*dimension*, not a foregone conclusion.  This package gives that
dimension functional artifacts: cycle-accurate, energy-accounted
models of lightweight symmetric primitives behind one
:class:`~repro.backends.base.CryptoBackend` protocol —

* :mod:`repro.backends.simon` — the Simon 32/64 round-function engine
  (32-bit block, 64-bit key, 32 rounds; the smallest published block
  cipher in hardware),
* :mod:`repro.backends.sha1_unit` — a cycle-tracked SHA-1 compression
  unit (the paper's own 5 527-GE hash) with HMAC on top,
* :mod:`repro.backends.aead` — seal/open AEAD constructions over both
  engines, every block operation metered,
* :mod:`repro.backends.evaluation` — the calibrate-then-measure
  bridge: backend switching activity priced through the same
  per-toggle energy constant the ECC reference design calibrates.

Every engine reports an :class:`~repro.backends.base.EngineTrace`
(cycles + Hamming-distance switching activity), so a symmetric message
and an ECC point multiplication are priced by one
:class:`~repro.power.energy.EnergyModel` in the same units.
"""

from .base import (
    AeadTagError,
    BackendPoint,
    CryptoBackend,
    EngineTrace,
    OpenResult,
    SealResult,
    SYMMETRIC_BACKEND_NAMES,
    get_backend,
    parse_backend_point,
)
from .aead import Sha1AeadBackend, SimonAeadBackend
from .evaluation import (
    HANDSHAKE_POINT_MULTIPLICATIONS,
    MESSAGE_BYTES,
    MeasuredPrimitive,
    message_energy_uj,
)
from .sha1_unit import Sha1Engine
from .simon import SIMON32_64_GATES, Simon32Engine, simon32_decrypt, \
    simon32_encrypt

__all__ = [
    "AeadTagError",
    "BackendPoint",
    "CryptoBackend",
    "EngineTrace",
    "HANDSHAKE_POINT_MULTIPLICATIONS",
    "MESSAGE_BYTES",
    "MeasuredPrimitive",
    "OpenResult",
    "SealResult",
    "Sha1AeadBackend",
    "Sha1Engine",
    "SimonAeadBackend",
    "Simon32Engine",
    "SIMON32_64_GATES",
    "SYMMETRIC_BACKEND_NAMES",
    "get_backend",
    "message_energy_uj",
    "parse_backend_point",
    "simon32_decrypt",
    "simon32_encrypt",
]
