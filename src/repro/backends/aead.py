"""Seal/open AEAD over the metered engines.

Two encrypt-then-MAC constructions, one per engine, both with every
block operation billed to the returned :class:`EngineTrace`:

* :class:`SimonAeadBackend` — CTR keystream + CBC-MAC over Simon
  32/64.  Toy-scaled on purpose: the 32-bit block forces a 32-bit
  tag, which matches the TOY-curve protocol scale the soaks run at
  (the DSE axis prices the *engine*, not the tag's brute-force
  margin).
* :class:`Sha1AeadBackend` — a SHA-1 keystream with an HMAC-SHA1 tag,
  the construction a 5 527-GE hash-only tag would actually ship.

Both are deterministic functions of (key, nonce, plaintext, aad); the
caller owns nonce uniqueness per key — the amortized session layer
derives nonces from (epoch, sequence) counters and never reuses one,
and retransmissions resend the identical sealed frame.
"""

from __future__ import annotations

import struct

from ..primitives.mac import constant_time_equal
from .base import (AeadTagError, CryptoBackend, EngineTrace, OpenResult,
                   SealResult, register_backend)
from .sha1_unit import Sha1Engine, hmac_sha1_trace
from .simon import SIMON32_64_GATES, Simon32Engine

__all__ = ["Sha1AeadBackend", "SimonAeadBackend"]


def _chunks(data: bytes, size: int):
    for start in range(0, len(data), size):
        yield data[start:start + size]


@register_backend
class SimonAeadBackend(CryptoBackend):
    """CTR + CBC-MAC over the Simon 32/64 engine."""

    name = "simon-aead"
    key_bytes = 8
    nonce_bytes = 4
    tag_bytes = 4

    def area_ge(self) -> float:
        # One serialized core, time-shared between CTR and CBC-MAC
        # (the two subkeys live in the same 64-bit key register).
        return SIMON32_64_GATES

    def _subkeys(self, key: bytes):
        """Independent CTR and MAC keys derived through the engine."""
        engine = Simon32Engine(key)
        k1, t1 = engine.encrypt_block(b"\x00\x00\x00\x01")
        k2, t2 = engine.encrypt_block(b"\x00\x00\x00\x02")
        k3, t3 = engine.encrypt_block(b"\x00\x00\x00\x03")
        k4, t4 = engine.encrypt_block(b"\x00\x00\x00\x04")
        return (Simon32Engine(k1 + k2), Simon32Engine(k3 + k4),
                t1 + t2 + t3 + t4)

    def _keystream_xor(self, ctr: Simon32Engine, nonce: bytes,
                       data: bytes):
        nonce_word = int.from_bytes(nonce, "big")
        out = bytearray()
        trace = EngineTrace.zero()
        for counter, chunk in enumerate(_chunks(data, 4)):
            block = ((nonce_word + counter) & 0xFFFFFFFF).to_bytes(4, "big")
            keystream, block_trace = ctr.encrypt_block(block)
            trace = trace + block_trace
            out.extend(b ^ k for b, k in zip(chunk, keystream))
        return bytes(out), trace

    def _mac(self, mac: Simon32Engine, nonce: bytes, ciphertext: bytes,
             aad: bytes):
        message = (nonce + struct.pack(">II", len(aad), len(ciphertext))
                   + aad + ciphertext)
        if len(message) % 4:
            message += b"\x00" * (4 - len(message) % 4)
        state = b"\x00" * 4
        trace = EngineTrace.zero()
        for chunk in _chunks(message, 4):
            mixed = bytes(s ^ c for s, c in zip(state, chunk))
            state, block_trace = mac.encrypt_block(mixed)
            trace = trace + block_trace
        return state, trace

    def seal(self, key: bytes, nonce: bytes, plaintext: bytes,
             aad: bytes = b"") -> SealResult:
        ctr, mac, trace = self._subkeys(key)
        ciphertext, ks_trace = self._keystream_xor(ctr, nonce, plaintext)
        tag, mac_trace = self._mac(mac, nonce, ciphertext, aad)
        return SealResult(ciphertext=ciphertext, tag=tag,
                          trace=trace + ks_trace + mac_trace)

    def open(self, key: bytes, nonce: bytes, ciphertext: bytes,
             tag: bytes, aad: bytes = b"") -> OpenResult:
        ctr, mac, trace = self._subkeys(key)
        expected, mac_trace = self._mac(mac, nonce, ciphertext, aad)
        trace = trace + mac_trace
        if not constant_time_equal(expected, tag):
            raise AeadTagError("simon-aead tag mismatch", trace)
        plaintext, ks_trace = self._keystream_xor(ctr, nonce, ciphertext)
        return OpenResult(plaintext=plaintext, trace=trace + ks_trace)


@register_backend
class Sha1AeadBackend(CryptoBackend):
    """SHA-1 keystream + truncated HMAC-SHA1 tag."""

    name = "sha1-aead"
    key_bytes = 16
    nonce_bytes = 8
    tag_bytes = 8

    def area_ge(self) -> float:
        from ..arch.area import SHA1_GATES

        return float(SHA1_GATES)

    def _keystream_xor(self, key: bytes, nonce: bytes, data: bytes):
        engine = Sha1Engine()
        out = bytearray()
        trace = EngineTrace.zero()
        for counter, chunk in enumerate(_chunks(data, 20)):
            block, block_trace = engine.hash(
                b"\x01" + key + nonce + struct.pack(">I", counter))
            trace = trace + block_trace
            out.extend(b ^ k for b, k in zip(chunk, block))
        return bytes(out), trace

    def seal(self, key: bytes, nonce: bytes, plaintext: bytes,
             aad: bytes = b"") -> SealResult:
        ciphertext, ks_trace = self._keystream_xor(key, nonce, plaintext)
        digest, mac_trace = hmac_sha1_trace(
            key, b"\x02" + nonce + struct.pack(">I", len(aad))
            + aad + ciphertext)
        return SealResult(ciphertext=ciphertext,
                          tag=digest[:self.tag_bytes],
                          trace=ks_trace + mac_trace)

    def open(self, key: bytes, nonce: bytes, ciphertext: bytes,
             tag: bytes, aad: bytes = b"") -> OpenResult:
        digest, mac_trace = hmac_sha1_trace(
            key, b"\x02" + nonce + struct.pack(">I", len(aad))
            + aad + ciphertext)
        if not constant_time_equal(digest[:self.tag_bytes], tag):
            raise AeadTagError("sha1-aead tag mismatch", mac_trace)
        plaintext, ks_trace = self._keystream_xor(key, nonce, ciphertext)
        return OpenResult(plaintext=plaintext,
                          trace=mac_trace + ks_trace)
