"""Calibrate-then-measure for symmetric engines.

The energy discipline of the whole repo is: fit ONE per-toggle energy
constant so the paper's reference ECC design (digit 4, full
countermeasures) hits its published 50.4 µW at 847.5 kHz / 1.0 V,
then price everything else through
:meth:`~repro.power.energy.EnergyModel.report_activity`.  A backend's
:class:`~repro.backends.base.EngineTrace` is in the same toggle
units, so the same calibrated model prices a Simon AEAD message and
an ECC point multiplication side by side — which is what makes
"secret-key vs. public-key" a single axis of one design space instead
of two incomparable studies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..power.energy import EnergyModel
from ..power.technology import OperatingPoint, PAPER_OPERATING_POINT
from .base import CryptoBackend, EngineTrace, get_backend

__all__ = ["HANDSHAKE_POINT_MULTIPLICATIONS", "MESSAGE_BYTES",
           "MeasuredPrimitive", "measure_backend", "message_energy_uj"]

#: Canonical message size of one DSE backend measurement (bytes).
MESSAGE_BYTES = 32

#: Tag-side ECC work of one identification handshake: the
#: Peeters-Hermans commit plus response (the E6 workload), each one
#: point multiplication.  Pure-ECC messaging pays this per message;
#: the amortized hybrid pays it once per epoch.
HANDSHAKE_POINT_MULTIPLICATIONS = 2


@dataclass(frozen=True)
class MeasuredPrimitive:
    """A symmetric engine reduced to its electrical essentials.

    The secret-key sibling of
    :class:`~repro.power.evaluation.MeasuredDesign`: ``(consumed,
    cycles, area)`` of one canonical sealed message, from which every
    (Vdd, f) operating point derives by arithmetic.
    """

    backend: str
    cycles: int
    consumed: float
    area_ge: float
    message_bytes: int = MESSAGE_BYTES

    @classmethod
    def measure(cls, backend, message_bytes: int = MESSAGE_BYTES,
                ) -> "MeasuredPrimitive":
        """Seal one canonical message and record the engine bill."""
        if isinstance(backend, str):
            backend = get_backend(backend)
        trace = backend.message_trace(message_bytes)
        return cls(backend=backend.name, cycles=trace.cycles,
                   consumed=trace.consumed, area_ge=backend.area_ge(),
                   message_bytes=message_bytes)

    def at(self, model: EnergyModel,
           point: OperatingPoint = PAPER_OPERATING_POINT):
        """Price this measurement at an operating point."""
        return model.report_activity(self.consumed, self.cycles, point)


def measure_backend(name: str,
                    message_bytes: int = MESSAGE_BYTES,
                    ) -> MeasuredPrimitive:
    """Measure a backend by name (the DSE worker entry point)."""
    return MeasuredPrimitive.measure(name, message_bytes=message_bytes)


def trace_energy_uj(trace: EngineTrace, model: EnergyModel,
                    point: OperatingPoint = PAPER_OPERATING_POINT,
                    ) -> float:
    """µJ of one engine trace under the calibrated model."""
    if trace.cycles == 0:
        return 0.0
    return model.report_activity(trace.consumed, trace.cycles,
                                 point).energy_joules * 1e6


def message_energy_uj(backend, model: EnergyModel,
                      point: OperatingPoint = PAPER_OPERATING_POINT,
                      message_bytes: int = MESSAGE_BYTES) -> float:
    """µJ of sealing one canonical message on ``backend``."""
    if isinstance(backend, CryptoBackend):
        trace = backend.message_trace(message_bytes)
        return trace_energy_uj(trace, model, point)
    measured = measure_backend(backend, message_bytes=message_bytes)
    return measured.at(model, point).energy_joules * 1e6
