"""A cycle-accurate SHA-1 compression unit (the paper's 5 527 GE).

Section 4 anchors the secret-key side of the gate-count argument on
the smallest published SHA-1 implementation — 5 527 gates [O'Neill
2008].  :mod:`repro.primitives.sha1` made the digest functional; this
module makes the *engine* observable: the same FIPS 180 compression,
but tracking what the hardware registers do —

* 16 cycles to load the message block, 80 round cycles (the W
  schedule runs in parallel with the rounds, as the compact cores do),
  5 cycles to fold the working variables back into the chaining
  state: 101 cycles per block;
* switching activity = Hamming distance between consecutive values of
  the 160-bit working register (a, b, c, d, e) plus the 16-word
  schedule window — the common toggle unit of the energy model.

The digests are bit-identical to :func:`repro.primitives.sha1.sha1`
(the FIPS 180 known-answer tests gate both).
"""

from __future__ import annotations

import struct
from typing import Tuple

from .base import EngineTrace

__all__ = ["BLOCK_CYCLES", "Sha1Engine", "hmac_sha1_trace"]

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
_MASK = 0xFFFFFFFF

#: Load (16) + rounds (80, schedule in parallel) + state fold (5).
BLOCK_CYCLES = 101


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK


def _popcount(value: int) -> int:
    return bin(value).count("1")


class Sha1Engine:
    """Metered SHA-1: hash bytes, get the digest and the engine bill."""

    digest_size = 20
    block_size = 64

    def _compress(self, h: list, block: bytes) -> Tuple[list, float]:
        w = list(struct.unpack(">16I", block))
        consumed = float(sum(_popcount(word) for word in w))  # load
        a, b, c, d, e = h
        for t in range(80):
            if t >= 16:
                scheduled = _rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14]
                                  ^ w[t - 16], 1)
                # 16-word window shifts: w[t-16] leaves, scheduled enters
                consumed += _popcount(w[t - 16] ^ scheduled)
                w.append(scheduled)
            if t < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl(a, 5) + f + e + k + w[t]) & _MASK
            ne, nd, nc, nb, na = d, c, _rotl(b, 30), a, temp
            consumed += (_popcount(a ^ na) + _popcount(b ^ nb)
                         + _popcount(c ^ nc) + _popcount(d ^ nd)
                         + _popcount(e ^ ne))
            a, b, c, d, e = na, nb, nc, nd, ne
        out = [(x + y) & _MASK for x, y in zip(h, (a, b, c, d, e))]
        consumed += sum(_popcount(x ^ y) for x, y in zip(h, out))
        return out, consumed

    def hash(self, message: bytes) -> Tuple[bytes, EngineTrace]:
        """FIPS 180 digest of ``message`` plus the engine bill."""
        h = list(_H0)
        padded = message + b"\x80"
        padded += b"\x00" * ((56 - len(padded) % 64) % 64)
        padded += struct.pack(">Q", len(message) * 8)
        cycles = 0
        consumed = 0.0
        for start in range(0, len(padded), 64):
            h, block_consumed = self._compress(h, padded[start:start + 64])
            cycles += BLOCK_CYCLES
            consumed += block_consumed
        return struct.pack(">5I", *h), EngineTrace(cycles, consumed)


def hmac_sha1_trace(key: bytes, message: bytes) -> Tuple[bytes, EngineTrace]:
    """HMAC-SHA1 through the metered engine (RFC 2104)."""
    engine = Sha1Engine()
    trace = EngineTrace.zero()
    if len(key) > 64:
        key, key_trace = engine.hash(key)
        trace = trace + key_trace
    key = key.ljust(64, b"\x00")
    inner, inner_trace = engine.hash(
        bytes(b ^ 0x36 for b in key) + message)
    outer, outer_trace = engine.hash(
        bytes(b ^ 0x5C for b in key) + inner)
    return outer, trace + inner_trace + outer_trace
