"""Gaussian template attacks: the strongest profiled adversary.

The natural escalation of :class:`~repro.sca.spa.ProfiledSpa`: instead
of one scalar feature per iteration, the adversary models the joint
distribution of several points of interest (POIs) per class with
Gaussian templates — the standard formalization of "a complex
profiling phase with an identical device under his total control"
(Section 7).

Profiling: choose the POI cycles with the largest between-class mean
separation (normalized by the pooled deviation), then estimate a class
mean vector and a pooled diagonal covariance.  Attack: classify each
ladder iteration of the target traces by Gaussian log-likelihood.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .spa import SpaResult

__all__ = ["GaussianTemplateAttack"]


class GaussianTemplateAttack:
    """Per-iteration two-class Gaussian templates over POI cycles.

    Parameters
    ----------
    poi_count:
        Number of points of interest per iteration window.
    window:
        Leading cycles of each iteration considered for POI selection
        (the control spike and the first datapath cycles live there).
    """

    def __init__(self, poi_count: int = 3, window: int = 12):
        if poi_count < 1 or window < poi_count:
            raise ValueError("need 1 <= poi_count <= window")
        self.poi_count = poi_count
        self.window = window
        self._pois: Optional[np.ndarray] = None
        self._means: Optional[dict] = None
        self._variances: Optional[np.ndarray] = None

    @property
    def is_profiled(self) -> bool:
        """True once :meth:`profile` has run."""
        return self._pois is not None

    def _iteration_features(self, samples: np.ndarray,
                            iteration_slices: list) -> np.ndarray:
        """(n_traces * n_iterations, window) matrix of window cuts."""
        samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
        rows = []
        for start, end in iteration_slices:
            width = min(self.window, end - start)
            cut = samples[:, start:start + width]
            if width < self.window:
                pad = np.zeros((cut.shape[0], self.window - width))
                cut = np.hstack([cut, pad])
            rows.append(cut)
        # Shape: (n_iterations, n_traces, window) -> flatten later.
        return np.stack(rows)

    def profile(self, samples: np.ndarray, iteration_slices: list,
                known_bits: list) -> None:
        """Build the two class templates from a known-key device."""
        cuts = self._iteration_features(samples, iteration_slices)
        if cuts.shape[0] != len(known_bits):
            raise ValueError("one known bit per iteration is required")
        bits = np.asarray(known_bits)
        class_rows = {
            b: cuts[bits == b].reshape(-1, self.window) for b in (0, 1)
        }
        if any(rows.shape[0] < 2 for rows in class_rows.values()):
            raise ValueError("profiling key must exercise both bit values")
        mean0 = class_rows[0].mean(axis=0)
        mean1 = class_rows[1].mean(axis=0)
        pooled = np.sqrt(
            0.5 * (class_rows[0].var(axis=0) + class_rows[1].var(axis=0))
        )
        pooled[pooled == 0] = 1.0
        separation = np.abs(mean1 - mean0) / pooled
        self._pois = np.argsort(separation)[::-1][: self.poi_count]
        self._means = {b: class_rows[b].mean(axis=0)[self._pois]
                       for b in (0, 1)}
        variances = 0.5 * (
            class_rows[0].var(axis=0) + class_rows[1].var(axis=0)
        )[self._pois]
        variances[variances == 0] = 1.0
        self._variances = variances

    def _log_likelihood(self, vector: np.ndarray, bit: int) -> float:
        delta = vector - self._means[bit]
        return float(-0.5 * np.sum(delta * delta / self._variances))

    def attack(self, samples: np.ndarray, iteration_slices: list,
               true_bits: list) -> SpaResult:
        """Classify each iteration of (averaged) target traces."""
        if not self.is_profiled:
            raise RuntimeError("profile() must be called before attack()")
        cuts = self._iteration_features(samples, iteration_slices)
        averaged = cuts.mean(axis=1)  # average the traces per iteration
        recovered = []
        for row in averaged:
            vector = row[self._pois]
            recovered.append(
                1 if self._log_likelihood(vector, 1)
                > self._log_likelihood(vector, 0) else 0
            )
        return SpaResult(recovered_bits=recovered, true_bits=list(true_bits))
