"""Mutual Information Analysis: the model-free distinguisher.

DPA/CPA assume the leakage is (affinely) proportional to the predicted
activity.  MIA (Gierlichs et al., CHES 2008) drops that assumption: it
estimates the mutual information between the measurement and the
hypothesized intermediate, so it also catches leakages a linear model
misses.  Included as the third distinguisher of the attack suite; on
this simulator (where leakage *is* linear) it matches CPA's verdicts
at a higher trace cost — the classic trade-off.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..arch.coprocessor import EccCoprocessor
from ..power.simulator import TraceSet
from .dpa import BitDecision, DpaResult
from .predict import ActivityPredictor

__all__ = ["mutual_information", "LadderMia"]


def mutual_information(predictions: np.ndarray, observations: np.ndarray,
                       prediction_bins: int = 4,
                       observation_bins: int = 8) -> float:
    """Histogram estimate of I(prediction; observation) in bits."""
    p = np.asarray(predictions, dtype=np.float64)
    o = np.asarray(observations, dtype=np.float64)
    if p.shape != o.shape or p.ndim != 1:
        raise ValueError("need two equal-length 1-D arrays")
    if p.std() == 0 or o.std() == 0:
        return 0.0
    joint, __, __ = np.histogram2d(p, o,
                                   bins=(prediction_bins, observation_bins))
    joint = joint / joint.sum()
    marginal_p = joint.sum(axis=1, keepdims=True)
    marginal_o = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / (marginal_p * marginal_o)
        terms = np.where(joint > 0, joint * np.log2(ratio), 0.0)
    return float(terms.sum())


class LadderMia:
    """MIA against the ladder, same adversary model as LadderDpa/Cpa.

    The per-bit statistic is the maximum, over hypothesis-
    distinguishing cycles, of the mutual information between the
    prediction *difference* and the measurement.
    """

    def __init__(self, coprocessor: EccCoprocessor,
                 prediction_bins: int = 4, observation_bins: int = 8):
        self.predictor = ActivityPredictor(coprocessor)
        self.prediction_bins = prediction_bins
        self.observation_bins = observation_bins

    def attack_bit(self, traces: TraceSet, bit_index: int,
                   known_prefix: list,
                   z_values: Optional[list] = None) -> BitDecision:
        """Decide one bit: which hypothesis's model shares more
        information with the measurements."""
        start, end = traces.iteration_slices[bit_index]
        observed = traces.samples[:, start:end]
        predictions = {
            h: self.predictor.prediction_matrix(
                traces.inputs, known_prefix, h, bit_index, z_values
            )
            for h in (0, 1)
        }
        mask = (predictions[0] != predictions[1]).any(axis=0)
        statistics = {0: 0.0, 1: 0.0}
        if mask.any():
            columns = np.flatnonzero(mask)
            for h in (0, 1):
                best = 0.0
                for col in columns:
                    mi = mutual_information(
                        predictions[h][:, col], observed[:, col],
                        self.prediction_bins, self.observation_bins,
                    )
                    if mi > best:
                        best = mi
                statistics[h] = best
        chosen = 1 if statistics[1] >= statistics[0] else 0
        return BitDecision(
            bit_index=bit_index,
            chosen=chosen,
            statistic_zero=statistics[0],
            statistic_one=statistics[1],
            true_bit=traces.key_bits[bit_index],
        )

    def recover_bits(self, traces: TraceSet, n_bits: int,
                     z_values: Optional[list] = None) -> DpaResult:
        """Attack the first ``n_bits`` bits sequentially."""
        if n_bits < 1 or n_bits > len(traces.iteration_slices):
            raise ValueError("n_bits out of range for this campaign")
        decisions = []
        prefix = []
        for bit_index in range(n_bits):
            decision = self.attack_bit(traces, bit_index, prefix, z_values)
            decisions.append(decision)
            prefix.append(decision.chosen)
        return DpaResult(decisions)
