"""Differential Power Analysis on the Montgomery-ladder coprocessor.

The Section 7 experiment: a DPA adversary with a fixed secret key
collects traces over many known base points and recovers the key bit
by bit.  For each target bit it compares the measured traces against
the hypothesized power consumption of both bit guesses (Kocher's
difference-of-means, with the netlist replay as the selection
function) and keeps the hypothesis with the stronger differential
peak.

The three scenarios of the paper's evaluation map to how the
:class:`~repro.power.simulator.TraceSet` was acquired and which
``z_values`` the attack is given:

* countermeasure off  -> scenario "unprotected", z assumed 1: succeeds
  with on the order of a couple hundred traces;
* countermeasure on, randomness known (white-box) -> "known_randomness":
  succeeds too, validating the attack's soundness;
* countermeasure on, randomness secret -> "protected": the predictions
  decorrelate and the attack fails regardless of the trace count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..arch.coprocessor import EccCoprocessor
from ..power.simulator import TraceSet
from .predict import ActivityPredictor

__all__ = ["BitDecision", "DpaResult", "LadderDpa"]


@dataclass(frozen=True)
class BitDecision:
    """Outcome of attacking one key bit."""

    bit_index: int
    chosen: int
    statistic_zero: float
    statistic_one: float
    true_bit: int

    @property
    def correct(self) -> bool:
        """Did the attack choose the device's actual key bit?"""
        return self.chosen == self.true_bit

    @property
    def margin(self) -> float:
        """Statistic gap between the chosen and rejected hypotheses."""
        return abs(self.statistic_one - self.statistic_zero)


@dataclass
class DpaResult:
    """Outcome of a multi-bit DPA attack."""

    decisions: list

    @property
    def recovered_bits(self) -> list:
        """The attack's key-bit guesses, in ladder order."""
        return [d.chosen for d in self.decisions]

    @property
    def true_bits(self) -> list:
        """Ground truth (evaluation only)."""
        return [d.true_bit for d in self.decisions]

    @property
    def num_correct(self) -> int:
        """Number of correctly recovered bits."""
        return sum(1 for d in self.decisions if d.correct)

    @property
    def success(self) -> bool:
        """True iff every attacked bit was recovered."""
        return all(d.correct for d in self.decisions)

    @property
    def peak_statistics(self) -> list:
        """Per-bit winning statistic (the decision's evidence level)."""
        return [max(d.statistic_zero, d.statistic_one)
                for d in self.decisions]

    def significant_success(self, threshold: float = 4.5) -> bool:
        """Recovered everything AND every peak clears ``threshold``.

        A "success" whose statistics sit at the max-over-cycles noise
        floor is a coin flip, not an attack; the adversary cannot tell
        it from failure.  For the difference-of-means statistic (a
        Welch-normalized quantity) the conventional 4.5 threshold
        applies; correlation-based attacks pass a threshold scaled to
        their trace count.
        """
        return self.success and all(p > threshold
                                    for p in self.peak_statistics)


class LadderDpa:
    """Difference-of-means DPA against the ladder coprocessor."""

    def __init__(self, coprocessor: EccCoprocessor, min_partition: int = 5):
        self.predictor = ActivityPredictor(coprocessor)
        if min_partition < 1:
            raise ValueError("min_partition must be positive")
        self.min_partition = min_partition

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------

    def _signed_dom_statistics(self, difference: np.ndarray,
                               observed: np.ndarray) -> tuple:
        """Signed difference-of-means against the hypothesis difference.

        ``difference`` is the per-trace, per-cycle prediction gap
        ``P(bit=1) - P(bit=0)``.  Per cycle, traces are partitioned by
        whether that gap is above its median and the observed means are
        differenced and normalized.  A strongly *positive* peak means
        the measurements co-vary with the bit=1 prediction; a negative
        peak favours bit=0.  Working on the gap removes every
        hypothesis-independent (e.g. public-input-driven) component,
        which would otherwise inflate both hypotheses alike.

        Returns ``(evidence_for_zero, evidence_for_one)``.
        """
        best_pos = 0.0
        best_neg = 0.0
        for col in range(observed.shape[1]):
            d = difference[:, col]
            median = np.median(d)
            high = d > median
            low = ~high
            if high.sum() < self.min_partition or low.sum() < self.min_partition:
                continue
            o = observed[:, col]
            diff = o[high].mean() - o[low].mean()
            pooled = np.sqrt(
                o[high].var(ddof=1) / high.sum() + o[low].var(ddof=1) / low.sum()
            )
            if pooled == 0:
                continue
            statistic = diff / pooled
            if statistic > best_pos:
                best_pos = statistic
            if -statistic > best_neg:
                best_neg = -statistic
        return best_neg, best_pos

    # ------------------------------------------------------------------
    # the attack
    # ------------------------------------------------------------------

    def attack_bit(
        self,
        traces: TraceSet,
        bit_index: int,
        known_prefix: list,
        z_values: Optional[list] = None,
    ) -> BitDecision:
        """Decide one key bit from the campaign."""
        start, end = traces.iteration_slices[bit_index]
        observed = traces.samples[:, start:end]
        predictions = {
            hypothesis: self.predictor.prediction_matrix(
                traces.inputs, known_prefix, hypothesis, bit_index, z_values
            )
            for hypothesis in (0, 1)
        }
        difference = predictions[1] - predictions[0]
        evidence_zero, evidence_one = self._signed_dom_statistics(
            difference, observed
        )
        chosen = 1 if evidence_one >= evidence_zero else 0
        return BitDecision(
            bit_index=bit_index,
            chosen=chosen,
            statistic_zero=evidence_zero,
            statistic_one=evidence_one,
            true_bit=traces.key_bits[bit_index],
        )

    def recover_bits(
        self,
        traces: TraceSet,
        n_bits: int,
        z_values: Optional[list] = None,
    ) -> DpaResult:
        """Attack the first ``n_bits`` ladder bits sequentially.

        Later bits are attacked under the *recovered* prefix (not the
        ground truth), so early mistakes propagate — as they would for
        a real adversary.
        """
        if n_bits < 1 or n_bits > len(traces.iteration_slices):
            raise ValueError("n_bits out of range for this campaign")
        if z_values is not None and len(z_values) != traces.n_traces:
            raise ValueError("one z value per trace is required")
        decisions = []
        prefix = []
        for bit_index in range(n_bits):
            decision = self.attack_bit(traces, bit_index, prefix, z_values)
            decisions.append(decision)
            prefix.append(decision.chosen)
        return DpaResult(decisions)

    def traces_to_disclosure(
        self,
        traces: TraceSet,
        n_bits: int,
        grid: list,
        z_values: Optional[list] = None,
    ) -> Optional[int]:
        """Smallest campaign size in ``grid`` that *significantly*
        recovers all bits (see :meth:`DpaResult.significant_success`).

        Returns None when even the full campaign fails — the paper's
        "even 20000 traces are not enough" outcome.
        """
        for n in sorted(grid):
            subset = traces.subset(n)
            sub_z = None if z_values is None else z_values[:n]
            if self.recover_bits(subset, n_bits, sub_z).significant_success():
                return n
        return None
