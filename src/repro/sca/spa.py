"""Simple Power Analysis on the ladder's control signals (Figure 3).

The SPA adversary of Section 6/7 reads the key from the power
*signature* of single (or averaged) traces.  On the ladder the
instruction sequence is key-independent, so the remaining SPA channel
is the multiplexer-select network: with an unbalanced encoding, the
select wire toggles exactly when consecutive key bits differ, and its
large fan-out makes the toggle visible in a single trace.

With the balanced dual-rail encoding the first-order signature
disappears; what remains is the layout-mismatch residual that Section
7 describes ("a small source of SPA leakage was detected in our
white-box evaluation ... the attacker has to perform a complex
profiling phase with an identical device under his total control") —
implemented here as :class:`ProfiledSpa`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .preprocess import average_traces, compress_windows

__all__ = ["SpaResult", "transition_spa", "ProfiledSpa",
           "bits_from_transitions"]


@dataclass
class SpaResult:
    """Outcome of an SPA key recovery."""

    recovered_bits: list
    true_bits: list

    @property
    def bit_errors(self) -> int:
        """Number of positions where the recovered key is wrong."""
        return sum(1 for r, t in zip(self.recovered_bits, self.true_bits)
                   if r != t)

    @property
    def success(self) -> bool:
        """True iff the whole attacked key segment is correct."""
        return self.bit_errors == 0


def bits_from_transitions(transitions: list, first_bit: int = 1) -> list:
    """Integrate a bit-transition sequence into the bit sequence.

    The ladder's first processed bit follows the (publicly known,
    always 1) MSB, so knowing *whether each iteration's select line
    flipped* reconstructs the whole key.
    """
    bits = []
    previous = first_bit
    for t in transitions:
        current = previous ^ (1 if t else 0)
        bits.append(current)
        previous = current
    return bits


def _control_windows(iteration_slices: list, window_size: int) -> list:
    """The leading cycles of each iteration, where the select network fires.

    The schedule is public (the device is constant-time), so the SPA
    adversary zooms in on the cycles right after each iteration
    boundary instead of integrating the whole iteration — the data-
    dependent MALU activity of the remaining ~500 cycles would swamp
    the control-signal spike otherwise.
    """
    if window_size < 1:
        raise ValueError("window size must be positive")
    return [(start, min(start + window_size, end))
            for start, end in iteration_slices]


def _two_class_threshold(features: np.ndarray) -> float:
    """1-D 2-means threshold (converged Lloyd iterations)."""
    low, high = float(features.min()), float(features.max())
    if low == high:
        return low  # degenerate: no separation at all
    threshold = 0.5 * (low + high)
    for _ in range(50):
        below = features[features <= threshold]
        above = features[features > threshold]
        if len(below) == 0 or len(above) == 0:
            break
        new_threshold = 0.5 * (below.mean() + above.mean())
        if abs(new_threshold - threshold) < 1e-12:
            break
        threshold = new_threshold
    return threshold


def transition_spa(
    samples: np.ndarray,
    iteration_slices: list,
    true_bits: list,
    first_bit: int = 1,
    window_size: int = 1,
) -> SpaResult:
    """Single-trace (or averaged-trace) SPA via iteration-energy clustering.

    Sums the first ``window_size`` cycles of each iteration into one
    feature, splits the features into two clusters, and interprets the
    high-energy cluster as "the select network toggled".  Against the
    unbalanced encoding this recovers the key from one trace; against
    the balanced encoding the clusters are meaningless and the recovery
    degenerates to guessing.
    """
    if np.ndim(samples) == 2:
        samples = average_traces(samples)
    windows = _control_windows(iteration_slices, window_size)
    features = compress_windows(samples, windows)[0]
    threshold = _two_class_threshold(features)
    transitions = [1 if f > threshold else 0 for f in features]
    recovered = bits_from_transitions(transitions, first_bit)
    return SpaResult(recovered_bits=recovered, true_bits=list(true_bits))


class ProfiledSpa:
    """Template SPA exploiting the balanced encoding's layout mismatch.

    Profiling phase: with an identical device under full control (known
    keys), learn the mean iteration-energy for key-bit 0 and key-bit 1
    iterations.  Attack phase: classify each iteration of the target
    (averaged) trace by nearest template mean.

    This directly models the Section 7 caveat: the residual leak is far
    too small for the clustering attack, but a profiling adversary
    integrates it out of the noise.
    """

    def __init__(self, window_size: int = 1):
        if window_size < 1:
            raise ValueError("window size must be positive")
        self.window_size = window_size
        self._mean_zero: Optional[float] = None
        self._mean_one: Optional[float] = None

    @property
    def is_profiled(self) -> bool:
        """True once :meth:`profile` has been run."""
        return self._mean_zero is not None

    def profile(self, samples: np.ndarray, iteration_slices: list,
                known_bits: list) -> None:
        """Learn per-class templates from a known-key device.

        ``samples`` may be many traces of the same key (they are
        averaged); ``known_bits`` are that device's key bits.
        """
        averaged = average_traces(np.atleast_2d(samples))
        windows = _control_windows(iteration_slices, self.window_size)
        features = compress_windows(averaged, windows)[0]
        if len(features) != len(known_bits):
            raise ValueError("one known bit per iteration is required")
        zeros = [f for f, b in zip(features, known_bits) if b == 0]
        ones = [f for f, b in zip(features, known_bits) if b == 1]
        if not zeros or not ones:
            raise ValueError("profiling key must contain both bit values")
        self._mean_zero = float(np.mean(zeros))
        self._mean_one = float(np.mean(ones))

    def attack(self, samples: np.ndarray, iteration_slices: list,
               true_bits: list) -> SpaResult:
        """Classify the target trace's iterations by the templates."""
        if not self.is_profiled:
            raise RuntimeError("profile() must be called before attack()")
        averaged = average_traces(np.atleast_2d(samples))
        windows = _control_windows(iteration_slices, self.window_size)
        features = compress_windows(averaged, windows)[0]
        recovered = [
            1 if abs(f - self._mean_one) < abs(f - self._mean_zero) else 0
            for f in features
        ]
        return SpaResult(recovered_bits=recovered, true_bits=list(true_bits))
