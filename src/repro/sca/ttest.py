"""TVLA leakage assessment: Welch's t-test, fixed vs random inputs.

The modern screening companion to the attacks of Section 7: instead of
mounting a specific key-recovery, compare the trace population for a
*fixed* input against the population for *random* inputs.  Any
per-sample |t| beyond the conventional 4.5 threshold certifies
data-dependent leakage (it does not by itself give the key, but a
clean pass is strong evidence the DPA channel is closed).

Used by the circuit-level bench (E9) to score clock gating, input
isolation and glitches, and by the evaluation harness (F4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["welch_t_statistic", "TvlaReport", "tvla_fixed_vs_random"]

#: The conventional TVLA decision threshold.
TVLA_THRESHOLD = 4.5


def welch_t_statistic(group_a: np.ndarray, group_b: np.ndarray) -> np.ndarray:
    """Per-sample Welch t statistic between two trace populations."""
    a = np.atleast_2d(np.asarray(group_a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(group_b, dtype=np.float64))
    if a.shape[1] != b.shape[1]:
        raise ValueError("trace lengths differ between the groups")
    if a.shape[0] < 2 or b.shape[0] < 2:
        raise ValueError("each group needs at least two traces")
    mean_diff = a.mean(axis=0) - b.mean(axis=0)
    var_term = a.var(axis=0, ddof=1) / a.shape[0] + b.var(axis=0, ddof=1) / b.shape[0]
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(var_term > 0, mean_diff / np.sqrt(var_term), 0.0)
    return t


@dataclass(frozen=True)
class TvlaReport:
    """Outcome of a fixed-vs-random t-test."""

    max_abs_t: float
    num_leaky_samples: int
    n_samples: int
    threshold: float = TVLA_THRESHOLD

    @property
    def leaks(self) -> bool:
        """True when any sample exceeds the threshold."""
        return self.max_abs_t > self.threshold

    def __str__(self) -> str:
        verdict = "LEAKS" if self.leaks else "clean"
        return (
            f"TVLA: max|t| = {self.max_abs_t:.2f} "
            f"({self.num_leaky_samples}/{self.n_samples} samples over "
            f"{self.threshold}) -> {verdict}"
        )


def tvla_fixed_vs_random(fixed_traces: np.ndarray,
                         random_traces: np.ndarray,
                         threshold: float = TVLA_THRESHOLD) -> TvlaReport:
    """Run the fixed-vs-random test and summarize it."""
    t = welch_t_statistic(fixed_traces, random_traces)
    abs_t = np.abs(t)
    return TvlaReport(
        max_abs_t=float(abs_t.max()),
        num_leaky_samples=int((abs_t > threshold).sum()),
        n_samples=int(t.shape[0]),
        threshold=threshold,
    )
