"""Attacker-side activity prediction (the hypothesis engine of DPA/CPA).

DPA "recovers the key in a divide-and-conquer fashion by comparing the
measured power consumption with several hypothesized power
consumptions, one for each sub-key hypothesis" (Section 7).  Here the
sub-key is one ladder key bit, and the hypothesized power consumption
comes from replaying the coprocessor's *public* microcode
(:meth:`~repro.arch.coprocessor.EccCoprocessor.replay_padded`) under a
guessed key prefix and an assumed randomization value.

When Z-randomization is off (or its value is known, the white-box
scenario), the replay under the correct hypothesis predicts the
device's data-dependent activity exactly.  When the randomization is
on and unknown, the replay is computed under a wrong Z and the
predictions decorrelate from the measurements — which is precisely why
the countermeasure works.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..arch.coprocessor import EccCoprocessor
from ..ec.point import AffinePoint

__all__ = ["ActivityPredictor", "bits_to_int"]


def bits_to_int(bits: list) -> int:
    """Pack a most-significant-first bit list into an integer."""
    value = 0
    for b in bits:
        if b not in (0, 1):
            raise ValueError("bits must be 0 or 1")
        value = (value << 1) | b
    return value


class ActivityPredictor:
    """Predicts per-cycle data-dependent activity for key hypotheses.

    Parameters
    ----------
    coprocessor:
        A coprocessor with the *same configuration* as the device under
        attack (the white-box assumption: the netlist is known).
    """

    def __init__(self, coprocessor: EccCoprocessor):
        self.coprocessor = coprocessor

    def padded_length(self) -> int:
        """Bit length of recoded scalars on this device (public)."""
        return self.coprocessor.domain.order.bit_length() + 1

    def predict_iteration(
        self,
        point: AffinePoint,
        known_prefix: list,
        hypothesis: int,
        iteration_index: int,
        z0: int,
    ) -> np.ndarray:
        """Predicted activity over one iteration's cycle window.

        ``known_prefix`` holds the already-recovered key bits (after
        the implicit leading 1); ``hypothesis`` is the guess for bit
        ``iteration_index``.  Returns the predicted datapath+register
        activity for the cycles of that iteration.
        """
        if len(known_prefix) != iteration_index:
            raise ValueError("prefix length must equal the target iteration")
        if hypothesis not in (0, 1):
            raise ValueError("hypothesis must be a bit")
        bits = [1] + list(known_prefix) + [hypothesis]
        # Pad with zeros to full length; iterations beyond the target
        # are never executed thanks to max_iterations.
        padding = self.padded_length() - len(bits)
        scalar = bits_to_int(bits) << padding
        replay = self.coprocessor.replay_padded(
            scalar, point, initial_z=z0, max_iterations=iteration_index + 1
        )
        span = replay.iterations[iteration_index]
        datapath = np.asarray(
            replay.datapath[span.start:span.end], dtype=np.float64
        )
        register = np.asarray(
            replay.register[span.start:span.end], dtype=np.float64
        )
        return datapath + register

    def prediction_matrix(
        self,
        points: list,
        known_prefix: list,
        hypothesis: int,
        iteration_index: int,
        z_values: Optional[list] = None,
    ) -> np.ndarray:
        """Predictions for a whole campaign: (n_traces, window) matrix.

        ``z_values`` supplies the per-trace randomization when it is
        known to the adversary; otherwise Z = 1 is assumed (correct for
        the unprotected device, wrong — and fatally so — for the
        protected one).
        """
        rows = []
        for index, point in enumerate(points):
            z0 = 1 if z_values is None else z_values[index]
            rows.append(
                self.predict_iteration(
                    point, known_prefix, hypothesis, iteration_index, z0
                )
            )
        return np.vstack(rows)
