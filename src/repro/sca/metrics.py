"""Attack-quality metrics.

The quantities Section 7 reports attacks with: did the attack recover
the key bits, and how many traces did it need ("succeeds with as low
as 200 traces" / "even 20000 traces are not enough").
"""

from __future__ import annotations

import numpy as np

__all__ = ["success_rate", "signal_to_noise_ratio", "first_order_snr"]


def success_rate(recovered_bits: list, true_bits: list) -> float:
    """Fraction of correctly recovered key bits (positional)."""
    if not true_bits:
        raise ValueError("no ground-truth bits supplied")
    if len(recovered_bits) != len(true_bits):
        raise ValueError("bit vectors have different lengths")
    matches = sum(1 for r, t in zip(recovered_bits, true_bits) if r == t)
    return matches / len(true_bits)


def signal_to_noise_ratio(samples: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-sample SNR: Var(class means) / mean(class variances).

    ``samples`` is (n_traces, n_samples); ``labels`` assigns each trace
    to a class (e.g. an intermediate-value byte).  The classic
    leakage-characterization statistic: SNR >> 0 at samples where the
    labelled intermediate leaks.
    """
    samples = np.asarray(samples, dtype=np.float64)
    labels = np.asarray(labels)
    classes = np.unique(labels)
    if len(classes) < 2:
        raise ValueError("need at least two classes for an SNR")
    means = []
    variances = []
    for c in classes:
        rows = samples[labels == c]
        if rows.shape[0] == 0:
            continue
        means.append(rows.mean(axis=0))
        variances.append(rows.var(axis=0))
    means = np.vstack(means)
    variances = np.vstack(variances)
    noise = variances.mean(axis=0)
    signal = means.var(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        snr = np.where(noise > 0, signal / noise, 0.0)
    return snr


def first_order_snr(samples: np.ndarray, labels: np.ndarray) -> float:
    """Maximum per-sample SNR over the trace (a scalar summary)."""
    return float(signal_to_noise_ratio(samples, labels).max())
