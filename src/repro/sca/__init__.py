"""Side-channel analysis: the attack workflow of Figure 4.

Timing attacks, SPA (clustering and profiled), DPA (difference of
means), CPA (Pearson correlation), the TVLA t-test screen, the
attacker's activity predictor and the quality metrics.
"""

from .cpa import LadderCpa, columnwise_correlation
from .dpa import BitDecision, DpaResult, LadderDpa
from .metrics import first_order_snr, signal_to_noise_ratio, success_rate
from .mia import LadderMia, mutual_information
from .predict import ActivityPredictor, bits_to_int
from .preprocess import (
    average_traces,
    center,
    compress_windows,
    standardize,
    window,
)
from .spa import ProfiledSpa, SpaResult, bits_from_transitions, transition_spa
from .template import GaussianTemplateAttack
from .timing import (
    TimingReport,
    coprocessor_timing_report,
    double_and_add_cycle_model,
    timing_attack_hamming_weight,
)
from .ttest import TVLA_THRESHOLD, TvlaReport, tvla_fixed_vs_random, welch_t_statistic

__all__ = [
    "LadderCpa",
    "columnwise_correlation",
    "LadderDpa",
    "DpaResult",
    "BitDecision",
    "ActivityPredictor",
    "bits_to_int",
    "success_rate",
    "LadderMia",
    "mutual_information",
    "signal_to_noise_ratio",
    "first_order_snr",
    "center",
    "standardize",
    "window",
    "compress_windows",
    "average_traces",
    "SpaResult",
    "transition_spa",
    "ProfiledSpa",
    "GaussianTemplateAttack",
    "bits_from_transitions",
    "TimingReport",
    "coprocessor_timing_report",
    "double_and_add_cycle_model",
    "timing_attack_hamming_weight",
    "TvlaReport",
    "tvla_fixed_vs_random",
    "welch_t_statistic",
    "TVLA_THRESHOLD",
]
