"""Trace preprocessing utilities.

The standard steps between the oscilloscope and the statistics of
Figure 4: mean removal, standardization, windowing and compression.
Alignment is a no-op here by construction — the device is constant
time, so every trace has the same schedule — but the windowing helpers
are what a real campaign would use after alignment.
"""

from __future__ import annotations

import numpy as np

__all__ = ["center", "standardize", "window", "compress_windows", "average_traces"]


def center(samples: np.ndarray) -> np.ndarray:
    """Remove the per-sample mean across traces."""
    samples = np.asarray(samples, dtype=np.float64)
    return samples - samples.mean(axis=0, keepdims=True)


def standardize(samples: np.ndarray) -> np.ndarray:
    """Center and scale each sample column to unit variance."""
    centered = center(samples)
    std = centered.std(axis=0, keepdims=True)
    std[std == 0] = 1.0
    return centered / std


def window(samples: np.ndarray, start: int, end: int) -> np.ndarray:
    """Cut a cycle window out of every trace."""
    if not 0 <= start < end <= samples.shape[-1]:
        raise ValueError("window out of range")
    return samples[..., start:end]


def compress_windows(samples: np.ndarray, slices: list) -> np.ndarray:
    """Sum each trace over each (start, end) window.

    Turns an (n_traces, n_cycles) matrix into an
    (n_traces, n_windows) matrix of per-window energies — the feature
    extraction step of the SPA attacks (one feature per ladder
    iteration).
    """
    samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    features = np.empty((samples.shape[0], len(slices)), dtype=np.float64)
    for j, (start, end) in enumerate(slices):
        if not 0 <= start < end <= samples.shape[1]:
            raise ValueError(f"window {j} out of range")
        features[:, j] = samples[:, start:end].sum(axis=1)
    return features


def average_traces(samples: np.ndarray) -> np.ndarray:
    """Pointwise average of a set of traces (noise reduction by sqrt(N))."""
    samples = np.atleast_2d(np.asarray(samples, dtype=np.float64))
    if samples.shape[0] == 0:
        raise ValueError("cannot average zero traces")
    return samples.mean(axis=0)
