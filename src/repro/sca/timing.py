"""Timing attacks (Kocher [7]) and constant-time verification.

Section 7: "The prototype co-processor is intrinsically resistant to
timing attacks ... the computation time of a point multiplication is
the same for different key values", achieved at the algorithm level
(the ladder runs a fixed number of iterations) and the architecture
level (every instruction takes a constant number of cycles).

This module provides both sides: a timing attack that succeeds against
a key-dependent-time baseline (double-and-add, whose cycle count
reveals the scalar's Hamming weight), and the verification harness
that demonstrates the coprocessor's timing channel is flat.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.coprocessor import EccCoprocessor
from ..ec.curve import BinaryEllipticCurve
from ..ec.point import AffinePoint
from ..ec.scalar_mult import double_and_add

__all__ = [
    "TimingReport",
    "coprocessor_timing_report",
    "double_and_add_cycle_model",
    "timing_attack_hamming_weight",
]


@dataclass(frozen=True)
class TimingReport:
    """Cycle-count statistics over a set of secret scalars."""

    cycle_counts: tuple
    hamming_weights: tuple

    @property
    def is_constant_time(self) -> bool:
        """True iff every scalar took exactly the same cycle count."""
        return len(set(self.cycle_counts)) == 1

    @property
    def correlation_with_weight(self) -> float:
        """Pearson correlation between cycles and key Hamming weight.

        The timing attack's distinguisher: significantly non-zero means
        execution time leaks the key weight.  Zero-variance inputs
        (the constant-time case) yield 0.0 by convention.
        """
        cycles = np.asarray(self.cycle_counts, dtype=np.float64)
        weights = np.asarray(self.hamming_weights, dtype=np.float64)
        if cycles.std() == 0 or weights.std() == 0:
            return 0.0
        return float(np.corrcoef(cycles, weights)[0, 1])


def coprocessor_timing_report(
    coprocessor: EccCoprocessor, keys: list
) -> TimingReport:
    """Measure coprocessor point-multiplication cycles for many keys.

    Avoids k = n - 1 (the flagged kP = -P edge path) in callers' key
    lists if exact constancy is asserted.
    """
    cycles = []
    weights = []
    generator = coprocessor.domain.generator
    for k in keys:
        trace = coprocessor.point_multiply(k, generator, initial_z=1)
        cycles.append(trace.cycles)
        weights.append(bin(k).count("1"))
    return TimingReport(tuple(cycles), tuple(weights))


def double_and_add_cycle_model(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    double_cycles: int = 400,
    add_cycles: int = 450,
) -> int:
    """Cycle count of a naive double-and-add implementation.

    The software baseline the coprocessor replaces: each doubling and
    each addition has a fixed cost, but *how many* additions run
    depends on the key's Hamming weight — the timing leak.
    """
    operations = []
    double_and_add(curve, k, point, operations=operations)
    return (
        operations.count("D") * double_cycles
        + operations.count("A") * add_cycles
    )


def timing_attack_hamming_weight(
    cycle_count: int,
    bit_length: int,
    double_cycles: int = 400,
    add_cycles: int = 450,
) -> int:
    """Invert the double-and-add cycle model: recover the key weight.

    Given one timing observation of the leaky baseline, solve for the
    number of additions — i.e. the secret scalar's Hamming weight, a
    real reduction of the key-search space.
    """
    doubles = bit_length - 1
    additions = round((cycle_count - doubles * double_cycles) / add_cycles)
    return int(additions) + 1  # +1 for the implicit leading one-bit
