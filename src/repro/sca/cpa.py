"""Correlation Power Analysis: the Pearson-correlation refinement of DPA.

Same adversary model as :mod:`repro.sca.dpa` but the distinguisher is
the per-cycle Pearson correlation between predicted and measured
activity, which extracts more of the signal per trace than the binary
difference-of-means partition.  Used in the benches to show how much
head-room the attack has beyond the paper's 200-trace figure.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..arch.coprocessor import EccCoprocessor
from ..power.simulator import TraceSet
from .dpa import BitDecision, DpaResult
from .predict import ActivityPredictor

__all__ = ["columnwise_correlation", "LadderCpa"]


def columnwise_correlation(predictions: np.ndarray,
                           observed: np.ndarray) -> np.ndarray:
    """Pearson correlation per cycle column, vectorized.

    Columns with zero variance on either side yield 0.0.
    """
    p = np.asarray(predictions, dtype=np.float64)
    o = np.asarray(observed, dtype=np.float64)
    if p.shape != o.shape:
        raise ValueError("prediction and observation shapes differ")
    p_centered = p - p.mean(axis=0, keepdims=True)
    o_centered = o - o.mean(axis=0, keepdims=True)
    numerator = (p_centered * o_centered).sum(axis=0)
    denominator = np.sqrt(
        (p_centered ** 2).sum(axis=0) * (o_centered ** 2).sum(axis=0)
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = np.where(denominator > 0, numerator / denominator, 0.0)
    return corr


class LadderCpa:
    """Correlation power analysis against the ladder coprocessor."""

    def __init__(self, coprocessor: EccCoprocessor):
        self.predictor = ActivityPredictor(coprocessor)

    def attack_bit(
        self,
        traces: TraceSet,
        bit_index: int,
        known_prefix: list,
        z_values: Optional[list] = None,
    ) -> BitDecision:
        """Decide one key bit by maximum absolute correlation."""
        start, end = traces.iteration_slices[bit_index]
        observed = traces.samples[:, start:end]
        predictions = {
            hypothesis: self.predictor.prediction_matrix(
                traces.inputs, known_prefix, hypothesis, bit_index, z_values
            )
            for hypothesis in (0, 1)
        }
        # Correlate the *difference* of the two hypothesized power
        # models against the measurements: the sign of the strongest
        # correlation names the key bit, and hypothesis-independent
        # activity (e.g. the public operand's footprint) cancels out
        # (see LadderDpa for the same construction).
        difference = predictions[1] - predictions[0]
        corr = columnwise_correlation(difference, observed)
        evidence_one = float(max(corr.max(), 0.0))
        evidence_zero = float(max(-corr.min(), 0.0))
        chosen = 1 if evidence_one >= evidence_zero else 0
        return BitDecision(
            bit_index=bit_index,
            chosen=chosen,
            statistic_zero=evidence_zero,
            statistic_one=evidence_one,
            true_bit=traces.key_bits[bit_index],
        )

    def recover_bits(
        self,
        traces: TraceSet,
        n_bits: int,
        z_values: Optional[list] = None,
    ) -> DpaResult:
        """Attack the first ``n_bits`` ladder bits sequentially."""
        if n_bits < 1 or n_bits > len(traces.iteration_slices):
            raise ValueError("n_bits out of range for this campaign")
        if z_values is not None and len(z_values) != traces.n_traces:
            raise ValueError("one z value per trace is required")
        decisions = []
        prefix = []
        for bit_index in range(n_bits):
            decision = self.attack_bit(traces, bit_index, prefix, z_values)
            decisions.append(decision)
            prefix.append(decision.chosen)
        return DpaResult(decisions)

    def traces_to_disclosure(
        self,
        traces: TraceSet,
        n_bits: int,
        grid: list,
        z_values: Optional[list] = None,
    ) -> Optional[int]:
        """Smallest campaign size in ``grid`` that *significantly*
        recovers all bits.

        The CPA statistic is a Pearson correlation, so significance
        scales with the campaign size: a peak is meaningful when it
        exceeds ~4.5 standard errors, i.e. ``4.5 / sqrt(n)``.
        """
        for n in sorted(grid):
            subset = traces.subset(n)
            sub_z = None if z_values is None else z_values[:n]
            result = self.recover_bits(subset, n_bits, sub_z)
            if result.significant_success(threshold=4.5 / np.sqrt(n)):
                return n
        return None
