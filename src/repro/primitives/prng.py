"""Deterministic random number generation.

The chip generates its DPA-countermeasure randomness on-die and keeps
it secret (Section 7).  The simulation needs the same randomness to be
(a) unpredictable to the modelled adversary in the default scenario and
(b) *hand-able* to the adversary in the white-box "randomness known"
scenario.  A seedable AES-CTR DRBG gives both: seed secrecy models the
chip's TRNG, seed disclosure models the white-box evaluation.

:class:`AesCtrDrbg` implements the ``getrandbits`` / ``randbytes``
subset of the ``random.Random`` interface that the rest of the library
uses, so it is a drop-in randomness source everywhere.
"""

from __future__ import annotations

from .aes import Aes128

__all__ = ["AesCtrDrbg"]


class AesCtrDrbg:
    """A deterministic AES-128-CTR random bit generator.

    Parameters
    ----------
    seed:
        Integer or bytes.  The seed is expanded through SHA-1 into the
        AES key and nonce, so any seed length works.

    Examples
    --------
    >>> a = AesCtrDrbg(42)
    >>> b = AesCtrDrbg(42)
    >>> a.getrandbits(163) == b.getrandbits(163)
    True
    """

    def __init__(self, seed):
        from .sha1 import sha1

        if isinstance(seed, int):
            if seed < 0:
                raise ValueError("integer seeds must be non-negative")
            seed_bytes = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "big")
        elif isinstance(seed, (bytes, bytearray)):
            seed_bytes = bytes(seed)
        else:
            raise TypeError("seed must be an int or bytes")
        material = sha1(b"key" + seed_bytes) + sha1(b"nonce" + seed_bytes)
        self._cipher = Aes128(material[:16])
        self._nonce = material[20:28]
        self._counter = 0
        self._pool = b""

    def randbytes(self, n: int) -> bytes:
        """Return ``n`` pseudorandom bytes."""
        if n < 0:
            raise ValueError("cannot generate a negative number of bytes")
        while len(self._pool) < n:
            block = self._nonce + self._counter.to_bytes(8, "big")
            self._pool += self._cipher.encrypt_block(block)
            self._counter += 1
        out, self._pool = self._pool[:n], self._pool[n:]
        return out

    def getrandbits(self, k: int) -> int:
        """Return a uniform integer with ``k`` random bits."""
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        if k == 0:
            return 0
        n_bytes = (k + 7) // 8
        value = int.from_bytes(self.randbytes(n_bytes), "big")
        return value >> (8 * n_bytes - k)

    def randrange(self, start: int, stop=None) -> int:
        """Uniform integer in [start, stop) (or [0, start) with one arg)."""
        if stop is None:
            start, stop = 0, start
        span = stop - start
        if span <= 0:
            raise ValueError("empty range")
        bits = span.bit_length()
        while True:
            candidate = self.getrandbits(bits)
            if candidate < span:
                return start + candidate

    def random(self) -> float:
        """A float in [0, 1) with 53 bits of precision."""
        return self.getrandbits(53) / (1 << 53)
