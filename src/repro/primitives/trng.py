"""Behavioural model of an on-chip true random number generator.

Section 4 lists RNGs among the non-algorithmic primitives protocols
are built from.  Real ring-oscillator TRNGs have bias and correlation,
so raw bits pass through a conditioner and continuous health tests.
This model reproduces that structure: a biased/correlated raw source,
a von Neumann debiaser, and NIST SP 800-22-style monobit and runs
health tests, so the evaluation harness can demonstrate what happens
to protocol security when the entropy source degrades.
"""

from __future__ import annotations

import math

__all__ = ["TrngModel", "von_neumann_debias", "monobit_test", "runs_test"]


class TrngModel:
    """A raw entropy source with configurable bias and correlation.

    Parameters
    ----------
    rng:
        Underlying pseudo-randomness driving the physical model
        (``random.Random``-compatible).
    bias:
        Probability of emitting a 1.  0.5 is ideal.
    correlation:
        Probability of repeating the previous bit *instead of* sampling
        fresh; 0.0 is ideal, 1.0 is a stuck-at source.
    """

    def __init__(self, rng, bias: float = 0.5, correlation: float = 0.0):
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be in [0, 1]")
        if not 0.0 <= correlation <= 1.0:
            raise ValueError("correlation must be in [0, 1]")
        self._rng = rng
        self.bias = bias
        self.correlation = correlation
        self._previous = 0

    def raw_bit(self) -> int:
        """One raw (possibly biased/correlated) bit."""
        if self.correlation and self._rng.random() < self.correlation:
            return self._previous
        bit = 1 if self._rng.random() < self.bias else 0
        self._previous = bit
        return bit

    def raw_bits(self, n: int) -> list:
        """``n`` raw bits."""
        return [self.raw_bit() for _ in range(n)]

    def conditioned_bits(self, n: int, max_raw: int = 1_000_000) -> list:
        """``n`` von-Neumann-debiased bits (may consume many raw bits)."""
        out = []
        consumed = 0
        while len(out) < n:
            if consumed >= max_raw:
                raise RuntimeError(
                    "entropy source too degenerate: debiaser starved"
                )
            a, b = self.raw_bit(), self.raw_bit()
            consumed += 2
            if a != b:
                out.append(a)
        return out


def von_neumann_debias(bits: list) -> list:
    """Von Neumann extractor: (0,1)->0, (1,0)->1, equal pairs dropped.

    Removes bias exactly for independent bits, at a >= 4x rate cost.
    """
    out = []
    for i in range(0, len(bits) - 1, 2):
        a, b = bits[i], bits[i + 1]
        if a != b:
            out.append(a)
    return out


def monobit_test(bits: list, alpha: float = 0.01) -> tuple[bool, float]:
    """Frequency (monobit) health test; returns (pass, p_value)."""
    n = len(bits)
    if n == 0:
        raise ValueError("empty bit sequence")
    s = sum(1 if b else -1 for b in bits)
    statistic = abs(s) / math.sqrt(n)
    p_value = math.erfc(statistic / math.sqrt(2))
    return p_value >= alpha, p_value


def runs_test(bits: list, alpha: float = 0.01) -> tuple[bool, float]:
    """Runs health test (NIST SP 800-22 section 2.3); (pass, p_value).

    Fails sequences whose run structure is inconsistent with
    independent bits — catches the correlated-source failure mode that
    the monobit test misses.
    """
    n = len(bits)
    if n == 0:
        raise ValueError("empty bit sequence")
    pi = sum(bits) / n
    # Precondition of the runs test: the monobit proportion must be sane.
    if abs(pi - 0.5) >= 2 / math.sqrt(n):
        return False, 0.0
    v = 1 + sum(1 for i in range(n - 1) if bits[i] != bits[i + 1])
    numerator = abs(v - 2 * n * pi * (1 - pi))
    denominator = 2 * math.sqrt(2 * n) * pi * (1 - pi)
    p_value = math.erfc(numerator / denominator)
    return p_value >= alpha, p_value
