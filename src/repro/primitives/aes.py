"""AES-128 from scratch.

The paper's protocol discussion (Section 4) uses AES as the canonical
secret-key algorithm: "protocols based on secret key algorithms, like
AES, are often cheaper in computation cost but not necessarily in
communication cost".  This implementation is the functional substrate
of the symmetric mutual-authentication baseline protocol and of the
AES-CTR DRBG.

The S-box is derived algebraically (inversion in GF(2^8) followed by
the affine transform) rather than hard-coded — the same GF(2^m)
machinery that powers the ECC side, at m = 8.
"""

from __future__ import annotations

__all__ = ["Aes128", "SBOX", "INV_SBOX"]

_AES_MODULUS = 0x11B  # x^8 + x^4 + x^3 + x + 1


def _gf256_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) with the AES reduction polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= _AES_MODULUS
        b >>= 1
    return result


def _gf256_inverse(a: int) -> int:
    """Inverse in GF(2^8); 0 maps to 0 by AES convention."""
    if a == 0:
        return 0
    # a^(2^8 - 2) = a^254
    result = 1
    base = a
    exponent = 254
    while exponent:
        if exponent & 1:
            result = _gf256_mul(result, base)
        base = _gf256_mul(base, base)
        exponent >>= 1
    return result


def _build_sbox() -> tuple:
    sbox = []
    for value in range(256):
        inv = _gf256_inverse(value)
        out = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            out |= b << bit
        sbox.append(out)
    return tuple(sbox)


SBOX = _build_sbox()
INV_SBOX = tuple(SBOX.index(i) for i in range(256))

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


class Aes128:
    """AES with a 128-bit key (10 rounds), block encrypt/decrypt + CTR.

    Examples
    --------
    >>> key = bytes(range(16))
    >>> aes = Aes128(key)
    >>> block = b"sixteen byte msg"
    >>> aes.decrypt_block(aes.encrypt_block(block)) == block
    True
    """

    block_size = 16
    key_size = 16
    rounds = 10

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError("AES-128 requires a 16-byte key")
        self._round_keys = self._expand_key(key)

    @staticmethod
    def _expand_key(key: bytes) -> list:
        words = [list(key[4 * i: 4 * i + 4]) for i in range(4)]
        for i in range(4, 44):
            temp = list(words[i - 1])
            if i % 4 == 0:
                temp = temp[1:] + temp[:1]
                temp = [SBOX[b] for b in temp]
                temp[0] ^= _RCON[i // 4 - 1]
            words.append([a ^ b for a, b in zip(words[i - 4], temp)])
        round_keys = []
        for r in range(11):
            flat = []
            for w in words[4 * r: 4 * r + 4]:
                flat.extend(w)
            round_keys.append(flat)
        return round_keys

    # State layout: flat list of 16 bytes, column-major as in FIPS 197
    # (byte i of the input is state[i], rows are i % 4).

    @staticmethod
    def _sub_bytes(state: list) -> list:
        return [SBOX[b] for b in state]

    @staticmethod
    def _inv_sub_bytes(state: list) -> list:
        return [INV_SBOX[b] for b in state]

    @staticmethod
    def _shift_rows(state: list) -> list:
        out = [0] * 16
        for col in range(4):
            for row in range(4):
                out[4 * col + row] = state[4 * ((col + row) % 4) + row]
        return out

    @staticmethod
    def _inv_shift_rows(state: list) -> list:
        out = [0] * 16
        for col in range(4):
            for row in range(4):
                out[4 * ((col + row) % 4) + row] = state[4 * col + row]
        return out

    @staticmethod
    def _mix_single_column(col: list, matrix: tuple) -> list:
        rows = (matrix[0:4], matrix[4:8], matrix[8:12], matrix[12:16])
        return [
            _gf256_mul(row[0], col[0])
            ^ _gf256_mul(row[1], col[1])
            ^ _gf256_mul(row[2], col[2])
            ^ _gf256_mul(row[3], col[3])
            for row in rows
        ]

    _MIX = (2, 3, 1, 1, 1, 2, 3, 1, 1, 1, 2, 3, 3, 1, 1, 2)
    _INV_MIX = (14, 11, 13, 9, 9, 14, 11, 13, 13, 9, 14, 11, 11, 13, 9, 14)

    @classmethod
    def _mix_columns(cls, state: list, matrix: tuple) -> list:
        out = []
        for col in range(4):
            column = state[4 * col: 4 * col + 4]
            out.extend(cls._mix_single_column(column, matrix))
        return out

    @staticmethod
    def _add_round_key(state: list, round_key: list) -> list:
        return [s ^ k for s, k in zip(state, round_key)]

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(plaintext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = self._add_round_key(list(plaintext), self._round_keys[0])
        for r in range(1, 10):
            state = self._sub_bytes(state)
            state = self._shift_rows(state)
            state = self._mix_columns(state, self._MIX)
            state = self._add_round_key(state, self._round_keys[r])
        state = self._sub_bytes(state)
        state = self._shift_rows(state)
        state = self._add_round_key(state, self._round_keys[10])
        return bytes(state)

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(ciphertext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = self._add_round_key(list(ciphertext), self._round_keys[10])
        for r in range(9, 0, -1):
            state = self._inv_shift_rows(state)
            state = self._inv_sub_bytes(state)
            state = self._add_round_key(state, self._round_keys[r])
            state = self._mix_columns(state, self._INV_MIX)
        state = self._inv_shift_rows(state)
        state = self._inv_sub_bytes(state)
        state = self._add_round_key(state, self._round_keys[0])
        return bytes(state)

    def ctr_keystream(self, nonce: bytes, length: int) -> bytes:
        """CTR-mode keystream: E(nonce || counter) blocks, big-endian counter."""
        if len(nonce) != 8:
            raise ValueError("CTR nonce must be 8 bytes (8-byte counter follows)")
        stream = bytearray()
        counter = 0
        while len(stream) < length:
            block = nonce + counter.to_bytes(8, "big")
            stream.extend(self.encrypt_block(block))
            counter += 1
        return bytes(stream[:length])

    def ctr_encrypt(self, nonce: bytes, data: bytes) -> bytes:
        """CTR encryption (and decryption — it is an involution)."""
        stream = self.ctr_keystream(nonce, len(data))
        return bytes(d ^ s for d, s in zip(data, stream))
