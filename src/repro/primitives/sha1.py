"""SHA-1 from scratch.

Section 4 of the paper uses SHA-1 as the canonical "cheap" hash in the
gate-count discussion (the smallest SHA-1 implementation uses 5 527
gates [O'Neill 2008], versus ~12 k gates for an ECC core).  The
library implements it so the protocol layer and ECDSA have a
self-contained hash, and so the area model has a functional artifact
behind the 5 527-gate number.

SHA-1 is used here for *reproduction fidelity* (it is what the paper
and its era used); it is not collision-resistant by modern standards.
"""

from __future__ import annotations

import struct

__all__ = ["sha1", "Sha1"]

_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)
_MASK = 0xFFFFFFFF


def _rotl(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & _MASK


class Sha1:
    """Incremental SHA-1 (update/digest interface)."""

    digest_size = 20
    block_size = 64

    def __init__(self, data: bytes = b""):
        self._h = list(_H0)
        self._buffer = b""
        self._length = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> "Sha1":
        """Absorb more message bytes; returns self for chaining."""
        self._length += len(data)
        self._buffer += data
        while len(self._buffer) >= 64:
            self._compress(self._buffer[:64])
            self._buffer = self._buffer[64:]
        return self

    def _compress(self, block: bytes) -> None:
        w = list(struct.unpack(">16I", block))
        for t in range(16, 80):
            w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))
        a, b, c, d, e = self._h
        for t in range(80):
            if t < 20:
                f = (b & c) | (~b & d)
                k = 0x5A827999
            elif t < 40:
                f = b ^ c ^ d
                k = 0x6ED9EBA1
            elif t < 60:
                f = (b & c) | (b & d) | (c & d)
                k = 0x8F1BBCDC
            else:
                f = b ^ c ^ d
                k = 0xCA62C1D6
            temp = (_rotl(a, 5) + f + e + k + w[t]) & _MASK
            e, d, c, b, a = d, c, _rotl(b, 30), a, temp
        self._h = [
            (x + y) & _MASK for x, y in zip(self._h, (a, b, c, d, e))
        ]

    def digest(self) -> bytes:
        """The 20-byte digest of everything absorbed so far."""
        # Pad a copy so the object can keep absorbing afterwards.
        clone = Sha1()
        clone._h = list(self._h)
        clone._buffer = self._buffer
        clone._length = self._length
        bit_length = clone._length * 8
        clone._buffer += b"\x80"
        clone._buffer += b"\x00" * ((56 - len(clone._buffer) % 64) % 64)
        clone._buffer += struct.pack(">Q", bit_length)
        while clone._buffer:
            clone._compress(clone._buffer[:64])
            clone._buffer = clone._buffer[64:]
        return struct.pack(">5I", *clone._h)

    def hexdigest(self) -> str:
        """The digest as lowercase hex."""
        return self.digest().hex()


def sha1(message: bytes) -> bytes:
    """One-shot SHA-1 of a byte string."""
    return Sha1(message).digest()
