"""Message authentication codes: AES-CMAC and HMAC-SHA1.

Section 4 requires *data authentication* ("a modification on the
ciphertext may also lead to a corrupted therapy that endangers the
patient's life").  The symmetric mutual-authentication baseline
protocol authenticates its messages with AES-CMAC; HMAC-SHA1 is
provided as the hash-based alternative discussed in the gate-count
comparison.
"""

from __future__ import annotations

from .aes import Aes128
from .sha1 import sha1

__all__ = ["aes_cmac", "hmac_sha1", "constant_time_equal"]

_CMAC_RB = 0x87  # the GF(2^128) reduction constant for block size 128


def _left_shift_block(block: bytes) -> tuple[bytes, int]:
    value = int.from_bytes(block, "big")
    carry = (value >> 127) & 1
    shifted = (value << 1) & ((1 << 128) - 1)
    return shifted.to_bytes(16, "big"), carry


def _cmac_subkeys(cipher: Aes128) -> tuple[bytes, bytes]:
    l = cipher.encrypt_block(b"\x00" * 16)
    k1, carry = _left_shift_block(l)
    if carry:
        k1 = k1[:-1] + bytes([k1[-1] ^ _CMAC_RB])
    k2, carry = _left_shift_block(k1)
    if carry:
        k2 = k2[:-1] + bytes([k2[-1] ^ _CMAC_RB])
    return k1, k2


def aes_cmac(key: bytes, message: bytes) -> bytes:
    """AES-CMAC (RFC 4493): a 16-byte tag over an arbitrary message."""
    cipher = Aes128(key)
    k1, k2 = _cmac_subkeys(cipher)
    n_blocks = max(1, (len(message) + 15) // 16)
    complete = len(message) > 0 and len(message) % 16 == 0
    last = message[16 * (n_blocks - 1):]
    if complete:
        last = bytes(a ^ b for a, b in zip(last, k1))
    else:
        padded = last + b"\x80" + b"\x00" * (15 - len(last))
        last = bytes(a ^ b for a, b in zip(padded, k2))
    state = b"\x00" * 16
    for i in range(n_blocks - 1):
        block = message[16 * i: 16 * i + 16]
        state = cipher.encrypt_block(bytes(a ^ b for a, b in zip(state, block)))
    return cipher.encrypt_block(bytes(a ^ b for a, b in zip(state, last)))


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """HMAC-SHA1 (RFC 2104): a 20-byte tag."""
    block_size = 64
    if len(key) > block_size:
        key = sha1(key)
    key = key + b"\x00" * (block_size - len(key))
    inner = bytes(k ^ 0x36 for k in key)
    outer = bytes(k ^ 0x5C for k in key)
    return sha1(outer + sha1(inner + message))


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without an early-exit timing channel.

    The architecture-level rule of Section 5 applied in software: tag
    verification must not leak how many prefix bytes matched.
    """
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0
