"""The on-chip randomness subsystem: TRNG -> health tests -> DRBG.

Ties the behavioural entropy source (:mod:`repro.primitives.trng`) to
the deterministic generator (:mod:`repro.primitives.prng`) the way a
real secure element does: raw bits are conditioned, continuously
health-tested, and used to (re)seed a DRBG that serves the
countermeasure and protocol randomness.  A degrading source is caught
by the health tests *before* weak randomness reaches the Z-
randomization — the failure mode that would silently void the paper's
DPA countermeasure.
"""

from __future__ import annotations

from .prng import AesCtrDrbg
from .trng import TrngModel, monobit_test, runs_test

__all__ = ["EntropyFailure", "DeviceRandomness"]

#: Raw bits gathered per health assessment and reseed.
_HEALTH_SAMPLE_BITS = 2048
_SEED_BITS = 256


class EntropyFailure(Exception):
    """The entropy source failed its health tests; the device must not
    perform secret-dependent randomized operations."""


class DeviceRandomness:
    """A DRBG continuously fed by a health-checked TRNG.

    Implements the ``getrandbits`` interface used everywhere in the
    library, so it can replace a bare ``random.Random`` or
    :class:`AesCtrDrbg` as the coprocessor's randomness source.

    Parameters
    ----------
    trng:
        The physical source model.
    reseed_interval_bits:
        Output bits served between reseeds from the source.
    """

    def __init__(self, trng: TrngModel, reseed_interval_bits: int = 1 << 16):
        if reseed_interval_bits < _SEED_BITS:
            raise ValueError("reseed interval too small")
        self._trng = trng
        self._reseed_interval_bits = reseed_interval_bits
        self._bits_served = 0
        self._drbg = None
        self.reseeds = 0
        self._reseed()

    #: False-positive rate of the continuous health tests.  Far
    #: stricter than an offline assessment's 1% — a deployed implant
    #: reseeds thousands of times and must not brick itself on
    #: statistical flukes (cf. SP 800-90B continuous test rates).
    HEALTH_ALPHA = 1e-6

    def _reseed(self) -> None:
        raw = self._trng.raw_bits(_HEALTH_SAMPLE_BITS)
        ok_monobit, __ = monobit_test(raw, alpha=self.HEALTH_ALPHA)
        ok_runs, __ = runs_test(raw, alpha=self.HEALTH_ALPHA)
        if not (ok_monobit and ok_runs):
            raise EntropyFailure(
                "entropy source failed health tests "
                f"(monobit={'ok' if ok_monobit else 'FAIL'}, "
                f"runs={'ok' if ok_runs else 'FAIL'})"
            )
        conditioned = self._trng.conditioned_bits(_SEED_BITS)
        seed = 0
        for bit in conditioned:
            seed = (seed << 1) | bit
        self._drbg = AesCtrDrbg(seed)
        self._bits_served = 0
        self.reseeds += 1

    def getrandbits(self, k: int) -> int:
        """Uniform k-bit integer, reseeding from the TRNG as scheduled."""
        if k < 0:
            raise ValueError("number of bits must be non-negative")
        if self._bits_served + k > self._reseed_interval_bits:
            self._reseed()
        self._bits_served += k
        return self._drbg.getrandbits(k)

    def randbytes(self, n: int) -> bytes:
        """n random bytes."""
        return self.getrandbits(8 * n).to_bytes(n, "big") if n else b""

    def random(self) -> float:
        """Float in [0, 1)."""
        return self.getrandbits(53) / (1 << 53)
