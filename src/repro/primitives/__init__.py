"""Supporting cryptographic primitives.

The non-ECC building blocks the protocols and models need: AES-128 and
SHA-1 from scratch, MACs, a deterministic seedable DRBG (standing in
for the chip's TRNG) and a behavioural TRNG model with health tests.
"""

from .aes import Aes128, INV_SBOX, SBOX
from .mac import aes_cmac, constant_time_equal, hmac_sha1
from .present import Present80, PRESENT80_GATES
from .prng import AesCtrDrbg
from .rng_system import DeviceRandomness, EntropyFailure
from .sha1 import Sha1, sha1
from .trng import TrngModel, monobit_test, runs_test, von_neumann_debias

__all__ = [
    "Aes128",
    "SBOX",
    "INV_SBOX",
    "aes_cmac",
    "hmac_sha1",
    "constant_time_equal",
    "AesCtrDrbg",
    "Present80",
    "PRESENT80_GATES",
    "DeviceRandomness",
    "EntropyFailure",
    "Sha1",
    "sha1",
    "TrngModel",
    "monobit_test",
    "runs_test",
    "von_neumann_debias",
]
