"""PRESENT-80: the ultra-lightweight block cipher (from scratch).

Section 4's implementation-size discussion is about what a tag can
afford; PRESENT (Bogdanov et al., CHES 2007) is the era's canonical
answer on the symmetric side at ~1570 GE — less than a third of the
smallest SHA-1 and an order of magnitude below the ECC core.  It is
included so the gate-count bench (E8) and the protocol baselines can
quote a genuinely tag-sized cipher next to AES.

64-bit blocks, 80-bit keys, 31 rounds of addRoundKey / sBoxLayer /
pLayer plus a final key addition (the original PRESENT-80 as
specified, matching the published test vectors).
"""

from __future__ import annotations

__all__ = ["Present80", "PRESENT80_GATES"]

#: Published gate count of the original PRESENT-80 implementation.
PRESENT80_GATES = 1570

_SBOX = (0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
         0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2)
_INV_SBOX = tuple(_SBOX.index(i) for i in range(16))

_ROUNDS = 31
_MASK64 = (1 << 64) - 1
_MASK80 = (1 << 80) - 1


def _permute(state: int, inverse: bool = False) -> int:
    """The pLayer: bit i moves to position 16*i mod 63 (63 fixed)."""
    out = 0
    for i in range(64):
        if inverse:
            target = i
            source = (16 * i) % 63 if i != 63 else 63
        else:
            source = i
            target = (16 * i) % 63 if i != 63 else 63
        out |= ((state >> source) & 1) << target
    return out


def _sbox_layer(state: int, box) -> int:
    out = 0
    for nibble in range(16):
        value = (state >> (4 * nibble)) & 0xF
        out |= box[value] << (4 * nibble)
    return out


class Present80:
    """PRESENT with an 80-bit key.

    Examples
    --------
    >>> cipher = Present80(bytes(10))
    >>> cipher.encrypt_block(bytes(8)).hex()
    '5579c1387b228445'
    """

    block_size = 8
    key_size = 10
    rounds = _ROUNDS

    def __init__(self, key: bytes):
        if len(key) != 10:
            raise ValueError("PRESENT-80 requires a 10-byte key")
        self._round_keys = self._expand_key(int.from_bytes(key, "big"))

    @staticmethod
    def _expand_key(key: int) -> list:
        round_keys = []
        for round_counter in range(1, _ROUNDS + 2):
            round_keys.append(key >> 16)  # top 64 bits
            # 61-bit left rotation of the 80-bit register.
            key = ((key << 61) | (key >> 19)) & _MASK80
            # S-box on the top nibble.
            top = _SBOX[(key >> 76) & 0xF]
            key = (key & ~(0xF << 76)) | (top << 76)
            # XOR the round counter into bits 19..15.
            key ^= round_counter << 15
        return round_keys

    def encrypt_block(self, plaintext: bytes) -> bytes:
        """Encrypt one 8-byte block."""
        if len(plaintext) != 8:
            raise ValueError("PRESENT block must be 8 bytes")
        state = int.from_bytes(plaintext, "big")
        for round_index in range(_ROUNDS):
            state ^= self._round_keys[round_index]
            state = _sbox_layer(state, _SBOX)
            state = _permute(state)
        state ^= self._round_keys[_ROUNDS]
        return state.to_bytes(8, "big")

    def decrypt_block(self, ciphertext: bytes) -> bytes:
        """Decrypt one 8-byte block."""
        if len(ciphertext) != 8:
            raise ValueError("PRESENT block must be 8 bytes")
        state = int.from_bytes(ciphertext, "big")
        state ^= self._round_keys[_ROUNDS]
        for round_index in range(_ROUNDS - 1, -1, -1):
            state = _permute(state, inverse=True)
            state = _sbox_layer(state, _INV_SBOX)
            state ^= self._round_keys[round_index]
        return state.to_bytes(8, "big")
