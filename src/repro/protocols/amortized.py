"""Epoch-bounded session amortization over the lossy channel.

The paper prices one Schnorr/Peeters-Hermans identification per
interaction — "wireless communication is power-hungry" and so is the
point multiplication behind every handshake.  This module runs the
*amortized* design instead: pay the asymmetric handshake once per
**epoch**, derive a session key from its transcript, then protect the
epoch's messages with a symmetric AEAD backend
(:mod:`repro.backends`) whose per-message bill is two to three orders
of magnitude smaller.  The epoch length is the forward-secrecy
window: a captured session key exposes at most ``epoch_messages``
messages, and :func:`repro.security.score_design` prices exactly that
trade-off through its ``session`` posture.

Mechanics, all deterministic in ``(spec, frame_loss,
session_index)``:

* every epoch reruns the full resilient three-round handshake of
  :func:`~repro.protocols.session.run_resilient_session` (same
  identity, fresh nonces) over its own seeded channel stream;
* the session key is a SHA-1 KDF over the epoch's transcript digest —
  both ends saw the same frames, so both derive the same key, and a
  fresh transcript means a fresh key;
* each message is sealed once (nonce = epoch || counter, so a
  retransmitted frame never reuses a nonce with different plaintext)
  and retransmitted verbatim until one copy arrives uncorrupted or
  the attempt budget runs out; link-layer acknowledgements are
  modelled as free, the standard idealization — the *data* frames pay
  full radio and engine energy, retries included;
* a corrupted copy still costs the receiver a full AEAD open (the
  tag check fails after the work is done), the same energy asymmetry
  the battery-depletion adversary exploits;
* every microjoule lands in exactly one of three components —
  ``handshake``, ``message_compute``, ``message_radio`` — and the obs
  spans (``session.epoch`` > ``handshake`` | ``message``) carry the
  same decomposition, so the span tree's µJ sum *equals* the record's
  total by construction.

Fan-out (:func:`run_amortized_soak`) follows the fleet discipline:
embarrassingly parallel sessions, records keyed and sorted, a
:meth:`~AmortizedReport.summary_payload` of worker-invariant facts
only, and a summary table rendered from the metrics read-back path.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import hashlib
import os
from dataclasses import dataclass, field as dataclass_field
from typing import List, Optional, Sequence, Tuple

from ..backends import AeadTagError, EngineTrace, get_backend
from ..backends.base import SYMMETRIC_BACKEND_NAMES
from ..channel import BodyAreaChannel, derive_channel_seed
from ..obs import runtime as _obs_runtime
from .fleet import DEFAULT_SWEEP, _loss_salt
from .session import RetransmissionPolicy, make_adapter, \
    run_resilient_session

__all__ = ["AmortizedSpec", "AmortizedRecord", "AmortizedPoint",
           "AmortizedReport", "run_amortized_session",
           "run_amortized_soak", "derive_session_key"]

#: Frame header + CRC modelled around a data frame's nonce||ct||tag.
FRAME_OVERHEAD_BYTES = 8

#: Handshake protocols that produce a shared transcript to key from.
_HANDSHAKE_PROTOCOLS = ("peeters-hermans", "schnorr")


@dataclass(frozen=True)
class AmortizedSpec:
    """Everything an amortized run depends on (and nothing else).

    ``epoch_messages`` is the forward-secrecy window — the spec
    duck-types the ``session`` posture of
    :func:`repro.security.score_design` through ``rekey_epoch`` /
    ``private_identification``, so the same object that drives the
    simulation also prices the key-compromise threat.
    """

    protocol: str = "peeters-hermans"
    backend: str = "simon-aead"
    curve: str = "TOY-B17"
    epoch_messages: int = 16
    messages: int = 64
    message_bytes: int = 32
    sessions: int = 8
    seed: int = 2013
    sweep: Tuple[float, ...] = DEFAULT_SWEEP
    duplicate_rate: float = 0.02
    reorder_rate: float = 0.02
    distance_m: float = 0.5
    max_epochs: int = 12
    round_deadline_s: float = 0.08
    max_attempts_per_message: int = 4
    retry_spacing_s: float = 0.02
    vdd: float = 1.0
    frequency_hz: float = 847.5e3
    messages_per_day: float = 24.0
    erase_keys: bool = True

    def __post_init__(self):
        if self.protocol not in _HANDSHAKE_PROTOCOLS:
            raise ValueError(
                f"amortization needs a transcript-keyed handshake "
                f"protocol, not {self.protocol!r} "
                f"(know {', '.join(_HANDSHAKE_PROTOCOLS)})")
        if self.backend not in SYMMETRIC_BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(know {', '.join(SYMMETRIC_BACKEND_NAMES)})")
        if self.epoch_messages < 1:
            raise ValueError("epoch_messages must be at least 1")
        if self.epoch_messages > 0xFFFF:
            raise ValueError("epoch_messages must fit the 16-bit "
                             "nonce counter")
        if self.messages < 1:
            raise ValueError("need at least one message")
        if self.sessions < 1:
            raise ValueError("need at least one session")
        if self.max_attempts_per_message < 1:
            raise ValueError("need at least one attempt per message")
        if not self.sweep:
            raise ValueError("sweep needs at least one loss rate")
        for loss in self.sweep:
            if not 0.0 <= loss < 1.0:
                raise ValueError(f"loss rate {loss} outside [0, 1)")

    # -- score_design session-posture protocol -------------------------

    @property
    def rekey_epoch(self) -> int:
        return self.epoch_messages

    @property
    def private_identification(self) -> bool:
        return self.protocol == "peeters-hermans"

    # -- derived pieces ------------------------------------------------

    @property
    def handshakes(self) -> int:
        """Epochs (= handshakes = session keys) one session needs."""
        return -(-self.messages // self.epoch_messages)

    def profile(self, frame_loss: float):
        from ..channel import LossProfile
        from ..energy.radio import RadioModel

        return LossProfile.from_radio(
            RadioModel(), self.distance_m, frame_loss=frame_loss,
            duplicate_rate=self.duplicate_rate,
            reorder_rate=self.reorder_rate,
        )

    def policy(self) -> RetransmissionPolicy:
        return RetransmissionPolicy(
            max_epochs=self.max_epochs,
            round_deadline_s=self.round_deadline_s)


def derive_session_key(seed: int, session_index: int, epoch: int,
                       transcript_digest: str, key_bytes: int) -> bytes:
    """The epoch key: a SHA-1 KDF over the handshake transcript.

    Both endpoints observed the same accepted transcript, so both
    derive the same key without another frame on the air; a fresh
    epoch has a fresh transcript and therefore a fresh key.
    """
    from ..primitives.sha1 import sha1

    out = b""
    counter = 0
    while len(out) < key_bytes:
        out += sha1(f"repro.amortized/key/{seed}/{session_index}/"
                    f"{epoch}/{transcript_digest}/{counter}".encode())
        counter += 1
    return out[:key_bytes]


@dataclass(frozen=True)
class AmortizedRecord:
    """One session's outcome: message tallies and the µJ split."""

    session_index: int
    delivered: int
    failed: int
    attempts: int
    keys_used: int
    handshakes_failed: int
    worst_key_window: int
    handshake_uj: float
    message_compute_uj: float
    message_radio_uj: float
    elapsed_s: float
    transcript_digest: str

    @property
    def total_uj(self) -> float:
        return (self.handshake_uj + self.message_compute_uj
                + self.message_radio_uj)


def _calibrated_model(curve: str):
    """The calibrate-then-measure energy model, cached per process.

    Same path as the DSE: simulate the reference cell (digit 4, full
    countermeasures) on ``curve`` once, fit the per-toggle constant,
    and price every EngineTrace — ECC or symmetric — through it.
    """
    model = _MODEL_CACHE.get(curve)
    if model is None:
        from ..arch.control import BalancedEncoding
        from ..arch.coprocessor import CoprocessorConfig
        from ..ec.curves import get_curve
        from ..power.energy import EnergyModel, \
            energy_per_toggle_for_activity
        from ..power.evaluation import MeasuredDesign

        config = CoprocessorConfig(domain=get_curve(curve),
                                   digit_size=4, randomize_z=True,
                                   mux_encoding=BalancedEncoding())
        measured = MeasuredDesign.measure(config)
        model = EnergyModel(energy_per_toggle_for_activity(
            measured.consumed, measured.cycles))
        _MODEL_CACHE[curve] = model
    return model


_MODEL_CACHE: dict = {}


def _trace_uj(trace: EngineTrace, model, point) -> float:
    return model.report_activity(trace.consumed, trace.cycles,
                                 point).energy_joules * 1e6


def run_amortized_session(spec: AmortizedSpec, frame_loss: float,
                          session_index: int) -> AmortizedRecord:
    """Run one amortized session: epochs of handshake + sealed data.

    Pure function of ``(spec, frame_loss, session_index)`` — channel
    streams, nonces and keys are all derived, never drawn from global
    state.
    """
    from ..ec.curves import get_curve
    from ..energy.comparison import ComputeEnergyTable
    from ..energy.radio import RadioModel
    from ..power.technology import OperatingPoint

    domain = get_curve(spec.curve)
    backend = get_backend(spec.backend)
    profile = spec.profile(frame_loss)
    policy = spec.policy()
    radio = RadioModel()
    model = _calibrated_model(spec.curve)
    point = OperatingPoint(frequency_hz=spec.frequency_hz, vdd=spec.vdd)
    base_seed = spec.seed ^ _loss_salt(frame_loss)
    rt = _obs_runtime.current()

    delivered = failed = attempts_total = 0
    keys_used = handshakes_failed = 0
    worst_key_window = 0
    handshake_uj = message_compute_uj = message_radio_uj = 0.0
    elapsed_s = 0.0
    transcript = hashlib.sha256()

    for epoch in range(spec.handshakes):
        first = epoch * spec.epoch_messages
        window = min(spec.epoch_messages, spec.messages - first)
        epoch_span = rt.span("session.epoch", key=epoch,
                             session=session_index, epoch=epoch,
                             window=window) \
            if rt is not None else contextlib.nullcontext()
        with epoch_span as esp:
            epoch_handshake_uj, epoch_message_uj = 0.0, 0.0
            hs_span = rt.span("handshake", key=epoch,
                              protocol=spec.protocol) \
                if rt is not None else contextlib.nullcontext()
            with hs_span as hsp:
                # Same identity every epoch (keys derive from
                # (seed, session_index)); a fresh adapter means fresh
                # nonces.  The handshake seed is salted per epoch so
                # each rekey sees an independent channel stream.
                adapter = make_adapter(
                    spec.protocol, domain, seed=spec.seed,
                    session_index=session_index)
                hs_seed = derive_channel_seed(
                    base_seed, "amortized/handshake",
                    session_index, epoch, 0)
                result = run_resilient_session(
                    adapter, profile, policy, seed=hs_seed,
                    session_index=session_index,
                    distance_m=spec.distance_m,
                    table=ComputeEnergyTable(),
                )
                hs_uj = result.initiator_energy.total_j * 1e6
                handshake_uj += hs_uj
                epoch_handshake_uj = hs_uj
                elapsed_s += result.elapsed_s
                transcript.update(
                    f"handshake/{epoch}/{result.eventual_success}/"
                    f"{result.transcript_digest}\n".encode())
                if hsp is not None:
                    hsp.set(uj=hs_uj,
                            accepted=result.eventual_success,
                            epochs=result.epochs_used)
            if not result.eventual_success:
                # No shared transcript, no session key: this window's
                # messages are lost; the next epoch retries with a
                # fresh handshake.
                handshakes_failed += 1
                failed += window
                transcript.update(
                    f"window/{epoch}/unkeyed/{window}\n".encode())
                if esp is not None:
                    esp.set(uj=epoch_handshake_uj, delivered=0,
                            failed=window)
                continue
            keys_used += 1
            worst_key_window = max(worst_key_window, window)
            epoch_delivered = epoch_failed = 0
            key = derive_session_key(spec.seed, session_index, epoch,
                                     result.transcript_digest,
                                     backend.key_bytes)
            channel = BodyAreaChannel(
                profile,
                seed=derive_channel_seed(base_seed, "amortized/data",
                                         session_index, epoch, 0),
                session=session_index)
            now = 0.0
            for m in range(window):
                index = first + m
                nonce = ((epoch << 16) | m).to_bytes(
                    backend.nonce_bytes, "big")
                plaintext = _message_payload(spec, session_index, index)
                msg_span = rt.span("message", key=index, epoch=epoch) \
                    if rt is not None else contextlib.nullcontext()
                with msg_span as msp:
                    sealed = backend.seal(key, nonce, plaintext)
                    compute_uj = _trace_uj(sealed.trace, model, point)
                    wire_bytes = (FRAME_OVERHEAD_BYTES + len(nonce)
                                  + len(sealed.ciphertext)
                                  + len(sealed.tag))
                    wire = nonce + sealed.ciphertext + sealed.tag
                    radio_uj = 0.0
                    got = False
                    msg_attempts = 0
                    for attempt in range(spec.max_attempts_per_message):
                        msg_attempts += 1
                        radio_uj += radio.transmit_energy(
                            wire_bytes * 8, spec.distance_m) * 1e6
                        deliveries = channel.transmit(
                            wire, frame=index, attempt=attempt,
                            now=now)
                        now += spec.retry_spacing_s
                        for delivery in deliveries:
                            # Every arriving copy costs the receiver
                            # radio and a full AEAD open — a corrupted
                            # copy fails the tag *after* the work.
                            radio_uj += radio.receive_energy(
                                wire_bytes * 8) * 1e6
                            data = delivery.data
                            d_nonce = data[:backend.nonce_bytes]
                            d_ct = data[backend.nonce_bytes:
                                        -backend.tag_bytes]
                            d_tag = data[-backend.tag_bytes:]
                            try:
                                opened = backend.open(key, d_nonce,
                                                      d_ct, d_tag)
                            except AeadTagError as exc:
                                compute_uj += _trace_uj(
                                    exc.trace, model, point)
                                continue
                            compute_uj += _trace_uj(
                                opened.trace, model, point)
                            if opened.plaintext == plaintext:
                                got = True
                        if got:
                            break
                    attempts_total += msg_attempts
                    message_compute_uj += compute_uj
                    message_radio_uj += radio_uj
                    epoch_message_uj += compute_uj + radio_uj
                    if got:
                        delivered += 1
                        epoch_delivered += 1
                    else:
                        failed += 1
                        epoch_failed += 1
                    transcript.update(
                        f"message/{index}/{got}/{msg_attempts}/"
                        f"{nonce.hex()}\n".encode())
                    if msp is not None:
                        msp.set(uj=compute_uj + radio_uj,
                                delivered=got, attempts=msg_attempts)
            elapsed_s += now
            if esp is not None:
                esp.set(uj=epoch_handshake_uj + epoch_message_uj,
                        delivered=epoch_delivered,
                        failed=epoch_failed)

    return AmortizedRecord(
        session_index=session_index,
        delivered=delivered,
        failed=failed,
        attempts=attempts_total,
        keys_used=keys_used,
        handshakes_failed=handshakes_failed,
        worst_key_window=worst_key_window,
        handshake_uj=handshake_uj,
        message_compute_uj=message_compute_uj,
        message_radio_uj=message_radio_uj,
        elapsed_s=elapsed_s,
        transcript_digest=transcript.hexdigest(),
    )


def _message_payload(spec: AmortizedSpec, session_index: int,
                     index: int) -> bytes:
    """The deterministic telemetry payload of one message."""
    from ..primitives.sha1 import sha1

    out = b""
    counter = 0
    while len(out) < spec.message_bytes:
        out += sha1(f"repro.amortized/payload/{spec.seed}/"
                    f"{session_index}/{index}/{counter}".encode())
        counter += 1
    return out[:spec.message_bytes]


# ----------------------------------------------------------------------
# the sweep: sessions x loss rates, fleet-style fan-out
# ----------------------------------------------------------------------

@dataclass
class AmortizedPoint:
    """Every session's record at one loss rate."""

    frame_loss: float
    records: List[AmortizedRecord] = dataclass_field(
        default_factory=list)

    @property
    def sessions(self) -> int:
        return len(self.records)

    @property
    def messages(self) -> int:
        return sum(r.delivered + r.failed for r in self.records)

    @property
    def delivered(self) -> int:
        return sum(r.delivered for r in self.records)

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.messages if self.messages else 0.0

    @property
    def total_uj(self) -> float:
        return sum(r.total_uj for r in self.records)

    @property
    def mean_uj_per_message(self) -> float:
        """All energy (handshakes included) over delivered messages."""
        if not self.delivered:
            return float("inf")
        return self.total_uj / self.delivered

    @property
    def mean_handshake_uj(self) -> float:
        """Mean cost of one successful handshake (= one session key)."""
        keys = sum(r.keys_used for r in self.records)
        if not keys:
            return float("inf")
        return sum(r.handshake_uj for r in self.records) / keys

    @property
    def mean_message_only_uj(self) -> float:
        """Per-delivered-message engine + radio bill, handshakes
        excluded — the part both designs pay identically."""
        if not self.delivered:
            return float("inf")
        return sum(r.message_compute_uj + r.message_radio_uj
                   for r in self.records) / self.delivered

    @property
    def extension_factor(self) -> float:
        """Battery-life extension vs the handshake-per-message design.

        The pure-ECC baseline pays one full handshake *plus* the data
        frame for every message; the amortized design pays the same
        data frame but only ``1/epoch`` of the handshake.  >1 means
        the epoch paid off.
        """
        amortized = self.mean_uj_per_message
        baseline = self.mean_handshake_uj + self.mean_message_only_uj
        if amortized in (0.0, float("inf")) \
                or baseline == float("inf"):
            return 0.0
        return baseline / amortized

    def lifetime_years(self, spec: AmortizedSpec,
                       budget=None) -> float:
        from ..energy.budget import PACEMAKER_BUDGET

        budget = budget or PACEMAKER_BUDGET
        mean_j = self.mean_uj_per_message * 1e-6
        if not mean_j > 0 or mean_j == float("inf"):
            return 0.0
        return budget.lifetime_years_at(spec.messages_per_day, mean_j)

    def digest(self) -> str:
        """Order-independent digest over every session transcript."""
        h = hashlib.sha256()
        for record in sorted(self.records,
                             key=lambda r: r.session_index):
            h.update(f"{record.session_index}:".encode())
            h.update(record.transcript_digest.encode())
        return h.hexdigest()


@dataclass
class AmortizedReport:
    """The full sweep, plus the derived verdicts."""

    spec: AmortizedSpec
    points: List[AmortizedPoint]

    @property
    def fully_delivered(self) -> bool:
        return all(p.delivery_rate == 1.0 for p in self.points)

    @property
    def min_delivery_rate(self) -> float:
        return min(p.delivery_rate for p in self.points)

    @property
    def amortization_pays(self) -> bool:
        """Does every sweep point beat the per-message handshake?"""
        return all(p.extension_factor > 1.0 for p in self.points)

    def summary_payload(self) -> dict:
        """Worker-invariant facts only (the CI ``cmp`` contract)."""
        return {
            "protocol": self.spec.protocol,
            "backend": self.spec.backend,
            "curve": self.spec.curve,
            "epoch_messages": self.spec.epoch_messages,
            "messages": self.spec.messages,
            "sessions": self.spec.sessions,
            "seed": self.spec.seed,
            "points": [
                {
                    "frame_loss": p.frame_loss,
                    "delivered": p.delivered,
                    "messages": p.messages,
                    "keys_used": sum(r.keys_used for r in p.records),
                    "transcripts": {
                        str(r.session_index): r.transcript_digest
                        for r in sorted(p.records,
                                        key=lambda r: r.session_index)
                    },
                    "digest": p.digest(),
                }
                for p in sorted(self.points,
                                key=lambda p: p.frame_loss)
            ],
        }

    def summary(self) -> str:
        """Render the sweep table from the obs metrics snapshot (the
        read-back discipline of :meth:`FleetReport.summary`)."""
        from ..obs.integration import amortized_point_stats, \
            record_amortized_report
        from ..obs.metrics import MetricRegistry

        spec = self.spec
        snapshot = record_amortized_report(MetricRegistry(),
                                           self).snapshot()
        lines = [
            f"{spec.protocol} + {spec.backend} on {spec.curve}: "
            f"{spec.sessions} sessions x {spec.messages} messages, "
            f"epoch {spec.epoch_messages}, seed {spec.seed}",
            f"{'loss':>6} {'deliv':>8} {'keys':>5} {'hs uJ':>9} "
            f"{'msg uJ':>9} {'uJ/msg':>9} {'ext':>6} {'life(y)':>8}",
        ]
        degraded = []
        for p in sorted(self.points, key=lambda p: p.frame_loss):
            stats = amortized_point_stats(snapshot, p.frame_loss)
            lines.append(
                f"{p.frame_loss:>6.0%} "
                f"{stats['delivery_rate']:>8.2%} "
                f"{stats['keys_used']:>5d} "
                f"{stats['handshake_uj']:>9.2f} "
                f"{stats['message_uj']:>9.2f} "
                f"{stats['uj_per_message']:>9.4f} "
                f"{stats['extension_factor']:>6.1f} "
                f"{p.lifetime_years(spec):>8.1f}"
            )
            if stats["delivery_rate"] < 1.0:
                degraded.append(
                    f"{stats['delivered']}/{stats['messages']} "
                    f"at {p.frame_loss:.0%}")
        verdict = ["delivery: " + (
            "100% at every loss rate" if not degraded else
            "DEGRADED — " + ", ".join(degraded))]
        verdict.append("amortization: " + (
            "pays at every loss rate (extension > 1)"
            if self.amortization_pays else
            "DOES NOT PAY at some loss rate"))
        verdict.append(
            f"forward-secrecy window: at most {spec.epoch_messages} "
            f"messages per captured key")
        return "\n".join(lines + verdict)


def _run_amortized_slice(spec: AmortizedSpec, frame_loss: float,
                         indices: Sequence[int]
                         ) -> List[AmortizedRecord]:
    """Worker entry: a slice of sessions at one sweep point
    (top-level so it pickles; workers share no state)."""
    return [run_amortized_session(spec, frame_loss, index)
            for index in indices]


def run_amortized_soak(spec: AmortizedSpec,
                       workers: Optional[int] = None,
                       progress=None) -> AmortizedReport:
    """Run the whole sweep, optionally across worker processes.

    Fleet discipline: ``workers=0`` forces in-process execution,
    records are keyed and sorted, and the report cannot depend on
    worker count or scheduling.
    """
    from ..obs.integration import record_amortized_report

    if workers is None:
        workers = min(os.cpu_count() or 1, 8)
    jobs: List[Tuple[float, List[int]]] = []
    chunk = max(1, spec.sessions // max(1, workers * 4))
    for loss in spec.sweep:
        for start in range(0, spec.sessions, chunk):
            jobs.append((loss, list(range(start,
                                          min(start + chunk,
                                              spec.sessions)))))

    rt = _obs_runtime.current()
    with contextlib.ExitStack() as stack:
        soak_span = None
        if rt is not None:
            soak_span = stack.enter_context(rt.span(
                "backends.soak", key=0,
                protocol=spec.protocol, backend=spec.backend,
                epoch=spec.epoch_messages, sessions=spec.sessions,
                points=len(spec.sweep),
            ))
        by_loss = {loss: [] for loss in spec.sweep}
        done = 0
        if workers <= 1 or len(jobs) == 1:
            for loss, indices in jobs:
                by_loss[loss].extend(
                    _run_amortized_slice(spec, loss, indices))
                done += 1
                if progress:
                    progress(done, len(jobs))
        else:
            with concurrent.futures.ProcessPoolExecutor(workers) as pool:
                futures = {
                    pool.submit(_run_amortized_slice, spec, loss,
                                indices): loss
                    for loss, indices in jobs}
                for future in concurrent.futures.as_completed(futures):
                    by_loss[futures[future]].extend(future.result())
                    done += 1
                    if progress:
                        progress(done, len(jobs))

        points = []
        for key, loss in enumerate(sorted(spec.sweep)):
            records = sorted(by_loss[loss],
                             key=lambda r: r.session_index)
            point = AmortizedPoint(frame_loss=loss, records=records)
            points.append(point)
            if rt is not None:
                rt.tracer.event(
                    "backends.point", key=key, loss=f"{loss:g}",
                    sessions=point.sessions,
                    delivered=point.delivered,
                    digest=point.digest(),
                )
        report = AmortizedReport(spec=spec, points=points)
        if rt is not None:
            record_amortized_report(rt.registry, report)
            if soak_span is not None:
                soak_span.set(delivered=report.fully_delivered,
                              pays=report.amortization_pays)
    return report
