"""Fleet execution of resilient sessions across a loss-rate sweep.

The availability experiment the session layer exists for: run
thousands of independently-seeded sessions at each point of a
frame-loss sweep and report, per loss rate,

* availability — the fraction of sessions that eventually identified,
* the retry bill — epochs, frames and retransmissions consumed,
* the energy bill — mean initiator µJ per identification and what the
  overhead does to the pacemaker's security-budget lifetime.

Sessions are embarrassingly parallel (every session derives its keys,
nonces and channel behaviour from ``(seed, session_index)`` alone), so
the fleet fans out over a :class:`~concurrent.futures.ProcessPoolExecutor`
exactly like :mod:`repro.campaign.runner` fans out shards — and, like
there, the aggregate is order-independent: results are keyed and
sorted, so worker scheduling cannot change a single reported digit.
"""

from __future__ import annotations

import concurrent.futures
import contextlib
import hashlib
import os
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from ..channel import LossProfile
from ..obs import runtime as _obs_runtime

if TYPE_CHECKING:  # lazy at runtime to avoid the energy <-> protocols
    # import cycle (repro.energy.comparison imports repro.protocols.ops)
    from ..energy.budget import DeviceBudget
from .session import (
    PROTOCOL_NAMES,
    RetransmissionPolicy,
    make_adapter,
    run_resilient_session,
)

__all__ = ["FleetSpec", "SessionRecord", "SweepPoint", "FleetReport",
           "run_fleet", "DEFAULT_SWEEP", "PowerSoakSpec",
           "PowerSessionRecord", "PowerSoakReport", "run_power_soak"]

#: Frame-loss points of the default sweep (0–20%, the ISSUE's range).
DEFAULT_SWEEP: Tuple[float, ...] = (0.0, 0.05, 0.10, 0.20)


@dataclass(frozen=True)
class FleetSpec:
    """Everything a fleet run depends on (and nothing else).

    The spec is the unit of reproducibility: two runs of the same spec
    produce identical reports, whatever the worker count.
    """

    protocol: str = "peeters-hermans"
    curve: str = "TOY-B17"
    sessions: int = 200
    seed: int = 2013
    sweep: Tuple[float, ...] = DEFAULT_SWEEP
    duplicate_rate: float = 0.02
    reorder_rate: float = 0.02
    distance_m: float = 0.5
    max_epochs: int = 12
    round_deadline_s: float = 0.08
    operations_per_day: float = 24.0

    def __post_init__(self):
        if self.protocol not in PROTOCOL_NAMES:
            raise ValueError(f"unknown protocol {self.protocol!r} "
                             f"(know {', '.join(PROTOCOL_NAMES)})")
        if self.sessions < 1:
            raise ValueError("need at least one session")
        if not self.sweep:
            raise ValueError("sweep needs at least one loss rate")
        for loss in self.sweep:
            if not 0.0 <= loss < 1.0:
                raise ValueError(f"loss rate {loss} outside [0, 1)")

    def profile(self, frame_loss: float) -> LossProfile:
        """The channel at one sweep point, BER tied to the distance."""
        from ..energy.radio import RadioModel

        return LossProfile.from_radio(
            RadioModel(), self.distance_m, frame_loss=frame_loss,
            duplicate_rate=self.duplicate_rate,
            reorder_rate=self.reorder_rate,
        )

    def policy(self) -> RetransmissionPolicy:
        return RetransmissionPolicy(max_epochs=self.max_epochs,
                                    round_deadline_s=self.round_deadline_s)


@dataclass(frozen=True)
class SessionRecord:
    """The light per-session record a worker ships back."""

    session_index: int
    accepted: bool
    completed: bool
    aborted_phase: Optional[str]
    rounds_completed: int
    epochs_used: int
    frames_sent: int
    retransmissions: int
    corrupt_rejections: int
    stale_rejections: int
    replay_rejections: int
    elapsed_s: float
    initiator_uj: float
    responder_uj: float
    transcript_digest: str


@dataclass
class SweepPoint:
    """Aggregated outcome of every session at one loss rate."""

    frame_loss: float
    profile: LossProfile
    records: List[SessionRecord] = dataclass_field(default_factory=list)

    @property
    def sessions(self) -> int:
        return len(self.records)

    @property
    def successes(self) -> int:
        return sum(1 for r in self.records if r.accepted)

    @property
    def availability(self) -> float:
        return self.successes / self.sessions if self.records else 0.0

    @property
    def mean_epochs(self) -> float:
        return sum(r.epochs_used for r in self.records) / self.sessions

    @property
    def mean_frames(self) -> float:
        return sum(r.frames_sent for r in self.records) / self.sessions

    @property
    def total_retransmissions(self) -> int:
        return sum(r.retransmissions for r in self.records)

    @property
    def mean_initiator_uj(self) -> float:
        return sum(r.initiator_uj for r in self.records) / self.sessions

    @property
    def worst_elapsed_s(self) -> float:
        return max(r.elapsed_s for r in self.records)

    def lifetime_years(self, spec: FleetSpec,
                       budget: "Optional[DeviceBudget]" = None) -> float:
        """Security-budget lifetime at this loss rate's mean session cost."""
        from ..energy.budget import PACEMAKER_BUDGET

        budget = budget or PACEMAKER_BUDGET
        mean_j = self.mean_initiator_uj * 1e-6
        if mean_j <= 0:
            return float("inf")
        return budget.lifetime_years_at(spec.operations_per_day, mean_j)

    def digest(self) -> str:
        """Order-independent digest over every session transcript."""
        h = hashlib.sha256()
        for record in sorted(self.records, key=lambda r: r.session_index):
            h.update(f"{record.session_index}:".encode())
            h.update(record.transcript_digest.encode())
        return h.hexdigest()


@dataclass
class FleetReport:
    """The full sweep, plus the derived verdict."""

    spec: FleetSpec
    points: List[SweepPoint]

    @property
    def total_sessions(self) -> int:
        return sum(p.sessions for p in self.points)

    @property
    def fully_available(self) -> bool:
        """Did every session at every loss rate eventually identify?"""
        return all(p.availability == 1.0 for p in self.points)

    @property
    def energy_monotone(self) -> bool:
        """Does mean initiator energy rise with the loss rate?"""
        means = [p.mean_initiator_uj
                 for p in sorted(self.points, key=lambda p: p.frame_loss)]
        return all(b > a for a, b in zip(means, means[1:]))

    def summary(self) -> str:
        """Render the sweep table from the obs metrics snapshot.

        Every figure here is read back out of a
        :class:`~repro.obs.metrics.MetricRegistry` snapshot produced
        by :func:`repro.obs.integration.record_fleet_report` — the
        same aggregation path a live campaign exports — so the
        rendered table can never drift from the exported metrics.
        """
        from ..energy.budget import PACEMAKER_BUDGET
        from ..obs.integration import fleet_point_stats, \
            record_fleet_report
        from ..obs.metrics import MetricRegistry

        spec = self.spec
        snapshot = record_fleet_report(MetricRegistry(), self).snapshot()
        lines = [
            f"protocol {spec.protocol} on {spec.curve}, "
            f"{spec.sessions} sessions per point, seed {spec.seed}, "
            f"distance {spec.distance_m} m",
            f"{'loss':>6} {'avail':>8} {'epochs':>7} {'frames':>7} "
            f"{'retx':>6} {'uJ/session':>11} {'life(y)':>8}",
        ]
        degraded = []
        means = []
        for point in sorted(self.points, key=lambda p: p.frame_loss):
            stats = fleet_point_stats(snapshot, point.frame_loss)
            mean_j = stats["mean_initiator_uj"] * 1e-6
            lifetime = (PACEMAKER_BUDGET.lifetime_years_at(
                spec.operations_per_day, mean_j)
                if mean_j > 0 else float("inf"))
            lines.append(
                f"{point.frame_loss:>6.0%} "
                f"{stats['availability']:>8.2%} "
                f"{stats['mean_epochs']:>7.2f} "
                f"{stats['mean_frames']:>7.2f} "
                f"{stats['retransmissions']:>6d} "
                f"{stats['mean_initiator_uj']:>11.2f} "
                f"{lifetime:>8.1f}"
            )
            means.append(stats["mean_initiator_uj"])
            if stats["availability"] < 1.0:
                degraded.append(
                    f"{stats['accepted']}/{stats['sessions']} "
                    f"at {point.frame_loss:.0%}"
                )
        verdict = []
        verdict.append("availability: " + (
            "100% at every loss rate" if not degraded else
            "DEGRADED — " + ", ".join(degraded)))
        monotone = all(b > a for a, b in zip(means, means[1:]))
        verdict.append("energy vs loss: " + (
            "strictly increasing (reliability is paid in uJ)"
            if monotone else "NOT monotone"))
        return "\n".join(lines + verdict)


def _run_slice(spec: FleetSpec, frame_loss: float,
               indices: Sequence[int]) -> List[SessionRecord]:
    """Worker entry: run a slice of sessions at one sweep point.

    Top-level so it pickles; builds everything it needs from the spec
    (workers share no state).
    """
    from ..ec.curves import get_curve
    from ..energy.comparison import ComputeEnergyTable

    domain = None if spec.protocol == "mutual-auth" \
        else get_curve(spec.curve)
    profile = spec.profile(frame_loss)
    policy = spec.policy()
    records = []
    for index in indices:
        adapter = make_adapter(spec.protocol, domain, seed=spec.seed,
                               session_index=index)
        result = run_resilient_session(
            adapter, profile, policy, seed=spec.seed ^ _loss_salt(frame_loss),
            session_index=index, distance_m=spec.distance_m,
            table=ComputeEnergyTable(),
        )
        records.append(SessionRecord(
            session_index=index,
            accepted=result.accepted,
            completed=result.completed,
            aborted_phase=result.aborted_phase,
            rounds_completed=result.rounds_completed,
            epochs_used=result.epochs_used,
            frames_sent=result.frames_sent,
            retransmissions=result.retransmissions,
            corrupt_rejections=result.corrupt_rejections,
            stale_rejections=result.stale_rejections,
            replay_rejections=result.replay_rejections,
            elapsed_s=result.elapsed_s,
            initiator_uj=result.initiator_energy.total_j * 1e6,
            responder_uj=result.responder_energy.total_j * 1e6,
            transcript_digest=result.transcript_digest,
        ))
    return records


def _loss_salt(frame_loss: float) -> int:
    """A stable per-sweep-point salt so points are independent streams."""
    digest = hashlib.sha256(f"fleet-loss/{frame_loss!r}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


# ----------------------------------------------------------------------
# the power soak: a fleet of sessions under seeded power-cut schedules
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PowerSoakSpec:
    """A fleet of intermittent-power sessions, each under its own
    seeded cut schedule.

    ``seed`` drives the protocol (keys, nonces, Z randomization);
    ``cut_seed`` drives the cut placements — two independent streams,
    so the same fleet can be soaked under many different outage
    patterns and the *outcomes* compared byte for byte.
    """

    curve: str = "TOY-B17"
    sessions: int = 50
    seed: int = 2013
    cut_seed: int = 1
    cuts: int = 3
    mean_on_cycles: int = 8_000
    checkpoint_interval: int = 8
    randomize_z: bool = True
    max_power_cycles: int = 64

    def __post_init__(self):
        if self.sessions < 1:
            raise ValueError("need at least one session")
        if self.cuts < 0:
            raise ValueError("cut count must be non-negative")
        if self.mean_on_cycles < 1:
            raise ValueError("mean on-window must be at least one cycle")

    def intermittent_spec(self):
        from ..intermittent import IntermittentSpec

        return IntermittentSpec(
            curve=self.curve, seed=self.seed,
            checkpoint_interval=self.checkpoint_interval,
            randomize_z=self.randomize_z,
            max_power_cycles=self.max_power_cycles,
        )

    def schedule(self, session_index: int):
        from ..intermittent import PowerCutSchedule

        if self.cuts == 0:
            return PowerCutSchedule()
        return PowerCutSchedule.seeded(
            self.cut_seed, session_index, self.cuts,
            mean_on_cycles=self.mean_on_cycles)


@dataclass(frozen=True)
class PowerSessionRecord:
    """The light per-session record a power-soak worker ships back.

    Field names match :class:`~repro.intermittent.IntermittentResult`
    where they overlap, so
    :func:`~repro.obs.integration.record_intermittent_result` folds
    either shape into the registry.
    """

    session_index: int
    completed: bool
    accepted: bool
    identity: Optional[int]
    abort_reason: Optional[str]
    power_cycles: int
    checkpoints_committed: int
    torn_discards: int
    steps_executed: int
    steps_wasted: int
    checkpoint_uj: float
    compute_uj: float
    radio_uj: float
    outcome_digest: str
    #: on-the-wire nonce reuses (see
    #: :func:`repro.intermittent.count_nonce_reuse`) —
    #: placement-invariant, zero while the vault invariant holds.
    nonce_reuse: int = 0

    @property
    def total_uj(self) -> float:
        return self.checkpoint_uj + self.compute_uj + self.radio_uj


@dataclass
class PowerSoakReport:
    """Every session's outcome under its cut schedule."""

    spec: PowerSoakSpec
    records: List[PowerSessionRecord]

    @property
    def sessions(self) -> int:
        return len(self.records)

    @property
    def completed(self) -> int:
        return sum(1 for r in self.records if r.completed)

    @property
    def accepted(self) -> int:
        return sum(1 for r in self.records if r.accepted)

    @property
    def all_clean(self) -> bool:
        """Every session completed, or aborted with a typed reason —
        nothing crashed, nothing corrupted."""
        return all(r.completed or r.abort_reason for r in self.records)

    @property
    def total_power_cycles(self) -> int:
        return sum(r.power_cycles for r in self.records)

    @property
    def total_torn_discards(self) -> int:
        return sum(r.torn_discards for r in self.records)

    @property
    def total_nonce_reuse(self) -> int:
        return sum(r.nonce_reuse for r in self.records)

    def telemetry_events(self) -> List[dict]:
        """Ordered telemetry: one event per session on the ordinal
        virtual clock (sessions are independent simulations, so the
        session ordinal is the fleet's only shared timeline)."""
        from ..obs.stream import make_event

        return [make_event(float(r.session_index), "power",
                           r.session_index,
                           session_uj=r.total_uj,
                           nonce_reuse=r.nonce_reuse)
                for r in sorted(self.records,
                                key=lambda r: r.session_index)]

    def alert_records(self) -> List[dict]:
        """The stock *invariant* rules evaluated over the soak stream.

        Only placement-invariant series participate in the verdict
        (``nonce_reuse``; energy figures legitimately vary with where
        the cuts land), so the log — like :meth:`summary_payload` — is
        byte-identical across cut seeds and worker counts.
        """
        from ..obs.alerts import AlertEngine, default_rulebook

        rules = tuple(rule for rule in default_rulebook()
                      if rule.kind == "invariant")
        engine = AlertEngine(rules)
        for event in self.telemetry_events():
            engine.observe(event)
        return engine.finalize()

    def outcome_digest(self) -> str:
        """Order-independent digest over every session's outcome."""
        h = hashlib.sha256()
        for record in sorted(self.records, key=lambda r: r.session_index):
            h.update(f"{record.session_index}:".encode())
            h.update(record.outcome_digest.encode())
        return h.hexdigest()

    def summary_payload(self) -> dict:
        """The ``summary.json`` body: *placement-invariant* facts only.

        Per-session outcome digests and their combination — never
        energy, cycle or power-cut figures, which legitimately vary
        with where the cuts land.  CI asserts this payload is
        byte-identical across worker counts *and* across cut seeds
        whose schedules allow every session to complete.
        """
        return {
            "curve": self.spec.curve,
            "protocol_seed": self.spec.seed,
            "sessions": self.sessions,
            "completed": self.completed,
            "accepted": self.accepted,
            "identities": [r.identity
                           for r in sorted(self.records,
                                           key=lambda r: r.session_index)],
            "outcomes": {str(r.session_index): r.outcome_digest
                         for r in sorted(self.records,
                                         key=lambda r: r.session_index)},
            "outcome_digest": self.outcome_digest(),
            "nonce_reuse": self.total_nonce_reuse,
            "alert_firings": len([r for r in self.alert_records()
                                  if r["state"] == "firing"]),
        }

    def summary(self) -> str:
        """Render the soak table from the obs metrics snapshot (the
        same read-back discipline as :meth:`FleetReport.summary`)."""
        from ..obs.integration import record_intermittent_result, \
            snapshot_histogram, snapshot_value
        from ..obs.metrics import MetricRegistry

        registry = MetricRegistry()
        for record in self.records:
            record_intermittent_result(registry, record)
        snapshot = registry.snapshot()
        sessions = self.sessions
        uj = snapshot_histogram(snapshot, "repro_intermittent_session_uj")
        ckpt_uj = snapshot_value(snapshot,
                                 "repro_intermittent_energy_uj_total",
                                 component="checkpoint")
        wasted = snapshot_value(snapshot,
                                "repro_intermittent_ladder_steps_total",
                                kind="wasted")
        productive = snapshot_value(snapshot,
                                    "repro_intermittent_ladder_steps_total",
                                    kind="productive")
        lines = [
            f"power soak on {self.spec.curve}: {sessions} sessions, "
            f"seed {self.spec.seed}, cut seed {self.spec.cut_seed}, "
            f"{self.spec.cuts} cuts/session around "
            f"{self.spec.mean_on_cycles} cycles",
            f"  completed {self.completed}/{sessions}, "
            f"accepted {self.accepted}/{sessions}",
            f"  power cycles survived: {self.total_power_cycles} "
            f"(torn staged records discarded: {self.total_torn_discards})",
            f"  nonce reuse on the wire: {self.total_nonce_reuse} "
            + ("(invariant held)" if self.total_nonce_reuse == 0
               else "(INVARIANT BROKEN — alert fired)"),
            f"  ladder steps: {int(productive)} productive, "
            f"{int(wasted)} re-executed after cuts",
            f"  energy: {uj['sum']:.1f} uJ total "
            f"({ckpt_uj:.1f} uJ on checkpoints), "
            f"worst session {uj['max']:.1f} uJ" if uj["count"] else
            "  energy: none recorded",
            f"  outcome digest: {self.outcome_digest()[:16]}",
        ]
        verdict = ("every session completed or aborted typed-clean"
                   if self.all_clean else
                   "UNCLEAN — a session died without a typed reason")
        return "\n".join(lines + ["  verdict: " + verdict])


def _run_power_slice(spec: PowerSoakSpec,
                     indices: Sequence[int]) -> List[PowerSessionRecord]:
    """Worker entry: run a slice of intermittent sessions.

    Builds sessions directly (not through
    :func:`~repro.intermittent.run_intermittent_session`) so workers
    never emit spans — the coordinator is the only aggregation path,
    keeping the registry independent of worker count.
    """
    from ..intermittent import IntermittentSession, count_nonce_reuse

    ispec = spec.intermittent_spec()
    records = []
    for index in indices:
        supply = spec.schedule(index).supply()
        result = IntermittentSession(ispec, index, supply=supply).run()
        records.append(PowerSessionRecord(
            session_index=index,
            completed=result.completed,
            accepted=result.accepted,
            identity=result.identity,
            abort_reason=result.abort_reason,
            power_cycles=result.power_cycles,
            checkpoints_committed=result.checkpoints_committed,
            torn_discards=result.torn_discards,
            steps_executed=result.steps_executed,
            steps_wasted=result.steps_wasted,
            checkpoint_uj=result.checkpoint_uj,
            compute_uj=result.compute_uj,
            radio_uj=result.radio_uj,
            outcome_digest=result.outcome_digest,
            nonce_reuse=count_nonce_reuse(result.wire),
        ))
    return records


def run_power_soak(spec: PowerSoakSpec, workers: Optional[int] = None,
                   progress=None) -> PowerSoakReport:
    """Soak a fleet of sessions under seeded power-cut schedules.

    Same fan-out discipline as :func:`run_fleet`: sessions are
    embarrassingly parallel, records are keyed and sorted, and the
    report cannot depend on worker count or scheduling.
    """
    from ..obs.integration import record_intermittent_result

    if workers is None:
        workers = min(os.cpu_count() or 1, 8)
    chunk = max(1, spec.sessions // max(1, workers * 4))
    jobs = [list(range(start, min(start + chunk, spec.sessions)))
            for start in range(0, spec.sessions, chunk)]

    rt = _obs_runtime.current()
    with contextlib.ExitStack() as stack:
        soak_span = None
        if rt is not None:
            soak_span = stack.enter_context(rt.span(
                "power.soak", key=0, curve=spec.curve,
                sessions=spec.sessions, cuts=spec.cuts,
                interval=spec.checkpoint_interval,
            ))
        records: List[PowerSessionRecord] = []
        done = 0
        if workers <= 1 or len(jobs) == 1:
            for indices in jobs:
                records.extend(_run_power_slice(spec, indices))
                done += 1
                if progress:
                    progress(done, len(jobs))
        else:
            with concurrent.futures.ProcessPoolExecutor(workers) as pool:
                futures = [pool.submit(_run_power_slice, spec, indices)
                           for indices in jobs]
                for future in concurrent.futures.as_completed(futures):
                    records.extend(future.result())
                    done += 1
                    if progress:
                        progress(done, len(jobs))
        records.sort(key=lambda r: r.session_index)
        report = PowerSoakReport(spec=spec, records=records)
        if rt is not None:
            for record in records:
                record_intermittent_result(rt.registry, record)
            soak_span.set(completed=report.completed,
                          accepted=report.accepted,
                          clean=report.all_clean,
                          digest=report.outcome_digest()[:16])
    return report


def run_fleet(spec: FleetSpec, workers: Optional[int] = None,
              progress=None) -> FleetReport:
    """Run the whole sweep, optionally across worker processes.

    ``workers=0`` forces in-process execution (tests, small runs);
    otherwise defaults to ``min(cpu, 8)`` like the campaign runner.
    ``progress`` is an optional callable ``(done, total)``.
    """
    from ..obs.integration import fleet_spec_digest, record_fleet_report

    if workers is None:
        workers = min(os.cpu_count() or 1, 8)
    jobs: List[Tuple[float, List[int]]] = []
    chunk = max(1, spec.sessions // max(1, workers * 4))
    for loss in spec.sweep:
        for start in range(0, spec.sessions, chunk):
            jobs.append((loss, list(range(start, min(start + chunk,
                                                     spec.sessions)))))

    rt = _obs_runtime.current()
    with contextlib.ExitStack() as stack:
        soak_span = None
        if rt is not None:
            # Deterministic attrs only — no worker count, so two runs
            # of the same spec produce byte-identical span trees
            # whatever the parallelism.
            soak_span = stack.enter_context(rt.span(
                "protocol.soak", key=0,
                protocol=spec.protocol, spec=fleet_spec_digest(spec),
                sessions=spec.sessions, points=len(spec.sweep),
            ))
        by_loss: Dict[float, List[SessionRecord]] = {loss: []
                                                     for loss in spec.sweep}
        done = 0
        if workers <= 1 or len(jobs) == 1:
            for loss, indices in jobs:
                by_loss[loss].extend(_run_slice(spec, loss, indices))
                done += 1
                if progress:
                    progress(done, len(jobs))
        else:
            with concurrent.futures.ProcessPoolExecutor(workers) as pool:
                futures = {pool.submit(_run_slice, spec, loss, indices):
                           loss for loss, indices in jobs}
                for future in concurrent.futures.as_completed(futures):
                    by_loss[futures[future]].extend(future.result())
                    done += 1
                    if progress:
                        progress(done, len(jobs))

        points = []
        for key, loss in enumerate(sorted(spec.sweep)):
            records = sorted(by_loss[loss], key=lambda r: r.session_index)
            point = SweepPoint(frame_loss=loss,
                               profile=spec.profile(loss),
                               records=records)
            points.append(point)
            if rt is not None:
                rt.tracer.event(
                    "soak.point", key=key,
                    loss=f"{loss:g}", sessions=point.sessions,
                    accepted=point.successes,
                    retransmissions=point.total_retransmissions,
                    digest=point.digest(),
                )
        report = FleetReport(spec=spec, points=points)
        if rt is not None:
            record_fleet_report(rt.registry, report)
            if soak_span is not None:
                soak_span.set(available=report.fully_available,
                              monotone=report.energy_monotone)
    return report
