"""Operation and communication accounting for protocol runs.

Section 4's design rules are quantitative: minimize the tag's
computation, minimize communication ("wireless communication is
power-hungry"), and put the heavy work on the energy-rich reader.
Every protocol run in this package therefore returns, per party, an
:class:`OperationCount` that the energy layer (:mod:`repro.energy`)
converts to joules.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

__all__ = ["OperationCount", "Transcript", "Message"]


@dataclass
class OperationCount:
    """What one party did during a protocol run."""

    point_multiplications: int = 0
    modular_multiplications: int = 0
    point_additions: int = 0
    aes_blocks: int = 0
    hash_blocks: int = 0
    random_bits: int = 0
    tx_bits: int = 0
    rx_bits: int = 0

    def __add__(self, other: "OperationCount") -> "OperationCount":
        return OperationCount(
            self.point_multiplications + other.point_multiplications,
            self.modular_multiplications + other.modular_multiplications,
            self.point_additions + other.point_additions,
            self.aes_blocks + other.aes_blocks,
            self.hash_blocks + other.hash_blocks,
            self.random_bits + other.random_bits,
            self.tx_bits + other.tx_bits,
            self.rx_bits + other.rx_bits,
        )

    @property
    def communication_bits(self) -> int:
        """Total bits over the air (both directions)."""
        return self.tx_bits + self.rx_bits


@dataclass(frozen=True)
class Message:
    """One protocol message with its wire size."""

    sender: str
    label: str
    bits: int

    def __post_init__(self):
        if self.bits < 0:
            raise ValueError("message size cannot be negative")


@dataclass
class Transcript:
    """Everything that crossed the channel (the eavesdropper's view
    and the communication-cost ledger)."""

    messages: list = dataclass_field(default_factory=list)

    def record(self, sender: str, label: str, bits: int) -> None:
        """Append one message."""
        self.messages.append(Message(sender, label, bits))

    def bits_from(self, sender: str) -> int:
        """Total bits transmitted by one party."""
        return sum(m.bits for m in self.messages if m.sender == sender)

    @property
    def total_bits(self) -> int:
        """Total bits over the air."""
        return sum(m.bits for m in self.messages)

    @property
    def rounds(self) -> int:
        """Number of messages exchanged."""
        return len(self.messages)
