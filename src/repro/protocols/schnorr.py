"""Schnorr identification [17] — the traceable baseline.

Section 4: "not all PKC-based protocols achieve strong privacy.  For
example, tags using the Schnorr identification protocol can be easily
traced."  The flaw is structural: from a passive transcript
``(R, e, s)`` anyone can compute the prover's public key as

    X = e^{-1} * (s*P - R),

because verification is the public equation ``s*P = R + e*X``.  The
public key is a unique, permanent identifier — so every session of the
same tag is linkable by an eavesdropper.  The privacy game in
:mod:`repro.protocols.privacy` runs exactly this distinguisher.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..ec.curves import NamedCurve
from ..ec.ladder import montgomery_ladder
from ..ec.point import AffinePoint
from .ops import OperationCount, Transcript
from .peeters_hermans import NonceConsumedError, NoncePendingError

__all__ = ["SchnorrTag", "SchnorrVerifier", "SchnorrSession",
           "run_schnorr_identification", "extract_public_key"]


@dataclass
class SchnorrSession:
    """One complete Schnorr run: the eavesdropper's view plus accounting."""

    commitment: AffinePoint
    challenge: int
    response: int
    accepted: bool
    transcript: Transcript
    tag_ops: OperationCount


class SchnorrTag:
    """Prover holding the secret x with public key X = x * P."""

    def __init__(self, domain: NamedCurve, secret_x: int,
                 multiplier: Optional[Callable] = None):
        if not 1 <= secret_x < domain.order:
            raise ValueError("secret out of range")
        self.domain = domain
        self._x = secret_x
        self.public = domain.curve.multiply_naive(secret_x, domain.generator)
        self._multiplier = multiplier or (
            lambda k, point, rng: montgomery_ladder(domain.curve, k, point,
                                                    rng=rng)
        )
        self._r: Optional[int] = None
        self._responded = False
        self.ops = OperationCount()

    def commit(self, rng) -> AffinePoint:
        """Round 1: R = r * P."""
        if self._r is not None:
            raise NoncePendingError(
                "commit() with a pending nonce; abort() the old epoch first"
            )
        ring = self.domain.scalar_ring
        self._r = ring.random_scalar(rng)
        self._responded = False
        self.ops.random_bits += ring.n.bit_length()
        self.ops.point_multiplications += 1
        return self._multiplier(self._r, self.domain.generator, rng)

    def abort(self) -> None:
        """Discard a pending nonce (epoch restart / session teardown)."""
        self._r = None

    def respond(self, challenge: int) -> int:
        """Round 2: s = r + e * x.  The nonce is strictly single-use
        (two responses under one r solve for the key)."""
        if self._r is None:
            if self._responded:
                raise NonceConsumedError(
                    "nonce already consumed: a retransmitted round must "
                    "use a fresh commit, never reuse r"
                )
            raise RuntimeError("respond() called before commit()")
        ring = self.domain.scalar_ring
        s = ring.add(self._r, ring.mul(challenge, self._x))
        self.ops.modular_multiplications += 1
        self._r = None
        self._responded = True
        return s


class SchnorrVerifier:
    """Verifier that knows the tag's public key (that's the problem)."""

    def __init__(self, domain: NamedCurve, tag_public: AffinePoint):
        if not domain.curve.is_on_curve(tag_public):
            raise ValueError("public key not on the curve")
        self.domain = domain
        self.tag_public = tag_public
        self.ops = OperationCount()

    def challenge(self, rng) -> int:
        """A fresh scalar challenge."""
        return self.domain.scalar_ring.random_scalar(rng)

    def verify(self, commitment: AffinePoint, e: int, s: int) -> bool:
        """Check s*P == R + e*X."""
        curve = self.domain.curve
        lhs = curve.multiply_naive(s, self.domain.generator)
        rhs = curve.add(commitment, curve.multiply_naive(e, self.tag_public))
        self.ops.point_multiplications += 2
        self.ops.point_additions += 1
        return lhs == rhs


def run_schnorr_identification(tag: SchnorrTag, verifier: SchnorrVerifier,
                               rng) -> SchnorrSession:
    """One full session with wire accounting."""
    domain = tag.domain
    transcript = Transcript()
    commitment = tag.commit(rng)
    transcript.record("tag", "R", domain.field.m + 1)
    e = verifier.challenge(rng)
    transcript.record("reader", "e", domain.order.bit_length())
    s = tag.respond(e)
    transcript.record("tag", "s", domain.order.bit_length())
    accepted = verifier.verify(commitment, e, s)
    tag.ops.tx_bits += transcript.bits_from("tag")
    tag.ops.rx_bits += transcript.bits_from("reader")
    return SchnorrSession(commitment, e, s, accepted, transcript, tag.ops)


def extract_public_key(domain: NamedCurve,
                       session: SchnorrSession) -> AffinePoint:
    """The tracking attack: X = e^{-1} * (s*P - R) from a transcript.

    Needs nothing but the public values an eavesdropper sees — the
    reason Schnorr identification offers no location privacy.
    """
    curve = domain.curve
    ring = domain.scalar_ring
    s_p = curve.multiply_naive(session.response, domain.generator)
    numerator = curve.subtract(s_p, session.commitment)
    e_inv = ring.inverse(session.challenge)
    return curve.multiply_naive(e_inv, numerator)
