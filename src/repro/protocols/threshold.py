"""Threshold cryptography for cooperating lightweight devices.

Section 4: "Other options are specific for the interaction of
light-weight internet-of-things devices and are based on threshold
cryptography [18]" (Simoens–Peeters–Preneel).  The idea: no single
body-area node holds the whole secret; any ``t`` of ``n`` nodes
cooperate to act as the key holder, and losing (or compromising) up to
``t - 1`` nodes reveals nothing.

Building blocks:

* :class:`ShamirSecretSharing` — (t, n) sharing of a scalar over the
  prime group order;
* :func:`threshold_point_multiply` — any qualified set computes
  ``x * P`` from shares *in the exponent* (each node contributes
  ``lambda_i * x_i * P``; the secret is never reassembled anywhere).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ec.curve import BinaryEllipticCurve
from ..ec.ladder import montgomery_ladder
from ..ec.modn import ScalarRing
from ..ec.point import AffinePoint

__all__ = ["Share", "ShamirSecretSharing", "threshold_point_multiply"]


@dataclass(frozen=True)
class Share:
    """One participant's share: the evaluation of the polynomial at x."""

    index: int
    value: int

    def __post_init__(self):
        if self.index < 1:
            raise ValueError("share indices start at 1 (0 is the secret)")


class ShamirSecretSharing:
    """(t, n) Shamir sharing over Z_n for a prime group order.

    Examples
    --------
    >>> import random
    >>> ring = ScalarRing(2**127 - 1)
    >>> sss = ShamirSecretSharing(ring, threshold=2, participants=3)
    >>> shares = sss.split(42, random.Random(0))
    >>> sss.reconstruct(shares[:2])
    42
    """

    def __init__(self, ring: ScalarRing, threshold: int, participants: int):
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if participants < threshold:
            raise ValueError("need at least `threshold` participants")
        if participants >= ring.n:
            raise ValueError("too many participants for the field")
        self.ring = ring
        self.threshold = threshold
        self.participants = participants

    def split(self, secret: int, rng) -> list:
        """Produce one share per participant."""
        ring = self.ring
        secret = ring.reduce(secret)
        coefficients = [secret] + [
            ring.random_scalar(rng) for __ in range(self.threshold - 1)
        ]
        shares = []
        for index in range(1, self.participants + 1):
            value = 0
            for power, coefficient in enumerate(coefficients):
                value = ring.add(value,
                                 ring.mul(coefficient,
                                          ring.pow(index, power)))
            shares.append(Share(index, value))
        return shares

    def lagrange_coefficient(self, index: int, indices: list) -> int:
        """lambda_i for interpolation at zero over the given index set."""
        ring = self.ring
        numerator, denominator = 1, 1
        for other in indices:
            if other == index:
                continue
            numerator = ring.mul(numerator, other)
            denominator = ring.mul(denominator, ring.sub(other, index))
        return ring.mul(numerator, ring.inverse(denominator))

    def reconstruct(self, shares: list) -> int:
        """Interpolate the secret from >= threshold distinct shares."""
        indices = [s.index for s in shares]
        if len(set(indices)) < self.threshold:
            raise ValueError("not enough distinct shares")
        ring = self.ring
        secret = 0
        for share in shares:
            lam = self.lagrange_coefficient(share.index, indices)
            secret = ring.add(secret, ring.mul(lam, share.value))
        return secret


def threshold_point_multiply(
    curve: BinaryEllipticCurve,
    sharing: ShamirSecretSharing,
    shares: list,
    point: AffinePoint,
    rng,
) -> AffinePoint:
    """Compute ``secret * P`` cooperatively from a qualified share set.

    Each participant computes its partial ``(lambda_i * x_i mod n) * P``
    with its *own* side-channel-hardened ladder; the combiner only adds
    points.  The secret scalar never exists in any single device.
    """
    indices = [s.index for s in shares]
    if len(set(indices)) < sharing.threshold:
        raise ValueError("not enough distinct shares")
    ring = sharing.ring
    result = AffinePoint.infinity()
    for share in shares:
        lam = sharing.lagrange_coefficient(share.index, indices)
        scaled = ring.mul(lam, share.value)
        if scaled == 0:
            continue
        partial = montgomery_ladder(curve, scaled, point, rng=rng)
        result = curve.add(result, partial)
    return result
