"""Symmetric key management: the cost the paper warns about.

Section 4: "Secret key algorithms have also the problem of key
distribution and management."  This module implements the standard
industrial mitigation and its limits, so the secret-key baseline is
evaluated with its real operational burden:

* **key diversification** — every device gets
  ``K_dev = CMAC(K_master, device_id)``; the server derives any
  device's key on the fly and a single stolen *device* only loses its
  own key;
* the residual single point of failure — a compromised *master* key
  reconstructs the whole fleet's keys — is made executable, because it
  is the argument for public-key enrollment (each device only ever
  holds its own private scalar).
"""

from __future__ import annotations

from ..primitives.mac import aes_cmac

__all__ = ["diversify_key", "KeyServer", "fleet_exposure"]


def diversify_key(master_key: bytes, device_id: bytes) -> bytes:
    """Derive a device's individual key from the master key."""
    if len(master_key) != 16:
        raise ValueError("master key must be 16 bytes")
    if not device_id:
        raise ValueError("device id must be non-empty")
    return aes_cmac(master_key, b"device-key" + device_id)


class KeyServer:
    """The back-end holding the master key of a device fleet.

    ``enrolled`` is a dict used as an *ordered set* (values are always
    ``None``): a plain ``set`` of byte strings iterates in an order
    that depends on ``PYTHONHASHSEED``, so anything walking the fleet
    (:func:`fleet_exposure`, audit listings) produced a different
    order per process.  Insertion order is the enrollment order — a
    stable, meaningful fact — and membership tests stay O(1).
    """

    def __init__(self, master_key: bytes):
        if len(master_key) != 16:
            raise ValueError("master key must be 16 bytes")
        self._master = master_key
        self.enrolled: dict = {}

    def enroll(self, device_id: bytes) -> bytes:
        """Provision a device: returns the key injected at manufacture."""
        key = diversify_key(self._master, device_id)
        self.enrolled[bytes(device_id)] = None
        return key

    def key_for(self, device_id: bytes) -> bytes:
        """Re-derive any enrolled device's key (no per-device storage)."""
        if bytes(device_id) not in self.enrolled:
            raise KeyError("unknown device")
        return diversify_key(self._master, device_id)


def fleet_exposure(server: KeyServer, compromised_master: bytes) -> dict:
    """What an attacker with a candidate master key can decrypt.

    Returns device_id -> recovered key for every enrolled device whose
    diversified key the candidate master reproduces — the whole fleet
    if the master is right, nothing otherwise.  This is the
    quantitative version of the paper's key-management warning.

    The report preserves enrollment order (``server.enrolled`` is an
    ordered set), so it is identical across processes and hash seeds.
    """
    exposure = {}
    for device_id in server.enrolled:
        candidate = diversify_key(compromised_master, device_id)
        if candidate == server.key_for(device_id):
            exposure[device_id] = candidate
    return exposure
