"""Symmetric (AES-based) mutual authentication — the secret-key baseline.

Section 4: "protocols based on secret key algorithms, like AES, are
often cheaper in computation cost but not necessarily in communication
cost", and they carry the key-distribution burden.  This module
implements the comparison protocol for the energy benches (E7):
challenge-response mutual authentication with AES-CMAC, honouring the
paper's ordering rule — *server authentication first*, so a failed or
fake server costs the implant one MAC check instead of a whole session
("the protocol session stops immediately on the device when the server
authentication fails").

After mutual authentication a session key is derived and patient data
flows encrypted (AES-CTR) and authenticated (AES-CMAC), covering the
confidentiality + data-authentication requirements of Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..primitives.aes import Aes128
from ..primitives.mac import aes_cmac, constant_time_equal
from .ops import OperationCount, Transcript

__all__ = ["SymmetricDevice", "SymmetricServer", "MutualAuthResult",
           "run_mutual_authentication", "AuthenticationError"]

NONCE_BYTES = 16
MAC_BYTES = 16


class AuthenticationError(Exception):
    """Raised when a party rejects its peer."""


def _cmac_blocks(message_len: int) -> int:
    """AES invocations of one CMAC over ``message_len`` bytes."""
    return max(1, (message_len + 15) // 16) + 1  # +1 for the subkey step


@dataclass
class MutualAuthResult:
    """Outcome of a mutual-authentication (+ optional data) session."""

    authenticated: bool
    aborted_early: bool
    transcript: Transcript
    device_ops: OperationCount
    server_ops: OperationCount
    payload_delivered: Optional[bytes] = None


class SymmetricDevice:
    """The implant: pre-shared key, minimal computation."""

    def __init__(self, key: bytes, device_id: bytes = b"dev"):
        if len(key) != 16:
            raise ValueError("pre-shared key must be 16 bytes")
        self._key = key
        self.device_id = device_id
        self.ops = OperationCount()
        self._nonce: Optional[bytes] = None
        self._session_key: Optional[bytes] = None

    def hello(self, rng) -> bytes:
        """Round 1: a fresh device nonce."""
        self._nonce = rng.randbytes(NONCE_BYTES)
        self.ops.random_bits += NONCE_BYTES * 8
        return self._nonce

    def verify_server(self, server_nonce: bytes, server_mac: bytes) -> bytes:
        """Round 2: check the server FIRST; abort cheaply on failure.

        Returns the device's own authentication MAC on success.
        """
        if self._nonce is None:
            raise RuntimeError("verify_server() before hello()")
        expected = aes_cmac(self._key, b"srv" + self._nonce + server_nonce)
        self.ops.aes_blocks += _cmac_blocks(3 + 2 * NONCE_BYTES)
        if not constant_time_equal(expected, server_mac):
            raise AuthenticationError("server authentication failed")
        response = aes_cmac(self._key, b"dev" + server_nonce + self._nonce)
        self.ops.aes_blocks += _cmac_blocks(3 + 2 * NONCE_BYTES)
        self._session_key = aes_cmac(self._key,
                                     b"key" + self._nonce + server_nonce)
        self.ops.aes_blocks += _cmac_blocks(3 + 2 * NONCE_BYTES)
        return response

    def send_telemetry(self, payload: bytes, rng) -> tuple:
        """Encrypt-then-MAC a data frame under the session key."""
        if self._session_key is None:
            raise RuntimeError("no session established")
        nonce = rng.randbytes(8)
        self.ops.random_bits += 64
        cipher = Aes128(self._session_key)
        ciphertext = cipher.ctr_encrypt(nonce, payload)
        self.ops.aes_blocks += (len(payload) + 15) // 16
        tag = aes_cmac(self._session_key, nonce + ciphertext)
        self.ops.aes_blocks += _cmac_blocks(8 + len(ciphertext))
        return nonce, ciphertext, tag


class SymmetricServer:
    """The energy-rich mini-server (phone / base station)."""

    def __init__(self, key: bytes):
        if len(key) != 16:
            raise ValueError("pre-shared key must be 16 bytes")
        self._key = key
        self.ops = OperationCount()
        self._device_nonce: Optional[bytes] = None
        self._nonce: Optional[bytes] = None
        self._session_key: Optional[bytes] = None

    def respond(self, device_nonce: bytes, rng,
                corrupt: bool = False) -> tuple:
        """Round 1 response: server nonce + server-authentication MAC.

        ``corrupt=True`` simulates an impersonator with a wrong key
        (for the early-abort energy experiment).
        """
        self._device_nonce = device_nonce
        self._nonce = rng.randbytes(NONCE_BYTES)
        self.ops.random_bits += NONCE_BYTES * 8
        key = bytes(16) if corrupt else self._key
        mac = aes_cmac(key, b"srv" + device_nonce + self._nonce)
        self.ops.aes_blocks += _cmac_blocks(3 + 2 * NONCE_BYTES)
        return self._nonce, mac

    def verify_device(self, device_mac: bytes) -> bool:
        """Round 2: authenticate the device and derive the session key."""
        if self._nonce is None or self._device_nonce is None:
            raise RuntimeError("verify_device() before respond()")
        expected = aes_cmac(self._key,
                            b"dev" + self._nonce + self._device_nonce)
        self.ops.aes_blocks += _cmac_blocks(3 + 2 * NONCE_BYTES)
        if not constant_time_equal(expected, device_mac):
            return False
        self._session_key = aes_cmac(self._key,
                                     b"key" + self._device_nonce + self._nonce)
        self.ops.aes_blocks += _cmac_blocks(3 + 2 * NONCE_BYTES)
        return True

    def receive_telemetry(self, nonce: bytes, ciphertext: bytes,
                          tag: bytes) -> bytes:
        """Verify-then-decrypt a data frame."""
        if self._session_key is None:
            raise RuntimeError("no session established")
        expected = aes_cmac(self._session_key, nonce + ciphertext)
        self.ops.aes_blocks += _cmac_blocks(8 + len(ciphertext))
        if not constant_time_equal(expected, tag):
            raise AuthenticationError("telemetry tag mismatch")
        cipher = Aes128(self._session_key)
        self.ops.aes_blocks += (len(ciphertext) + 15) // 16
        return cipher.ctr_encrypt(nonce, ciphertext)


def run_mutual_authentication(
    device: SymmetricDevice,
    server: SymmetricServer,
    rng,
    payload: Optional[bytes] = None,
    server_is_impostor: bool = False,
) -> MutualAuthResult:
    """Run the full session (optionally delivering one telemetry frame)."""
    transcript = Transcript()
    device_nonce = device.hello(rng)
    transcript.record("device", "Nd", NONCE_BYTES * 8)
    server_nonce, server_mac = server.respond(
        device_nonce, rng, corrupt=server_is_impostor
    )
    transcript.record("server", "Ns||MACs", (NONCE_BYTES + MAC_BYTES) * 8)
    try:
        device_mac = device.verify_server(server_nonce, server_mac)
    except AuthenticationError:
        _settle_bits(device, server, transcript)
        return MutualAuthResult(False, True, transcript, device.ops,
                                server.ops)
    transcript.record("device", "MACd", MAC_BYTES * 8)
    authenticated = server.verify_device(device_mac)
    delivered = None
    if authenticated and payload is not None:
        nonce, ciphertext, tag = device.send_telemetry(payload, rng)
        transcript.record("device", "frame",
                          (8 + len(ciphertext) + MAC_BYTES) * 8)
        delivered = server.receive_telemetry(nonce, ciphertext, tag)
    _settle_bits(device, server, transcript)
    return MutualAuthResult(authenticated, False, transcript, device.ops,
                            server.ops, delivered)


def _settle_bits(device: SymmetricDevice, server: SymmetricServer,
                 transcript: Transcript) -> None:
    device.ops.tx_bits += transcript.bits_from("device")
    device.ops.rx_bits += transcript.bits_from("server")
    server.ops.tx_bits += transcript.bits_from("server")
    server.ops.rx_bits += transcript.bits_from("device")
