"""The Peeters–Hermans private RFID identification protocol (Figure 2).

The paper's protocol-level exemplar [14]: an ECC-based identification
scheme achieving wide-forward-insider privacy.  Roles and flow, exactly
as in Figure 2:

* Tag state: secret ``x`` (its identity scalar) and the reader's
  public key ``Y = y * P``.
* Reader state: secret ``y`` and a database ``{X_i = x_i * P}``.

::

    Tag                              Reader
    r <-R Z*_l,  R = r*P   --R-->
                           <--e--   e <-R Z*_l
    d = xcoord(r*Y)
    s = d + x + e*r        --s-->   d' = xcoord(y*R)
                                    X' = s*P - d'*P - e*R  in DB?

The tag computes **two point multiplications and one modular
multiplication** (Section 4) — the workload the coprocessor exists to
run within the power budget.  The reader carries the heavy
verification, honouring the asymmetry rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..ec.curves import NamedCurve
from ..ec.ladder import montgomery_ladder
from ..ec.point import AffinePoint
from .database import InMemoryTagDatabase, TagDatabase
from .ops import OperationCount, Transcript

__all__ = ["PeetersHermansTag", "PeetersHermansReader", "IdentificationResult",
           "run_identification", "NonceConsumedError", "NoncePendingError"]


class NonceConsumedError(RuntimeError):
    """A second ``respond()`` under one commit.

    A naive retransmission layer that replays the challenge into the
    tag would make it emit a second ``s`` under the same ``r`` —
    two equations in the two unknowns ``(x, r)``, i.e. full key
    recovery.  The nonce is therefore hard single-use: retransmission
    recovery must start a fresh commit instead (see
    :mod:`repro.protocols.session`).
    """


class NoncePendingError(RuntimeError):
    """``commit()`` while an unconsumed nonce is live.

    Silently overwriting a pending ``r`` hides protocol-state bugs in
    retransmission layers; an epoch restart must discard the old nonce
    explicitly via :meth:`PeetersHermansTag.abort`.
    """


def _point_bits(domain: NamedCurve) -> int:
    """Wire size of a compressed point: x plus the y-select bit."""
    return domain.field.m + 1


def _scalar_bits(domain: NamedCurve) -> int:
    return domain.order.bit_length()


@dataclass
class IdentificationResult:
    """Outcome of one identification session."""

    accepted: bool
    identity: Optional[int]
    transcript: Transcript
    tag_ops: OperationCount
    reader_ops: OperationCount


class PeetersHermansTag:
    """The resource-constrained prover.

    ``multiplier(k, point, rng)`` performs the tag's point
    multiplications; it defaults to the randomized Montgomery ladder,
    and the examples swap in the coprocessor model to attach cycle and
    energy figures to each protocol run.
    """

    def __init__(self, domain: NamedCurve, secret_x: int,
                 reader_public: AffinePoint,
                 multiplier: Optional[Callable] = None):
        ring = domain.scalar_ring
        if not 1 <= secret_x < ring.n:
            raise ValueError("tag secret out of range")
        if not domain.curve.is_on_curve(reader_public):
            raise ValueError("reader public key not on the curve")
        self.domain = domain
        self._x = secret_x
        self.reader_public = reader_public
        self._multiplier = multiplier or (
            lambda k, point, rng: montgomery_ladder(domain.curve, k, point,
                                                    rng=rng)
        )
        self._r: Optional[int] = None
        self._responded = False
        self.ops = OperationCount()

    @property
    def identity_point(self) -> AffinePoint:
        """X = x * P, the entry the reader's database stores."""
        return self.domain.curve.multiply_naive(self._x, self.domain.generator)

    def commit(self, rng) -> AffinePoint:
        """Round 1: draw r and send R = r * P.

        Raises :class:`NoncePendingError` if a previous commit has not
        been consumed (``respond()``) or discarded (``abort()``).
        """
        if self._r is not None:
            raise NoncePendingError(
                "commit() with a pending nonce; abort() the old epoch first"
            )
        ring = self.domain.scalar_ring
        self._r = ring.random_scalar(rng)
        self._responded = False
        self.ops.random_bits += ring.n.bit_length()
        commitment = self._multiplier(self._r, self.domain.generator, rng)
        self.ops.point_multiplications += 1
        return commitment

    def abort(self) -> None:
        """Discard a pending nonce (epoch restart / session teardown)."""
        self._r = None

    def respond(self, challenge: int, rng) -> int:
        """Round 2: receive e, send s = d + x + e*r with d = xcoord(r*Y).

        The nonce is strictly single-use: a second ``respond()`` under
        the same commit raises :class:`NonceConsumedError` — ``s`` is
        never computed twice under one ``r``.
        """
        if self._r is None:
            if self._responded:
                raise NonceConsumedError(
                    "nonce already consumed: a retransmitted round must "
                    "use a fresh commit, never reuse r"
                )
            raise RuntimeError("respond() called before commit()")
        ring = self.domain.scalar_ring
        if not 1 <= challenge < ring.n:
            raise ValueError("challenge out of range")
        shared = self._multiplier(self._r, self.reader_public, rng)
        self.ops.point_multiplications += 1
        d = ring.reduce(shared.x)
        er = ring.mul(challenge, self._r)
        self.ops.modular_multiplications += 1
        s = ring.add(ring.add(d, self._x), er)
        self._r = None  # single-use nonce
        self._responded = True
        return s


class PeetersHermansReader:
    """The energy-rich verifier with the tag database.

    ``database`` is any :class:`~repro.protocols.database.TagDatabase`
    — the in-memory toy by default, or a fleet-scale backend such as
    the sharded enrollment store of :mod:`repro.server.enrollment`.
    The reader's verification arithmetic is identical either way; only
    the final ``X'`` lookup goes through the seam.
    """

    def __init__(self, domain: NamedCurve, secret_y: int,
                 database: Optional[TagDatabase] = None):
        ring = domain.scalar_ring
        if not 1 <= secret_y < ring.n:
            raise ValueError("reader secret out of range")
        self.domain = domain
        self._y = secret_y
        self.public = domain.curve.multiply_naive(secret_y, domain.generator)
        self.database: TagDatabase = (
            database if database is not None
            else InMemoryTagDatabase(domain.curve)
        )
        self.ops = OperationCount()

    def register(self, identity: int, tag_public: AffinePoint) -> None:
        """Enroll a tag's X = x * P."""
        if not self.domain.curve.is_on_curve(tag_public):
            raise ValueError("tag public key not on the curve")
        self.database.enroll(identity, tag_public)

    def challenge(self, rng) -> int:
        """Round 1 response: a fresh scalar challenge e."""
        ring = self.domain.scalar_ring
        e = ring.random_scalar(rng)
        self.ops.random_bits += ring.n.bit_length()
        return e

    def identify(self, commitment: AffinePoint, e: int, s: int) -> Optional[int]:
        """Round 2 verification: X' = s*P - d'*P - e*R, looked up in DB.

        Out-of-range scalars (``s`` or ``e`` outside ``[1, n)``) are
        rejected *before* any point arithmetic: silently reducing a
        wire value mod n would both waste three point multiplications
        on garbage and accept non-canonical encodings of a valid
        transcript (a replay-detection bypass).
        """
        curve = self.domain.curve
        ring = self.domain.scalar_ring
        if not 1 <= e < ring.n or not 1 <= s < ring.n:
            return None
        if not curve.is_on_curve(commitment) or commitment.is_infinity:
            return None
        shared = curve.multiply_naive(self._y, commitment)
        self.ops.point_multiplications += 1
        d = ring.reduce(shared.x)
        s_minus_d = ring.sub(s, d)
        term1 = curve.multiply_naive(s_minus_d, self.domain.generator)
        term2 = curve.multiply_naive(e, commitment)
        self.ops.point_multiplications += 2
        candidate = curve.subtract(term1, term2)
        self.ops.point_additions += 1
        if candidate.is_infinity:
            return None
        return self.database.lookup(candidate)


def run_identification(
    tag: PeetersHermansTag,
    reader: PeetersHermansReader,
    rng,
) -> IdentificationResult:
    """Execute one full identification session, with accounting."""
    domain = tag.domain
    transcript = Transcript()
    tag_tx_before = tag.ops.tx_bits

    commitment = tag.commit(rng)
    transcript.record("tag", "R", _point_bits(domain))
    e = reader.challenge(rng)
    transcript.record("reader", "e", _scalar_bits(domain))
    s = tag.respond(e, rng)
    transcript.record("tag", "s", _scalar_bits(domain))
    identity = reader.identify(commitment, e, s)

    tag.ops.tx_bits = tag_tx_before + transcript.bits_from("tag")
    tag.ops.rx_bits += transcript.bits_from("reader")
    reader.ops.tx_bits += transcript.bits_from("reader")
    reader.ops.rx_bits += transcript.bits_from("tag")
    return IdentificationResult(
        accepted=identity is not None,
        identity=identity,
        transcript=transcript,
        tag_ops=tag.ops,
        reader_ops=reader.ops,
    )
