"""The protocol level of the security pyramid.

Peeters–Hermans private identification (Figure 2), the traceable
Schnorr baseline, AES-based symmetric mutual authentication with
server-auth-first early abort, the location-privacy linkage game and
per-party operation/communication accounting.
"""

from .mutual_auth import (
    AuthenticationError,
    MutualAuthResult,
    SymmetricDevice,
    SymmetricServer,
    run_mutual_authentication,
)
from .ops import Message, OperationCount, Transcript
from .peeters_hermans import (
    IdentificationResult,
    PeetersHermansReader,
    PeetersHermansTag,
    run_identification,
)
from .privacy import (
    LinkageGameResult,
    peeters_hermans_linkage_game,
    schnorr_linkage_game,
)
from .key_management import KeyServer, diversify_key, fleet_exposure
from .threshold import (
    Share,
    ShamirSecretSharing,
    threshold_point_multiply,
)
from .schnorr import (
    SchnorrSession,
    SchnorrTag,
    SchnorrVerifier,
    extract_public_key,
    run_schnorr_identification,
)

__all__ = [
    "OperationCount",
    "Transcript",
    "Message",
    "PeetersHermansTag",
    "PeetersHermansReader",
    "IdentificationResult",
    "run_identification",
    "SchnorrTag",
    "Share",
    "KeyServer",
    "diversify_key",
    "fleet_exposure",
    "ShamirSecretSharing",
    "threshold_point_multiply",
    "SchnorrVerifier",
    "SchnorrSession",
    "run_schnorr_identification",
    "extract_public_key",
    "SymmetricDevice",
    "SymmetricServer",
    "MutualAuthResult",
    "AuthenticationError",
    "run_mutual_authentication",
    "LinkageGameResult",
    "schnorr_linkage_game",
    "peeters_hermans_linkage_game",
]
