"""The protocol level of the security pyramid.

Peeters–Hermans private identification (Figure 2), the traceable
Schnorr baseline, AES-based symmetric mutual authentication with
server-auth-first early abort, the location-privacy linkage game and
per-party operation/communication accounting.
"""

from .mutual_auth import (
    AuthenticationError,
    MutualAuthResult,
    SymmetricDevice,
    SymmetricServer,
    run_mutual_authentication,
)
from .database import InMemoryTagDatabase, TagDatabase
from .ops import Message, OperationCount, Transcript
from .peeters_hermans import (
    IdentificationResult,
    NonceConsumedError,
    NoncePendingError,
    PeetersHermansReader,
    PeetersHermansTag,
    run_identification,
)
from .amortized import (
    AmortizedPoint,
    AmortizedRecord,
    AmortizedReport,
    AmortizedSpec,
    derive_session_key,
    run_amortized_session,
    run_amortized_soak,
)
from .fleet import FleetReport, FleetSpec, SweepPoint, run_fleet
from .session import (
    PayloadRejectedError,
    PeerRejectedError,
    ReplayedFrameError,
    RetransmissionPolicy,
    SessionError,
    SessionResult,
    StaleFrameError,
    make_adapter,
    run_resilient_session,
)
from .privacy import (
    LinkageGameResult,
    peeters_hermans_linkage_game,
    schnorr_linkage_game,
)
from .key_management import KeyServer, diversify_key, fleet_exposure
from .threshold import (
    Share,
    ShamirSecretSharing,
    threshold_point_multiply,
)
from .schnorr import (
    SchnorrSession,
    SchnorrTag,
    SchnorrVerifier,
    extract_public_key,
    run_schnorr_identification,
)

__all__ = [
    "OperationCount",
    "Transcript",
    "Message",
    "TagDatabase",
    "InMemoryTagDatabase",
    "PeetersHermansTag",
    "PeetersHermansReader",
    "IdentificationResult",
    "run_identification",
    "SchnorrTag",
    "Share",
    "KeyServer",
    "diversify_key",
    "fleet_exposure",
    "ShamirSecretSharing",
    "threshold_point_multiply",
    "SchnorrVerifier",
    "SchnorrSession",
    "run_schnorr_identification",
    "extract_public_key",
    "SymmetricDevice",
    "SymmetricServer",
    "MutualAuthResult",
    "AuthenticationError",
    "run_mutual_authentication",
    "LinkageGameResult",
    "schnorr_linkage_game",
    "peeters_hermans_linkage_game",
    "NonceConsumedError",
    "NoncePendingError",
    "SessionError",
    "StaleFrameError",
    "ReplayedFrameError",
    "PayloadRejectedError",
    "PeerRejectedError",
    "RetransmissionPolicy",
    "SessionResult",
    "run_resilient_session",
    "make_adapter",
    "FleetSpec",
    "SweepPoint",
    "FleetReport",
    "run_fleet",
    "AmortizedSpec",
    "AmortizedRecord",
    "AmortizedPoint",
    "AmortizedReport",
    "run_amortized_session",
    "run_amortized_soak",
    "derive_session_key",
]
