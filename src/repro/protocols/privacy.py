"""The location-privacy (tracking) game.

Section 2/4: "wireless tags ... can also be used to track patients and
therefore location privacy is an important concern", and Vaudenay [20]
showed strong privacy needs public-key crypto — but not every PKC
protocol delivers it.

The game formalizes tracking as transcript linkage: the adversary
watches two tags run many sessions and must tell which transcripts
belong to the same tag.

* Against **Schnorr**, the adversary wins outright: each transcript
  algebraically reveals the tag's public key
  (:func:`~repro.protocols.schnorr.extract_public_key`).
* Against **Peeters–Hermans**, transcripts are fresh randomized points
  and scalars; without the reader's secret ``y`` the linkage
  distinguisher degrades to coin flipping.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ec.curves import NamedCurve
from .peeters_hermans import PeetersHermansReader, PeetersHermansTag
from .schnorr import SchnorrSession, SchnorrTag, SchnorrVerifier, \
    extract_public_key, run_schnorr_identification

__all__ = ["LinkageGameResult", "schnorr_linkage_game",
           "peeters_hermans_linkage_game"]


@dataclass(frozen=True)
class LinkageGameResult:
    """Outcome of a tracking experiment.

    ``advantage`` is |accuracy - 1/2| * 2 in [0, 1]: 1 means perfect
    tracking, ~0 means the protocol hides the tag.
    """

    trials: int
    correct: int

    @property
    def accuracy(self) -> float:
        """Fraction of correct linkage guesses."""
        return self.correct / self.trials

    @property
    def advantage(self) -> float:
        """Distinguishing advantage over random guessing."""
        return abs(2.0 * self.accuracy - 1.0)


def schnorr_linkage_game(domain: NamedCurve, rng,
                         trials: int = 40) -> LinkageGameResult:
    """Track Schnorr tags by extracting public keys from transcripts.

    Each trial: two known tags each produce a reference session; a
    challenge session is produced by one of them (coin flip); the
    adversary links by comparing extracted public keys.
    """
    ring = domain.scalar_ring
    tag_a = SchnorrTag(domain, ring.random_scalar(rng))
    tag_b = SchnorrTag(domain, ring.random_scalar(rng))
    verifier_a = SchnorrVerifier(domain, tag_a.public)
    verifier_b = SchnorrVerifier(domain, tag_b.public)

    def session(tag, verifier) -> SchnorrSession:
        return run_schnorr_identification(tag, verifier, rng)

    correct = 0
    for _ in range(trials):
        reference = extract_public_key(domain, session(tag_a, verifier_a))
        coin = rng.getrandbits(1)
        challenge = session(tag_a, verifier_a) if coin else session(
            tag_b, verifier_b
        )
        guess = 1 if extract_public_key(domain, challenge) == reference else 0
        if guess == coin:
            correct += 1
    return LinkageGameResult(trials, correct)


def peeters_hermans_linkage_game(domain: NamedCurve, rng,
                                 trials: int = 40) -> LinkageGameResult:
    """Attempt the same tracking strategy against Peeters–Hermans.

    The best transcript-only strategy analogous to the Schnorr attack
    is to compute the would-be identity point s*P - e*R and compare —
    but without ``d`` (which requires the reader secret ``y``) the
    result is blinded by the random d*P term, so the comparison is
    noise and the advantage collapses.
    """
    ring = domain.scalar_ring
    curve = domain.curve
    reader = PeetersHermansReader(domain, ring.random_scalar(rng))
    tag_a = PeetersHermansTag(domain, ring.random_scalar(rng), reader.public)
    tag_b = PeetersHermansTag(domain, ring.random_scalar(rng), reader.public)
    reader.register(0, tag_a.identity_point)
    reader.register(1, tag_b.identity_point)

    correct = 0
    for _ in range(trials):
        # Observe one session of each tag, then a challenge session.
        coin = rng.getrandbits(1)
        challenge_tag = tag_a if coin == 0 else tag_b
        # Eavesdrop actual protocol values.
        r_a = tag_a.commit(rng)
        e_a = reader.challenge(rng)
        s_a = tag_a.respond(e_a, rng)
        r_c = challenge_tag.commit(rng)
        e_c = reader.challenge(rng)
        s_c = challenge_tag.respond(e_c, rng)
        # Linkage feature: s*P - e*R = (d + x)*P, blinded by fresh d.
        feature_a = curve.subtract(
            curve.multiply_naive(s_a, domain.generator),
            curve.multiply_naive(e_a, r_a),
        )
        feature_c = curve.subtract(
            curve.multiply_naive(s_c, domain.generator),
            curve.multiply_naive(e_c, r_c),
        )
        guess = 0 if feature_a == feature_c else rng.getrandbits(1)
        if guess == coin:
            correct += 1
    return LinkageGameResult(trials, correct)
