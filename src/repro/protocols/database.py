"""The reader's tag database behind a small protocol.

Figure 2's reader holds "a database ``{X_i = x_i * P}``" and the
private-identification search ends with a lookup of the recomputed
``X'`` in it.  The original :class:`PeetersHermansReader` hard-wired
that database as a dict keyed on raw ``(x, y)`` coordinate tuples,
which made the toy in-memory reader and any production-scale store
structurally incompatible.

:class:`TagDatabase` is the seam: ``enroll`` / ``lookup`` / ``len``.
The in-memory toy (:class:`InMemoryTagDatabase`) keeps the historical
behavior bit-for-bit; the fleet-scale sharded store
(:class:`repro.server.enrollment.ShardedTagDatabase`) implements the
same three methods over digest-verified shard files, so the resilient
session layer and the reader/server terminate sessions against either
without knowing which.
"""

from __future__ import annotations

from typing import Optional

from ..ec.point import AffinePoint

__all__ = ["TagDatabase", "InMemoryTagDatabase"]


class TagDatabase:
    """What the Peeters–Hermans reader needs from its tag database.

    Implementations map identity points ``X = x * P`` to integer tag
    identities.  ``lookup`` must return the *canonical* identity when
    several enrollments share a point (possible on toy curves, where
    the fleet can outnumber the subgroup), and ``None`` when the point
    is unknown — the "tag not in the database" path of
    :mod:`repro.protocols.session`.
    """

    def enroll(self, identity: int, point: AffinePoint) -> None:
        raise NotImplementedError

    def lookup(self, point: AffinePoint) -> Optional[int]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class InMemoryTagDatabase(TagDatabase):
    """The toy backend: a dict keyed on the point's coordinates.

    Enrollment order is insertion order (a plain dict), and the first
    enrollment of a point wins — re-enrolling the same point under a
    new identity keeps the canonical (earliest) identity, matching the
    sharded store's scan-order semantics.
    """

    def __init__(self, curve=None):
        self._curve = curve
        self._entries: dict = {}

    def enroll(self, identity: int, point: AffinePoint) -> None:
        if point.is_infinity:
            raise ValueError("cannot enroll the point at infinity")
        if self._curve is not None and not self._curve.is_on_curve(point):
            raise ValueError("tag public key not on the curve")
        self._entries.setdefault((point.x, point.y), identity)

    def lookup(self, point: AffinePoint) -> Optional[int]:
        if point.is_infinity:
            return None
        return self._entries.get((point.x, point.y))

    def __len__(self) -> int:
        return len(self._entries)
