"""Resilient protocol sessions over the lossy body-area channel.

The paper's Figure 2 flow assumes three messages that simply arrive.
Over a real around-the-body link they do not, and — because "wireless
communication is power-hungry" — every loss is ultimately an *energy*
event for the implant.  This module runs the repo's three-message
protocols (Peeters–Hermans, Schnorr, AES mutual authentication) as
explicit per-role state machines over :mod:`repro.channel`, with:

* per-round deadlines and bounded retransmission with capped,
  seeded-jitter backoff (the taxonomy style of
  :mod:`repro.campaign.errors`: every discarded frame is classified —
  corrupt, stale, replayed or semantically rejected — and counted);
* a strict nonce lifecycle: a retransmitted round never reuses the
  tag's ``r``.  Losing the challenge or the response aborts the
  *epoch* and restarts the protocol with a fresh commit; the response
  ``s`` is emitted at most once per ``r`` (a second
  :meth:`~repro.protocols.peeters_hermans.PeetersHermansTag.respond`
  raises :class:`~repro.protocols.peeters_hermans.NonceConsumedError`);
* graceful abort: when the retry budget is exhausted the session
  reports how far it got (phase, rounds completed, epochs consumed)
  instead of raising;
* full energy accounting: every transmitted bit — headers, CRCs and
  retries included — lands in the per-role
  :class:`~repro.protocols.ops.OperationCount` and is converted to
  joules through the :class:`~repro.energy.radio.RadioModel`, so
  reliability degradation shows up as µJ.

The simulation is event-driven over a virtual clock and fully
deterministic: identical ``(seed, loss profile)`` yield byte-identical
transcripts, retry counts and energy totals.
"""

from __future__ import annotations

import hashlib
import heapq
import random
from dataclasses import dataclass, field as dataclass_field
from typing import List, Optional, Tuple

from ..obs import runtime as _obs_runtime

from ..channel import (
    BodyAreaChannel,
    ChannelStats,
    Frame,
    FrameError,
    FrameCorruptedError,
    LossProfile,
    compress_point,
    decode_frame,
    decompress_point,
    derive_channel_seed,
    encode_frame,
    int_from_bytes,
    int_to_bytes,
    point_width_bytes,
    scalar_width_bytes,
)
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # lazy at runtime: repro.energy.comparison imports
    # repro.protocols.ops, so a top-level import here would be a cycle
    from ..energy.comparison import ComputeEnergyTable, ProtocolEnergy
    from ..energy.radio import RadioModel
from .mutual_auth import (
    AuthenticationError,
    MAC_BYTES,
    NONCE_BYTES,
    SymmetricDevice,
    SymmetricServer,
)
from .ops import OperationCount
from .peeters_hermans import PeetersHermansReader, PeetersHermansTag
from .schnorr import SchnorrTag, SchnorrVerifier

__all__ = ["SessionError", "StaleFrameError", "ReplayedFrameError",
           "PayloadRejectedError", "PeerRejectedError",
           "RetransmissionPolicy", "SessionResult",
           "PeetersHermansAdapter", "SchnorrAdapter", "MutualAuthAdapter",
           "run_resilient_session", "PROTOCOL_NAMES", "make_adapter"]

_INITIATOR, _RESPONDER = 0, 1


# ----------------------------------------------------------------------
# typed failures (counted per session, campaign.errors style)
# ----------------------------------------------------------------------

class SessionError(RuntimeError):
    """A session-layer failure with frame identity attached.

    Mirrors :class:`~repro.campaign.errors.CampaignError`: the epoch
    and round ride along so a log line is self-contained.
    """

    def __init__(self, message: str, *, epoch: Optional[int] = None,
                 round_index: Optional[int] = None):
        context = []
        if epoch is not None:
            context.append(f"epoch {epoch}")
        if round_index is not None:
            context.append(f"round {round_index}")
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)
        self.epoch = epoch
        self.round_index = round_index


class StaleFrameError(SessionError):
    """A frame from a superseded epoch or an already-passed round."""


class ReplayedFrameError(SessionError):
    """A frame this endpoint already consumed (duplicate or replay)."""


class PayloadRejectedError(SessionError):
    """A CRC-valid frame whose payload fails protocol validation
    (off-curve point, out-of-range scalar, wrong width)."""


class PeerRejectedError(SessionError):
    """The peer failed authentication (e.g. the server MAC check);
    the session *completes* unaccepted rather than retrying."""


# ----------------------------------------------------------------------
# retransmission policy
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class RetransmissionPolicy:
    """Deadlines, retry budgets and seeded backoff.

    Attributes
    ----------
    round_deadline_s:
        How long a role waits for the frame it expects before acting.
    max_frame_attempts:
        Emissions of the responder's challenge per epoch (the only
        frame that is ever re-sent verbatim — re-sending it is safe
        because it is bound to one commit).
    max_epochs:
        Full protocol restarts (each with fresh nonces) before the
        session aborts.
    backoff_base_s / backoff_cap_s:
        Capped exponential backoff between epochs, with jitter seeded
        per ``(seed, session, epoch)`` so concurrent sessions do not
        retry in lockstep.
    frame_backoff_base_s:
        Linear backoff between challenge retransmissions.
    """

    round_deadline_s: float = 0.08
    max_frame_attempts: int = 3
    max_epochs: int = 10
    backoff_base_s: float = 0.02
    backoff_cap_s: float = 0.5
    frame_backoff_base_s: float = 0.01

    def __post_init__(self):
        if self.round_deadline_s <= 0:
            raise ValueError("round deadline must be positive")
        if self.max_frame_attempts < 1:
            raise ValueError("need at least one frame attempt")
        if not 1 <= self.max_epochs <= 255:
            raise ValueError("max_epochs must be in [1, 255] "
                             "(the frame header epoch is one byte)")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff must be non-negative")

    def epoch_backoff(self, seed: int, session: int, epoch: int) -> float:
        """Delay before starting ``epoch`` (capped exponential + jitter)."""
        raw = min(self.backoff_cap_s, self.backoff_base_s * (2 ** epoch))
        unit = derive_channel_seed(seed, "backoff/epoch", session,
                                   epoch, 0) / 2.0 ** 64
        return raw * (0.5 + 0.5 * unit)

    def frame_backoff(self, seed: int, session: int, epoch: int,
                      attempt: int) -> float:
        """Delay before retransmitting the challenge."""
        unit = derive_channel_seed(seed, "backoff/frame", session,
                                   epoch, attempt) / 2.0 ** 64
        return self.frame_backoff_base_s * attempt * (0.5 + 0.5 * unit)


# ----------------------------------------------------------------------
# protocol adapters: the three-message pattern
# ----------------------------------------------------------------------

class ThreeRoundAdapter:
    """Base for the initiator-m0 / responder-m1 / initiator-m2 shape.

    Subclasses provide the cryptography; the session engine provides
    loss tolerance.  ``make_m2`` is guaranteed to be called at most
    once per epoch — the engine starts a fresh epoch (fresh nonces via
    :meth:`reset_epoch`) rather than ever re-deriving a response.
    """

    name: str = "abstract"
    roles: Tuple[str, str] = ("initiator", "responder")
    labels: Tuple[str, str, str] = ("m0", "m1", "m2")

    def reset_epoch(self) -> None:
        """Discard initiator nonce state before a fresh commit."""

    def make_m0(self, rng) -> bytes:
        raise NotImplementedError

    def handle_m0(self, payload: bytes, rng) -> bytes:
        """Responder: consume the commit, return the challenge."""
        raise NotImplementedError

    def make_m2(self, payload: bytes, rng) -> bytes:
        """Initiator: consume the challenge, return the response."""
        raise NotImplementedError

    def conclude(self, payload: bytes) -> Tuple[bool, Optional[int], str]:
        """Responder: consume the response; (accepted, identity, detail)."""
        raise NotImplementedError

    def initiator_ops(self) -> OperationCount:
        raise NotImplementedError

    def responder_ops(self) -> OperationCount:
        raise NotImplementedError


class PeetersHermansAdapter(ThreeRoundAdapter):
    """Figure 2 identification between live tag and reader objects."""

    name = "peeters-hermans"
    roles = ("tag", "reader")
    labels = ("R", "e", "s")

    def __init__(self, domain, tag: PeetersHermansTag,
                 reader: PeetersHermansReader):
        self.domain = domain
        self.tag = tag
        self.reader = reader
        self._scalar_width = scalar_width_bytes(domain.order)
        self._point_width = point_width_bytes(domain.field.m)
        self._commitment = None
        self._challenge: Optional[int] = None

    def reset_epoch(self) -> None:
        self.tag.abort()

    def make_m0(self, rng) -> bytes:
        return compress_point(self.domain.curve, self.tag.commit(rng))

    def handle_m0(self, payload: bytes, rng) -> bytes:
        try:
            self._commitment = decompress_point(self.domain.curve, payload)
        except FrameError as exc:
            raise PayloadRejectedError(str(exc)) from None
        self._challenge = self.reader.challenge(rng)
        return int_to_bytes(self._challenge, self._scalar_width)

    def make_m2(self, payload: bytes, rng) -> bytes:
        if len(payload) != self._scalar_width:
            raise PayloadRejectedError("challenge has the wrong width")
        try:
            s = self.tag.respond(int_from_bytes(payload), rng)
        except ValueError as exc:  # out-of-range challenge
            raise PayloadRejectedError(str(exc)) from None
        return int_to_bytes(s, self._scalar_width)

    def conclude(self, payload: bytes) -> Tuple[bool, Optional[int], str]:
        if len(payload) != self._scalar_width:
            raise PayloadRejectedError("response has the wrong width")
        identity = self.reader.identify(self._commitment, self._challenge,
                                        int_from_bytes(payload))
        if identity is None:
            return False, None, "tag not in the database"
        return True, identity, f"identified tag {identity}"

    def initiator_ops(self) -> OperationCount:
        return self.tag.ops

    def responder_ops(self) -> OperationCount:
        return self.reader.ops


class SchnorrAdapter(ThreeRoundAdapter):
    """The traceable baseline under the same loss tolerance."""

    name = "schnorr"
    roles = ("tag", "verifier")
    labels = ("R", "e", "s")

    def __init__(self, domain, tag: SchnorrTag, verifier: SchnorrVerifier):
        self.domain = domain
        self.tag = tag
        self.verifier = verifier
        self._scalar_width = scalar_width_bytes(domain.order)
        self._commitment = None
        self._challenge: Optional[int] = None

    def reset_epoch(self) -> None:
        self.tag.abort()

    def make_m0(self, rng) -> bytes:
        return compress_point(self.domain.curve, self.tag.commit(rng))

    def handle_m0(self, payload: bytes, rng) -> bytes:
        try:
            self._commitment = decompress_point(self.domain.curve, payload)
        except FrameError as exc:
            raise PayloadRejectedError(str(exc)) from None
        self._challenge = self.verifier.challenge(rng)
        return int_to_bytes(self._challenge, self._scalar_width)

    def make_m2(self, payload: bytes, rng) -> bytes:
        if len(payload) != self._scalar_width:
            raise PayloadRejectedError("challenge has the wrong width")
        return int_to_bytes(self.tag.respond(int_from_bytes(payload)),
                            self._scalar_width)

    def conclude(self, payload: bytes) -> Tuple[bool, Optional[int], str]:
        if len(payload) != self._scalar_width:
            raise PayloadRejectedError("response has the wrong width")
        ok = self.verifier.verify(self._commitment, self._challenge,
                                  int_from_bytes(payload))
        return ok, None, "verified" if ok else "verification failed"

    def initiator_ops(self) -> OperationCount:
        return self.tag.ops

    def responder_ops(self) -> OperationCount:
        return self.verifier.ops


class MutualAuthAdapter(ThreeRoundAdapter):
    """AES mutual authentication, server-auth-first, over the channel."""

    name = "mutual-auth"
    roles = ("device", "server")
    labels = ("Nd", "Ns||MACs", "MACd")

    def __init__(self, device: SymmetricDevice, server: SymmetricServer,
                 server_is_impostor: bool = False):
        self.device = device
        self.server = server
        self.server_is_impostor = server_is_impostor

    def make_m0(self, rng) -> bytes:
        return self.device.hello(rng)

    def handle_m0(self, payload: bytes, rng) -> bytes:
        if len(payload) != NONCE_BYTES:
            raise PayloadRejectedError("device nonce has the wrong width")
        nonce, mac = self.server.respond(payload, rng,
                                         corrupt=self.server_is_impostor)
        return nonce + mac

    def make_m2(self, payload: bytes, rng) -> bytes:
        if len(payload) != NONCE_BYTES + MAC_BYTES:
            raise PayloadRejectedError("server reply has the wrong width")
        try:
            return self.device.verify_server(payload[:NONCE_BYTES],
                                             payload[NONCE_BYTES:])
        except AuthenticationError as exc:
            # Server-auth-first: a failed server costs one MAC check and
            # the session stops — this is a *conclusion*, not a retry.
            raise PeerRejectedError(str(exc)) from None

    def conclude(self, payload: bytes) -> Tuple[bool, Optional[int], str]:
        if len(payload) != MAC_BYTES:
            raise PayloadRejectedError("device MAC has the wrong width")
        ok = self.server.verify_device(payload)
        return ok, None, ("device authenticated" if ok
                          else "device MAC rejected")

    def initiator_ops(self) -> OperationCount:
        return self.device.ops

    def responder_ops(self) -> OperationCount:
        return self.server.ops


# ----------------------------------------------------------------------
# session result
# ----------------------------------------------------------------------

@dataclass
class SessionResult:
    """Outcome and full accounting of one resilient session."""

    protocol: str
    session_index: int
    seed: int
    completed: bool
    accepted: bool
    identity: Optional[int]
    detail: str
    aborted_phase: Optional[str]
    rounds_completed: int
    epochs_used: int
    frames_sent: int
    retransmissions: int
    corrupt_rejections: int
    stale_rejections: int
    replay_rejections: int
    payload_rejections: int
    elapsed_s: float
    initiator_ops: OperationCount
    responder_ops: OperationCount
    channel_stats: ChannelStats
    transcript_digest: str
    initiator_energy: ProtocolEnergy
    responder_energy: ProtocolEnergy
    events: List[str] = dataclass_field(default_factory=list)

    @property
    def eventual_success(self) -> bool:
        """The availability metric: did identification ever complete?"""
        return self.completed and self.accepted

    def summary(self) -> str:
        state = ("ACCEPTED" if self.accepted else "REJECTED") \
            if self.completed else f"ABORTED at {self.aborted_phase}"
        return (
            f"{self.protocol} session {self.session_index}: {state} "
            f"after {self.epochs_used} epoch(s), "
            f"{self.frames_sent} frames "
            f"({self.retransmissions} beyond the loss-free 3), "
            f"{self.elapsed_s * 1000:.1f} ms virtual time; "
            f"initiator {self.initiator_energy.total_j * 1e6:.2f} uJ"
        )


# ----------------------------------------------------------------------
# the engine
# ----------------------------------------------------------------------

_PHASES = {
    "await-m1": "awaiting challenge",
    "closing": "response sent, awaiting conclusion",
}


class _SessionEngine:
    """Event-driven simulation of two endpoints over one channel."""

    def __init__(self, adapter: ThreeRoundAdapter, channel: BodyAreaChannel,
                 policy: RetransmissionPolicy, seed: int,
                 session_index: int):
        self.adapter = adapter
        self.channel = channel
        self.policy = policy
        self.seed = seed
        self.session_index = session_index
        self.session_id = derive_channel_seed(seed, "session-id",
                                              session_index, 0, 0) \
            & 0xFFFFFFFF
        self.rng_init = random.Random(derive_channel_seed(
            seed, "role/initiator", session_index, 0, 0))
        self.rng_resp = random.Random(derive_channel_seed(
            seed, "role/responder", session_index, 0, 0))

        self.now = 0.0
        self._queue: list = []
        self._seq = 0
        self._timer_seq = [0, 0]

        # initiator state
        self.init_state = "await-m1"
        self.epoch = -1
        self.consumed_m1_attempt: Optional[int] = None
        # responder state
        self.resp_state = "await-m0"
        self.resp_epoch = -1
        self.m1_bytes: Optional[bytes] = None
        self.m1_attempt = 0

        # bookkeeping
        self.frames_sent = 0
        self.corrupt = 0
        self.stale = 0
        self.replayed = 0
        self.payload_rejected = 0
        self.rounds_completed = 0
        self.concluded: Optional[Tuple[bool, Optional[int], str]] = None
        self.peer_rejected: Optional[str] = None
        self.aborted_phase: Optional[str] = None
        self.log: List[str] = []

    # -- helpers -------------------------------------------------------

    def _push(self, at: float, kind: str, *args) -> None:
        self._seq += 1
        heapq.heappush(self._queue, (at, self._seq, kind, args))

    def _arm_timer(self, role: int, at: float) -> None:
        self._timer_seq[role] += 1
        self._push(at, "timer", role, self._timer_seq[role])

    def _note(self, text: str) -> None:
        self.log.append(f"{self.now * 1000:9.3f}ms {text}")

    def _send(self, sender: int, round_index: int, attempt: int,
              label: str, payload: bytes) -> None:
        # round 1 is bound to the epoch the responder is serving
        epoch = self.epoch if sender == _INITIATOR else self.resp_epoch
        frame = Frame(self.session_id, epoch, round_index, attempt,
                      sender, label, payload)
        data = encode_frame(frame)
        ops = self.adapter.initiator_ops() if sender == _INITIATOR \
            else self.adapter.responder_ops()
        ops.tx_bits += len(data) * 8
        self.frames_sent += 1
        frame_id = epoch * 3 + round_index
        deliveries = self.channel.transmit(data, frame_id, attempt,
                                           self.now)
        receiver = _RESPONDER if sender == _INITIATOR else _INITIATOR
        self._note(f"tx {self.adapter.roles[sender]} {label} "
                   f"epoch={epoch} attempt={attempt} "
                   f"bytes={len(data)} -> {len(deliveries)} copies")
        for delivery in deliveries:
            self._push(delivery.at, "deliver", receiver, delivery.data)

    # -- initiator -----------------------------------------------------

    def _start_epoch(self) -> None:
        if self.epoch + 1 >= self.policy.max_epochs:
            self.aborted_phase = _PHASES.get(self.init_state,
                                             self.init_state)
            self._note(f"abort: epoch budget exhausted in "
                       f"{self.init_state}")
            return
        if self.epoch >= 0:
            self.adapter.reset_epoch()
        self.epoch += 1
        self.consumed_m1_attempt = None
        self.init_state = "await-m1"
        payload = self.adapter.make_m0(self.rng_init)
        self._send(_INITIATOR, 0, 0, self.adapter.labels[0], payload)
        self._arm_timer(_INITIATOR, self.now + self.policy.round_deadline_s)

    def _restart_epoch(self, reason: str) -> None:
        self._note(f"epoch {self.epoch} failed ({reason})")
        delay = self.policy.epoch_backoff(self.seed, self.session_index,
                                          self.epoch + 1)
        self.init_state = "backoff"
        self._push(self.now + delay, "epoch")

    def _initiator_frame(self, frame: Frame) -> None:
        if frame.round_index != 1:
            self.stale += 1
            self._note(f"rx tag: {StaleFrameError('unexpected round', epoch=frame.epoch, round_index=frame.round_index)}")
            return
        if frame.epoch != self.epoch:
            self.stale += 1
            self._note(f"rx tag: {StaleFrameError('challenge for a superseded epoch', epoch=frame.epoch, round_index=1)}")
            return
        if self.init_state == "await-m1":
            try:
                response = self.adapter.make_m2(frame.payload,
                                                self.rng_init)
            except PayloadRejectedError as exc:
                self.payload_rejected += 1
                self._note(f"rx tag: {exc}")
                return
            except PeerRejectedError as exc:
                # Conclusion by early abort (mutual auth, server first).
                self.peer_rejected = str(exc)
                self.rounds_completed = max(self.rounds_completed, 2)
                self._note(f"peer rejected: {exc}")
                return
            self.consumed_m1_attempt = frame.attempt
            self.rounds_completed = max(self.rounds_completed, 2)
            self._send(_INITIATOR, 2, 0, self.adapter.labels[2], response)
            self.init_state = "closing"
            self._arm_timer(_INITIATOR,
                            self.now + self.policy.round_deadline_s)
        elif self.init_state == "closing":
            if frame.attempt > (self.consumed_m1_attempt or 0):
                # A *retransmitted* challenge means the responder never
                # saw our response; the nonce is spent, so the only
                # safe recovery is a fresh epoch.
                self.replayed += 1
                self._note(
                    f"rx tag: {ReplayedFrameError('retransmitted challenge after response; response frame presumed lost', epoch=frame.epoch, round_index=1)}"
                )
                self._restart_epoch("response presumed lost")
            else:
                self.replayed += 1
                self._note(f"rx tag: {ReplayedFrameError('duplicate challenge', epoch=frame.epoch, round_index=1)}")

    def _initiator_timeout(self) -> None:
        if self.init_state in ("await-m1", "closing"):
            self._restart_epoch(f"deadline expired in {self.init_state}")

    # -- responder -----------------------------------------------------

    def _responder_frame(self, frame: Frame) -> None:
        if frame.round_index == 0:
            if frame.epoch < self.resp_epoch or (
                    frame.epoch == self.resp_epoch
                    and self.resp_state == "done"):
                self.stale += 1
                self._note(f"rx reader: {StaleFrameError('commit for a superseded epoch', epoch=frame.epoch, round_index=0)}")
                return
            if frame.epoch == self.resp_epoch:
                self.replayed += 1
                self._note(f"rx reader: {ReplayedFrameError('duplicate commit', epoch=frame.epoch, round_index=0)}")
                return
            try:
                m1 = self.adapter.handle_m0(frame.payload, self.rng_resp)
            except PayloadRejectedError as exc:
                self.payload_rejected += 1
                self._note(f"rx reader: {exc}")
                return
            self.resp_epoch = frame.epoch
            self.rounds_completed = max(self.rounds_completed, 1)
            self.m1_bytes = m1
            self.m1_attempt = 0
            self.resp_state = "await-m2"
            self._send(_RESPONDER, 1, 0, self.adapter.labels[1], m1)
            self._arm_timer(_RESPONDER,
                            self.now + self.policy.round_deadline_s)
        elif frame.round_index == 2:
            if frame.epoch != self.resp_epoch:
                self.stale += 1
                self._note(f"rx reader: {StaleFrameError('response for a superseded epoch', epoch=frame.epoch, round_index=2)}")
                return
            if self.resp_state == "done":
                self.replayed += 1
                self._note(f"rx reader: {ReplayedFrameError('duplicate response', epoch=frame.epoch, round_index=2)}")
                return
            try:
                self.concluded = self.adapter.conclude(frame.payload)
            except PayloadRejectedError as exc:
                self.payload_rejected += 1
                self._note(f"rx reader: {exc}")
                return
            self.resp_state = "done"
            self.rounds_completed = 3
            self._note(f"concluded: {self.concluded[2]}")
        else:
            self.stale += 1
            self._note(f"rx reader: {StaleFrameError('unexpected round', epoch=frame.epoch, round_index=frame.round_index)}")

    def _responder_timeout(self) -> None:
        if self.resp_state != "await-m2":
            return
        if self.m1_attempt + 1 < self.policy.max_frame_attempts:
            self.m1_attempt += 1
            delay = self.policy.frame_backoff(self.seed, self.session_index,
                                              self.resp_epoch,
                                              self.m1_attempt)
            self._push(self.now + delay, "m1-retransmit",
                       self.resp_epoch, self.m1_attempt)
        else:
            self._note(f"reader gives up on epoch {self.resp_epoch} "
                       "(challenge retries exhausted)")
            self.resp_state = "await-m0"

    # -- main loop -----------------------------------------------------

    def run(self) -> None:
        self._start_epoch()
        while self._queue:
            if self.concluded is not None or self.peer_rejected is not None \
                    or self.aborted_phase is not None:
                break
            at, _seq, kind, args = heapq.heappop(self._queue)
            self.now = max(self.now, at)
            if kind == "deliver":
                role, data = args
                ops = self.adapter.initiator_ops() if role == _INITIATOR \
                    else self.adapter.responder_ops()
                ops.rx_bits += len(data) * 8
                try:
                    frame = decode_frame(data)
                except FrameCorruptedError:
                    self.corrupt += 1
                    self._note(f"rx {self.adapter.roles[role]}: "
                               "frame CRC mismatch, discarded")
                    continue
                except FrameError as exc:
                    self.corrupt += 1
                    self._note(f"rx {self.adapter.roles[role]}: {exc}")
                    continue
                if frame.session != self.session_id \
                        or frame.sender == role:
                    self.stale += 1
                    continue
                if role == _INITIATOR:
                    self._initiator_frame(frame)
                else:
                    self._responder_frame(frame)
            elif kind == "timer":
                role, seq = args
                if seq != self._timer_seq[role]:
                    continue  # superseded timer
                if role == _INITIATOR:
                    self._initiator_timeout()
                else:
                    self._responder_timeout()
            elif kind == "epoch":
                self._start_epoch()
            elif kind == "m1-retransmit":
                epoch, attempt = args
                if self.resp_state == "await-m2" \
                        and self.resp_epoch == epoch \
                        and self.m1_attempt == attempt:
                    self._send(_RESPONDER, 1, attempt,
                               self.adapter.labels[1], self.m1_bytes)
                    self._arm_timer(
                        _RESPONDER,
                        self.now + self.policy.round_deadline_s)
        if self.concluded is None and self.peer_rejected is None \
                and self.aborted_phase is None:
            # Queue drained without a verdict (should not happen: the
            # initiator timer chain is the liveness driver).
            self.aborted_phase = "event queue drained"


def run_resilient_session(
    adapter: ThreeRoundAdapter,
    profile: Optional[LossProfile] = None,
    policy: Optional[RetransmissionPolicy] = None,
    seed: int = 0,
    session_index: int = 0,
    radio: "Optional[RadioModel]" = None,
    distance_m: float = 0.5,
    table: "Optional[ComputeEnergyTable]" = None,
) -> SessionResult:
    """Run one protocol session over the lossy channel, with accounting.

    Deterministic: the result (transcript digest, retry counts, energy
    totals) is a pure function of ``(adapter state, seed,
    session_index, profile, policy)``.
    """
    from ..energy.comparison import ComputeEnergyTable, protocol_energy
    from ..energy.radio import RadioModel

    profile = profile if profile is not None else LossProfile()
    policy = policy or RetransmissionPolicy()
    radio = radio or RadioModel()
    table = table or ComputeEnergyTable()
    channel = BodyAreaChannel(profile, seed=seed, session=session_index)
    engine = _SessionEngine(adapter, channel, policy, seed, session_index)
    rt = _obs_runtime.current()
    if rt is not None:
        with rt.span("protocol.session", key=session_index,
                     protocol=adapter.name,
                     loss=f"{profile.frame_loss:g}") as span:
            engine.run()
            if span is not None:
                span.set(epochs=engine.epoch + 1,
                         frames=engine.frames_sent,
                         concluded=engine.concluded is not None)
    else:
        engine.run()

    if engine.concluded is not None:
        accepted, identity, detail = engine.concluded
        completed = True
    elif engine.peer_rejected is not None:
        accepted, identity, detail = False, None, engine.peer_rejected
        completed = True
    else:
        accepted, identity, detail = False, None, "session aborted"
        completed = False

    digest = hashlib.sha256("\n".join(engine.log).encode()).hexdigest()
    initiator_ops = adapter.initiator_ops()
    responder_ops = adapter.responder_ops()
    result = SessionResult(
        protocol=adapter.name,
        session_index=session_index,
        seed=seed,
        completed=completed,
        accepted=accepted,
        identity=identity,
        detail=detail,
        aborted_phase=engine.aborted_phase,
        rounds_completed=engine.rounds_completed,
        epochs_used=engine.epoch + 1,
        frames_sent=engine.frames_sent,
        retransmissions=max(0, engine.frames_sent - 3),
        corrupt_rejections=engine.corrupt,
        stale_rejections=engine.stale,
        replay_rejections=engine.replayed,
        payload_rejections=engine.payload_rejected,
        elapsed_s=engine.now,
        initiator_ops=initiator_ops,
        responder_ops=responder_ops,
        channel_stats=channel.stats,
        transcript_digest=digest,
        initiator_energy=protocol_energy(
            f"{adapter.name}/{adapter.roles[0]}", initiator_ops,
            distance_m, radio, table),
        responder_energy=protocol_energy(
            f"{adapter.name}/{adapter.roles[1]}", responder_ops,
            distance_m, radio, table),
        events=engine.log,
    )
    if rt is not None:
        _record_session_metrics(rt.registry, result)
    return result


def _record_session_metrics(registry, result: SessionResult) -> None:
    """One finished session into the live protocol counters."""
    protocol = result.protocol
    outcome = ("accepted" if result.accepted
               else "rejected" if result.completed else "aborted")
    registry.counter(
        "repro_protocol_sessions_total", "sessions by outcome",
    ).inc(protocol=protocol, outcome=outcome)
    registry.counter(
        "repro_protocol_epochs_total", "protocol epochs consumed",
    ).inc(result.epochs_used, protocol=protocol)
    registry.counter(
        "repro_protocol_frames_total", "frames sent by all endpoints",
    ).inc(result.frames_sent, protocol=protocol)
    registry.counter(
        "repro_protocol_retransmissions_total",
        "frames beyond the lossless three",
    ).inc(result.retransmissions, protocol=protocol)
    rejections = registry.counter(
        "repro_protocol_rejections_total",
        "receiver-side frame rejections by kind",
    )
    for kind, count in (("corrupt", result.corrupt_rejections),
                        ("stale", result.stale_rejections),
                        ("replay", result.replay_rejections),
                        ("payload", result.payload_rejections)):
        if count:
            rejections.inc(count, protocol=protocol, kind=kind)
    energy = registry.counter(
        "repro_protocol_energy_uj_total", "microjoules spent, by role",
    )
    energy.inc(result.initiator_energy.total_j * 1e6,
               protocol=protocol, role="initiator")
    energy.inc(result.responder_energy.total_j * 1e6,
               protocol=protocol, role="responder")


# ----------------------------------------------------------------------
# adapter factory (CLI / fleet entry point)
# ----------------------------------------------------------------------

PROTOCOL_NAMES = ("peeters-hermans", "schnorr", "mutual-auth")


def make_adapter(protocol: str, domain=None, seed: int = 0,
                 session_index: int = 0,
                 database=None) -> ThreeRoundAdapter:
    """Fresh protocol endpoints with secrets derived from ``seed``.

    Key material is derived per ``(seed, session_index)`` so a fleet
    of sessions is reproducible and embarrassingly parallel.

    ``database`` (Peeters–Hermans only) swaps the reader's tag store:
    any :class:`~repro.protocols.database.TagDatabase` — e.g. the
    sharded fleet-scale store of :mod:`repro.server.enrollment` — is
    used as-is and assumed pre-enrolled; the default ``None`` keeps
    the historical per-session toy database holding exactly this
    session's tag.  Either way the reader's "tag not in the database"
    conclusion is whatever ``database.lookup`` says.
    """
    rng = random.Random(derive_channel_seed(seed, "keys", session_index,
                                            0, 0))
    if protocol == "mutual-auth":
        key = bytes(rng.getrandbits(8) for _ in range(16))
        return MutualAuthAdapter(SymmetricDevice(key), SymmetricServer(key))
    if domain is None:
        raise ValueError(f"protocol {protocol!r} needs a curve domain")
    ring = domain.scalar_ring
    if protocol == "peeters-hermans":
        reader = PeetersHermansReader(domain, ring.random_scalar(rng),
                                      database=database)
        tag = PeetersHermansTag(domain, ring.random_scalar(rng),
                                reader.public)
        if database is None:
            reader.register(session_index + 1, tag.identity_point)
        return PeetersHermansAdapter(domain, tag, reader)
    if protocol == "schnorr":
        tag = SchnorrTag(domain, ring.random_scalar(rng))
        return SchnorrAdapter(domain, tag, SchnorrVerifier(domain,
                                                           tag.public))
    raise ValueError(f"unknown protocol {protocol!r} "
                     f"(know {', '.join(PROTOCOL_NAMES)})")
