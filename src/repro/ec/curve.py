"""Binary Weierstrass elliptic curves y^2 + xy = x^3 + a*x^2 + b.

This is the group the paper's coprocessor computes in (Section 4,
equation (1)).  The class implements the textbook affine group law —
the *reference* arithmetic every other layer (ladder, coprocessor
microcode, protocol) is validated against — plus point (de)compression
and random point sampling.
"""

from __future__ import annotations

from typing import Optional

from ..gf2m.field import BinaryField
from .point import AffinePoint, LDProjectivePoint

__all__ = ["BinaryEllipticCurve"]


class BinaryEllipticCurve:
    """The curve ``y^2 + x*y = x^3 + a*x^2 + b`` over GF(2^m).

    Parameters
    ----------
    field:
        The underlying :class:`~repro.gf2m.field.BinaryField`.
    a, b:
        Curve coefficients as raw field values.  ``b`` must be non-zero
        (otherwise the curve is singular).

    Examples
    --------
    >>> from repro.ec import NIST_K163
    >>> curve, G, n = NIST_K163.curve, NIST_K163.generator, NIST_K163.order
    >>> curve.is_on_curve(G)
    True
    """

    def __init__(self, field: BinaryField, a: int, b: int):
        if not 0 <= a < field.order or not 0 <= b < field.order:
            raise ValueError("curve coefficients must be reduced field values")
        if b == 0:
            raise ValueError("b = 0 gives a singular curve")
        self.field = field
        self.a = a
        self.b = b
        self._sqrt_b = field.sqrt_raw(b)

    # ------------------------------------------------------------------
    # membership and structure
    # ------------------------------------------------------------------

    def is_on_curve(self, point: AffinePoint) -> bool:
        """True iff the point satisfies the curve equation (or is infinity)."""
        if point.is_infinity:
            return True
        f = self.field
        x, y = point.x, point.y
        if x >= f.order or y >= f.order:
            return False
        lhs = f.square_raw(y) ^ f.mul_raw(x, y)
        rhs = f.mul_raw(f.square_raw(x), x ^ self.a) ^ self.b
        return lhs == rhs

    @property
    def j_invariant(self) -> int:
        """The j-invariant, 1/b for binary Weierstrass curves."""
        return self.field.inverse_raw(self.b)

    # ------------------------------------------------------------------
    # group law
    # ------------------------------------------------------------------

    def negate(self, point: AffinePoint) -> AffinePoint:
        """Return -P; for binary curves -(x, y) = (x, x + y)."""
        if point.is_infinity:
            return point
        return AffinePoint(point.x, point.x ^ point.y)

    def add(self, p: AffinePoint, q: AffinePoint) -> AffinePoint:
        """Affine point addition (handles all special cases)."""
        if p.is_infinity:
            return q
        if q.is_infinity:
            return p
        f = self.field
        if p.x == q.x:
            if p.y ^ q.y == p.x or (p.x == 0 and p.y == q.y):
                # q == -p (note -P = (x, x+y); x == 0 makes P self-inverse)
                return AffinePoint.infinity()
            return self.double(p)
        # lambda = (y1 + y2) / (x1 + x2)
        lam = f.mul_raw(p.y ^ q.y, f.inverse_raw(p.x ^ q.x))
        x3 = f.square_raw(lam) ^ lam ^ p.x ^ q.x ^ self.a
        y3 = f.mul_raw(lam, p.x ^ x3) ^ x3 ^ p.y
        return AffinePoint(x3, y3)

    def double(self, p: AffinePoint) -> AffinePoint:
        """Affine point doubling."""
        if p.is_infinity:
            return p
        if p.x == 0:
            # The (unique) point with x = 0 is 2-torsion: (0, sqrt(b)).
            return AffinePoint.infinity()
        f = self.field
        lam = p.x ^ f.mul_raw(p.y, f.inverse_raw(p.x))
        x3 = f.square_raw(lam) ^ lam ^ self.a
        y3 = f.square_raw(p.x) ^ f.mul_raw(lam, x3) ^ x3
        return AffinePoint(x3, y3)

    def subtract(self, p: AffinePoint, q: AffinePoint) -> AffinePoint:
        """Return p - q."""
        return self.add(p, self.negate(q))

    def multiply_naive(self, k: int, p: AffinePoint) -> AffinePoint:
        """Reference scalar multiplication (left-to-right double-and-add).

        Not side-channel safe; used as the correctness oracle.  For the
        hardened algorithms see :mod:`repro.ec.scalar_mult` and
        :mod:`repro.ec.ladder`.
        """
        if k < 0:
            return self.multiply_naive(-k, self.negate(p))
        result = AffinePoint.infinity()
        addend = p
        while k:
            if k & 1:
                result = self.add(result, addend)
            addend = self.double(addend)
            k >>= 1
        return result

    # ------------------------------------------------------------------
    # compression / decompression / sampling
    # ------------------------------------------------------------------

    def lift_x(self, x: int, y_bit: int = 0) -> Optional[AffinePoint]:
        """Find a point with the given x-coordinate, or None.

        For ``x != 0`` solves ``z^2 + z = x + a + b/x^2`` (substituting
        ``y = x*z``); the ``y_bit`` selects between the two solutions by
        the least significant bit of ``y/x`` (SEC 1 convention).
        """
        f = self.field
        if x == 0:
            return AffinePoint(0, self._sqrt_b)
        x_inv_sq = f.square_raw(f.inverse_raw(x))
        c = x ^ self.a ^ f.mul_raw(self.b, x_inv_sq)
        z = f.solve_quadratic_raw(c)
        if z is None:
            return None
        if (z & 1) != (y_bit & 1):
            z ^= 1
        return AffinePoint(x, f.mul_raw(x, z))

    def compress(self, point: AffinePoint) -> tuple[int, int]:
        """Compress to ``(x, y_bit)``; inverse of :meth:`lift_x`."""
        if point.is_infinity:
            raise ValueError("cannot compress the point at infinity")
        if point.x == 0:
            return 0, 0
        f = self.field
        z = f.mul_raw(point.y, f.inverse_raw(point.x))
        return point.x, z & 1

    def random_point(self, rng) -> AffinePoint:
        """Sample a uniformly random finite point by repeated lift_x."""
        f = self.field
        while True:
            x = rng.getrandbits(f.m) & (f.order - 1)
            point = self.lift_x(x, rng.getrandbits(1))
            if point is not None:
                return point

    # ------------------------------------------------------------------
    # coordinate conversion
    # ------------------------------------------------------------------

    def to_projective(self, point: AffinePoint, z: int = 1) -> LDProjectivePoint:
        """Convert to López–Dahab coordinates with the given Z (!= 0).

        A random ``z`` implements the randomized-projective-coordinates
        countermeasure: ``(x*z : y*z^2 : z)`` represents the same point
        for every non-zero ``z``.
        """
        if point.is_infinity:
            return LDProjectivePoint.infinity()
        if z == 0:
            raise ValueError("Z must be non-zero for a finite point")
        f = self.field
        return LDProjectivePoint(
            f.mul_raw(point.x, z), f.mul_raw(point.y, f.square_raw(z)), z
        )

    def to_affine(self, point: LDProjectivePoint) -> AffinePoint:
        """Convert López–Dahab coordinates back to affine."""
        if point.is_infinity:
            return AffinePoint.infinity()
        f = self.field
        z_inv = f.inverse_raw(point.Z)
        return AffinePoint(
            f.mul_raw(point.X, z_inv),
            f.mul_raw(point.Y, f.square_raw(z_inv)),
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, BinaryEllipticCurve)
            and self.field == other.field
            and self.a == other.a
            and self.b == other.b
        )

    def __hash__(self) -> int:
        return hash((self.field, self.a, self.b))

    def __repr__(self) -> str:
        return (
            f"BinaryEllipticCurve(GF(2^{self.field.m}), "
            f"a={hex(self.a)}, b={hex(self.b)})"
        )
