"""Key generation, ECDH and ECDSA on the named binary curves.

The protocol layer (Section 2/4: mutual authentication, data
authentication, encryption key establishment) needs key pairs and the
standard public-key building blocks.  All secret-scalar operations go
through the Montgomery ladder so that the same side-channel-hardened
code path the paper advocates is used everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from .curves import NamedCurve
from .ladder import montgomery_ladder
from .point import AffinePoint

__all__ = ["KeyPair", "generate_keypair", "ecdh_shared_secret",
           "ecdsa_sign", "ecdsa_verify"]


@dataclass(frozen=True)
class KeyPair:
    """An EC key pair: private scalar d and public point Q = d*G."""

    domain: NamedCurve
    private: int
    public: AffinePoint

    def __repr__(self) -> str:
        # Never print the private scalar.
        return f"KeyPair({self.domain.name}, public={self.public!r})"


def generate_keypair(domain: NamedCurve, rng) -> KeyPair:
    """Generate a key pair on the given named curve.

    The private scalar is uniform in [1, n-1]; the public point is
    computed with the randomized Montgomery ladder.
    """
    d = domain.scalar_ring.random_scalar(rng)
    q = montgomery_ladder(domain.curve, d, domain.generator, rng=rng)
    return KeyPair(domain, d, q)


def ecdh_shared_secret(own: KeyPair, peer_public: AffinePoint, rng) -> int:
    """Cofactor ECDH: the x-coordinate of (h * d) * Q_peer.

    Multiplying by the cofactor folds small-subgroup components away —
    a cheap protocol-level fault/invalid-point mitigation.
    """
    if not own.domain.curve.is_on_curve(peer_public):
        raise ValueError("peer public key is not on the curve")
    if peer_public.is_infinity:
        raise ValueError("peer public key is the point at infinity")
    k = (own.private * own.domain.cofactor) % own.domain.order
    shared = montgomery_ladder(own.domain.curve, k, peer_public, rng=rng)
    if shared.is_infinity:
        raise ValueError("shared secret degenerated to infinity")
    return shared.x


def _hash_to_int(message: bytes, n: int, hash_function: Optional[Callable]) -> int:
    """Hash a message and truncate to the bit length of n (FIPS 186)."""
    if hash_function is None:
        from ..primitives.sha1 import sha1

        hash_function = sha1
    digest = hash_function(message)
    e = int.from_bytes(digest, "big")
    excess = max(0, 8 * len(digest) - n.bit_length())
    return e >> excess


def ecdsa_sign(
    keypair: KeyPair,
    message: bytes,
    rng,
    hash_function: Optional[Callable] = None,
) -> tuple[int, int]:
    """ECDSA signature (r, s) over the key pair's curve.

    ``hash_function`` maps bytes to a digest; defaults to the
    library's own SHA-1 (the hash the paper's gate-count discussion
    uses).  The nonce is drawn fresh from ``rng`` per signature.
    """
    domain = keypair.domain
    ring = domain.scalar_ring
    e = _hash_to_int(message, domain.order, hash_function)
    while True:
        k = ring.random_scalar(rng)
        point = montgomery_ladder(domain.curve, k, domain.generator, rng=rng)
        r = ring.reduce(point.x)
        if r == 0:
            continue
        s = ring.mul(ring.inverse(k), ring.add(e, ring.mul(r, keypair.private)))
        if s == 0:
            continue
        return r, s


def ecdsa_verify(
    domain: NamedCurve,
    public: AffinePoint,
    message: bytes,
    signature: tuple[int, int],
    hash_function: Optional[Callable] = None,
) -> bool:
    """Verify an ECDSA signature; returns False rather than raising."""
    r, s = signature
    if not (1 <= r < domain.order and 1 <= s < domain.order):
        return False
    if not domain.curve.is_on_curve(public) or public.is_infinity:
        return False
    ring = domain.scalar_ring
    e = _hash_to_int(message, domain.order, hash_function)
    w = ring.inverse(s)
    u1 = ring.mul(e, w)
    u2 = ring.mul(r, w)
    # Verification uses public inputs only: the fast unprotected
    # algorithms are fine here (the "insecure zone" of Section 5).
    p1 = domain.curve.multiply_naive(u1, domain.generator)
    p2 = domain.curve.multiply_naive(u2, public)
    point = domain.curve.add(p1, p2)
    if point.is_infinity:
        return False
    return ring.reduce(point.x) == r
