"""Elliptic curves over binary fields.

The algorithm level of the paper's security pyramid: curve arithmetic,
the Montgomery powering ladder with randomized projective coordinates,
baseline scalar-multiplication algorithms, Koblitz-curve speed-ups and
the NIST named curves (K-163 is the paper's design point).
"""

from .blinding import (
    blind_scalar,
    blinded_scalar_multiply,
    point_blinded_multiply,
)
from .curve import BinaryEllipticCurve
from .encoding import (
    PointDecodingError,
    decode_point,
    encode_point,
    point_wire_bits,
)
from .curves import (
    CURVE_REGISTRY,
    NIST_B163,
    NIST_B233,
    NIST_K163,
    NIST_K233,
    NamedCurve,
    get_curve,
)
from .keys import (
    KeyPair,
    ecdh_shared_secret,
    ecdsa_sign,
    ecdsa_verify,
    generate_keypair,
)
from .koblitz import frobenius, is_koblitz, tnaf, tnaf_multiply
from .ladder import (
    LadderExecution,
    LadderIteration,
    ladder_step,
    montgomery_ladder,
    montgomery_ladder_full,
)
from .memory import (
    AlgorithmMemory,
    MEMORY_PROFILES,
    memory_profile,
    register_area_ge,
)
from .modn import ScalarRing, is_probable_prime
from .point import AffinePoint, LDProjectivePoint
from .scalar_mult import (
    double_and_add,
    double_and_add_always,
    non_adjacent_form,
    width_w_naf,
    wnaf_multiply,
)

__all__ = [
    "AffinePoint",
    "LDProjectivePoint",
    "BinaryEllipticCurve",
    "encode_point",
    "decode_point",
    "point_wire_bits",
    "PointDecodingError",
    "blind_scalar",
    "blinded_scalar_multiply",
    "point_blinded_multiply",
    "AlgorithmMemory",
    "MEMORY_PROFILES",
    "memory_profile",
    "register_area_ge",
    "NamedCurve",
    "NIST_K163",
    "NIST_B163",
    "NIST_K233",
    "NIST_B233",
    "CURVE_REGISTRY",
    "get_curve",
    "KeyPair",
    "generate_keypair",
    "ecdh_shared_secret",
    "ecdsa_sign",
    "ecdsa_verify",
    "LadderExecution",
    "LadderIteration",
    "ladder_step",
    "montgomery_ladder",
    "montgomery_ladder_full",
    "ScalarRing",
    "is_probable_prime",
    "double_and_add",
    "double_and_add_always",
    "non_adjacent_form",
    "width_w_naf",
    "wnaf_multiply",
    "frobenius",
    "is_koblitz",
    "tnaf",
    "tnaf_multiply",
]
