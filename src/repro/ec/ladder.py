"""Montgomery powering ladder for binary curves (Algorithm 1 of the paper).

The paper's coprocessor computes every point multiplication with the
Montgomery powering ladder (MPL) in x-only López–Dahab coordinates:

* the same two operations (one differential addition, one doubling)
  run in every iteration regardless of the key bit — the algorithm-level
  timing/SPA countermeasure;
* only x-coordinates are carried (one coordinate = 163 bits of
  storage), so the whole multiplication fits in six 163-bit registers;
* the initial projective representation is randomized with a fresh
  ``Z = r`` (``R <- (x*r : r)`` in Algorithm 1) — the DPA
  countermeasure evaluated in Section 7.

:func:`montgomery_ladder_full` additionally returns a
:class:`LadderExecution` record with the per-iteration register values,
which the side-channel layer uses both to *generate* leakage and to
*predict* intermediates during DPA.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from .curve import BinaryEllipticCurve
from .point import AffinePoint

__all__ = [
    "LadderIteration",
    "LadderExecution",
    "LadderState",
    "montgomery_ladder",
    "montgomery_ladder_full",
    "ladder_step",
    "ladder_suspend_init",
    "ladder_suspend_advance",
    "ladder_suspend_result",
]

#: Field-operation cost of one ladder iteration (Madd + Mdouble):
#: 6 multiplications and 4 squarings.
MULS_PER_ITERATION = 6
SQUARES_PER_ITERATION = 4


@dataclass(frozen=True)
class LadderIteration:
    """Register state after one ladder iteration.

    ``(X1, Z1)`` tracks ``prefix * P`` and ``(X2, Z2)`` tracks
    ``(prefix + 1) * P`` where ``prefix`` is the key prefix consumed so
    far — the Montgomery ladder invariant.
    """

    key_bit: int
    X1: int
    Z1: int
    X2: int
    Z2: int


@dataclass
class LadderExecution:
    """Complete record of one Montgomery-ladder point multiplication."""

    scalar: int
    base: AffinePoint
    initial_z: int
    iterations: list = dataclass_field(default_factory=list)
    result: Optional[AffinePoint] = None

    @property
    def num_iterations(self) -> int:
        """Ladder iterations executed (bit length of the scalar minus 1)."""
        return len(self.iterations)

    @property
    def field_multiplications(self) -> int:
        """Total field multiplications in the ladder loop."""
        return MULS_PER_ITERATION * self.num_iterations

    @property
    def field_squarings(self) -> int:
        """Total field squarings in the ladder loop."""
        return SQUARES_PER_ITERATION * self.num_iterations


def _madd(f, x_base: int, x1: int, z1: int, x2: int, z2: int) -> tuple[int, int]:
    """Differential addition: x(P1 + P2) from x(P1), x(P2), x(P1 - P2).

    López–Dahab formulas, 4 multiplications + 1 squaring.
    """
    t1 = f.mul_raw(x1, z2)
    t2 = f.mul_raw(x2, z1)
    z3 = f.square_raw(t1 ^ t2)
    x3 = f.mul_raw(x_base, z3) ^ f.mul_raw(t1, t2)
    return x3, z3


def _mdouble(f, sqrt_b: int, x: int, z: int) -> tuple[int, int]:
    """Doubling: x(2P) from x(P).  2 multiplications + 3 squarings."""
    x_sq = f.square_raw(x)
    z_sq = f.square_raw(z)
    x3 = f.square_raw(x_sq ^ f.mul_raw(sqrt_b, z_sq))
    z3 = f.mul_raw(x_sq, z_sq)
    return x3, z3


def ladder_step(
    curve: BinaryEllipticCurve,
    x_base: int,
    key_bit: int,
    x1: int,
    z1: int,
    x2: int,
    z2: int,
) -> tuple[int, int, int, int]:
    """One MPL iteration: swap-by-key-bit, then Madd + Mdouble.

    The *same* two operations execute for either key bit; only the
    operand routing (the multiplexer control of Figure 3) differs.
    Returns the new ``(X1, Z1, X2, Z2)``.
    """
    f = curve.field
    if key_bit:
        x1, z1 = _madd(f, x_base, x1, z1, x2, z2)
        x2, z2 = _mdouble(f, curve._sqrt_b, x2, z2)
    else:
        x2, z2 = _madd(f, x_base, x2, z2, x1, z1)
        x1, z1 = _mdouble(f, curve._sqrt_b, x1, z1)
    return x1, z1, x2, z2


def _recover_y(
    curve: BinaryEllipticCurve,
    base: AffinePoint,
    x1: int,
    z1: int,
    x2: int,
    z2: int,
) -> AffinePoint:
    """López–Dahab y-recovery from the two final ladder x-coordinates."""
    f = curve.field
    if z1 == 0:
        return AffinePoint.infinity()
    if z2 == 0:
        # (k+1)P = infinity, so kP = -P.
        return curve.negate(base)
    x, y = base.x, base.y
    xa = f.mul_raw(x1, f.inverse_raw(z1))  # affine x of kP
    xb = f.mul_raw(x2, f.inverse_raw(z2))  # affine x of (k+1)P
    # y_k = (x_k + x) * [ (x_k + x)(x_{k+1} + x) + x^2 + y ] / x + y
    t = f.mul_raw(xa ^ x, xb ^ x) ^ f.square_raw(x) ^ y
    y_k = f.mul_raw(f.mul_raw(xa ^ x, t), f.inverse_raw(x)) ^ y
    return AffinePoint(xa, y_k)


def montgomery_ladder_full(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    rng=None,
    randomize_z: bool = True,
    initial_z: Optional[int] = None,
) -> LadderExecution:
    """Run the Montgomery powering ladder and record every iteration.

    Parameters
    ----------
    curve, k, point:
        The scalar multiplication ``k * point`` to compute (``k >= 0``).
    rng:
        Randomness source for the projective-coordinate randomization
        (``random.Random``-compatible).  Required when ``randomize_z``
        is True and ``initial_z`` is not given.
    randomize_z:
        The paper's DPA countermeasure.  When False, ``Z`` starts at 1
        and every intermediate is a deterministic function of the key
        and base point — the configuration in which Section 7's DPA
        succeeds with ~200 traces.
    initial_z:
        Explicit randomization value; used by the white-box
        "randomness known to the adversary" evaluation scenario.

    Returns
    -------
    LadderExecution
        With per-iteration ``(X1, Z1, X2, Z2)`` states and the affine
        result (y recovered).
    """
    if k < 0:
        raise ValueError("the ladder expects a non-negative scalar")
    f = curve.field
    if point.is_infinity or k == 0:
        execution = LadderExecution(scalar=k, base=point, initial_z=1)
        execution.result = AffinePoint.infinity()
        return execution
    if point.x == 0:
        # The 2-torsion point; the x-only formulas degenerate (x_base
        # appears as a multiplicand).  Fall back to the reference law.
        execution = LadderExecution(scalar=k, base=point, initial_z=1)
        execution.result = curve.multiply_naive(k, point)
        return execution

    if initial_z is not None:
        z0 = initial_z
    elif randomize_z:
        if rng is None:
            raise ValueError("randomize_z=True requires an rng (or initial_z)")
        z0 = 0
        while z0 == 0:
            z0 = rng.getrandbits(f.m) & (f.order - 1)
    else:
        z0 = 1
    if z0 == 0 or z0 >= f.order:
        raise ValueError("initial Z must be a non-zero reduced field value")

    execution = LadderExecution(scalar=k, base=point, initial_z=z0)
    x = point.x
    # R <- (x*r : r), Q <- 2P (Algorithm 1, projective randomization).
    x1, z1 = f.mul_raw(x, z0), z0
    x2, z2 = _mdouble(f, curve._sqrt_b, x1, z1)
    t = k.bit_length()
    for i in range(t - 2, -1, -1):
        bit = (k >> i) & 1
        x1, z1, x2, z2 = ladder_step(curve, x, bit, x1, z1, x2, z2)
        execution.iterations.append(
            LadderIteration(key_bit=bit, X1=x1, Z1=z1, X2=x2, Z2=z2)
        )
    execution.result = _recover_y(curve, point, x1, z1, x2, z2)
    return execution


# ----------------------------------------------------------------------
# the suspendable ladder: the same iteration, one step at a time
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LadderState:
    """A Montgomery-ladder execution frozen between two iterations.

    The intermittent-power layer checkpoints this to modeled NVM: the
    four projective registers plus the index of the *next* key bit are
    the complete machine state — resuming from a ``LadderState`` and
    running to the end produces bit-identical registers to an
    uninterrupted :func:`montgomery_ladder_full` with the same
    ``initial_z``.  Frozen so a checkpointed state can never be
    mutated behind the store's back; :func:`ladder_suspend_advance`
    returns a fresh state instead.

    ``bit_index`` counts down from ``k.bit_length() - 2``; ``-1``
    means every iteration has run and only y-recovery remains.
    """

    scalar: int
    base_x: int
    base_y: int
    initial_z: int
    bit_index: int
    x1: int
    z1: int
    x2: int
    z2: int

    @property
    def finished(self) -> bool:
        return self.bit_index < 0

    @property
    def steps_total(self) -> int:
        return max(0, self.scalar.bit_length() - 1)

    @property
    def steps_done(self) -> int:
        return self.steps_total - (self.bit_index + 1)

    def to_dict(self) -> dict:
        """Checkpoint payload: every register as lowercase hex."""
        return {
            "k": format(self.scalar, "x"),
            "bx": format(self.base_x, "x"),
            "by": format(self.base_y, "x"),
            "z0": format(self.initial_z, "x"),
            "bit": self.bit_index,
            "x1": format(self.x1, "x"),
            "z1": format(self.z1, "x"),
            "x2": format(self.x2, "x"),
            "z2": format(self.z2, "x"),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LadderState":
        return cls(
            scalar=int(data["k"], 16),
            base_x=int(data["bx"], 16),
            base_y=int(data["by"], 16),
            initial_z=int(data["z0"], 16),
            bit_index=int(data["bit"]),
            x1=int(data["x1"], 16),
            z1=int(data["z1"], 16),
            x2=int(data["x2"], 16),
            z2=int(data["z2"], 16),
        )


def ladder_suspend_init(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    initial_z: int,
) -> LadderState:
    """Set up a suspendable ladder run (Algorithm 1's preamble).

    The degenerate inputs the full ladder special-cases (``k == 0``,
    the identity, the 2-torsion point) have no iteration loop to
    suspend, so they are rejected here — protocol scalars are drawn
    from ``[1, n)`` and bases are valid curve points, which is the
    suspendable path's contract.
    """
    if k < 1:
        raise ValueError("the suspendable ladder needs a positive scalar")
    if point.is_infinity or point.x == 0:
        raise ValueError("the suspendable ladder needs an ordinary "
                         "base point (not the identity or 2-torsion)")
    f = curve.field
    if initial_z == 0 or initial_z >= f.order:
        raise ValueError("initial Z must be a non-zero reduced field value")
    x1, z1 = f.mul_raw(point.x, initial_z), initial_z
    x2, z2 = _mdouble(f, curve._sqrt_b, x1, z1)
    return LadderState(
        scalar=k, base_x=point.x, base_y=point.y, initial_z=initial_z,
        bit_index=k.bit_length() - 2, x1=x1, z1=z1, x2=x2, z2=z2,
    )


def ladder_suspend_advance(
    curve: BinaryEllipticCurve,
    state: LadderState,
    steps: int,
) -> LadderState:
    """Run up to ``steps`` ladder iterations; return the new state.

    Pure: the input state is untouched, so a caller that checkpoints
    ``state`` and crashes mid-advance resumes from exactly the bits
    the checkpoint had consumed.
    """
    if steps < 0:
        raise ValueError("cannot advance a negative number of steps")
    x1, z1, x2, z2 = state.x1, state.z1, state.x2, state.z2
    bit_index = state.bit_index
    for _ in range(steps):
        if bit_index < 0:
            break
        bit = (state.scalar >> bit_index) & 1
        x1, z1, x2, z2 = ladder_step(curve, state.base_x, bit,
                                     x1, z1, x2, z2)
        bit_index -= 1
    return LadderState(
        scalar=state.scalar, base_x=state.base_x, base_y=state.base_y,
        initial_z=state.initial_z, bit_index=bit_index,
        x1=x1, z1=z1, x2=x2, z2=z2,
    )


def ladder_suspend_result(
    curve: BinaryEllipticCurve,
    state: LadderState,
) -> AffinePoint:
    """y-recovery of a finished suspendable run."""
    if not state.finished:
        raise ValueError(
            f"ladder still has {state.bit_index + 1} iterations to run")
    base = AffinePoint(state.base_x, state.base_y)
    return _recover_y(curve, base, state.x1, state.z1, state.x2, state.z2)


def montgomery_ladder(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    rng=None,
    randomize_z: bool = True,
    initial_z: Optional[int] = None,
) -> AffinePoint:
    """Compute ``k * point`` with the Montgomery powering ladder.

    Convenience wrapper around :func:`montgomery_ladder_full` that
    discards the execution record.
    """
    return montgomery_ladder_full(
        curve, k, point, rng=rng, randomize_z=randomize_z, initial_z=initial_z
    ).result
