"""Scalar and base-point blinding: the other classic DPA countermeasures.

The paper's chip randomizes the projective representation (Algorithm
1); the literature it builds on (Coron, CHES 1999) offers two more
randomizations at the same abstraction level, included here so the
countermeasure ablation benches can compare all three:

* **scalar blinding** — compute with ``k' = k + r*n`` for a fresh
  random ``r``; since ``n*P`` is the identity, the result is unchanged
  but the bit pattern the ladder consumes differs every run;
* **point blinding** — compute ``k*(P + R) - k*R`` for a secret random
  point ``R``; every intermediate depends on ``R``.

Both cost extra work (longer scalar / second multiplication); the
paper's choice of randomized projective coordinates is the cheapest of
the three, which is exactly the kind of trade-off the benches surface.
"""

from __future__ import annotations

from .curve import BinaryEllipticCurve
from .ladder import montgomery_ladder
from .point import AffinePoint

__all__ = ["blind_scalar", "blinded_scalar_multiply",
           "point_blinded_multiply"]


def blind_scalar(k: int, order: int, rng, blinding_bits: int = 32) -> int:
    """Return ``k + r*n`` for a fresh ``r`` of ``blinding_bits`` bits.

    The blinded scalar is congruent to ``k`` modulo the group order,
    so it computes the same point, but its binary expansion — the
    sequence of ladder decisions — changes every invocation.
    """
    if not 1 <= k < order:
        raise ValueError("scalar must be in [1, order - 1]")
    if blinding_bits < 1:
        raise ValueError("need at least one blinding bit")
    r = 0
    while r == 0:
        r = rng.getrandbits(blinding_bits)
    return k + r * order


def blinded_scalar_multiply(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    order: int,
    rng,
    blinding_bits: int = 32,
) -> AffinePoint:
    """Scalar multiplication under scalar blinding (plus randomized Z).

    Requires ``point`` to lie in the prime-order subgroup (protocol
    points always do), since correctness rests on ``n * P`` being the
    identity.
    """
    blinded = blind_scalar(k, order, rng, blinding_bits)
    return montgomery_ladder(curve, blinded, point, rng=rng)


def point_blinded_multiply(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    rng,
) -> AffinePoint:
    """Scalar multiplication under base-point blinding.

    Computes ``k*(P + R) - k*R`` with a fresh uniformly random ``R``:
    every ladder intermediate is a function of ``R``, unpredictable to
    a DPA adversary, at the cost of a second full multiplication.
    """
    if k < 0:
        raise ValueError("the blinded ladder expects a non-negative scalar")
    while True:
        mask_point = curve.random_point(rng)
        blinded_base = curve.add(point, mask_point)
        # Degenerate sums (identity / 2-torsion) would hit the ladder's
        # excluded inputs; resample, which leaks nothing about P or k.
        if not blinded_base.is_infinity and blinded_base.x != 0 \
                and mask_point.x != 0:
            break
    masked = montgomery_ladder(curve, k, blinded_base, rng=rng)
    correction = montgomery_ladder(curve, k, mask_point, rng=rng)
    return curve.subtract(masked, correction)
