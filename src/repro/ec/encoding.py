"""Point wire encoding (SEC 1-style octet strings).

The protocol messages of Figure 2 carry curve points over the air; a
tag transmits them *compressed* (x plus one bit selecting y) because
"the communication should be minimized" (Section 4).  This module is
the codec: compressed (0x02/0x03), uncompressed (0x04) and the
identity (a single 0x00), with strict validation on decode — a
malformed or off-curve point must be rejected at the parser, before it
reaches the scalar multiplier (the invalid-point defence's first
line).
"""

from __future__ import annotations

from .curve import BinaryEllipticCurve
from .point import AffinePoint

__all__ = ["encode_point", "decode_point", "point_wire_bits",
           "PointDecodingError"]


class PointDecodingError(ValueError):
    """Raised for malformed or off-curve wire encodings."""


def _field_bytes(curve: BinaryEllipticCurve) -> int:
    return (curve.field.m + 7) // 8


def encode_point(curve: BinaryEllipticCurve, point: AffinePoint,
                 compressed: bool = True) -> bytes:
    """Serialize a point.

    Compressed: ``02 || x`` or ``03 || x`` (the tag bit is the SEC 1
    y-selector, ``lsb(y / x)`` for binary curves).  Uncompressed:
    ``04 || x || y``.  Identity: ``00``.
    """
    if point.is_infinity:
        return b"\x00"
    if not curve.is_on_curve(point):
        raise PointDecodingError("refusing to encode an off-curve point")
    size = _field_bytes(curve)
    x_bytes = point.x.to_bytes(size, "big")
    if compressed:
        __, y_bit = curve.compress(point)
        return bytes([0x02 | y_bit]) + x_bytes
    return b"\x04" + x_bytes + point.y.to_bytes(size, "big")


def decode_point(curve: BinaryEllipticCurve, data: bytes) -> AffinePoint:
    """Parse and validate a wire encoding; raises on anything dubious."""
    if not data:
        raise PointDecodingError("empty encoding")
    prefix = data[0]
    size = _field_bytes(curve)
    if prefix == 0x00:
        if len(data) != 1:
            raise PointDecodingError("identity encoding carries no payload")
        return AffinePoint.infinity()
    if prefix in (0x02, 0x03):
        if len(data) != 1 + size:
            raise PointDecodingError("bad compressed-point length")
        x = int.from_bytes(data[1:], "big")
        if x >= curve.field.order:
            raise PointDecodingError("x is not a reduced field element")
        point = curve.lift_x(x, prefix & 1)
        if point is None:
            raise PointDecodingError("x has no point on the curve")
        return point
    if prefix == 0x04:
        if len(data) != 1 + 2 * size:
            raise PointDecodingError("bad uncompressed-point length")
        x = int.from_bytes(data[1:1 + size], "big")
        y = int.from_bytes(data[1 + size:], "big")
        if x >= curve.field.order or y >= curve.field.order:
            raise PointDecodingError("coordinate is not reduced")
        point = AffinePoint(x, y)
        if not curve.is_on_curve(point):
            raise PointDecodingError("point is not on the curve")
        return point
    raise PointDecodingError(f"unknown point prefix {prefix:#04x}")


def point_wire_bits(curve: BinaryEllipticCurve,
                    compressed: bool = True) -> int:
    """Wire size in bits of a finite point under either encoding."""
    size = _field_bytes(curve)
    return 8 * (1 + size if compressed else 1 + 2 * size)
