"""Scalar multiplication algorithms and their side-channel profiles.

The algorithm level of the security pyramid (Section 3/4): the choice
of point-multiplication algorithm determines performance, temporary
storage *and* side-channel resistance.  This module provides the
paper's choice (the Montgomery ladder lives in :mod:`repro.ec.ladder`)
plus the baselines it is compared against:

* :func:`double_and_add` — the textbook algorithm; its operation
  sequence depends on the key (timing + SPA leak),
* :func:`double_and_add_always` — constant operation sequence via dummy
  additions (SPA-safe but vulnerable to C safe-error fault attacks),
* :func:`wnaf_multiply` — width-w NAF with precomputation (fast, still
  key-dependent sequence).

Each function can record its operation sequence — the abstract
"power signature" an SPA adversary observes at the algorithm level.
"""

from __future__ import annotations

from typing import Optional

from .curve import BinaryEllipticCurve
from .point import AffinePoint

__all__ = [
    "double_and_add",
    "double_and_add_always",
    "wnaf_multiply",
    "non_adjacent_form",
    "width_w_naf",
]

#: Operation labels used in recorded sequences.
OP_DOUBLE = "D"
OP_ADD = "A"
OP_DUMMY_ADD = "a"


def double_and_add(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    operations: Optional[list] = None,
) -> AffinePoint:
    """Left-to-right double-and-add (NOT side-channel safe).

    When ``operations`` is a list, the executed operation sequence is
    appended to it: a ``D`` for every doubling and an ``A`` for every
    addition.  The number of ``A`` entries equals the key's Hamming
    weight — the leak that timing attacks and SPA exploit.
    """
    if k < 0:
        return double_and_add(curve, -k, curve.negate(point), operations)
    if k == 0 or point.is_infinity:
        return AffinePoint.infinity()
    result = point
    for i in range(k.bit_length() - 2, -1, -1):
        result = curve.double(result)
        if operations is not None:
            operations.append(OP_DOUBLE)
        if (k >> i) & 1:
            result = curve.add(result, point)
            if operations is not None:
                operations.append(OP_ADD)
    return result


def double_and_add_always(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    operations: Optional[list] = None,
) -> AffinePoint:
    """Double-and-add-always: a dummy addition pads every zero bit.

    The operation sequence is key-independent (``DA`` per bit), closing
    the SPA channel of :func:`double_and_add` at the cost of ~2x
    additions — and opening a safe-error fault channel, since faulting
    a dummy addition does not change the result
    (see :mod:`repro.fault`).
    """
    if k < 0:
        return double_and_add_always(curve, -k, curve.negate(point), operations)
    if k == 0 or point.is_infinity:
        return AffinePoint.infinity()
    result = point
    for i in range(k.bit_length() - 2, -1, -1):
        result = curve.double(result)
        if operations is not None:
            operations.append(OP_DOUBLE)
        real = curve.add(result, point)
        if (k >> i) & 1:
            result = real
            if operations is not None:
                operations.append(OP_ADD)
        else:
            # discard: dummy addition, same computation either way
            if operations is not None:
                operations.append(OP_DUMMY_ADD)
    return result


def non_adjacent_form(k: int) -> list:
    """Signed-digit NAF of ``k`` (least significant digit first).

    Digits are in {-1, 0, 1} with no two adjacent non-zeros; the
    expansion has minimal Hamming weight among signed-binary forms.
    """
    if k < 0:
        return [-d for d in non_adjacent_form(-k)]
    digits = []
    while k:
        if k & 1:
            d = 2 - (k % 4)
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


def width_w_naf(k: int, w: int) -> list:
    """Width-w NAF (least significant digit first), odd digits |d| < 2^(w-1)."""
    if w < 2:
        raise ValueError("window width must be >= 2")
    if k < 0:
        return [-d for d in width_w_naf(-k, w)]
    digits = []
    modulus = 1 << w
    while k:
        if k & 1:
            d = k % modulus
            if d >= modulus // 2:
                d -= modulus
            k -= d
        else:
            d = 0
        digits.append(d)
        k >>= 1
    return digits


def wnaf_multiply(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    width: int = 4,
    operations: Optional[list] = None,
) -> AffinePoint:
    """Width-w NAF scalar multiplication with odd-multiple precomputation.

    The fast (but unprotected) algorithm a performance-only design
    would pick; included as the efficiency baseline for the
    architecture-level trade-off benches.
    """
    if k == 0 or point.is_infinity:
        return AffinePoint.infinity()
    if k < 0:
        return wnaf_multiply(curve, -k, curve.negate(point), width, operations)
    digits = width_w_naf(k, width)
    # Precompute odd multiples 1P, 3P, ..., (2^(w-1) - 1)P.
    odd_multiples = {1: point}
    twice = curve.double(point)
    for d in range(3, 1 << (width - 1), 2):
        odd_multiples[d] = curve.add(odd_multiples[d - 2], twice)
    result = AffinePoint.infinity()
    for d in reversed(digits):
        result = curve.double(result)
        if operations is not None:
            operations.append(OP_DOUBLE)
        if d:
            addend = odd_multiples[d] if d > 0 else curve.negate(odd_multiples[-d])
            result = curve.add(result, addend)
            if operations is not None:
                operations.append(OP_ADD)
    return result
