"""Integer arithmetic modulo the group order.

The Peeters–Hermans tag computes ``s = d + x + e*r`` modulo the curve
order (Figure 2) — the "one modular multiplication" of Section 4.
:class:`ScalarRing` packages that arithmetic, scalar sampling and
primality validation of the order.
"""

from __future__ import annotations

__all__ = ["ScalarRing", "is_probable_prime"]

# Deterministic Miller-Rabin witnesses, sufficient for n < 3.3 * 10^24;
# for larger moduli (all our curve orders) we add fixed extra rounds,
# which keeps the check deterministic and reproducible.
_MR_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47)


def is_probable_prime(n: int) -> bool:
    """Miller–Rabin primality test with fixed witnesses."""
    if n < 2:
        return False
    for p in _MR_WITNESSES:
        if n % p == 0:
            return n == p
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MR_WITNESSES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


class ScalarRing:
    """The ring of integers modulo a (prime) group order ``n``.

    Examples
    --------
    >>> ring = ScalarRing(13)
    >>> ring.mul(ring.add(5, 11), 7)
    8
    """

    def __init__(self, n: int, require_prime: bool = False):
        if n < 2:
            raise ValueError("the modulus must be >= 2")
        if require_prime and not is_probable_prime(n):
            raise ValueError("the modulus is not prime")
        self.n = n

    def reduce(self, a: int) -> int:
        """Canonical representative in [0, n)."""
        return a % self.n

    def add(self, a: int, b: int) -> int:
        """(a + b) mod n."""
        return (a + b) % self.n

    def sub(self, a: int, b: int) -> int:
        """(a - b) mod n."""
        return (a - b) % self.n

    def mul(self, a: int, b: int) -> int:
        """(a * b) mod n."""
        return (a * b) % self.n

    def neg(self, a: int) -> int:
        """(-a) mod n."""
        return (-a) % self.n

    def inverse(self, a: int) -> int:
        """Multiplicative inverse mod n; raises for non-invertible a."""
        a %= self.n
        if a == 0:
            raise ZeroDivisionError("0 has no inverse")
        g, x = self._egcd(a, self.n)
        if g != 1:
            raise ArithmeticError(f"{a} is not invertible modulo {self.n}")
        return x % self.n

    @staticmethod
    def _egcd(a: int, n: int) -> tuple[int, int]:
        old_r, r = a, n
        old_s, s = 1, 0
        while r:
            q = old_r // r
            old_r, r = r, old_r - q * r
            old_s, s = s, old_s - q * s
        return old_r, old_s

    def pow(self, a: int, e: int) -> int:
        """a**e mod n (negative exponents via the inverse)."""
        if e < 0:
            return pow(self.inverse(a), -e, self.n)
        return pow(a, e, self.n)

    def random_scalar(self, rng) -> int:
        """Uniform scalar in [1, n-1] (rejection sampling)."""
        bits = self.n.bit_length()
        while True:
            k = rng.getrandbits(bits)
            if 1 <= k < self.n:
                return k

    def __eq__(self, other) -> bool:
        return isinstance(other, ScalarRing) and self.n == other.n

    def __hash__(self) -> int:
        return hash(("ScalarRing", self.n))

    def __repr__(self) -> str:
        return f"ScalarRing(n={hex(self.n)})"
