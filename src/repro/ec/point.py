"""Point representations for binary elliptic curves.

Two representations are used in the library, mirroring the paper's
design:

* :class:`AffinePoint` — the external representation (protocol
  messages, databases, test vectors).
* :class:`LDProjectivePoint` — López–Dahab projective coordinates
  ``(X : Y : Z)`` with ``x = X/Z`` and ``y = Y/Z**2``; the Montgomery
  ladder only carries ``(X : Z)`` pairs of this form.  A random
  non-zero ``Z`` is exactly the paper's randomized-projective-
  coordinates DPA countermeasure (Section 4/7).

Points are plain immutable data; the arithmetic lives on
:class:`repro.ec.curve.BinaryEllipticCurve`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AffinePoint", "LDProjectivePoint"]


@dataclass(frozen=True)
class AffinePoint:
    """An affine point ``(x, y)`` or the point at infinity.

    Coordinates are raw field values (integers in polynomial basis);
    the owning curve interprets them.  The point at infinity is the
    canonical ``AffinePoint.infinity()`` with both coordinates zero and
    the flag set.
    """

    x: int
    y: int
    is_infinity: bool = False

    @classmethod
    def infinity(cls) -> "AffinePoint":
        """The group identity."""
        return cls(0, 0, True)

    def __post_init__(self):
        if self.is_infinity and (self.x or self.y):
            raise ValueError("the point at infinity carries no coordinates")
        if self.x < 0 or self.y < 0:
            raise ValueError("coordinates are non-negative raw field values")

    def __repr__(self) -> str:
        if self.is_infinity:
            return "AffinePoint(infinity)"
        return f"AffinePoint(x={hex(self.x)}, y={hex(self.y)})"


@dataclass(frozen=True)
class LDProjectivePoint:
    """A López–Dahab projective point ``(X : Y : Z)``.

    ``Z == 0`` encodes the point at infinity.  The ladder uses the
    ``(X : Z)`` sub-tuple only; ``Y`` may be carried as 0 until
    y-recovery.
    """

    X: int
    Y: int
    Z: int

    @classmethod
    def infinity(cls) -> "LDProjectivePoint":
        """The group identity: any (X : Y : 0); canonically (1 : 0 : 0)."""
        return cls(1, 0, 0)

    @property
    def is_infinity(self) -> bool:
        """True when this encodes the identity."""
        return self.Z == 0

    def __repr__(self) -> str:
        if self.is_infinity:
            return "LDProjectivePoint(infinity)"
        return (
            f"LDProjectivePoint(X={hex(self.X)}, Y={hex(self.Y)}, Z={hex(self.Z)})"
        )
