"""Named NIST binary curves.

The paper's chip implements NIST K-163 ("a Koblitz curve defined over
F_2^163, which provides 80-bit security, equivalent to 1024-bit RSA",
Section 4).  B-163 and the 233-bit curves are included for the
security-scaling benches.

Domain parameters follow FIPS 186 / SEC 2.  Each named curve is
self-checked at import time: the generator must lie on the curve and
the order must be prime.  (``n * G = infinity`` is verified in the
test suite, not at import, to keep import cheap.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gf2m.field import BinaryField
from ..gf2m.params import reduction_polynomial
from .curve import BinaryEllipticCurve
from .modn import ScalarRing, is_probable_prime
from .point import AffinePoint

__all__ = ["NamedCurve", "NIST_K163", "NIST_B163", "NIST_K233", "NIST_B233",
           "TOY_B17", "CURVE_REGISTRY", "get_curve"]


@dataclass(frozen=True)
class NamedCurve:
    """A standardized curve: the group the protocols run in."""

    name: str
    curve: BinaryEllipticCurve
    generator: AffinePoint
    order: int
    cofactor: int

    @property
    def field(self) -> BinaryField:
        """The underlying binary field."""
        return self.curve.field

    @property
    def scalar_ring(self) -> ScalarRing:
        """Arithmetic modulo the (prime) group order."""
        return ScalarRing(self.order)

    @property
    def security_bits(self) -> int:
        """Approximate symmetric-equivalent security level (Pollard rho)."""
        return self.order.bit_length() // 2

    def __repr__(self) -> str:
        return f"NamedCurve({self.name}, {self.security_bits}-bit security)"


def _make(name, m, a, b, gx, gy, n, h) -> NamedCurve:
    field = BinaryField(m, reduction_polynomial(m))
    curve = BinaryEllipticCurve(field, a, b)
    generator = AffinePoint(gx, gy)
    if not curve.is_on_curve(generator):
        raise AssertionError(f"{name}: generator is not on the curve")
    if not is_probable_prime(n):
        raise AssertionError(f"{name}: order is not prime")
    return NamedCurve(name, curve, generator, n, h)


#: NIST K-163 / SEC sect163k1 — the paper's curve.
NIST_K163 = _make(
    "K-163",
    163,
    a=1,
    b=1,
    gx=0x2FE13C0537BBC11ACAA07D793DE4E6D5E5C94EEE8,
    gy=0x289070FB05D38FF58321F2E800536D538CCDAA3D9,
    n=0x4000000000000000000020108A2E0CC0D99F8A5EF,
    h=2,
)

#: NIST B-163 / SEC sect163r2 — the random curve at the same level.
NIST_B163 = _make(
    "B-163",
    163,
    a=1,
    b=0x20A601907B8C953CA1481EB10512F78744A3205FD,
    gx=0x3F0EBA16286A2D57EA0991168D4994637E8343E36,
    gy=0x0D51FBC6C71A0094FA2CDD545B11C5C0C797324F1,
    n=0x40000000000000000000292FE77E70C12A4234C33,
    h=2,
)

#: NIST K-233 / SEC sect233k1 — next Koblitz security level.
NIST_K233 = _make(
    "K-233",
    233,
    a=0,
    b=1,
    gx=0x17232BA853A7E731AF129F22FF4149563A419C26BF50A4C9D6EEFAD6126,
    gy=0x1DB537DECE819B7F70F555A67C427A8CD9BF18AEB9B56E0C11056FAE6A3,
    n=0x8000000000000000000000000000069D5BB915BCD46EFB1AD5F173ABDF,
    h=4,
)

#: NIST B-233 / SEC sect233r1.
NIST_B233 = _make(
    "B-233",
    233,
    a=1,
    b=0x066647EDE6C332C7F8C0923BB58213B333B20E9CE4281FE115F7D8F90AD,
    gx=0x0FAC9DFCBAC8313BB2139F1BB755FEF65BC391F8B36F8F8EB7371FD558B,
    gy=0x1006A08A41903350678E58528BEBF8A0BEFF867A7CA36716F7E01F81052,
    n=0x1000000000000000000000000000013E974E72F8A6922031D2603CFE0D7,
    h=2,
)

def _make_toy() -> NamedCurve:
    """A cryptographically worthless curve with the full NamedCurve shape.

    GF(2^17) with x^17 + x^3 + 1 (a primitive pentanomial-free
    trinomial), a = b = 1.  The group has 131174 = 2 * 65587 points;
    the subgroup order 65587 is prime, so every protocol invariant
    (prime order, cofactor 2, compressed-point round trips) holds —
    a K-163 session just runs ~60x faster.  Exists for the
    thousand-session soak tests of :mod:`repro.protocols.session`;
    never benchmark security claims on it.
    """
    field = BinaryField(17, (1 << 17) | (1 << 3) | 1)
    curve = BinaryEllipticCurve(field, 1, 1)
    generator = AffinePoint(0xAAAD, 0x5B2B)
    n = 65587
    if not curve.is_on_curve(generator):
        raise AssertionError("TOY-B17: generator is not on the curve")
    if not is_probable_prime(n):
        raise AssertionError("TOY-B17: order is not prime")
    return NamedCurve("TOY-B17", curve, generator, n, 2)


#: Test-scale curve for session soaks — NOT a security level.
TOY_B17 = _make_toy()

CURVE_REGISTRY = {
    c.name: c for c in (NIST_K163, NIST_B163, NIST_K233, NIST_B233,
                        TOY_B17)
}


def get_curve(name: str) -> NamedCurve:
    """Look up a named curve ("K-163", "B-163", "K-233", "B-233")."""
    try:
        return CURVE_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(CURVE_REGISTRY))
        raise KeyError(f"unknown curve {name!r}; known curves: {known}") from None
