"""Working-memory (register) accounting of scalar-mult algorithms.

Section 4 argues the algorithm choice "determines ... the size of
temporary storage": the x-only Montgomery ladder needs one coordinate
per point, so "our ECC chip uses six 163-bit registers for the whole
point multiplication.  On the contrary, the best known algorithm for
ECPM over a prime field uses 8 registers excluding a and b [6]"
(Hutter–Joye–Sierra co-Z).

This module makes that comparison explicit and machine-checkable: each
algorithm's live-value inventory, the register count it implies, and
the silicon cost via the area model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AlgorithmMemory", "MEMORY_PROFILES", "memory_profile",
           "register_area_ge"]


@dataclass(frozen=True)
class AlgorithmMemory:
    """Working-register profile of one scalar-mult algorithm."""

    name: str
    registers: int
    live_values: tuple
    notes: str

    def storage_bits(self, m: int) -> int:
        """Total working storage for an m-bit field."""
        return self.registers * m


MEMORY_PROFILES = {
    # The paper's design: X1, Z1, X2, Z2 (two x-only points), the base
    # x and one temporary.
    "mpl-xonly-koblitz": AlgorithmMemory(
        name="Montgomery ladder, x-only, b = 1 (the paper's chip)",
        registers=6,
        live_values=("X1", "Z1", "X2", "Z2", "x_base", "T"),
        notes="six m-bit registers for the whole point multiplication "
              "(paper, Section 4)",
    ),
    # Generic binary curve: sqrt(b) must be kept for the doubling.
    "mpl-xonly-generic": AlgorithmMemory(
        name="Montgomery ladder, x-only, generic b",
        registers=7,
        live_values=("X1", "Z1", "X2", "Z2", "x_base", "T", "sqrt_b"),
        notes="one extra register for sqrt(b) on B-163-class curves",
    ),
    # The prime-field comparison point the paper cites.
    "coz-prime-field": AlgorithmMemory(
        name="co-Z ladder over a prime field (Hutter-Joye-Sierra [6])",
        registers=8,
        live_values=("X1", "Y1", "X2", "Y2", "Z-shared", "x_base",
                     "T1", "T2"),
        notes="8 registers excluding curve constants a and b "
              "(paper, Section 4, citing [6])",
    ),
    # Textbook affine double-and-add, for contrast: full (x, y) points
    # plus the EEA inversion workspace dominate.
    "double-and-add-affine": AlgorithmMemory(
        name="affine double-and-add (textbook)",
        registers=8,
        live_values=("Rx", "Ry", "Px", "Py", "lambda", "inv-u", "inv-v",
                     "inv-g"),
        notes="two affine points, the slope, and the extended-Euclid "
              "workspace of the per-step field inversion",
    ),
}


def memory_profile(algorithm: str) -> AlgorithmMemory:
    """Look up an algorithm's register profile."""
    try:
        return MEMORY_PROFILES[algorithm]
    except KeyError:
        known = ", ".join(sorted(MEMORY_PROFILES))
        raise KeyError(
            f"unknown algorithm {algorithm!r}; known profiles: {known}"
        ) from None


def register_area_ge(algorithm: str, m: int = 163,
                     ge_per_flipflop: float = 6.0) -> float:
    """Silicon cost of an algorithm's working registers, in GE."""
    profile = memory_profile(algorithm)
    return profile.storage_bits(m) * ge_per_flipflop
