"""Koblitz-curve arithmetic: the Frobenius endomorphism and tau-adic NAF.

The paper's chip uses a Koblitz curve over GF(2^163) (Section 4).
Koblitz curves ``y^2 + xy = x^3 + a*x^2 + 1`` with ``a`` in {0, 1} are
defined over GF(2), so the Frobenius map ``tau(x, y) = (x^2, y^2)`` is
a curve endomorphism satisfying ``tau^2 + 2 = mu * tau`` with
``mu = (-1)^(1 - a)``.  Replacing doublings by (nearly free) squarings
gives the classic Koblitz speed-up — an optimization the paper's
design deliberately does NOT use for the secret scalar (the tau-NAF
digit sequence is key-dependent, i.e. an SPA leak), but which this
module implements as the efficiency upper bound for the
algorithm-level benches.
"""

from __future__ import annotations

from typing import Optional

from .curve import BinaryEllipticCurve
from .point import AffinePoint

__all__ = ["is_koblitz", "frobenius", "tnaf", "tnaf_multiply"]


def is_koblitz(curve: BinaryEllipticCurve) -> bool:
    """True iff the curve is a Koblitz (anomalous binary) curve."""
    return curve.b == 1 and curve.a in (0, 1)


def _mu(curve: BinaryEllipticCurve) -> int:
    """The trace of Frobenius sign: mu = (-1)^(1-a)."""
    return 1 if curve.a == 1 else -1


def frobenius(curve: BinaryEllipticCurve, point: AffinePoint) -> AffinePoint:
    """Apply the Frobenius endomorphism tau(x, y) = (x^2, y^2)."""
    if point.is_infinity:
        return point
    f = curve.field
    return AffinePoint(f.square_raw(point.x), f.square_raw(point.y))


def tnaf(k: int, mu: int) -> list:
    """tau-adic non-adjacent form of the integer ``k`` (LSD first).

    Repeatedly divides the element ``r0 + r1*tau`` of Z[tau] by tau,
    choosing digits in {-1, 0, 1} so that no two adjacent digits are
    non-zero (Solinas' algorithm).  The expansion of a plain integer
    has roughly twice the length of the scalar; production Koblitz
    implementations first reduce k modulo (tau^m - 1), which is left
    as the documented gap between this reference and a deployed one.
    """
    if mu not in (1, -1):
        raise ValueError("mu must be +1 or -1")
    r0, r1 = k, 0
    digits = []
    while r0 != 0 or r1 != 0:
        if r0 & 1:
            u = 2 - ((r0 - 2 * r1) % 4)
            r0 -= u
        else:
            u = 0
        digits.append(u)
        # divide (r0 + r1*tau) by tau using tau^2 = mu*tau - 2:
        # (r0 + r1*tau)/tau = (r1 + mu*r0/2) - (r0/2)*tau
        r0, r1 = r1 + mu * (r0 // 2), -(r0 // 2)
    return digits


def tnaf_multiply(
    curve: BinaryEllipticCurve,
    k: int,
    point: AffinePoint,
    operations: Optional[list] = None,
) -> AffinePoint:
    """Scalar multiplication via the tau-adic NAF (Koblitz curves only).

    Evaluates ``sum u_i * tau^i (P)`` Horner-style: doublings are
    replaced by Frobenius applications (two field squarings).  When
    ``operations`` is a list, appends ``F`` per Frobenius and ``A``/
    ``S`` per add/subtract — a visibly key-dependent sequence.
    """
    if not is_koblitz(curve):
        raise ValueError("tau-adic multiplication requires a Koblitz curve")
    if k == 0 or point.is_infinity:
        return AffinePoint.infinity()
    if k < 0:
        return tnaf_multiply(curve, -k, curve.negate(point), operations)
    digits = tnaf(k, _mu(curve))
    result = AffinePoint.infinity()
    for u in reversed(digits):
        result = frobenius(curve, result)
        if operations is not None:
            operations.append("F")
        if u == 1:
            result = curve.add(result, point)
            if operations is not None:
                operations.append("A")
        elif u == -1:
            result = curve.subtract(result, point)
            if operations is not None:
                operations.append("S")
    return result
