"""The design-space specification: axes, constraints, objectives.

A :class:`DesignSpaceSpec` is the explorer's single input: the
Cartesian axes (digit size x countermeasure set x Vdd x frequency on
one curve), the constraints that carve the feasible region, and the
objectives that rank it.  The defaults are the paper's own question —
the d ∈ {1,2,4,8,16} sweep of Table "design space", the three-voltage
three-frequency grid, countermeasures on vs off, the 105 ms pacing
deadline, and security as a hard floor — so a bare spec reproduces
the published d=4 / 1.0 V / 847.5 kHz optimum.

Two digests matter, and they are deliberately different:

* :meth:`DesignSpaceSpec.digest` keys the *exploration* (what
  ``pareto.json`` answers for),
* :meth:`DesignSpaceSpec.config_digest` keys one *measurement* — it
  hashes only what the simulation depends on (curve, digit size,
  countermeasure flags, white-box settings), never the grid or the
  constraints, so changing the latency limit or adding a voltage
  re-prices the same cached measurements instead of re-simulating.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from ..adversary.defense import DEFENSE_SETS
from ..arch.control import BalancedEncoding, UnbalancedEncoding
from ..arch.coprocessor import CoprocessorConfig, InvalidDigitSizeError
from ..backends.base import parse_backend_point
from ..ec.curves import get_curve
from .errors import SpaceValidationError
from .pareto import OBJECTIVES

__all__ = ["COUNTERMEASURE_SETS", "DSE_SCHEMA_VERSION", "DesignSpaceSpec",
           "MeasurementJob"]

DSE_SCHEMA_VERSION = 1

#: Named countermeasure sets -> the config flags they resolve to.
#: Only the flags the paper's white-box evaluation exercises vary
#: here; the always-on countermeasures (constant-time ISA, fixed
#: iteration count, secure zone) are part of every configuration.
COUNTERMEASURE_SETS = {
    "full": {"randomize_z": True, "mux_encoding": "balanced"},
    "no-rpc": {"randomize_z": False, "mux_encoding": "balanced"},
    "unbalanced-mux": {"randomize_z": True, "mux_encoding": "unbalanced"},
    "none": {"randomize_z": False, "mux_encoding": "unbalanced"},
}

_ENCODINGS = {"balanced": BalancedEncoding, "unbalanced": UnbalancedEncoding}


@dataclass(frozen=True)
class MeasurementJob:
    """One simulation the explorer needs: a (digit, countermeasures)
    cell, or — when the backend axis is active — one symmetric-engine
    workload.  ``on_grid`` is False for the synthetic calibration job
    added when the reference design is not itself one of the cells,
    and for symmetric-engine jobs (their rows are derived separately
    from the ECC grid).  ``backend`` is ``"ecc"`` for every classic
    cell, so pre-axis jobs and their digests are unchanged."""

    index: int
    digit_size: int
    countermeasures: str
    is_reference: bool = False
    on_grid: bool = True
    backend: str = "ecc"


@dataclass(frozen=True)
class DesignSpaceSpec:
    """What to explore, under which constraints, ranked how.

    Duck-types the campaign supervisor's spec protocol
    (``to_dict`` / ``digest`` / ``seed``), so measurement attempts run
    under the same retry/timeout/quarantine machinery as trace
    acquisition.
    """

    digit_sizes: tuple = (1, 2, 4, 8, 16)
    vdd_volts: tuple = (0.8, 1.0, 1.2)
    frequencies_hz: tuple = (100e3, 847.5e3, 4e6)
    countermeasures: tuple = ("full", "none")
    defenses: tuple = ()
    checkpoint_intervals: tuple = ()
    backends: tuple = ()
    curve: str = "K-163"
    seed: int = 0
    whitebox: bool = False
    whitebox_traces: int = 60
    max_latency_s: Optional[float] = 0.105
    max_area_ge: Optional[float] = None
    min_security: Optional[float] = 1.0
    objectives: tuple = ("area_energy", "power", "security")
    schema_version: int = DSE_SCHEMA_VERSION

    def __post_init__(self):
        for name in ("digit_sizes", "vdd_volts", "frequencies_hz",
                     "countermeasures", "objectives"):
            value = tuple(getattr(self, name))
            object.__setattr__(self, name, value)
            if not value:
                raise SpaceValidationError(f"{name} must not be empty")
            if len(set(value)) != len(value):
                raise SpaceValidationError(f"{name} has duplicates: {value}")
        if self.schema_version != DSE_SCHEMA_VERSION:
            raise SpaceValidationError(
                f"unsupported schema version {self.schema_version} "
                f"(this build speaks {DSE_SCHEMA_VERSION})")
        for v in self.vdd_volts:
            if not v > 0:
                raise SpaceValidationError(f"Vdd must be positive, got {v}")
        for f in self.frequencies_hz:
            if not f > 0:
                raise SpaceValidationError(
                    f"frequency must be positive, got {f}")
        for cm in self.countermeasures:
            if cm not in COUNTERMEASURE_SETS:
                known = ", ".join(sorted(COUNTERMEASURE_SETS))
                raise SpaceValidationError(
                    f"unknown countermeasure set {cm!r}; known: {known}")
        defenses = tuple(self.defenses)
        object.__setattr__(self, "defenses", defenses)
        if len(set(defenses)) != len(defenses):
            raise SpaceValidationError(
                f"defenses has duplicates: {defenses}")
        for defense in defenses:
            if defense not in DEFENSE_SETS:
                known = ", ".join(sorted(DEFENSE_SETS))
                raise SpaceValidationError(
                    f"unknown defense set {defense!r}; known: {known}")
        intervals = tuple(self.checkpoint_intervals)
        object.__setattr__(self, "checkpoint_intervals", intervals)
        if len(set(intervals)) != len(intervals):
            raise SpaceValidationError(
                f"checkpoint_intervals has duplicates: {intervals}")
        for interval in intervals:
            if not isinstance(interval, int) or interval < 1:
                raise SpaceValidationError(
                    "checkpoint intervals must be positive integers, "
                    f"got {interval!r}")
        backends = tuple(self.backends)
        object.__setattr__(self, "backends", backends)
        if len(set(backends)) != len(backends):
            raise SpaceValidationError(
                f"backends has duplicates: {backends}")
        for label in backends:
            try:
                parse_backend_point(label)
            except ValueError as exc:
                raise SpaceValidationError(str(exc)) from None
        for objective in self.objectives:
            if objective not in OBJECTIVES:
                known = ", ".join(sorted(OBJECTIVES))
                raise SpaceValidationError(
                    f"unknown objective {objective!r}; known: {known}")
        if "energy_per_message" in self.objectives and not backends:
            raise SpaceValidationError(
                "objective 'energy_per_message' needs the backend axis "
                "(only backend rows carry a per-message energy)")
        try:
            domain = get_curve(self.curve)
        except KeyError as exc:
            raise SpaceValidationError(str(exc)) from None
        for d in self.digit_sizes:
            try:
                CoprocessorConfig(domain=domain, digit_size=d)
            except InvalidDigitSizeError as exc:
                raise SpaceValidationError(str(exc)) from None
        if self.whitebox_traces < 2:
            raise SpaceValidationError(
                "whitebox_traces must be at least 2")

    # -- supervisor spec protocol --------------------------------------

    def to_dict(self) -> dict:
        # Opt-in axes are omitted when empty so pre-axis specs keep
        # their digests (and their pareto.json files) byte-identical.
        extra = {}
        if self.defenses:
            extra["defenses"] = list(self.defenses)
        if self.checkpoint_intervals:
            extra["checkpoint_intervals"] = list(self.checkpoint_intervals)
        if self.backends:
            extra["backends"] = list(self.backends)
        return {
            **extra,
            "digit_sizes": list(self.digit_sizes),
            "vdd_volts": list(self.vdd_volts),
            "frequencies_hz": list(self.frequencies_hz),
            "countermeasures": list(self.countermeasures),
            "curve": self.curve,
            "seed": self.seed,
            "whitebox": self.whitebox,
            "whitebox_traces": self.whitebox_traces,
            "max_latency_s": self.max_latency_s,
            "max_area_ge": self.max_area_ge,
            "min_security": self.min_security,
            "objectives": list(self.objectives),
            "schema_version": self.schema_version,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DesignSpaceSpec":
        kwargs = dict(data)
        for name in ("digit_sizes", "vdd_volts", "frequencies_hz",
                     "countermeasures", "objectives", "defenses",
                     "checkpoint_intervals", "backends"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)

    def digest(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    # -- measurement planning ------------------------------------------

    @property
    def domain(self):
        return get_curve(self.curve)

    def measurement_jobs(self) -> list:
        """The simulations this space needs, reference flagged.

        One job per (digit, countermeasure-set) cell — the operating
        point is *not* part of a job because voltage/frequency scaling
        is arithmetic on the measurement.  The reference design
        (digit 4, full countermeasures) calibrates the energy model;
        when it is not one of the cells, a synthetic off-grid job is
        appended so calibration never depends on the grid's shape.
        """
        jobs = []
        for d in self.digit_sizes:
            for cm in self.countermeasures:
                jobs.append(MeasurementJob(
                    index=len(jobs), digit_size=d, countermeasures=cm,
                    is_reference=(d == 4 and cm == "full"),
                ))
        if not any(job.is_reference for job in jobs):
            jobs.append(MeasurementJob(
                index=len(jobs), digit_size=4, countermeasures="full",
                is_reference=True, on_grid=False,
            ))
        # Symmetric engines the backend axis needs, one measurement
        # each — appended after every ECC cell so pre-axis job indices
        # (and the cells already cached under them) never move.
        for engine in self._symmetric_engines():
            jobs.append(MeasurementJob(
                index=len(jobs), digit_size=0, countermeasures="n/a",
                on_grid=False, backend=engine,
            ))
        return jobs

    def backend_points(self) -> list:
        """The parsed backend axis (empty for a classic ECC space)."""
        return [parse_backend_point(label) for label in self.backends]

    def _symmetric_engines(self) -> list:
        """Distinct symmetric engines the axis prices, in axis order."""
        engines = []
        for point in self.backend_points():
            if point.engine is not None and point.engine not in engines:
                engines.append(point.engine)
        return engines

    def symmetric_jobs(self) -> dict:
        """engine name -> its :class:`MeasurementJob`."""
        return {job.backend: job for job in self.measurement_jobs()
                if job.backend != "ecc"}

    def reference_job(self) -> MeasurementJob:
        for job in self.measurement_jobs():
            if job.is_reference:
                return job
        raise AssertionError("measurement_jobs always includes a reference")

    def grid_jobs(self) -> list:
        return [job for job in self.measurement_jobs() if job.on_grid]

    def coprocessor_config(self, job: MeasurementJob) -> CoprocessorConfig:
        flags = COUNTERMEASURE_SETS[job.countermeasures]
        return CoprocessorConfig(
            domain=self.domain,
            digit_size=job.digit_size,
            randomize_z=flags["randomize_z"],
            mux_encoding=_ENCODINGS[flags["mux_encoding"]](),
        )

    def config_digest(self, job: MeasurementJob) -> str:
        """Cache key of one measurement.

        Hashes only what the simulation's bytes depend on — curve,
        digit size, countermeasure flags, white-box settings — so the
        cache survives changes to the grid, the constraints, and the
        objectives.
        """
        if job.backend != "ecc":
            # A symmetric engine's workload depends on nothing but the
            # engine and the canonical message size — not the curve,
            # grid or constraints — so one cached cell serves every
            # space that prices that engine.
            from ..backends.evaluation import MESSAGE_BYTES

            payload = json.dumps({
                "kind": "dse-backend-measurement",
                "schema": self.schema_version,
                "backend": job.backend,
                "message_bytes": MESSAGE_BYTES,
            }, sort_keys=True).encode()
            return hashlib.sha256(payload).hexdigest()[:16]
        whitebox = None
        if self.whitebox:
            whitebox = {"traces": self.whitebox_traces, "seed": self.seed}
        payload = json.dumps({
            "kind": "dse-measurement",
            "schema": self.schema_version,
            "curve": self.curve,
            "digit_size": job.digit_size,
            "countermeasures": COUNTERMEASURE_SETS[job.countermeasures],
            "whitebox": whitebox,
        }, sort_keys=True).encode()
        return hashlib.sha256(payload).hexdigest()[:16]

    @property
    def grid_size(self) -> int:
        """Rows of the evaluated grid (cells x operating points,
        multiplied by the defense postures, checkpoint intervals and
        backend points when those axes are active; symmetric-only
        backends add one row per operating point instead of one per
        ECC cell)."""
        base_cells = (len(self.grid_jobs())
                      * max(1, len(self.defenses))
                      * max(1, len(self.checkpoint_intervals)))
        points = len(self.vdd_volts) * len(self.frequencies_hz)
        if not self.backends:
            return base_cells * points
        ecc_like = sum(1 for p in self.backend_points()
                       if p.kind != "symmetric")
        symmetric = sum(1 for p in self.backend_points()
                        if p.kind == "symmetric")
        return base_cells * points * ecc_like + symmetric * points
