"""The exploration engine: plan, measure, price, rank, serialize.

The run is split the same way the electrical model is:

1. **Measure** — every (digit, countermeasure) cell missing from the
   digest-keyed cache is simulated, in parallel, under the campaign
   supervisor (spawn-per-attempt, watchdog, retry, quarantine,
   artifact integrity check).  A cached cell is never re-simulated.
2. **Analyze** — pure arithmetic: calibrate the per-toggle energy on
   the reference cell, price every cell at every (Vdd, f) operating
   point, score security, apply the constraints, compute the Pareto
   front.

Because step 2 is deterministic arithmetic over cached bytes and the
row order is the spec's axis order (never completion order), the
serialized ``pareto.json`` is byte-identical across worker counts,
re-runs and resumes — the determinism contract the CI smoke job
enforces with ``cmp``.
"""

from __future__ import annotations

import contextlib
import json
import os
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Optional

from ..backends.evaluation import HANDSHAKE_POINT_MULTIPLICATIONS
from ..campaign.acquire import default_workers
from ..campaign.store import _atomic_write_bytes
from ..campaign.supervisor import (
    FailureLog,
    Quarantine,
    RetryPolicy,
    ShardSupervisor,
)
from ..obs import runtime as obs_runtime
from ..power.energy import EnergyModel, energy_per_toggle_for_activity
from ..power.technology import OperatingPoint
from ..security.score import score_design
from .errors import MissingMeasurementError
from .evaluate import load_measurement, run_measurement_attempt
from .pareto import constraint_violations, pareto_front
from .space import DesignSpaceSpec

__all__ = ["ExplorationEngine", "ExplorationResult", "analyze_space",
           "PARETO_NAME", "POINTS_NAME", "SPACE_NAME"]

SPACE_NAME = "space.json"
POINTS_NAME = "points.json"
PARETO_NAME = "pareto.json"


def _hz_label(frequency_hz: float) -> str:
    if frequency_hz >= 1e6 and frequency_hz % 1e6 == 0:
        return f"{frequency_hz / 1e6:g}MHz"
    if frequency_hz >= 1e3:
        return f"{frequency_hz / 1e3:g}kHz"
    return f"{frequency_hz:g}Hz"


def _checkpoint_record_bytes(field_bits: int) -> int:
    """Size of one canonical ladder-checkpoint record.

    The engine checkpoints ``{"epoch", "target", "state"}`` where the
    state carries eight hex-encoded field/scalar registers plus the
    bit index (see :meth:`repro.ec.ladder.LadderState.to_dict`); the
    JSON framing around them is constant.  Deterministic arithmetic,
    so priced rows stay byte-identical across runs.
    """
    hex_chars = (field_bits + 3) // 4
    return 8 * hex_chars + 130


def _checkpoint_pricing(spec: DesignSpaceSpec, interval: int,
                        energy_uj: float) -> dict:
    """The intermittent-power bill of one operating point.

    * ``checkpoint_uj`` — NVM staging + commit of a ladder record
      every ``interval`` steps across one point multiplication;
    * ``reexec_uj`` — the expected re-execution loss of one power cut
      (uniformly placed, so half an interval of ladder work on
      average, priced at this point's per-step energy).

    Both fold into the row's ranked ``energy_uj``: the explorer sees
    the trade-off the interval knob actually buys — short intervals
    pay NVM energy, long ones pay re-execution.
    """
    from ..intermittent import NVMModel

    nvm = NVMModel()
    steps = max(1, spec.domain.order.bit_length() - 1)
    record = _checkpoint_record_bytes(spec.domain.field.m)
    per_checkpoint_uj = (nvm.stage_energy_j(record)
                         + nvm.commit_energy_j()) * 1e6
    checkpoint_uj = (steps // interval) * per_checkpoint_uj
    reexec_uj = (interval / 2.0) * (energy_uj / steps)
    return {
        "checkpoint_interval": interval,
        "checkpoint_uj": checkpoint_uj,
        "reexec_uj": reexec_uj,
    }


def _symmetric_only_rows(spec: DesignSpaceSpec, model: EnergyModel,
                         backend_points: list, sym_data: dict) -> list:
    """Rows for the symmetric-only backend points.

    A symmetric-only design has no ECC coprocessor, so it is priced
    off the (digit, countermeasure) grid: one row per (engine, Vdd,
    frequency).  Its security posture is scored with the benefit of
    the doubt on side channels (the reference cell's countermeasure
    flags) — even so, an unbounded key lifetime opens the
    ``key-compromise`` door and the missing Peeters-Hermans handshake
    opens ``tracking``, which is why a pure symmetric design can never
    meet the paper's security floor of 1.0.  The defense and
    checkpoint axes are ECC-posture knobs and do not multiply these
    rows.
    """
    rows = []
    reference_config = None
    for bp in backend_points:
        if bp.kind != "symmetric":
            continue
        sym = sym_data.get(bp.engine)
        if sym is None:
            continue  # quarantined engine cell (skip_missing path)
        if reference_config is None:
            reference_config = spec.coprocessor_config(
                spec.reference_job())
        for vdd in spec.vdd_volts:
            score = score_design(
                reference_config, vdd=vdd,
                session={"rekey_epoch": None,
                         "private_identification": False})
            for frequency_hz in spec.frequencies_hz:
                op = OperatingPoint(frequency_hz=frequency_hz, vdd=vdd)
                report = model.report_activity(
                    sym["consumed"], sym["cycles"], op)
                area_ge = sym["area"]["total"]
                energy_uj = report.energy_joules * 1e6
                row = {
                    "id": (f"{bp.label}-{vdd:g}V-"
                           f"{_hz_label(frequency_hz)}"),
                    "backend": bp.label,
                    "digit_size": 0,
                    "countermeasures": "n/a",
                    "vdd": vdd,
                    "frequency_hz": frequency_hz,
                    "area_ge": area_ge,
                    "cycles": sym["cycles"],
                    "latency_s": report.duration_seconds,
                    "power_uw": report.power_watts * 1e6,
                    "energy_uj": energy_uj,
                    "energy_uj_per_message": energy_uj,
                    "area_energy": area_ge * energy_uj,
                    "security": score.value,
                    "security_open": list(score.open_doors),
                    "pareto": False,
                }
                row["violations"] = constraint_violations(
                    row,
                    max_latency_s=spec.max_latency_s,
                    max_area_ge=spec.max_area_ge,
                    min_security=spec.min_security,
                )
                row["feasible"] = not row["violations"]
                rows.append(row)
    return rows


def analyze_space(directory: str, spec: DesignSpaceSpec,
                  skip_missing: bool = False) -> tuple:
    """Price the cached measurements into (rows, front).

    Pure arithmetic over the measurement cache — no simulation.  The
    reference cell must be cached (it calibrates the energy model);
    other missing cells raise :class:`MissingMeasurementError` unless
    ``skip_missing`` (the engine's degraded path, where quarantined
    cells simply produce no rows).
    """
    reference = spec.reference_job()
    ref_data = load_measurement(directory, spec.config_digest(reference))
    if ref_data is None:
        raise MissingMeasurementError(
            "the reference measurement (digit 4, full countermeasures) "
            "is not cached — nothing to calibrate the energy model on")
    ept = energy_per_toggle_for_activity(ref_data["consumed"],
                                         ref_data["cycles"])
    model = EnergyModel(ept)

    backend_points = spec.backend_points()
    sym_data = {}
    for engine_name, sym_job in spec.symmetric_jobs().items():
        data = load_measurement(directory, spec.config_digest(sym_job))
        if data is None and not skip_missing:
            raise MissingMeasurementError(
                f"no cached measurement for the {engine_name} engine — "
                f"run `repro dse explore` first")
        if data is not None:
            sym_data[engine_name] = data

    rows = []
    for job in spec.grid_jobs():
        data = load_measurement(directory, spec.config_digest(job))
        if data is None:
            if skip_missing:
                continue
            raise MissingMeasurementError(
                f"no cached measurement for digit {job.digit_size} / "
                f"{job.countermeasures} — run `repro dse explore` first")
        config = spec.coprocessor_config(job)
        findings = data.get("whitebox") or ()
        for vdd in spec.vdd_volts:
            # A defense posture never touches the simulated bytes —
            # config_digest ignores it — so adding the axis re-prices
            # the same cached cells instead of re-simulating them.
            # Neither a defense posture nor a checkpoint interval
            # touches the simulated bytes — config_digest ignores both
            # — so activating these axes re-prices the same cached
            # cells instead of re-simulating them.
            for defense in (spec.defenses or (None,)):
                for interval in (spec.checkpoint_intervals or (None,)):
                    checkpoint = None
                    if interval is not None:
                        checkpoint = {"durable": True,
                                      "checkpoint_interval": interval}
                    score = score_design(config, vdd=vdd,
                                         findings=findings,
                                         defenses=defense,
                                         checkpoint=checkpoint)
                    # One score per ECC-carrying backend point: the
                    # session posture (rekey epoch) is the only thing
                    # that differs, and it is frequency-independent.
                    point_scores = {}
                    for bp in backend_points:
                        if bp.kind == "symmetric":
                            continue
                        epoch = 1 if bp.kind == "ecc" else bp.epoch
                        point_scores[bp.label] = score_design(
                            config, vdd=vdd, findings=findings,
                            defenses=defense, checkpoint=checkpoint,
                            session={"rekey_epoch": epoch,
                                     "private_identification": True})
                    for frequency_hz in spec.frequencies_hz:
                        point = OperatingPoint(
                            frequency_hz=frequency_hz, vdd=vdd)
                        report = model.report_activity(
                            data["consumed"], data["cycles"], point)
                        area_ge = data["area"]["total"]
                        energy_uj = report.energy_joules * 1e6
                        row_id = (f"d{job.digit_size}-"
                                  f"{job.countermeasures}-"
                                  f"{vdd:g}V-{_hz_label(frequency_hz)}")
                        row = {
                            "id": row_id,
                            "digit_size": job.digit_size,
                            "countermeasures": job.countermeasures,
                            "vdd": vdd,
                            "frequency_hz": frequency_hz,
                            "area_ge": area_ge,
                            "cycles": data["cycles"],
                            "latency_s": report.duration_seconds,
                            "power_uw": report.power_watts * 1e6,
                            "energy_uj": energy_uj,
                            "area_energy": area_ge * energy_uj,
                            "security": score.value,
                            "security_open": list(score.open_doors),
                            "pareto": False,
                        }
                        if defense is not None:
                            row["id"] = f"{row['id']}-{defense}"
                            row["defense"] = defense
                        if interval is not None:
                            pricing = _checkpoint_pricing(
                                spec, interval, energy_uj)
                            row.update(pricing)
                            row["energy_uj"] = (energy_uj
                                                + pricing["checkpoint_uj"]
                                                + pricing["reexec_uj"])
                            row["area_energy"] = (area_ge
                                                  * row["energy_uj"])
                            row["id"] = f"{row['id']}-ck{interval}"
                        if not backend_points:
                            row["violations"] = constraint_violations(
                                row,
                                max_latency_s=spec.max_latency_s,
                                max_area_ge=spec.max_area_ge,
                                min_security=spec.min_security,
                            )
                            row["feasible"] = not row["violations"]
                            rows.append(row)
                            continue
                        # Backend axis: re-price this operating point
                        # once per ECC-carrying backend point.  The
                        # handshake is the Peeters-Hermans pair of
                        # point multiplications; a hybrid amortizes it
                        # over its epoch and adds the symmetric
                        # engine's per-message bill at the same
                        # operating point (same calibrated per-toggle
                        # energy — that is the whole point of
                        # EngineTrace sharing the toggle unit).
                        handshake_uj = (HANDSHAKE_POINT_MULTIPLICATIONS
                                        * row["energy_uj"])
                        for bp in backend_points:
                            if bp.kind == "symmetric":
                                continue
                            if bp.engine is not None \
                                    and bp.engine not in sym_data:
                                continue  # quarantined engine cell
                            priced = dict(row)
                            pscore = point_scores[bp.label]
                            priced["security"] = pscore.value
                            priced["security_open"] = list(
                                pscore.open_doors)
                            priced["backend"] = bp.label
                            priced["id"] = (
                                f"{row['id']}-"
                                f"{bp.label.replace(':', '-')}")
                            if bp.kind == "ecc":
                                priced["energy_uj_per_message"] = \
                                    handshake_uj
                            else:
                                sym = sym_data[bp.engine]
                                sym_report = model.report_activity(
                                    sym["consumed"], sym["cycles"],
                                    point)
                                message_uj = (sym_report.energy_joules
                                              * 1e6)
                                priced["energy_uj_per_message"] = (
                                    handshake_uj / bp.epoch
                                    + message_uj)
                                priced["area_ge"] = (
                                    row["area_ge"]
                                    + sym["area"]["total"])
                                priced["area_energy"] = (
                                    priced["area_ge"]
                                    * priced["energy_uj"])
                            priced["violations"] = constraint_violations(
                                priced,
                                max_latency_s=spec.max_latency_s,
                                max_area_ge=spec.max_area_ge,
                                min_security=spec.min_security,
                            )
                            priced["feasible"] = not priced["violations"]
                            rows.append(priced)
    rows.extend(_symmetric_only_rows(spec, model, backend_points,
                                     sym_data))
    feasible = [row for row in rows if row["feasible"]]
    front = pareto_front(feasible, spec.objectives)
    for row in front:
        row["pareto"] = True
    return rows, front


@dataclass
class ExplorationResult:
    """What one engine run produced (and where it lives)."""

    spec: DesignSpaceSpec
    rows: list
    front: list
    evaluated: int
    cached: int
    quarantined: list = dataclass_field(default_factory=list)
    directory: str = ""

    @property
    def outcome(self) -> str:
        return "degraded" if self.quarantined else "clean"

    def summary(self) -> str:
        feasible = sum(1 for row in self.rows if row["feasible"])
        lines = [
            f"design space: {len(self.rows)} operating points "
            f"({self.evaluated} simulated, {self.cached} cached cells)",
            f"feasible: {feasible}   Pareto-optimal: {len(self.front)}",
        ]
        for row in self.front:
            per_message = ""
            if "energy_uj_per_message" in row:
                per_message = (f", "
                               f"{row['energy_uj_per_message']:.3f} "
                               f"uJ/msg")
            lines.append(
                f"  * {row['id']}: {row['area_ge']:.0f} GE, "
                f"{row['latency_s'] * 1e3:.1f} ms, "
                f"{row['power_uw']:.1f} uW, {row['energy_uj']:.2f} uJ, "
                f"security {row['security']:.3f}{per_message}")
        if self.quarantined:
            lines.append(
                "quarantined cells: "
                + ", ".join(str(i) for i in self.quarantined)
                + "  (degraded — `repro dse explore` again after "
                  "`repro campaign doctor --clear`)")
        return "\n".join(lines)


class ExplorationEngine:
    """Coordinates one exploration: plan, fan out, analyze, serialize.

    Parameters
    ----------
    directory:
        Exploration directory (created if needed); holds the
        measurement cache, ``space.json``, ``points.json`` and
        ``pareto.json``.
    spec:
        The design space (axes, constraints, objectives).
    workers:
        Process count (1 = inline); None picks from the core count.
    shard_timeout:
        Watchdog seconds per measurement attempt (process mode only).
    retry_policy:
        Campaign :class:`RetryPolicy`; None uses the defaults.
    task:
        The measurement callable (tests inject failing ones); must be
        picklable for process mode.
    """

    def __init__(self, directory: str, spec: DesignSpaceSpec,
                 workers: Optional[int] = None,
                 shard_timeout: Optional[float] = None,
                 retry_policy: Optional[RetryPolicy] = None,
                 task: Callable = run_measurement_attempt):
        self.directory = str(directory)
        self.spec = spec
        self.workers = default_workers(workers)
        self.shard_timeout = shard_timeout
        self.retry_policy = retry_policy or RetryPolicy()
        self.task = task
        self.failure_log = FailureLog(self.directory)
        self.quarantine = Quarantine(self.directory)
        self.outcome: Optional[str] = None

    def plan(self) -> tuple:
        """(cached job indices, pending job indices)."""
        cached, pending = [], []
        for job in self.spec.measurement_jobs():
            digest = self.spec.config_digest(job)
            if load_measurement(self.directory, digest) is None:
                pending.append(job.index)
            else:
                cached.append(job.index)
        return cached, pending

    def run(self) -> ExplorationResult:
        os.makedirs(self.directory, exist_ok=True)
        _atomic_write_bytes(
            os.path.join(self.directory, SPACE_NAME),
            json.dumps(self.spec.to_dict(), indent=1,
                       sort_keys=True).encode(),
        )
        obs = obs_runtime.current()
        with contextlib.ExitStack() as stack:
            root_span = None
            if obs is not None:
                # key=0 and no parent: the id every measurement worker
                # independently derives as its parent.
                root_span = stack.enter_context(obs.tracer.span(
                    "dse.explore", key=0,
                    spec=self.spec.digest(),
                    cells=len(self.spec.measurement_jobs()),
                    grid=self.spec.grid_size,
                ))
            cached, pending = self.plan()
            held = [i for i in self.quarantine.indices()
                    if i in set(pending)]
            attemptable = [i for i in pending if i not in set(held)]
            completed: list = []
            walls: list = []
            quarantined: list = list(held)
            if attemptable:
                def on_success(record: dict, attempt: int) -> None:
                    completed.append(record["index"])
                    walls.append(record.get("wall_seconds", 0.0))

                supervisor = ShardSupervisor(
                    self.spec, self.directory,
                    workers=min(self.workers, len(attemptable)) or 1,
                    use_processes=self.workers > 1,
                    policy=self.retry_policy,
                    shard_timeout=self.shard_timeout,
                    on_success=on_success,
                    on_event=self._on_failure_event,
                    task=self.task,
                )
                result = supervisor.run(attemptable)
                quarantined = sorted(set(held) | set(result.quarantined))
            rows, front = analyze_space(self.directory, self.spec,
                                        skip_missing=True)
            self._serialize(rows, front)
            self.outcome = "degraded" if quarantined else "clean"
            if obs is not None:
                self._record_run_metrics(obs, completed, cached,
                                         quarantined, walls, rows, front)
                root_span.set(outcome=self.outcome,
                              simulated=len(completed),
                              cached=len(cached),
                              front=len(front))
            return ExplorationResult(
                spec=self.spec, rows=rows, front=front,
                evaluated=len(completed), cached=len(cached),
                quarantined=quarantined, directory=self.directory,
            )

    # ------------------------------------------------------------------

    def _serialize(self, rows: list, front: list) -> None:
        """Write points.json / pareto.json, sorted keys, atomic.

        Rows are in spec-axis order and every value is arithmetic on
        cached bytes, so these files are byte-identical across worker
        counts and resumes.
        """
        spec_digest = self.spec.digest()
        constraints = {
            "max_latency_s": self.spec.max_latency_s,
            "max_area_ge": self.spec.max_area_ge,
            "min_security": self.spec.min_security,
        }
        points = {
            "schema": self.spec.schema_version,
            "spec_digest": spec_digest,
            "rows": rows,
        }
        pareto = {
            "schema": self.spec.schema_version,
            "spec_digest": spec_digest,
            "objectives": list(self.spec.objectives),
            "constraints": constraints,
            "front": front,
        }
        for name, payload in ((POINTS_NAME, points), (PARETO_NAME, pareto)):
            _atomic_write_bytes(
                os.path.join(self.directory, name),
                json.dumps(payload, indent=1, sort_keys=True).encode(),
            )

    def _on_failure_event(self, event) -> None:
        obs = obs_runtime.current()
        if obs is not None:
            obs.registry.counter(
                "repro_dse_failures_total",
                "failed measurement attempts by kind and action",
            ).inc(kind=event.kind, action=event.action)

    def _record_run_metrics(self, obs, completed, cached, quarantined,
                            walls, rows, front) -> None:
        """Fold worker snapshots + run totals into the coordinator.

        Shard snapshots merge in job order (not completion order), so
        the final registry is identical whatever the scheduling.
        """
        obs_runtime.merge_shard_metrics(obs, sorted(completed))
        registry = obs.registry
        registry.counter(
            "repro_dse_cache_hits_total",
            "measurement cells served from the cache",
        ).inc(len(cached))
        registry.gauge(
            "repro_dse_grid_points", "operating points evaluated",
        ).set(len(rows))
        registry.gauge(
            "repro_dse_front_size", "Pareto-optimal operating points",
        ).set(len(front))
        registry.gauge(
            "repro_dse_quarantined", "measurement cells quarantined",
        ).set(len(quarantined))
        hist = registry.histogram(
            "repro_dse_measurement_wall_seconds",
            "per-cell simulation wall clock",
            buckets=(0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0),
        )
        for wall in walls:
            hist.observe(wall)
