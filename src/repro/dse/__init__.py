"""Design-space exploration with security as a first-class axis.

The paper's thesis operationalized: enumerate digit size x
countermeasure set x Vdd x frequency, measure each cell once
(cycle-level simulation, digest-keyed cache, supervised parallel
workers), price every operating point arithmetically, score security
from the pyramid and optional white-box findings, and compute the
multi-objective Pareto front under the paper's constraints.  A bare
:class:`DesignSpaceSpec` reproduces the published d=4 / 1.0 V /
847.5 kHz optimum as a constrained Pareto query.
"""

from .engine import (
    ExplorationEngine,
    ExplorationResult,
    PARETO_NAME,
    POINTS_NAME,
    SPACE_NAME,
    analyze_space,
)
from .errors import (
    CacheIntegrityError,
    DseError,
    MissingMeasurementError,
    SpaceValidationError,
)
from .evaluate import (
    MEASUREMENTS_DIRNAME,
    load_measurement,
    measurement_relpath,
    run_measurement_attempt,
)
from .pareto import OBJECTIVES, constraint_violations, dominates, pareto_front
from .space import (
    COUNTERMEASURE_SETS,
    DSE_SCHEMA_VERSION,
    DesignSpaceSpec,
    MeasurementJob,
)

__all__ = [
    "COUNTERMEASURE_SETS",
    "CacheIntegrityError",
    "DSE_SCHEMA_VERSION",
    "DesignSpaceSpec",
    "DseError",
    "ExplorationEngine",
    "ExplorationResult",
    "MEASUREMENTS_DIRNAME",
    "MeasurementJob",
    "MissingMeasurementError",
    "OBJECTIVES",
    "PARETO_NAME",
    "POINTS_NAME",
    "SPACE_NAME",
    "SpaceValidationError",
    "analyze_space",
    "constraint_violations",
    "dominates",
    "load_measurement",
    "measurement_relpath",
    "pareto_front",
    "run_measurement_attempt",
]
