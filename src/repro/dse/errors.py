"""Typed failures of the design-space explorer."""

from __future__ import annotations

__all__ = ["DseError", "SpaceValidationError", "MissingMeasurementError",
           "CacheIntegrityError"]


class DseError(Exception):
    """Base class for design-space exploration failures."""


class SpaceValidationError(DseError, ValueError):
    """The design-space specification itself is malformed."""


class MissingMeasurementError(DseError):
    """Analysis needs a measurement that is not in the cache.

    Raised when the reference (calibration) point is absent, or when a
    strict analysis (``repro dse pareto`` on a directory) finds grid
    points that were never explored.
    """


class CacheIntegrityError(DseError):
    """A cached measurement exists but cannot be trusted."""
