"""The measurement worker: simulate one design point, cache it.

One measurement = one cycle-level point multiplication of one
(digit size, countermeasure set) cell, reduced to the pair every
operating-point report derives from — ``(consumed, cycles)`` — plus
the area breakdown and, optionally, the white-box attack findings.
The result is written atomically to
``measurements/<config-digest>.json``; the digest covers exactly the
measurement's inputs, so the same cell is never simulated twice, not
even across explorations with different grids or constraints.

:func:`run_measurement_attempt` matches the campaign supervisor's
task signature (module-level, dict-in/dict-out, picklable), so design
points inherit the whole retry / watchdog / quarantine / integrity
machinery for free.  The record it returns carries an ``artifacts``
list, which the supervisor re-hashes before accepting the result.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from typing import Optional

from ..campaign.spec import derive_seed
from ..campaign.store import _atomic_write_bytes
from ..obs import runtime as obs_runtime
from ..obs.tracing import derive_span_id
from ..power.evaluation import MeasuredDesign, design_area
from .space import DesignSpaceSpec, MeasurementJob

__all__ = ["MEASUREMENTS_DIRNAME", "load_measurement",
           "measurement_relpath", "run_measurement_attempt"]

MEASUREMENTS_DIRNAME = "measurements"


def measurement_relpath(digest: str) -> str:
    return os.path.join(MEASUREMENTS_DIRNAME, f"{digest}.json")


def run_measurement_attempt(spec_dict: dict, directory: str,
                            job_index: int, attempt: int,
                            chaos_dict: Optional[dict]) -> dict:
    """One supervised measurement attempt (supervisor task protocol).

    ``chaos_dict`` is accepted for signature compatibility; tests
    inject faults by wrapping the task instead.
    """
    del attempt, chaos_dict
    spec = DesignSpaceSpec.from_dict(spec_dict)
    job = spec.measurement_jobs()[job_index]
    with obs_runtime.shard_scope(job_index) as obs:
        return _measure_observed(spec, directory, job, obs)


def _whitebox_findings(spec: DesignSpaceSpec, config, digest: str) -> list:
    """Run the attack battery on this cell, on its own derived seed."""
    from ..security.evaluation import WhiteBoxEvaluation

    seed = derive_seed(spec.seed, f"dse.whitebox/{digest}")
    report = WhiteBoxEvaluation(
        config=config, n_traces=spec.whitebox_traces, n_bits=2, seed=seed,
    ).run()
    return [
        {"attack": f.attack, "resistant": f.resistant, "detail": f.detail}
        for f in report.findings
    ]


def _measure_observed(spec: DesignSpaceSpec, directory: str,
                      job: MeasurementJob, obs) -> dict:
    started = time.perf_counter()
    digest = spec.config_digest(job)

    span_ctx = None
    if obs is not None:
        # the point's parent is the engine's root span, derived — not
        # communicated — so worker and coordinator agree on it.
        root_id = derive_span_id(obs.tracer.trace_id, None,
                                 "dse.explore", 0)
        span_attrs = {"digest": digest}
        if job.backend != "ecc":
            span_attrs["backend"] = job.backend
        else:
            span_attrs["digit"] = job.digit_size
            span_attrs["countermeasures"] = job.countermeasures
        span_ctx = obs.tracer.span(
            "point", key=job.index, parent_id=root_id, **span_attrs,
        )
    with span_ctx if span_ctx is not None else _null_context() as span:
        if job.backend != "ecc":
            payload = _measure_backend_payload(spec, job, digest)
        else:
            config = spec.coprocessor_config(job)
            measured = MeasuredDesign.measure(config)
            whitebox = None
            if spec.whitebox:
                whitebox = _whitebox_findings(spec, config, digest)
            payload = {
                "schema": spec.schema_version,
                "digest": digest,
                "curve": spec.curve,
                "digit_size": job.digit_size,
                "countermeasures": job.countermeasures,
                "cycles": measured.cycles,
                "consumed": measured.consumed,
                "area": design_area(config).as_dict(),
                "whitebox": whitebox,
            }
        if span is not None:
            span.set(cycles=payload["cycles"])
        if obs is not None:
            obs.registry.counter(
                "repro_dse_measurements_total",
                "design-point simulations executed",
            ).inc()
    data = json.dumps(payload, indent=1, sort_keys=True).encode()
    relpath = measurement_relpath(digest)
    path = os.path.join(directory, relpath)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    _atomic_write_bytes(path, data)
    return {
        "index": job.index,
        "digest": digest,
        "file": relpath,
        "artifacts": [[relpath, hashlib.sha256(data).hexdigest()]],
        "wall_seconds": time.perf_counter() - started,
    }


def _measure_backend_payload(spec: DesignSpaceSpec,
                             job: MeasurementJob, digest: str) -> dict:
    """One symmetric-engine measurement: seal the canonical message.

    Same cache shape as an ECC cell — ``(consumed, cycles, area)`` —
    so :func:`load_measurement` validates both without caring which
    kind of engine produced the bytes.
    """
    from ..backends.evaluation import measure_backend

    measured = measure_backend(job.backend)
    return {
        "schema": spec.schema_version,
        "digest": digest,
        "backend": job.backend,
        "message_bytes": measured.message_bytes,
        "cycles": measured.cycles,
        "consumed": measured.consumed,
        "area": {"total": measured.area_ge},
        "whitebox": None,
    }


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def load_measurement(directory: str, digest: str) -> Optional[dict]:
    """A cached measurement's payload, or None when it must be
    (re-)simulated — missing, unreadable and digest-mismatched files
    all answer None, so a torn cache heals itself on the next run."""
    path = os.path.join(directory, measurement_relpath(digest))
    try:
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
    except (OSError, ValueError):
        return None
    if payload.get("digest") != digest:
        return None
    if not isinstance(payload.get("cycles"), int) \
            or not isinstance(payload.get("consumed"), float):
        return None
    return payload
