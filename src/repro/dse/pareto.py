"""Multi-objective dominance, fronts, and constraint checking.

Pure functions over plain row dicts, so the semantics are testable
without running a single simulation.  An objective is a (row key,
sense) pair — sense +1 minimizes, -1 maximizes — and a row dominates
another when it is no worse on every objective and strictly better on
at least one.  The front preserves input order, which the engine
keeps deterministic, so the serialized result is byte-stable.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["OBJECTIVES", "constraint_violations", "dominates",
           "pareto_front"]

#: objective name -> (row key, sense); +1 = minimize, -1 = maximize.
OBJECTIVES = {
    "area": ("area_ge", 1),
    "cycles": ("cycles", 1),
    "latency": ("latency_s", 1),
    "power": ("power_uw", 1),
    "energy": ("energy_uj", 1),
    "energy_per_message": ("energy_uj_per_message", 1),
    "area_energy": ("area_energy", 1),
    "security": ("security", -1),
}


def dominates(a: dict, b: dict, objectives: tuple) -> bool:
    """True when ``a`` is no worse than ``b`` everywhere and strictly
    better somewhere, under the named objectives."""
    strictly_better = False
    for name in objectives:
        key, sense = OBJECTIVES[name]
        va, vb = sense * a[key], sense * b[key]
        if va > vb:
            return False
        if va < vb:
            strictly_better = True
    return strictly_better


def pareto_front(rows: list, objectives: tuple) -> list:
    """The non-dominated subset of ``rows``, in input order."""
    return [
        row for row in rows
        if not any(dominates(other, row, objectives)
                   for other in rows if other is not row)
    ]


def constraint_violations(row: dict,
                          max_latency_s: Optional[float] = None,
                          max_area_ge: Optional[float] = None,
                          min_security: Optional[float] = None) -> list:
    """Names of the constraints ``row`` breaks (empty = feasible)."""
    violations = []
    if max_latency_s is not None and row["latency_s"] > max_latency_s:
        violations.append("latency")
    if max_area_ge is not None and row["area_ge"] > max_area_ge:
        violations.append("area")
    if min_security is not None and row["security"] < min_security:
        violations.append("security")
    return violations
