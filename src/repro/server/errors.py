"""Typed failures of the identification service.

The campaign layer's taxonomy discipline (:mod:`repro.campaign.errors`)
applied to the server: overload and deadline outcomes are *typed*
errors a caller can catch and count, never hangs and never bare
asserts.  The admission layer's whole contract is that a client
learns it was shed immediately — "graceful shedding" means a typed
reject, not silence.
"""

from __future__ import annotations

from typing import Optional

__all__ = ["ServerError", "AdmissionRejectedError",
           "SessionDeadlineError", "EnrollmentError",
           "SourceThrottledError", "ReplayQuarantinedError"]


class ServerError(RuntimeError):
    """A server-layer failure with session identity attached."""

    def __init__(self, message: str, *,
                 session_index: Optional[int] = None):
        if session_index is not None:
            message = f"{message} [session {session_index}]"
        super().__init__(message)
        self.session_index = session_index


class AdmissionRejectedError(ServerError):
    """The bounded admission queue was full: the arrival was shed.

    Raised synchronously at submission time — an overloaded server
    answers *immediately* with a reject instead of queueing the
    arrival into a deadline it can no longer meet.
    """


class SessionDeadlineError(ServerError):
    """The per-session deadline fired before the session concluded.

    The session's resources (in-flight slot, pending scheduler work)
    are released; the tag is expected to retry through admission.
    """


class EnrollmentError(ServerError):
    """The enrollment store refused an operation (spec mismatch,
    digest failure, mutation of an immutable sharded fleet)."""


class SourceThrottledError(ServerError):
    """A source exceeded its concurrent-session allowance.

    Per-source throttling is the server side of the adversary lab's
    battery-depletion story: one malicious reader identity cannot
    monopolize admission.  Raised synchronously at submission time,
    like :class:`AdmissionRejectedError` — typed shedding, never
    silence.
    """


class ReplayQuarantinedError(ServerError):
    """The source was quarantined for replaying commit material.

    A commitment ``R`` seen again from a *different* session is replay
    traffic (a fresh tag draws a fresh nonce every commit); with
    replay quarantine enabled the server refuses all further arrivals
    from that source at admission.
    """
