"""Private-identification search: the O(N) wall and its cache.

Identification ends with the reader holding a candidate point
``X' = s*P - d'*P - e*R`` and asking "which enrolled tag is this?" —
a search over the whole fleet (the cost the paper's Section 5 accepts
to keep tags cheap: the reader pays O(N), the tag pays O(1)).

:func:`scan_lookup` is that wall, measured honestly: a per-record
comparison loop over the sharded store.  :class:`EpochSearchCache`
amortizes it: once per epoch the reader walks the fleet *once* and
builds a hash table keyed by ``H(nonce || record)``, after which every
lookup in the epoch is O(1).  The table is keyed by the epoch nonce
(:func:`epoch_nonce`) rather than by raw records so a table entry is
worthless outside its epoch — dumping the reader's working memory
after the epoch rotates reveals no long-term linkable keys, the same
defence-in-depth instinct as the session layer's per-epoch nonces.

Both paths return *canonical* identities (lowest enrolled identity
for a record — see :mod:`.enrollment` on forced TOY-B17 collisions),
so cached and uncached search are interchangeable bit-for-bit.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional, Tuple

from .enrollment import EnrollmentStore

__all__ = ["epoch_nonce", "scan_lookup", "EpochSearchCache"]

#: Bytes of the per-epoch nonce and of each table key.
NONCE_WIDTH = 16
KEY_WIDTH = 16


def epoch_nonce(seed: int, epoch_index: int) -> bytes:
    """The deterministic per-epoch nonce the cache is keyed by."""
    material = f"repro.server.epoch/{seed}/{epoch_index}".encode()
    return hashlib.sha256(material).digest()[:NONCE_WIDTH]


def scan_lookup(store: EnrollmentStore, needle: bytes
                ) -> Tuple[Optional[int], int]:
    """The uncached O(N) search: compare ``needle`` against every
    record in shard order; first match is the canonical identity.

    Returns ``(identity_or_None, records_scanned)``.  The loop is a
    deliberate per-record comparison — this *is* the wall the bench
    measures and the cache must beat; replacing it with a clever
    substring search would fake the baseline.
    """
    width = store.record_width
    scanned = 0
    for first_identity, data in store.iter_shards():
        count = len(data) // width
        offset = 0
        for index in range(count):
            scanned += 1
            if data[offset:offset + width] == needle:
                return first_identity + index, scanned
            offset += width
    return None, scanned


class EpochSearchCache:
    """One epoch's reader-side table: O(N) once, O(1) per lookup.

    ``build()`` walks the fleet a single time and fills a dict from
    ``H(nonce || record)[:KEY_WIDTH]`` to canonical identity
    (``setdefault`` keeps the lowest identity for colliding records).
    The nonce binds the table to its epoch; ``lookup`` hashes the
    candidate the same way.
    """

    def __init__(self, store: EnrollmentStore, nonce: bytes):
        if len(nonce) != NONCE_WIDTH:
            raise ValueError(f"epoch nonce must be {NONCE_WIDTH} bytes")
        self.store = store
        self.nonce = nonce
        self._table: Optional[Dict[bytes, int]] = None
        self.records = 0

    @property
    def built(self) -> bool:
        return self._table is not None

    def _key(self, record: bytes) -> bytes:
        return hashlib.sha256(self.nonce + record).digest()[:KEY_WIDTH]

    def build(self) -> int:
        """Fill the table (idempotent); returns records walked."""
        if self._table is not None:
            return self.records
        table: Dict[bytes, int] = {}
        width = self.store.record_width
        walked = 0
        for first_identity, data in self.store.iter_shards():
            count = len(data) // width
            offset = 0
            for index in range(count):
                table.setdefault(self._key(data[offset:offset + width]),
                                 first_identity + index)
                walked += 1
                offset += width
        self._table = table
        self.records = walked
        return walked

    def lookup(self, needle: bytes) -> Optional[int]:
        """O(1) canonical-identity lookup; builds on first use."""
        if self._table is None:
            self.build()
        return self._table.get(self._key(needle))
