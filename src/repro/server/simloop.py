"""A deterministic virtual-time event loop for the server simulation.

Why not asyncio: the determinism contract of this repo — "same seed,
byte-identical results" — extends to the server soak (the CI smoke job
``cmp``-s summaries across worker counts), and a wall-clock event loop
cannot honour it: task wakeups ride on OS timers, so two runs
interleave thousands of concurrent sessions differently.  This loop
keeps asyncio's *shape* (``create_task`` / ``sleep`` / futures /
queues, native ``async def`` coroutines) but replaces the clock with
the same virtual-time heap discipline as the session layer's
``_SessionEngine``: events execute in ``(time, sequence)`` order, and
``loop.now`` only ever moves when the heap says so.  Everything the
server does — admission, deadlines, channel deliveries, scheduler
batch flushes — is an event on this one heap, which makes the whole
service a pure function of its seed.

The surface is deliberately tiny (the server needs nothing more):

* :class:`SimLoop` — ``create_task``, ``call_at`` / ``call_soon``,
  ``sleep``, ``run_until_complete``;
* :class:`SimFuture` / :class:`SimTask` — awaitables with
  cancellation (:class:`SimCancelled`, the deadline mechanism);
* :class:`SimQueue` — the bounded admission queue;
  ``put_nowait`` raises :class:`SimQueueFull`, which the admission
  layer converts into its typed shed reject.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, List, Optional

__all__ = ["SimLoop", "SimFuture", "SimTask", "SimQueue",
           "SimQueueFull", "SimCancelled"]


class SimCancelled(Exception):
    """Thrown into a task by :meth:`SimTask.cancel` (deadlines,
    shutdown).  Deliberately *not* a ``CancelledError`` subclass:
    nothing here must interact with asyncio machinery."""


class SimQueueFull(Exception):
    """``put_nowait`` on a bounded :class:`SimQueue` at capacity."""


class _Handle:
    """One scheduled callback; ``cancel()`` makes the heap skip it."""

    __slots__ = ("fn", "args", "cancelled")

    def __init__(self, fn: Callable, args: tuple):
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True


class SimLoop:
    """The virtual clock and its event heap."""

    def __init__(self):
        self._now = 0.0
        self._seq = 0
        self._heap: List[tuple] = []

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling ----------------------------------------------------

    def call_at(self, when: float, fn: Callable, *args) -> _Handle:
        """Run ``fn(*args)`` at virtual time ``when`` (>= now)."""
        self._seq += 1
        handle = _Handle(fn, args)
        heapq.heappush(self._heap, (max(when, self._now), self._seq,
                                    handle))
        return handle

    def call_soon(self, fn: Callable, *args) -> _Handle:
        """Run ``fn(*args)`` at the current virtual time, FIFO."""
        return self.call_at(self._now, fn, *args)

    def create_task(self, coro, name: str = "") -> "SimTask":
        """Wrap a coroutine into a task scheduled to start now."""
        return SimTask(self, coro, name=name)

    def sleep(self, delay: float) -> "SimFuture":
        """An awaitable that completes ``delay`` virtual seconds on."""
        future = SimFuture(self)
        self.call_at(self._now + delay, future._wake, None)
        return future

    # -- driving -------------------------------------------------------

    def run(self) -> None:
        """Drain the heap: the simulation runs to quiescence."""
        while self._heap:
            at, _seq, handle = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self._now = max(self._now, at)
            handle.fn(*handle.args)

    def run_until_complete(self, awaitable) -> Any:
        """Drive the loop until ``awaitable`` resolves; return/raise it.

        The loop drains *fully* (other tasks finish too); a main task
        still pending on an empty heap is a genuine deadlock and
        raises — a silent half-finished simulation must never look
        like a result.
        """
        task = (awaitable if isinstance(awaitable, SimFuture)
                else self.create_task(awaitable))
        self.run()
        if not task.done():
            raise RuntimeError(
                "simloop deadlock: the event heap drained with the "
                "main task still pending"
            )
        return task.result()


class SimFuture:
    """A single-assignment result with deterministic callbacks."""

    def __init__(self, loop: SimLoop):
        self._loop = loop
        self._done = False
        self._result: Any = None
        self._exception: Optional[BaseException] = None
        self._callbacks: List[Callable] = []

    # -- inspection ----------------------------------------------------

    def done(self) -> bool:
        return self._done

    def result(self) -> Any:
        if not self._done:
            raise RuntimeError("future result not ready")
        if self._exception is not None:
            raise self._exception
        return self._result

    def exception(self) -> Optional[BaseException]:
        if not self._done:
            raise RuntimeError("future result not ready")
        return self._exception

    # -- resolution ----------------------------------------------------

    def set_result(self, value: Any) -> None:
        if self._done:
            raise RuntimeError("future already resolved")
        self._done = True
        self._result = value
        self._schedule_callbacks()

    def set_exception(self, exc: BaseException) -> None:
        if self._done:
            raise RuntimeError("future already resolved")
        self._done = True
        self._exception = exc
        self._schedule_callbacks()

    def _wake(self, value: Any) -> None:
        """Idempotent resolution (timer callbacks may fire after a
        cancellation already resolved the future)."""
        if not self._done:
            self.set_result(value)

    def add_done_callback(self, fn: Callable) -> None:
        if self._done:
            self._loop.call_soon(fn, self)
        else:
            self._callbacks.append(fn)

    def _schedule_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            self._loop.call_soon(fn, self)

    # -- awaiting ------------------------------------------------------

    def __await__(self):
        if not self._done:
            yield self
        return self.result()


class SimTask(SimFuture):
    """A coroutine driven by the loop; completes with its return."""

    def __init__(self, loop: SimLoop, coro, name: str = ""):
        super().__init__(loop)
        self._coro = coro
        self.name = name
        self._awaiting: Optional[SimFuture] = None
        loop.call_soon(self._step)

    def cancel(self, message: str = "cancelled") -> bool:
        """Throw :class:`SimCancelled` into the coroutine.

        Returns False when the task already finished.  The coroutine
        may catch the cancellation (deadline bookkeeping) but is
        expected to finish promptly.
        """
        if self._done:
            return False
        # Detach from whatever it awaits; a later wake must not
        # double-resume the coroutine.
        self._awaiting = None
        self._loop.call_soon(self._step, SimCancelled(message))
        return True

    # -- stepping ------------------------------------------------------

    def _step(self, throw: Optional[BaseException] = None) -> None:
        if self._done:
            return
        self._awaiting = None
        try:
            if throw is not None:
                awaited = self._coro.throw(throw)
            else:
                awaited = self._coro.send(None)
        except StopIteration as stop:
            self.set_result(stop.value)
            return
        except SimCancelled as exc:
            self.set_exception(exc)
            return
        except BaseException as exc:  # noqa: BLE001 — surfaced via result()
            self.set_exception(exc)
            return
        if not isinstance(awaited, SimFuture):
            self.set_exception(RuntimeError(
                f"task {self.name or self._coro!r} awaited a "
                f"non-sim awaitable: {awaited!r}"
            ))
            return
        self._awaiting = awaited
        awaited.add_done_callback(self._on_awaited)

    def _on_awaited(self, future: SimFuture) -> None:
        if self._awaiting is not future:
            return  # superseded by cancellation
        # Resume; the coroutine re-enters future.result(), which
        # raises the awaited future's exception right at the await.
        self._step()


class SimQueue:
    """An async FIFO; bounded when ``maxsize > 0``.

    ``put_nowait`` raising :class:`SimQueueFull` is the backpressure
    signal: the admission layer turns it into a typed shed.
    """

    def __init__(self, loop: SimLoop, maxsize: int = 0):
        self._loop = loop
        self.maxsize = maxsize
        self._items: deque = deque()
        self._getters: deque = deque()

    def qsize(self) -> int:
        return len(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def put_nowait(self, item: Any) -> None:
        if self._getters:
            getter = self._getters.popleft()
            getter._wake(item)
            return
        if self.maxsize > 0 and len(self._items) >= self.maxsize:
            raise SimQueueFull(
                f"queue at capacity ({self.maxsize})"
            )
        self._items.append(item)

    async def get(self) -> Any:
        if self._items:
            return self._items.popleft()
        future = SimFuture(self._loop)
        self._getters.append(future)
        try:
            return await future
        except SimCancelled:
            # A cancelled getter must not swallow a later put.
            try:
                self._getters.remove(future)
            except ValueError:
                pass
            raise
