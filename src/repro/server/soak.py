"""Fleet-scale soak runs: cohorts of sessions under supervision.

A soak drives many thousands of sessions against one enrolled fleet
and must produce the same summary — byte for byte — whether it ran on
one worker or eight, with or without chaos faults killing workers
mid-session.  The trick is the unit of parallelism: a **cohort** is a
block of consecutive session indices simulated *whole* by one worker
on its own virtual-time loop.  Cohort results are pure functions of
``(spec, cohort_index)``, workers never share a simulation, and the
summary is assembled in cohort order — so scheduling, worker count
and crash/retry history are invisible in the output.

Worker supervision is the campaign layer's
:class:`~repro.campaign.supervisor.ShardSupervisor`, reused verbatim:
a chaos-killed worker (``os._exit`` mid-simulation) is a transient
failure, the cohort is retried from scratch (determinism makes the
retry byte-identical), and a cohort that keeps failing is quarantined
— the soak degrades loudly instead of hanging.

Each cohort file carries the deterministic aggregates *and* a
wall-stripped metric snapshot; the summary merges snapshots in cohort
order, exactly the discipline of
:func:`repro.obs.runtime.merge_shard_metrics`.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional

from ..campaign.chaos import (CHAOS_CRASH_EXIT_CODE, ChaosConfig,
                              ChaosInjectedError)
from ..campaign.store import _atomic_write_bytes, file_digest
from ..channel import LossProfile, derive_channel_seed
from ..obs import runtime as _obs_runtime
from ..obs.alerts import ALERTS_NAME, default_rulebook, write_alert_log
from ..obs.metrics import MetricRegistry, strip_wall_metrics
from ..obs.stream import (TELEMETRY_NAME, make_event, run_pipeline,
                          spread_drain_events, write_telemetry)
from ..protocols.session import RetransmissionPolicy
from .enrollment import EnrollmentStore
from .errors import (AdmissionRejectedError, ReplayQuarantinedError,
                     ServerError, SourceThrottledError)
from .reader import IdentificationServer, ServerConfig
from .simloop import SimLoop

__all__ = ["SoakSpec", "SoakReport", "run_soak", "run_cohort",
           "simulate_cohort", "soak_rulebook", "SUMMARY_NAME",
           "SESSION_OUTCOMES"]

SUMMARY_NAME = "summary.json"
_SCHEMA_VERSION = 1

#: The full enumeration of session outcomes a soak can observe.  The
#: summary zero-fills every bucket so "no attacks seen" and "attacks
#: not counted" are distinguishable at a glance.
SESSION_OUTCOMES = ("accepted", "rejected", "aborted", "deadline",
                    "adversarial", "budget_exhausted")


@dataclass(frozen=True)
class SoakSpec:
    """Everything that determines a soak's results.

    ``store_dir`` is where the fleet lives — an environment fact, not
    an identity fact — so it is *excluded* from :meth:`digest`; the
    fleet itself is bound by ``enrollment_digest``.  Two soaks of the
    same spec against copies of the same fleet in different
    directories produce byte-identical summaries.
    """

    enrollment_digest: str
    store_dir: str
    sessions: int = 200            # per cohort
    cohorts: int = 4
    arrival_rate: float = 2000.0   # arrivals per virtual second
    frame_loss: float = 0.1
    seed: int = 0
    capacity: int = 256
    admission_queue: int = 64
    session_deadline_s: float = 2.0
    search_mode: str = "cached"
    distance_m: float = 0.5
    adversarial_fraction: float = 0.0
    throttle_limit: int = 0
    replay_quarantine: bool = False
    tag_budget_uj: float = 0.0
    schema_version: int = _SCHEMA_VERSION

    def __post_init__(self):
        if self.sessions < 1 or self.cohorts < 1:
            raise ValueError("need at least one session and one cohort")
        if self.arrival_rate <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= self.adversarial_fraction <= 1.0:
            raise ValueError("adversarial fraction must be in [0, 1]")
        if self.throttle_limit < 0:
            raise ValueError("throttle limit must be non-negative")
        if self.tag_budget_uj < 0:
            raise ValueError("tag budget must be non-negative")

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "enrollment_digest": self.enrollment_digest,
            "store_dir": self.store_dir,
            "sessions": self.sessions,
            "cohorts": self.cohorts,
            "arrival_rate": self.arrival_rate,
            "frame_loss": self.frame_loss,
            "seed": self.seed,
            "capacity": self.capacity,
            "admission_queue": self.admission_queue,
            "session_deadline_s": self.session_deadline_s,
            "search_mode": self.search_mode,
            "distance_m": self.distance_m,
            "adversarial_fraction": self.adversarial_fraction,
            "throttle_limit": self.throttle_limit,
            "replay_quarantine": self.replay_quarantine,
            "tag_budget_uj": self.tag_budget_uj,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SoakSpec":
        d = dict(d)
        d.setdefault("schema_version", _SCHEMA_VERSION)
        return cls(**d)

    def identity_dict(self) -> dict:
        """The digest's view: the spec minus environment facts."""
        identity = self.to_dict()
        del identity["store_dir"]
        return identity

    def digest(self) -> str:
        payload = json.dumps(self.identity_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def server_config(self) -> ServerConfig:
        return ServerConfig(
            capacity=self.capacity,
            admission_queue=self.admission_queue,
            session_deadline_s=self.session_deadline_s,
            search_mode=self.search_mode,
            distance_m=self.distance_m,
            source_session_limit=self.throttle_limit,
            replay_quarantine=self.replay_quarantine,
            tag_budget_uj=self.tag_budget_uj,
        )

    def is_adversarial(self, index: int) -> bool:
        """Ground truth for global session ``index`` — a pure function
        of (seed, index), so cohort splits cannot move it."""
        if self.adversarial_fraction <= 0.0:
            return False
        draw = derive_channel_seed(self.seed, "server/adversarial",
                                   index, 0, 0) / 2.0 ** 64
        return draw < self.adversarial_fraction

    def source_for(self, index: int) -> str:
        """Arrival source identity: malicious readers cluster behind a
        handful of identities (what throttling and quarantine key on);
        honest tags arrive from distinct ones."""
        if self.is_adversarial(index):
            return f"adv-{index % 4}"
        return f"tag-{index}"

    @staticmethod
    def cohort_filename(cohort_index: int) -> str:
        return f"cohort-{cohort_index:05d}.json"


# ----------------------------------------------------------------------
# one cohort = one independent simulation
# ----------------------------------------------------------------------

def _arrival_gap(seed: int, index: int, rate: float) -> float:
    """Deterministic exponential-ish inter-arrival gap."""
    unit = derive_channel_seed(seed, "server/arrival", index, 0, 0) \
        / 2.0 ** 64
    return -math.log(max(unit, 1e-12)) / rate


def simulate_cohort(spec: SoakSpec, cohort_index: int, *,
                    crash_after: Optional[int] = None,
                    crash_tmp_path: Optional[str] = None,
                    registry: Optional[MetricRegistry] = None) -> dict:
    """Run one cohort on a fresh loop; returns its aggregates+metrics.

    ``crash_after`` is the chaos hook: after that many sessions have
    concluded the worker dies hard (``os._exit``) with the simulation
    mid-flight — the supervised retry must reproduce the cohort
    byte-identically.  ``registry`` lets a caller watch the metrics
    live (the CLI's ``server run`` serves it over HTTP mid-flight).
    """
    store = EnrollmentStore(spec.store_dir, verify=False)
    if store.spec.digest() != spec.enrollment_digest:
        raise ServerError(
            f"store at {spec.store_dir} holds fleet "
            f"{store.spec.digest()[:12]}..., soak spec wants "
            f"{spec.enrollment_digest[:12]}..."
        )
    loop = SimLoop()
    registry = registry if registry is not None else MetricRegistry()
    server = IdentificationServer(
        loop, store, spec.server_config(), seed=spec.seed,
        profile=LossProfile(frame_loss=spec.frame_loss),
        registry=registry)
    base = cohort_index * spec.sessions
    concluded = 0

    source = f"cohort-{cohort_index:05d}"

    async def drive() -> List:
        nonlocal concluded
        server.start()
        futures = []
        submit_vts = {}
        shed_indices = []
        shed_events = []
        shed_reasons = {"overload": 0, "throttled": 0,
                        "quarantined": 0}
        for i in range(spec.sessions):
            index = base + i
            if i:
                await loop.sleep(_arrival_gap(spec.seed, index,
                                              spec.arrival_rate))
            try:
                submit_vts[index] = loop.now
                futures.append(server.submit(
                    index, source=spec.source_for(index),
                    adversarial=spec.is_adversarial(index)))
            except ReplayQuarantinedError:
                shed_indices.append(index)
                shed_reasons["quarantined"] += 1
                shed_events.append(make_event(loop.now, source, index,
                                              shed=1))
            except SourceThrottledError:
                shed_indices.append(index)
                shed_reasons["throttled"] += 1
                shed_events.append(make_event(loop.now, source, index,
                                              shed=1))
            except AdmissionRejectedError:
                shed_indices.append(index)
                shed_reasons["overload"] += 1
                shed_events.append(make_event(loop.now, source, index,
                                              shed=1))
        outcomes = []
        for future in futures:
            outcomes.append(await future)
            concluded += 1
            if crash_after is not None and concluded >= crash_after:
                # Die the way a killed worker does: torn temp file,
                # no result, simulation abandoned mid-session.  The
                # flight recorder dumps first — the black box is the
                # only telemetry that survives the kill.
                _obs_runtime.flight_dump(
                    "chaos-kill", cohort=cohort_index,
                    sessions_concluded=concluded)
                if crash_tmp_path is not None:
                    try:
                        with open(crash_tmp_path, "wb") as f:
                            f.write(b"chaos: torn soak write\x00" * 4)
                    except OSError:
                        pass
                os._exit(CHAOS_CRASH_EXIT_CODE)
        await server.close()
        return outcomes, submit_vts, shed_events, shed_indices, \
            shed_reasons

    outcomes, submit_vts, shed_events, shed_indices, shed_reasons = \
        loop.run_until_complete(drive())

    # One telemetry event per concluded session (plus the battery's
    # pro-rated per-window drain view) and one per shed arrival;
    # events are pure functions of (spec, cohort_index).
    telemetry = list(shed_events)
    for outcome in outcomes:
        vt = submit_vts[outcome.index]
        telemetry.append(make_event(
            vt, source, outcome.index,
            session_uj=outcome.tag_energy_uj))
        telemetry.extend(spread_drain_events(
            vt, source, outcome.index, outcome.tag_energy_uj,
            outcome.elapsed_s))

    by_outcome: Dict[str, int] = {k: 0 for k in SESSION_OUTCOMES}
    totals = {
        "epochs": 0, "frames": 0, "retransmissions": 0,
        "records_scanned": 0, "correct": 0,
    }
    tag_uj = reader_uj = 0.0
    for outcome in outcomes:
        if outcome.outcome not in by_outcome:
            raise ServerError(
                f"outcome {outcome.outcome!r} missing from "
                f"SESSION_OUTCOMES — every bucket must be enumerated",
                session_index=outcome.index)
        by_outcome[outcome.outcome] += 1
        totals["epochs"] += outcome.epochs_used
        totals["frames"] += outcome.frames_sent
        totals["retransmissions"] += outcome.retransmissions
        totals["records_scanned"] += outcome.records_scanned
        if outcome.identified_correctly:
            totals["correct"] += 1
        tag_uj += outcome.tag_energy_uj
        reader_uj += outcome.reader_energy_uj

    return {
        "cohort": cohort_index,
        "sessions": spec.sessions,
        "first_index": base,
        "outcomes": {k: by_outcome[k] for k in sorted(by_outcome)},
        "shed": len(shed_indices),
        "shed_reasons": {k: shed_reasons[k]
                         for k in sorted(shed_reasons)},
        "quarantined_sources": sorted(server.quarantined_sources),
        "admitted": server.admitted,
        "peak_in_flight": server.peak_in_flight,
        "epochs": totals["epochs"],
        "frames": totals["frames"],
        "retransmissions": totals["retransmissions"],
        "records_scanned": totals["records_scanned"],
        "correct": totals["correct"],
        "tag_energy_uj": round(tag_uj, 6),
        "reader_energy_uj": round(reader_uj, 6),
        "scheduler": {
            "requests": server.scheduler.requests_total,
            "batches": server.scheduler.batches_total,
        },
        "telemetry": telemetry,
        "metrics": strip_wall_metrics(registry.snapshot()),
    }


def run_cohort(spec_dict: dict, directory: str, cohort_index: int,
               attempt: int, chaos_dict: Optional[dict]) -> dict:
    """The supervised worker task: simulate, write, report.

    Chaos faults mirror the campaign layer's: ``crash`` kills the
    worker mid-simulation (after half the cohort's sessions conclude),
    ``corrupt`` flips a byte after the digest was computed so only the
    supervisor's independent re-hash can notice.
    """
    spec = SoakSpec.from_dict(spec_dict)
    chaos = None if chaos_dict is None else ChaosConfig.from_dict(chaos_dict)
    crash_after = None
    if chaos is not None:
        fault = chaos.execution_fault(cohort_index, attempt)
        if fault == "crash":
            crash_after = max(1, spec.sessions // 2)
        elif fault == "hang":
            time.sleep(chaos.hang_seconds)
        elif fault == "error":
            raise ChaosInjectedError(
                f"injected soak failure (cohort {cohort_index}, "
                f"attempt {attempt})"
            )
        elif fault == "slow":
            time.sleep(chaos.slow_seconds)

    crash_tmp = os.path.join(
        directory, spec.cohort_filename(cohort_index) + ".tmp")
    with _obs_runtime.shard_scope(cohort_index) as rt:
        payload = simulate_cohort(spec, cohort_index,
                                  crash_after=crash_after,
                                  crash_tmp_path=crash_tmp)
        if rt is not None:
            rt.registry.merge_snapshot(payload["metrics"])

    name = spec.cohort_filename(cohort_index)
    path = os.path.join(directory, name)
    _atomic_write_bytes(
        path, json.dumps(payload, indent=1, sort_keys=True).encode())
    digest = file_digest(path)

    if chaos is not None and chaos.corrupts(cohort_index, attempt):
        with open(path, "r+b") as f:
            f.seek(16)
            byte = f.read(1) or b"\x00"
            f.seek(16)
            f.write(bytes([byte[0] ^ 0xFF]))

    return {
        "shard": cohort_index,
        "file": name,
        "sha256": digest,
        "artifacts": [(name, digest)],
    }


#: The fleet soak's p99 alert line, in µJ.  A private-identification
#: session costs more than the attack lab's handshake — the tag walks
#: the full response ladder while the reader scans records — and the
#: soak's configured ``frame_loss`` stretches honest retransmission
#: tails further: measured honest p99 runs 111–230 µJ across seeds at
#: 10–25 % loss, against the ~324 µJ median an amplification-class
#: flood drags per session.  260 sits above every measured honest
#: tail and below flood drag; lossier channels than 25 % are outside
#: the calibrated envelope.
FLEET_P99_UJ = 260.0


def soak_rulebook(spec: SoakSpec):
    """The fleet soak's alert rulebook: the stock book with the p99
    line resized for the identification workload (see
    :data:`FLEET_P99_UJ`); everything else keeps the lab calibration
    from :func:`repro.obs.alerts.default_rulebook`."""
    return default_rulebook(p99_uj=FLEET_P99_UJ)


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------

@dataclass
class SoakReport:
    """What one soak accomplished, plus where the summary lives."""

    outcome: str                   # clean | degraded
    spec_digest: str
    directory: str
    cohorts_total: int
    cohorts_completed: int
    quarantined: List[int] = dataclass_field(default_factory=list)
    retried_attempts: int = 0
    sessions: int = 0
    accepted: int = 0
    shed: int = 0
    deadline: int = 0
    adversarial: int = 0
    budget_exhausted: int = 0
    throttled: int = 0
    shed_quarantined: int = 0
    correct: int = 0
    peak_in_flight: int = 0
    tag_energy_uj: float = 0.0
    reader_energy_uj: float = 0.0
    alert_firings: int = 0
    session_uj_p99: Optional[float] = None
    summary_path: str = ""
    wall_s: float = 0.0

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.sessions if self.sessions else 0.0

    def text(self) -> str:
        lines = [
            f"soak {self.spec_digest[:12]}: {self.outcome}",
            f"  cohorts   {self.cohorts_completed}/{self.cohorts_total}"
            + (f"  (quarantined: "
               f"{', '.join(map(str, self.quarantined))})"
               if self.quarantined else ""),
            f"  sessions  {self.sessions}  accepted {self.accepted} "
            f"({self.acceptance_rate:.1%})  shed {self.shed}  "
            f"deadline {self.deadline}",
            f"  attacked  adversarial {self.adversarial}  "
            f"budget_exhausted {self.budget_exhausted}  "
            f"throttled {self.throttled}  "
            f"quarantined-arrivals {self.shed_quarantined}",
            f"  correct   {self.correct}/{self.accepted} accepted "
            f"identifications named the canonical tag",
            f"  peak      {self.peak_in_flight} concurrent sessions "
            f"(per cohort)",
            f"  energy    tag {self.tag_energy_uj:.1f} uJ, "
            f"reader {self.reader_energy_uj:.1f} uJ",
            f"  telemetry {self.alert_firings} alert firing(s), "
            f"session p99 "
            + (f"{self.session_uj_p99:.1f} uJ"
               if self.session_uj_p99 is not None else "-"),
            f"  retries   {self.retried_attempts} worker attempts "
            f"beyond the first",
            f"  wall      {self.wall_s:.1f} s",
            f"  summary   {self.summary_path}",
        ]
        return "\n".join(lines)


def run_soak(directory: str, spec: SoakSpec, *,
             workers: Optional[int] = None,
             chaos: Optional[ChaosConfig] = None,
             policy=None,
             on_event=None) -> SoakReport:
    """Drive every cohort under supervision and write ``summary.json``.

    The summary is a pure function of the spec: cohort aggregates in
    cohort order, metric snapshots merged in cohort order, wall-clock
    families stripped.  ``cmp`` two summaries from different worker
    counts and they match.
    """
    from ..campaign.acquire import default_workers
    from ..campaign.supervisor import ShardSupervisor

    started = time.monotonic()
    os.makedirs(directory, exist_ok=True)
    for name in os.listdir(directory):
        if name.endswith(".tmp"):
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass

    # Fail fast on a wrong or corrupt fleet before spawning workers.
    store = EnrollmentStore(spec.store_dir, verify=True)
    if store.spec.digest() != spec.enrollment_digest:
        raise ServerError(
            f"store at {spec.store_dir} holds fleet "
            f"{store.spec.digest()[:12]}..., soak spec wants "
            f"{spec.enrollment_digest[:12]}..."
        )

    records: Dict[int, dict] = {}
    supervisor = ShardSupervisor(
        spec, directory,
        workers=default_workers(workers),
        policy=policy,
        chaos=chaos,
        task=run_cohort,
        on_success=lambda record, attempt: records.__setitem__(
            record["shard"], record),
        on_event=on_event,
    )
    outcome = supervisor.run(list(range(spec.cohorts)))
    quarantined = sorted(outcome.quarantined)

    merged = MetricRegistry()
    cohort_summaries = []
    telemetry_events = []
    report = SoakReport(
        outcome="degraded" if quarantined else "clean",
        spec_digest=spec.digest(),
        directory=str(directory),
        cohorts_total=spec.cohorts,
        cohorts_completed=len(records),
        quarantined=quarantined,
        retried_attempts=outcome.retried_attempts,
    )
    for index in sorted(records):
        path = os.path.join(directory, records[index]["file"])
        with open(path, "r", encoding="utf-8") as f:
            payload = json.load(f)
        merged.merge_snapshot(payload["metrics"])
        telemetry_events.extend(payload.get("telemetry", ()))
        aggregates = {k: v for k, v in payload.items()
                      if k not in ("metrics", "telemetry")}
        cohort_summaries.append(aggregates)
        report.sessions += payload["sessions"]
        report.accepted += payload["outcomes"].get("accepted", 0)
        report.deadline += payload["outcomes"].get("deadline", 0)
        report.adversarial += payload["outcomes"].get("adversarial", 0)
        report.budget_exhausted += \
            payload["outcomes"].get("budget_exhausted", 0)
        report.shed += payload["shed"]
        reasons = payload.get("shed_reasons", {})
        report.throttled += reasons.get("throttled", 0)
        report.shed_quarantined += reasons.get("quarantined", 0)
        report.correct += payload["correct"]
        report.peak_in_flight = max(report.peak_in_flight,
                                    payload["peak_in_flight"])
        report.tag_energy_uj = round(
            report.tag_energy_uj + payload["tag_energy_uj"], 6)
        report.reader_energy_uj = round(
            report.reader_energy_uj + payload["reader_energy_uj"], 6)

    # Live telemetry: fold every cohort's ordered event stream through
    # the aggregator + the fleet rulebook.  Events are pure functions
    # of (spec, cohort) and the fold order is total, so telemetry.json
    # and alerts.json are byte-identical across worker counts too.
    rules = soak_rulebook(spec)
    live, alert_records = run_pipeline(telemetry_events, rules,
                                       window_s=rules[0].window_s)
    write_telemetry(os.path.join(directory, TELEMETRY_NAME), live)
    alert_log = write_alert_log(
        os.path.join(directory, ALERTS_NAME), rules, alert_records)
    session_uj = live["series"].get("session_uj", {})
    report.alert_firings = alert_log["firings"]
    report.session_uj_p99 = session_uj.get("p99")

    summary = {
        "schema_version": _SCHEMA_VERSION,
        "spec": spec.identity_dict(),
        "spec_digest": spec.digest(),
        "outcome": report.outcome,
        "quarantined": quarantined,
        "cohorts": cohort_summaries,
        "totals": {
            "sessions": report.sessions,
            "accepted": report.accepted,
            "shed": report.shed,
            "deadline": report.deadline,
            "adversarial": report.adversarial,
            "budget_exhausted": report.budget_exhausted,
            "throttled": report.throttled,
            "shed_quarantined": report.shed_quarantined,
            "correct": report.correct,
            "peak_in_flight": report.peak_in_flight,
            "tag_energy_uj": report.tag_energy_uj,
            "reader_energy_uj": report.reader_energy_uj,
        },
        "telemetry": {
            "events": live["events"],
            "session_uj": {key: session_uj.get(key)
                           for key in ("count", "p50", "p95", "p99",
                                       "max")},
            "alerts": {
                "firings": alert_log["firings"],
                "by_rule": alert_log["firings_by_rule"],
            },
        },
        "metrics": strip_wall_metrics(merged.snapshot()),
    }
    summary_path = os.path.join(directory, SUMMARY_NAME)
    _atomic_write_bytes(
        summary_path,
        json.dumps(summary, indent=1, sort_keys=True).encode())
    report.summary_path = summary_path
    report.wall_s = time.monotonic() - started

    rt = _obs_runtime.current()
    if rt is not None:
        _obs_runtime.merge_shard_metrics(rt, sorted(records))
    return report
