"""Sharded, digest-verified enrollment of a tag fleet.

The paper's private-identification protocol (Figure 2) requires the
reader to hold every enrolled tag's public point ``X = x*P`` and to
search that set on each identification.  At fleet scale (10^6 tags,
ROADMAP item 2) the fleet is not a Python dict: it is a directory of
fixed-width binary shards, each carrying a SHA-256 digest, built by
the campaign layer's :class:`~repro.campaign.supervisor.ShardSupervisor`
so enrollment survives worker crashes and detects corrupt shards the
same way trace acquisition does.

Determinism contract: the whole fleet is a pure function of the
:class:`EnrollmentSpec` — tag ``i``'s secret is derived from the spec
seed, so any worker can (re)build any shard independently and two
enrollments of the same spec are byte-identical.

A note on TOY-B17 scale: the toy group order is n = 65587, so there
are only n-1 = 65586 distinct nonzero secrets.  A 10^6-tag fleet
therefore *forces* secret collisions; two colliding tags share a
public point and are cryptographically indistinguishable to the
reader.  The canonical identity of a record is the lowest enrolled
identity that maps to it (``i mod (n-1)`` for the incremental
assignment below), and every lookup in this package returns canonical
identities.  On a production curve (K-163) collisions never occur and
canonical == enrolled.

Incremental enrollment: secrets are assigned consecutively
(``sec(i+1) = sec(i) + 1`` mod the nonzero range), so inside a shard
each public point is the previous point plus ``P`` — one full scalar
multiplication per *shard*, one point addition per *tag*.  That turns
a ~1.4 ms multiply per tag into a ~150 µs add per tag and makes a
10^6-tag enrollment tractable.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, Iterator, List, Optional, Tuple

from ..campaign.chaos import (CHAOS_CRASH_EXIT_CODE, ChaosConfig,
                              ChaosInjectedError)
from ..campaign.store import _atomic_write_bytes, file_digest
from ..channel.frame import compress_point, decompress_point, \
    point_width_bytes
from ..ec.curves import get_curve
from ..ec.point import AffinePoint
from .errors import EnrollmentError
from ..protocols.database import TagDatabase

__all__ = ["EnrollmentError", "EnrollmentSpec", "EnrollmentReport",
           "EnrollmentStore", "ShardedTagDatabase", "enroll_fleet",
           "enroll_shard", "MANIFEST_NAME"]

MANIFEST_NAME = "enrollment.json"
_SCHEMA_VERSION = 1


def _derive_scalar(seed: int, label: str, order: int) -> int:
    """A deterministic nonzero scalar mod ``order`` from the spec seed."""
    material = f"repro.server.enroll/{seed}/{label}".encode()
    digest = hashlib.sha256(material).digest()
    return 1 + int.from_bytes(digest, "big") % (order - 1)


@dataclass(frozen=True)
class EnrollmentSpec:
    """Everything that determines a fleet, and nothing else.

    ``digest()`` binds stores to soaks: a soak records the spec digest
    of the fleet it ran against, and :class:`EnrollmentStore` refuses
    a manifest whose digest disagrees with its spec.
    """

    tags: int
    curve: str = "TOY-B17"
    shard_size: int = 65536
    seed: int = 0
    schema_version: int = _SCHEMA_VERSION

    def __post_init__(self):
        if self.tags < 1:
            raise EnrollmentError("fleet needs at least one tag")
        if self.shard_size < 1:
            raise EnrollmentError("shard_size must be positive")
        if self.schema_version != _SCHEMA_VERSION:
            raise EnrollmentError(
                f"unknown enrollment schema v{self.schema_version} "
                f"(this build reads v{_SCHEMA_VERSION})"
            )

    # -- identity ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema_version": self.schema_version,
            "curve": self.curve,
            "tags": self.tags,
            "shard_size": self.shard_size,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "EnrollmentSpec":
        return cls(tags=d["tags"], curve=d["curve"],
                   shard_size=d["shard_size"], seed=d["seed"],
                   schema_version=d.get("schema_version",
                                        _SCHEMA_VERSION))

    def digest(self) -> str:
        payload = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    # -- derived crypto ------------------------------------------------

    def domain(self):
        return get_curve(self.curve)

    def record_width(self) -> int:
        return point_width_bytes(self.domain().field.m)

    def base_secret(self) -> int:
        """Secret of identity 0; later identities count up from it."""
        return _derive_scalar(self.seed, "x0", self.domain().order)

    def reader_secret(self) -> int:
        """The reader's private key ``y`` for this fleet."""
        return _derive_scalar(self.seed, "y", self.domain().order)

    def secret_for(self, identity: int) -> int:
        """Tag ``identity``'s secret: consecutive in the nonzero range
        ``[1, n-1]`` so shard enrollment is incremental."""
        if not 0 <= identity < self.tags:
            raise EnrollmentError(f"identity {identity} outside fleet "
                                  f"of {self.tags}")
        nonzero = self.domain().order - 1
        return 1 + (self.base_secret() - 1 + identity) % nonzero

    def canonical_identity(self, identity: int) -> int:
        """Lowest enrolled identity sharing ``identity``'s secret
        (collisions are forced when ``tags > order - 1``)."""
        return identity % (self.domain().order - 1)

    # -- layout --------------------------------------------------------

    @property
    def num_shards(self) -> int:
        return (self.tags + self.shard_size - 1) // self.shard_size

    def shard_count(self, shard_index: int) -> int:
        start = shard_index * self.shard_size
        return min(self.shard_size, self.tags - start)

    @staticmethod
    def shard_filename(shard_index: int) -> str:
        return f"tags-{shard_index:05d}.bin"


# ----------------------------------------------------------------------
# the worker task
# ----------------------------------------------------------------------

def enroll_shard(spec_dict: dict, directory: str, shard_index: int,
                 attempt: int, chaos_dict: Optional[dict]) -> dict:
    """Build one shard of the fleet: the supervised worker task.

    Module-level and dict-in/dict-out so it crosses the ``spawn``
    pickle boundary.  The returned record carries ``artifacts`` so the
    supervisor re-hashes the shard file after completion — a worker
    that lies about its bytes (the corrupt fault below) is caught by
    that independent check, exactly as in trace acquisition.
    """
    spec = EnrollmentSpec.from_dict(spec_dict)
    if not 0 <= shard_index < spec.num_shards:
        raise EnrollmentError(f"shard {shard_index} outside fleet of "
                              f"{spec.num_shards} shards")

    chaos = None if chaos_dict is None else ChaosConfig.from_dict(chaos_dict)
    if chaos is not None:
        fault = chaos.execution_fault(shard_index, attempt)
        if fault == "crash":
            # Die mid-write: stale .tmp, no record, nonzero exit.
            tmp = os.path.join(directory,
                               spec.shard_filename(shard_index) + ".tmp")
            with open(tmp, "wb") as f:
                f.write(b"chaos: torn enrollment\x00" * 4)
            os._exit(CHAOS_CRASH_EXIT_CODE)
        elif fault == "hang":
            time.sleep(chaos.hang_seconds)
        elif fault == "error":
            raise ChaosInjectedError(
                f"injected enrollment failure (shard {shard_index}, "
                f"attempt {attempt})"
            )
        elif fault == "slow":
            time.sleep(chaos.slow_seconds)

    domain = spec.domain()
    curve, generator = domain.curve, domain.generator
    nonzero = domain.order - 1
    start = shard_index * spec.shard_size
    count = spec.shard_count(shard_index)

    # One naive multiply anchors the shard; every further tag is one
    # point addition (consecutive secrets).  At a secret wrap
    # (n-1 -> 1) the next point is P itself, skipping infinity.
    secret = spec.secret_for(start)
    point = curve.multiply_naive(secret, generator)
    out = bytearray()
    for _ in range(count):
        out += compress_point(curve, point)
        if secret == nonzero:
            secret = 1
            point = generator
        else:
            secret += 1
            point = curve.add(point, generator)

    name = spec.shard_filename(shard_index)
    path = os.path.join(directory, name)
    _atomic_write_bytes(path, bytes(out))
    digest = file_digest(path)

    if chaos is not None and chaos.corrupts(shard_index, attempt):
        # Flip a byte *after* the digest: the record now lies about
        # the bytes on disk; only the supervisor's re-hash notices.
        with open(path, "r+b") as f:
            f.seek(0)
            byte = f.read(1) or b"\x00"
            f.seek(0)
            f.write(bytes([byte[0] ^ 0xFF]))

    return {
        "shard": shard_index,
        "file": name,
        "sha256": digest,
        "count": count,
        "artifacts": [(name, digest)],
    }


# ----------------------------------------------------------------------
# the coordinator
# ----------------------------------------------------------------------

@dataclass
class EnrollmentReport:
    """What one :func:`enroll_fleet` run accomplished."""

    spec_digest: str
    directory: str
    tags: int
    shards_total: int
    shards_built: int
    shards_reused: int
    quarantined: List[int] = dataclass_field(default_factory=list)
    retried_attempts: int = 0

    @property
    def complete(self) -> bool:
        return not self.quarantined

    def to_dict(self) -> dict:
        return {
            "spec_digest": self.spec_digest,
            "directory": self.directory,
            "tags": self.tags,
            "shards_total": self.shards_total,
            "shards_built": self.shards_built,
            "shards_reused": self.shards_reused,
            "quarantined": list(self.quarantined),
            "retried_attempts": self.retried_attempts,
        }


def _sweep_stale_tmp(directory: str) -> None:
    for name in os.listdir(directory):
        if name.startswith("tags-") and name.endswith(".tmp"):
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass


def enroll_fleet(directory: str, spec: EnrollmentSpec, *,
                 workers: Optional[int] = None,
                 chaos: Optional[ChaosConfig] = None,
                 policy=None,
                 on_event=None) -> EnrollmentReport:
    """Build (or resume) the sharded fleet under ``directory``.

    Supervised, restartable and idempotent: shards whose files already
    verify against the manifest are reused; everything else is built
    by the supervisor with retry/quarantine semantics.  The manifest
    is only written once every shard completed, so a half-enrolled
    directory is never mistaken for a fleet.
    """
    from ..campaign.acquire import default_workers
    from ..campaign.supervisor import ShardSupervisor

    os.makedirs(directory, exist_ok=True)
    _sweep_stale_tmp(directory)

    manifest_path = os.path.join(directory, MANIFEST_NAME)
    known: Dict[int, dict] = {}
    if os.path.exists(manifest_path):
        with open(manifest_path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
        if manifest.get("spec_digest") != spec.digest():
            raise EnrollmentError(
                f"directory {directory} holds a different fleet "
                f"(manifest spec digest {manifest.get('spec_digest')!r}, "
                f"requested {spec.digest()!r})"
            )
        for entry in manifest.get("shards", []):
            known[entry["shard"]] = entry

    expected_sizes = {
        index: spec.shard_count(index) * spec.record_width()
        for index in range(spec.num_shards)
    }
    reused: Dict[int, dict] = {}
    pending: List[int] = []
    for index in range(spec.num_shards):
        entry = known.get(index)
        path = os.path.join(directory, spec.shard_filename(index))
        if (entry is not None and os.path.exists(path)
                and os.path.getsize(path) == expected_sizes[index]
                and file_digest(path) == entry["sha256"]):
            reused[index] = entry
        else:
            pending.append(index)

    built: Dict[int, dict] = {}
    retried = 0
    quarantined: List[int] = []
    if pending:
        workers = default_workers(workers)
        supervisor = ShardSupervisor(
            spec, directory,
            workers=workers,
            policy=policy,
            chaos=chaos,
            task=enroll_shard,
            on_success=lambda record, attempt: built.__setitem__(
                record["shard"], record),
            on_event=on_event,
        )
        outcome = supervisor.run(pending)
        retried = outcome.retried_attempts
        quarantined = sorted(outcome.quarantined)

    report = EnrollmentReport(
        spec_digest=spec.digest(),
        directory=str(directory),
        tags=spec.tags,
        shards_total=spec.num_shards,
        shards_built=len(built),
        shards_reused=len(reused),
        quarantined=quarantined,
        retried_attempts=retried,
    )
    if quarantined:
        return report          # no manifest for an incomplete fleet

    entries = []
    for index in range(spec.num_shards):
        record = built.get(index) or reused[index]
        entries.append({
            "shard": index,
            "file": record["file"],
            "sha256": record["sha256"],
            "count": record["count"],
        })
    manifest = {
        "schema_version": _SCHEMA_VERSION,
        "spec": spec.to_dict(),
        "spec_digest": spec.digest(),
        "shards": entries,
    }
    _atomic_write_bytes(
        manifest_path,
        json.dumps(manifest, indent=1, sort_keys=True).encode(),
    )
    return report


# ----------------------------------------------------------------------
# reading the fleet back
# ----------------------------------------------------------------------

class EnrollmentStore:
    """Read access to an enrolled fleet directory.

    ``verify=True`` (the default) re-hashes every shard against the
    manifest before serving a byte — a fleet the reader identifies
    against must be exactly the fleet that was enrolled.
    """

    def __init__(self, directory: str, *, verify: bool = True):
        self.directory = str(directory)
        manifest_path = os.path.join(self.directory, MANIFEST_NAME)
        if not os.path.exists(manifest_path):
            raise EnrollmentError(
                f"no enrollment manifest in {self.directory} "
                f"(run `server enroll` first)"
            )
        with open(manifest_path, "r", encoding="utf-8") as f:
            manifest = json.load(f)
        if manifest.get("schema_version") != _SCHEMA_VERSION:
            raise EnrollmentError(
                f"manifest schema v{manifest.get('schema_version')} "
                f"(this build reads v{_SCHEMA_VERSION})"
            )
        self.spec = EnrollmentSpec.from_dict(manifest["spec"])
        if manifest.get("spec_digest") != self.spec.digest():
            raise EnrollmentError(
                "manifest spec digest disagrees with its own spec"
            )
        self._entries = sorted(manifest["shards"],
                               key=lambda e: e["shard"])
        if [e["shard"] for e in self._entries] != \
                list(range(self.spec.num_shards)):
            raise EnrollmentError("manifest shard set is not contiguous")
        self.record_width = self.spec.record_width()
        self._shard_cache: Dict[int, bytes] = {}
        if verify:
            self.verify()

    # -- integrity -----------------------------------------------------

    def verify(self) -> None:
        """Re-hash every shard file against the manifest."""
        for entry in self._entries:
            path = os.path.join(self.directory, entry["file"])
            if not os.path.exists(path):
                raise EnrollmentError(f"shard file missing: {entry['file']}")
            if file_digest(path) != entry["sha256"]:
                raise EnrollmentError(
                    f"shard digest mismatch: {entry['file']} does not "
                    f"match its manifest digest"
                )

    # -- access --------------------------------------------------------

    def __len__(self) -> int:
        return self.spec.tags

    def shard_bytes(self, shard_index: int) -> bytes:
        """The raw records of one shard (cached after first read)."""
        cached = self._shard_cache.get(shard_index)
        if cached is None:
            entry = self._entries[shard_index]
            path = os.path.join(self.directory, entry["file"])
            with open(path, "rb") as f:
                cached = f.read()
            expected = entry["count"] * self.record_width
            if len(cached) != expected:
                raise EnrollmentError(
                    f"shard {shard_index} holds {len(cached)} bytes, "
                    f"expected {expected}"
                )
            self._shard_cache[shard_index] = cached
        return cached

    def record(self, identity: int) -> bytes:
        """Tag ``identity``'s compressed public point."""
        if not 0 <= identity < self.spec.tags:
            raise EnrollmentError(f"identity {identity} outside fleet "
                                  f"of {self.spec.tags}")
        shard, offset = divmod(identity, self.spec.shard_size)
        data = self.shard_bytes(shard)
        start = offset * self.record_width
        return data[start:start + self.record_width]

    def point(self, identity: int) -> AffinePoint:
        """Tag ``identity``'s public point, decompressed."""
        return decompress_point(self.spec.domain().curve,
                                self.record(identity))

    def iter_shards(self) -> Iterator[Tuple[int, bytes]]:
        """``(first_identity, raw_records)`` per shard, in order."""
        for entry in self._entries:
            yield (entry["shard"] * self.spec.shard_size,
                   self.shard_bytes(entry["shard"]))


class ShardedTagDatabase(TagDatabase):
    """The fleet store behind the :class:`~repro.protocols.database.
    TagDatabase` seam: a reader built for an in-memory dict identifies
    against a million-tag directory without changing a line.

    Lookups scan shards in order and return the *canonical* identity
    (lowest match), matching :class:`InMemoryTagDatabase`'s
    first-enrollment-wins semantics.  The fleet is immutable:
    ``enroll`` refuses — membership changes are re-enrollments.
    """

    def __init__(self, store: EnrollmentStore):
        self.store = store
        self._curve = store.spec.domain().curve

    def enroll(self, identity: int, point: AffinePoint) -> None:
        raise EnrollmentError(
            "a sharded fleet is immutable; enroll by rebuilding the "
            "store with a new EnrollmentSpec"
        )

    def lookup(self, point: AffinePoint) -> Optional[int]:
        if point.is_infinity:
            return None
        needle = compress_point(self._curve, point)
        width = self.store.record_width
        for first_identity, data in self.store.iter_shards():
            offset = data.find(needle)
            while offset != -1:
                if offset % width == 0:
                    return first_identity + offset // width
                offset = data.find(needle, offset + 1)
        return None

    def __len__(self) -> int:
        return len(self.store)
