"""Batched point-multiplication dispatch for the reader side.

Every concurrent session needs three reader-side point
multiplications (``y*R``, ``(s-d')*P``, ``e*R`` — Figure 2's
verification), and under load thousands of sessions need them at
once.  :class:`ScalarMultScheduler` is the seam between "a session
awaits one multiplication" and "the reader's EC backend executes
many": requests arriving within one coalescing window are dispatched
as a single batch to a pluggable engine.

Today the only engine is :class:`NaiveScalarEngine` (a loop over
``multiply_naive`` — the reader is energy-rich, Section 4's asymmetry
rule, so it owes no countermeasures).  ROADMAP item 1's batch/windowed
engine drops in behind the same two-method interface
(:meth:`ScalarMultEngine.execute`, :attr:`ScalarMultEngine.name`)
without touching a single session: amortized precomputation across a
batch is exactly what the coalescing window exists to feed.

The scheduler runs on the virtual-time :class:`~.simloop.SimLoop`, so
batch composition — which requests share a flush — is deterministic
and identical across runs and worker counts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..ec.point import AffinePoint
from .simloop import SimFuture, SimLoop

__all__ = ["ScalarMultEngine", "NaiveScalarEngine", "ScalarMultScheduler",
           "BATCH_SIZE_BUCKETS"]

#: Histogram buckets for the per-flush batch size.
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0,
                      256.0, 512.0)


class ScalarMultEngine:
    """What the scheduler needs from an EC backend.

    ``execute`` receives the whole batch at once so an implementation
    can amortize work across it; it must return one result per
    request, in request order.
    """

    name = "abstract"

    def execute(self, requests: List[Tuple[int, AffinePoint]]
                ) -> List[AffinePoint]:
        raise NotImplementedError


class NaiveScalarEngine(ScalarMultEngine):
    """The scalar baseline: one ``multiply_naive`` per request."""

    name = "naive-scalar"

    def __init__(self, curve):
        self.curve = curve

    def execute(self, requests: List[Tuple[int, AffinePoint]]
                ) -> List[AffinePoint]:
        return [self.curve.multiply_naive(scalar, point)
                for scalar, point in requests]


class ScalarMultScheduler:
    """Coalesces concurrent sessions' point multiplications.

    Parameters
    ----------
    loop:
        The virtual-time loop everything runs on.
    engine:
        The EC backend; any :class:`ScalarMultEngine`.
    window_s:
        Virtual seconds a flush waits after the first request of a
        batch — the coalescing window.  0 still batches everything
        submitted at one virtual instant (admission bursts), because
        the flush runs as a later event at the same time.
    max_batch:
        Hard cap per dispatch; the remainder re-arms the window.
    registry:
        Optional :class:`~repro.obs.metrics.MetricRegistry` for the
        ``repro_server_scalarmult_*`` family.
    """

    def __init__(self, loop: SimLoop, engine: ScalarMultEngine,
                 window_s: float = 1e-4, max_batch: int = 256,
                 registry=None):
        if window_s < 0:
            raise ValueError("coalescing window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.loop = loop
        self.engine = engine
        self.window_s = window_s
        self.max_batch = max_batch
        self.registry = registry
        self._pending: List[Tuple[int, AffinePoint, SimFuture]] = []
        self._flush_armed = False
        self.requests_total = 0
        self.batches_total = 0

    def multiply(self, scalar: int, point: AffinePoint) -> SimFuture:
        """``await``-able point multiplication ``scalar * point``."""
        future = SimFuture(self.loop)
        self._pending.append((scalar, point, future))
        self.requests_total += 1
        if not self._flush_armed:
            self._flush_armed = True
            self.loop.call_at(self.loop.now + self.window_s, self._flush)
        return future

    # ------------------------------------------------------------------

    def _flush(self) -> None:
        self._flush_armed = False
        if not self._pending:
            return
        batch = self._pending[:self.max_batch]
        del self._pending[:len(batch)]
        if self._pending:  # overflow re-arms immediately
            self._flush_armed = True
            self.loop.call_at(self.loop.now + self.window_s, self._flush)
        self.batches_total += 1
        requests = [(scalar, point) for scalar, point, _ in batch]
        results = self.engine.execute(requests)
        if len(results) != len(requests):
            raise RuntimeError(
                f"engine {self.engine.name} returned {len(results)} "
                f"results for {len(requests)} requests"
            )
        self._record_batch(len(batch))
        for (_, _, future), result in zip(batch, results):
            future._wake(result)

    def _record_batch(self, size: int) -> None:
        if self.registry is None:
            return
        self.registry.counter(
            "repro_server_scalarmult_requests_total",
            "point multiplications dispatched through the scheduler",
        ).inc(size, engine=self.engine.name)
        self.registry.counter(
            "repro_server_scalarmult_batches_total",
            "coalesced dispatches to the EC engine",
        ).inc(engine=self.engine.name)
        self.registry.histogram(
            "repro_server_scalarmult_batch_size",
            "requests coalesced per dispatch",
            buckets=BATCH_SIZE_BUCKETS,
        ).observe(float(size), engine=self.engine.name)
