"""repro.server — the fleet-scale private-identification service.

ROADMAP item 2: the paper's Figure-2 reader, grown from a toy
one-tag-one-dict verifier into a service that terminates thousands of
concurrent Peeters–Hermans sessions over the lossy body-area channel
against a sharded, disk-backed enrollment database of 10^6+ tags.

The subsystem is a layer cake, bottom up:

* :mod:`.simloop` — a deterministic virtual-time event loop (asyncio's
  shape, none of its wall-clock nondeterminism) the whole service runs
  on; identical seeds yield identical schedules, byte for byte;
* :mod:`.enrollment` — deterministic fleet enrollment from a seed into
  digest-verified shards (the :mod:`repro.campaign.store` discipline),
  plus :class:`ShardedTagDatabase`, the fleet-scale implementation of
  the :class:`~repro.protocols.database.TagDatabase` protocol;
* :mod:`.scheduler` — :class:`ScalarMultScheduler`, the batched
  point-multiplication dispatch interface that coalesces reader-side
  EC work across concurrent sessions (scalar engine today, the
  ROADMAP-item-1 batch engine later, behind the same interface);
* :mod:`.search` — the private-identification search: the uncached
  O(N) shard scan every lookup pays, and the per-epoch precomputed
  table (keyed by the epoch nonce) that beats it;
* :mod:`.reader` — the service itself: bounded admission queue,
  per-session deadlines, graceful shedding under overload, live
  ``repro_server_*`` metrics and ``server.accept > session > search``
  obs spans;
* :mod:`.soak` — cohort-sharded soak runs under the campaign chaos
  harness, with summaries byte-identical across worker counts;
* :mod:`.http` — the live ``/metrics`` Prometheus text endpoint.
"""

from .enrollment import (
    EnrollmentError,
    EnrollmentReport,
    EnrollmentSpec,
    EnrollmentStore,
    ShardedTagDatabase,
    enroll_fleet,
)
from .errors import (
    AdmissionRejectedError,
    ReplayQuarantinedError,
    ServerError,
    SessionDeadlineError,
    SourceThrottledError,
)
from .http import MetricsServer
from .reader import IdentificationServer, ServerConfig
from .scheduler import NaiveScalarEngine, ScalarMultScheduler
from .search import EpochSearchCache, epoch_nonce, scan_lookup
from .simloop import SimCancelled, SimLoop, SimQueue, SimQueueFull
from .soak import SESSION_OUTCOMES, SoakReport, SoakSpec, run_soak

__all__ = [
    "ServerError",
    "AdmissionRejectedError",
    "SessionDeadlineError",
    "SourceThrottledError",
    "ReplayQuarantinedError",
    "SESSION_OUTCOMES",
    "EnrollmentError",
    "EnrollmentSpec",
    "EnrollmentStore",
    "EnrollmentReport",
    "ShardedTagDatabase",
    "enroll_fleet",
    "ScalarMultScheduler",
    "NaiveScalarEngine",
    "EpochSearchCache",
    "epoch_nonce",
    "scan_lookup",
    "SimLoop",
    "SimCancelled",
    "SimQueue",
    "SimQueueFull",
    "IdentificationServer",
    "ServerConfig",
    "SoakSpec",
    "SoakReport",
    "run_soak",
    "MetricsServer",
]
