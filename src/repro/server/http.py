"""A live ``/metrics`` endpoint for the identification server.

Standard library only: a :class:`ThreadingHTTPServer` on a daemon
thread serving the Prometheus text exposition of a
:class:`~repro.obs.metrics.MetricRegistry` — the existing ``repro_*``
families plus the server's ``repro_server_*`` ones, whatever the
registry holds — with derived ``*_q`` quantile gauges appended for
every histogram family and, when a live
:class:`~repro.obs.stream.StreamAggregator` is attached, its
``repro_stream_*`` telemetry series.  ``GET /metrics`` scrapes,
``GET /healthz`` probes, anything else is 404.

The registry is mutated by the simulation thread while scrapes render
on the HTTP thread; rendering walks dicts that may grow mid-walk, so
a scrape retries the render a few times on ``RuntimeError`` rather
than locking the hot path — a scrape must never slow the server down.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

__all__ = ["MetricsServer"]

_RENDER_RETRIES = 5


class _Handler(BaseHTTPRequestHandler):
    registry = None                    # set by the enclosing server
    stream = None                      # optional live StreamAggregator

    def do_GET(self):                  # noqa: N802 — http.server API
        if self.path == "/metrics":
            body = self._render()
            if body is None:
                self._reply(503, "metrics render contended; retry\n")
            else:
                self._reply(200, body,
                            content_type="text/plain; version=0.0.4; "
                                         "charset=utf-8")
        elif self.path == "/healthz":
            self._reply(200, "ok\n")
        else:
            self._reply(404, "unknown path; try /metrics\n")

    def _render(self) -> Optional[str]:
        from ..obs.quantile import render_quantile_exposition
        from ..obs.stream import render_stream_exposition

        for _ in range(_RENDER_RETRIES):
            try:
                body = self.registry.render_prometheus()
                # Derived tail quantiles for every histogram family,
                # so the scraper never re-implements interpolation.
                body += render_quantile_exposition(
                    self.registry.snapshot())
                if self.stream is not None:
                    body += render_stream_exposition(
                        self.stream.snapshot())
                return body
            except RuntimeError:       # dict grew during iteration
                continue
        return None

    def _reply(self, status: int, body: str,
               content_type: str = "text/plain; charset=utf-8") -> None:
        payload = body.encode()
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format, *args):   # noqa: A002 — API name
        pass                                # scrapes are not log events


class MetricsServer:
    """Serve a registry's metrics over HTTP until stopped.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` (the CLI prints it so a scrape loop can find it).
    """

    def __init__(self, registry, host: str = "127.0.0.1",
                 port: int = 0, stream=None):
        self.registry = registry
        self.host = host
        self.stream = stream
        self._requested_port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("metrics server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"

    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        handler = type("_BoundHandler", (_Handler,),
                       {"registry": self.registry,
                        "stream": self.stream})
        self._httpd = ThreadingHTTPServer(
            (self.host, self._requested_port), handler)
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
