"""The identification server: thousands of Figure-2 sessions at once.

This is ROADMAP item 2's reader side.  One
:class:`IdentificationServer` owns the reader secret for an enrolled
fleet (:mod:`.enrollment`), terminates concurrent Peeters–Hermans
sessions over the lossy body-area channel, and answers the closing
"which tag is this?" against the sharded store through the search
layer (:mod:`.search`).

Three load-bearing design points:

* **Admission before work.**  ``submit()`` either enqueues the arrival
  into a *bounded* admission queue or raises
  :class:`~.errors.AdmissionRejectedError` synchronously — an
  overloaded server sheds immediately rather than accepting sessions
  into deadlines it cannot meet.  Admitted sessions wait for one of
  ``capacity`` in-flight slots; a per-session deadline cancels
  stragglers (:class:`~.simloop.SimCancelled` → a ``deadline``
  outcome, never a hang).
* **Crypto through the scheduler.**  Every reader-side point
  multiplication goes through :class:`~.scheduler.ScalarMultScheduler`
  so concurrent sessions' EC work coalesces into batches; the tag side
  stays a live :class:`~repro.protocols.peeters_hermans.PeetersHermansTag`
  whose nonce-lifecycle guarantees are enforced by the real object.
* **Session semantics are the session layer's.**  The per-session
  exchange is a coroutine port of
  :class:`repro.protocols.session._SessionEngine` — same frame codec,
  same epoch/retransmission state machine, same rejection taxonomy,
  same operation accounting — running on the shared virtual-time
  :class:`~.simloop.SimLoop` so thousands of sessions interleave
  deterministically.

Everything deterministic (counts, energy, outcomes) lands in
``repro_server_*`` counters/gauges; wall-clock observations (search
latency) land in ``*_seconds`` histograms, which summary builders
strip.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..channel import (
    BodyAreaChannel,
    Frame,
    FrameCorruptedError,
    FrameError,
    LossProfile,
    compress_point,
    decode_frame,
    decompress_point,
    derive_channel_seed,
    encode_frame,
    int_from_bytes,
    int_to_bytes,
    point_width_bytes,
    scalar_width_bytes,
)
from ..obs import runtime as _obs_runtime
from ..protocols.ops import OperationCount
from ..protocols.peeters_hermans import PeetersHermansTag
from ..protocols.session import RetransmissionPolicy
from .enrollment import EnrollmentStore
from .errors import AdmissionRejectedError, ServerError
from .scheduler import NaiveScalarEngine, ScalarMultScheduler
from .search import EpochSearchCache, epoch_nonce, scan_lookup
from .simloop import SimCancelled, SimFuture, SimLoop, SimQueue, \
    SimQueueFull

__all__ = ["ServerConfig", "SessionOutcome", "IdentificationServer",
           "SEARCH_MODES"]

SEARCH_MODES = ("cached", "uncached")

#: Microjoule buckets for the per-session energy histogram (tag side
#: of one TOY-B17 session lands in the tens of µJ; retries multiply).
ENERGY_UJ_BUCKETS = (10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0,
                     2000.0, 5000.0)

#: Seconds buckets for the (wall-clock) search latency histogram.
SEARCH_SECONDS_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0)

_TAG, _READER = 0, 1
_SHUTDOWN = object()


@dataclass(frozen=True)
class ServerConfig:
    """Admission, deadline and search knobs of one server instance."""

    capacity: int = 256
    admission_queue: int = 64
    session_deadline_s: float = 2.0
    search_mode: str = "cached"
    epoch_sessions: int = 100000
    scheduler_window_s: float = 1e-4
    scheduler_max_batch: int = 64
    distance_m: float = 0.5
    source_session_limit: int = 0   # 0 = per-source throttling off
    replay_quarantine: bool = False
    tag_budget_uj: float = 0.0      # 0 = per-session tag budget off

    def __post_init__(self):
        if self.capacity < 1:
            raise ValueError("capacity must be positive")
        if self.admission_queue < 1:
            raise ValueError("admission queue must be positive")
        if self.session_deadline_s <= 0:
            raise ValueError("session deadline must be positive")
        if self.search_mode not in SEARCH_MODES:
            raise ValueError(f"search_mode must be one of {SEARCH_MODES}")
        if self.epoch_sessions < 1:
            raise ValueError("epoch_sessions must be positive")
        if self.source_session_limit < 0:
            raise ValueError("source session limit must be non-negative")
        if self.tag_budget_uj < 0:
            raise ValueError("tag budget must be non-negative")

    def to_dict(self) -> dict:
        return {
            "capacity": self.capacity,
            "admission_queue": self.admission_queue,
            "session_deadline_s": self.session_deadline_s,
            "search_mode": self.search_mode,
            "epoch_sessions": self.epoch_sessions,
            "scheduler_window_s": self.scheduler_window_s,
            "scheduler_max_batch": self.scheduler_max_batch,
            "distance_m": self.distance_m,
            "source_session_limit": self.source_session_limit,
            "replay_quarantine": self.replay_quarantine,
            "tag_budget_uj": self.tag_budget_uj,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ServerConfig":
        return cls(**d)


@dataclass
class SessionOutcome:
    """One session's verdict and full deterministic accounting.

    ``outcome`` is one of ``accepted | rejected | aborted | deadline |
    adversarial | budget_exhausted`` — the full enumeration; soak
    summaries bucket every one explicitly so no session ever falls
    through to a generic failure count.
    """

    index: int
    outcome: str
    identity: Optional[int]
    expected_identity: int
    detail: str
    epochs_used: int
    frames_sent: int
    retransmissions: int
    corrupt_rejections: int
    stale_rejections: int
    replay_rejections: int
    payload_rejections: int
    elapsed_s: float                  # virtual
    records_scanned: int
    tag_energy_uj: float
    reader_energy_uj: float

    @property
    def identified_correctly(self) -> bool:
        return (self.outcome == "accepted"
                and self.identity == self.expected_identity)

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "outcome": self.outcome,
            "identity": self.identity,
            "expected_identity": self.expected_identity,
            "detail": self.detail,
            "epochs_used": self.epochs_used,
            "frames_sent": self.frames_sent,
            "retransmissions": self.retransmissions,
            "elapsed_ms": round(self.elapsed_s * 1000, 3),
            "records_scanned": self.records_scanned,
            "tag_energy_uj": round(self.tag_energy_uj, 6),
            "reader_energy_uj": round(self.reader_energy_uj, 6),
        }


class IdentificationServer:
    """The concurrent reader endpoint over an enrolled fleet."""

    def __init__(self, loop: SimLoop, store: EnrollmentStore,
                 config: Optional[ServerConfig] = None, *,
                 seed: int = 0,
                 profile: Optional[LossProfile] = None,
                 policy: Optional[RetransmissionPolicy] = None,
                 registry=None,
                 scheduler: Optional[ScalarMultScheduler] = None):
        self.loop = loop
        self.store = store
        self.spec = store.spec
        self.config = config or ServerConfig()
        self.seed = seed
        self.profile = profile if profile is not None else LossProfile()
        self.policy = policy or RetransmissionPolicy()
        self.registry = registry
        self.domain = self.spec.domain()
        self._secret_y = self.spec.reader_secret()
        # The reader's long-term public key: server-wide, computed
        # once — deliberately *not* in any session's OperationCount.
        self.reader_public = self.domain.curve.multiply_naive(
            self._secret_y, self.domain.generator)
        self.scheduler = scheduler or ScalarMultScheduler(
            loop, NaiveScalarEngine(self.domain.curve),
            window_s=self.config.scheduler_window_s,
            max_batch=self.config.scheduler_max_batch,
            registry=registry)
        self._admission: SimQueue = SimQueue(
            loop, maxsize=self.config.admission_queue)
        self._in_flight = 0
        self.peak_in_flight = 0
        self.admitted = 0
        self.shed = 0
        self.throttled = 0
        self._slot_waiter: Optional[SimFuture] = None
        self._caches: Dict[int, EpochSearchCache] = {}
        self._acceptor: Optional["SimTask"] = None
        # Per-source defenses (adversary lab): live session counts for
        # throttling, seen commitments for replay detection, and the
        # quarantine set itself.
        self._source_sessions: Dict[str, int] = {}
        self._seen_commits: Dict[bytes, Tuple[str, int]] = {}
        self.quarantined_sources: set = set()

    # -- admission -----------------------------------------------------

    def start(self) -> None:
        if self._acceptor is None:
            self._acceptor = self.loop.create_task(self._accept_loop(),
                                                   name="acceptor")

    def submit(self, index: int, source: Optional[str] = None,
               adversarial: bool = False) -> SimFuture:
        """Offer session ``index`` for admission.

        Returns a future resolving to this session's
        :class:`SessionOutcome`, or sheds *now* with a typed error:
        :class:`AdmissionRejectedError` when the admission queue is
        full, :class:`~.errors.ReplayQuarantinedError` when ``source``
        was quarantined for replaying commit material, and
        :class:`~.errors.SourceThrottledError` when ``source`` is over
        its concurrent-session allowance.  ``adversarial`` marks the
        simulation's ground truth (a malicious reader driving the
        session) so the outcome is bucketed as ``adversarial`` rather
        than a generic failure.
        """
        from .errors import ReplayQuarantinedError, SourceThrottledError
        if self._acceptor is None:
            raise ServerError("server not started", session_index=index)
        if source is not None and source in self.quarantined_sources:
            self.shed += 1
            self._count("repro_server_sheds_total",
                        "arrivals shed at the admission queue",
                        reason="quarantined")
            raise ReplayQuarantinedError(
                f"source {source!r} is quarantined for replaying "
                f"commitments", session_index=index)
        if source is not None and self.config.source_session_limit:
            live = self._source_sessions.get(source, 0)
            if live >= self.config.source_session_limit:
                self.shed += 1
                self.throttled += 1
                self._count("repro_server_sheds_total",
                            "arrivals shed at the admission queue",
                            reason="throttled")
                self._count("repro_server_throttles_total",
                            "arrivals refused by per-source throttling")
                raise SourceThrottledError(
                    f"source {source!r} already has {live} session(s) "
                    f"in flight (limit "
                    f"{self.config.source_session_limit})",
                    session_index=index)
        future = SimFuture(self.loop)
        try:
            self._admission.put_nowait(
                (index, source, adversarial, future))
        except SimQueueFull:
            self.shed += 1
            self._count("repro_server_sheds_total",
                        "arrivals shed at the admission queue",
                        reason="overload")
            raise AdmissionRejectedError(
                f"admission queue full "
                f"({self.config.admission_queue} waiting)",
                session_index=index) from None
        if source is not None:
            self._source_sessions[source] = \
                self._source_sessions.get(source, 0) + 1
        self.admitted += 1
        self._count("repro_server_admissions_total",
                    "arrivals admitted past the queue")
        return future

    async def close(self) -> None:
        """Stop accepting; waits for the acceptor to exit.  Sessions
        already admitted run to completion."""
        if self._acceptor is None:
            return
        while True:
            try:
                self._admission.put_nowait(_SHUTDOWN)
                break
            except SimQueueFull:
                await self.loop.sleep(0.01)
        await self._acceptor
        self._acceptor = None

    async def _accept_loop(self) -> None:
        rt = _obs_runtime.current()
        while True:
            item = await self._admission.get()
            if item is _SHUTDOWN:
                return
            index, source, adversarial, future = item
            while self._in_flight >= self.config.capacity:
                self._slot_waiter = SimFuture(self.loop)
                await self._slot_waiter
            self._in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight,
                                      self._in_flight)
            self._set_gauge("repro_server_sessions_in_flight",
                            "sessions currently being served",
                            float(self._in_flight))
            self._set_gauge("repro_server_in_flight_peak",
                            "high-water mark of concurrent sessions",
                            float(self.peak_in_flight))
            if rt is not None:
                with rt.span("server.accept", key=index,
                             in_flight=self._in_flight):
                    pass
            task = self.loop.create_task(
                self._run_session(index, source, adversarial),
                name=f"session-{index}")
            deadline = self.loop.call_at(
                self.loop.now + self.config.session_deadline_s,
                task.cancel, "session deadline")
            task.add_done_callback(
                self._session_closer(index, source, future, deadline))

    def _session_closer(self, index, source, future, deadline_handle):
        def closer(task) -> None:
            deadline_handle.cancel()
            self._in_flight -= 1
            if source is not None:
                live = self._source_sessions.get(source, 1) - 1
                if live > 0:
                    self._source_sessions[source] = live
                else:
                    self._source_sessions.pop(source, None)
            self._set_gauge("repro_server_sessions_in_flight",
                            "sessions currently being served",
                            float(self._in_flight))
            if self._slot_waiter is not None:
                waiter, self._slot_waiter = self._slot_waiter, None
                waiter._wake(None)
            exc = task.exception()
            if exc is not None:
                future.set_exception(exc)
            else:
                future.set_result(task.result())
        return closer

    # -- the per-session exchange --------------------------------------

    async def _run_session(self, index: int,
                           source: Optional[str] = None,
                           adversarial: bool = False) -> SessionOutcome:
        exchange = _SessionExchange(self, index, source=source,
                                    adversarial=adversarial)
        rt = _obs_runtime.current()
        span = rt.span("server.session", key=index) if rt is not None \
            else None
        try:
            if span is not None:
                with span as sp:
                    outcome = await exchange.run()
                    if sp is not None:
                        sp.set(outcome=outcome.outcome,
                               epochs=outcome.epochs_used)
            else:
                outcome = await exchange.run()
        except SimCancelled:
            if exchange.adversarial:
                # Ground truth wins the bucket: a malicious session
                # timed out *because* it never meant to conclude.
                outcome = exchange.as_outcome(
                    "adversarial",
                    "malicious reader traffic; deadline expired")
            else:
                outcome = exchange.as_outcome("deadline",
                                              "session deadline expired")
        self._record_session(outcome)
        return outcome

    # -- search --------------------------------------------------------

    def _cache_for(self, index: int) -> EpochSearchCache:
        epoch_index = index // self.config.epoch_sessions
        cache = self._caches.get(epoch_index)
        if cache is None:
            cache = EpochSearchCache(
                self.store, epoch_nonce(self.seed, epoch_index))
            walked = cache.build()
            self._count("repro_server_cache_builds_total",
                        "per-epoch search tables built")
            self._count("repro_server_search_records_scanned_total",
                        "fleet records walked by searches and "
                        "cache builds", walked)
            self._caches[epoch_index] = cache
            for stale in [k for k in self._caches
                          if k < epoch_index - 1]:
                del self._caches[stale]
        return cache

    def _search(self, index: int, needle: bytes
                ) -> Tuple[Optional[int], int]:
        """(canonical identity or None, records walked *this* call)."""
        rt = _obs_runtime.current()
        started = time.perf_counter()
        if self.config.search_mode == "cached":
            cache = self._cache_for(index)
            identity = cache.lookup(needle)
            scanned = 0
        else:
            identity, scanned = scan_lookup(self.store, needle)
            self._count("repro_server_search_records_scanned_total",
                        "fleet records walked by searches and "
                        "cache builds", scanned)
        wall = time.perf_counter() - started
        self._count("repro_server_search_lookups_total",
                    "closing identifications searched",
                    mode=self.config.search_mode)
        if self.registry is not None:
            self.registry.histogram(
                "repro_server_search_latency_seconds",
                "wall-clock search latency (stripped from summaries)",
                buckets=SEARCH_SECONDS_BUCKETS,
            ).observe(wall, mode=self.config.search_mode)
        if rt is not None:
            with rt.span("server.search", key=index,
                         mode=self.config.search_mode) as sp:
                if sp is not None:
                    sp.set(hit=identity is not None, scanned=scanned)
        return identity, scanned

    # -- replay quarantine ---------------------------------------------

    def observe_commit(self, source: Optional[str], index: int,
                       payload: bytes) -> bool:
        """Replay detection on commit material; True → quarantined.

        An honest tag draws a fresh nonce for every commit, so the
        same commitment bytes arriving from a *different* session are
        replay traffic; the offending source is quarantined and all
        its further arrivals shed at admission.  Same-session repeats
        (channel duplicates, retransmissions) never trigger.
        """
        if not self.config.replay_quarantine:
            return False
        key = bytes(payload)
        seen = self._seen_commits.get(key)
        if seen is None:
            self._seen_commits[key] = (source, index)
            return False
        _seen_source, seen_index = seen
        if seen_index == index:
            return False
        if source is not None:
            self.quarantined_sources.add(source)
        self._count("repro_server_quarantines_total",
                    "sources quarantined for replaying commitments")
        return True

    # -- metrics -------------------------------------------------------

    def _count(self, name: str, help_text: str, amount: float = 1.0,
               **labels) -> None:
        if self.registry is not None:
            self.registry.counter(name, help_text).inc(amount, **labels)

    def _set_gauge(self, name: str, help_text: str, value: float) -> None:
        if self.registry is not None:
            self.registry.gauge(name, help_text).set(value)

    def _record_session(self, outcome: SessionOutcome) -> None:
        self._count("repro_server_sessions_total",
                    "sessions by final outcome", outcome=outcome.outcome)
        self._count("repro_server_epochs_total",
                    "protocol epochs consumed", outcome.epochs_used)
        self._count("repro_server_frames_total",
                    "frames sent by both endpoints", outcome.frames_sent)
        self._count("repro_server_retransmissions_total",
                    "frames beyond the lossless three",
                    outcome.retransmissions)
        if outcome.outcome == "accepted" \
                and not outcome.identified_correctly:
            self._count("repro_server_misidentifications_total",
                        "accepted sessions naming the wrong tag")
        energy = None
        if self.registry is not None:
            energy = self.registry.counter(
                "repro_server_energy_uj_total",
                "microjoules spent, by role")
            energy.inc(outcome.tag_energy_uj, role="tag")
            energy.inc(outcome.reader_energy_uj, role="reader")
            self.registry.histogram(
                "repro_server_session_energy_uj",
                "tag-side microjoules per session",
                buckets=ENERGY_UJ_BUCKETS,
            ).observe(outcome.tag_energy_uj)


class _SessionExchange:
    """One session's dual state machine, as a coroutine.

    A faithful port of :class:`repro.protocols.session._SessionEngine`
    (Peeters–Hermans only): the same private ``(time, seq)`` agenda,
    frame-rejection taxonomy, nonce lifecycle and bit accounting — but
    time advances by awaiting the *shared* loop, and the reader's
    closing verification awaits the scalar-mult scheduler and the
    search layer instead of computing inline.  Within one session no
    event is ever inserted behind the agenda head, so pop-then-sleep
    preserves the engine's ordering exactly.
    """

    def __init__(self, server: IdentificationServer, index: int, *,
                 source: Optional[str] = None,
                 adversarial: bool = False):
        import heapq as _heapq
        self._heapq = _heapq
        self.server = server
        self.loop = server.loop
        self.policy = server.policy
        self.seed = server.seed
        self.index = index
        self.source = source
        self.adversarial = adversarial
        spec = server.spec
        domain = server.domain
        self.domain = domain
        self.ring = domain.scalar_ring
        curve = domain.curve

        self.expected_identity = spec.canonical_identity(
            derive_channel_seed(self.seed, "server/identity", index,
                                0, 0) % spec.tags)
        tag_secret = spec.secret_for(self.expected_identity)
        # Tag multiplications via multiply_naive: mathematically
        # identical to the randomized ladder, ~10x faster in wall
        # time, and the OperationCount (what energy is charged on)
        # does not depend on the algorithm.
        self.tag = PeetersHermansTag(
            domain, tag_secret, server.reader_public,
            multiplier=lambda k, point, rng: curve.multiply_naive(
                k, point))
        self.reader_ops = OperationCount()
        self.rng_tag = random.Random(derive_channel_seed(
            self.seed, "server/role/tag", index, 0, 0))
        self.rng_reader = random.Random(derive_channel_seed(
            self.seed, "server/role/reader", index, 0, 0))
        self.channel = BodyAreaChannel(server.profile, seed=self.seed,
                                       session=index)
        self.session_id = derive_channel_seed(
            self.seed, "server/session-id", index, 0, 0) & 0xFFFFFFFF
        self._scalar_width = scalar_width_bytes(domain.order)
        self._point_width = point_width_bytes(domain.field.m)

        self.started_at = self.loop.now
        self._agenda: List[tuple] = []
        self._seq = 0
        self._timer_seq = [0, 0]

        # tag (initiator) state
        self.tag_state = "await-m1"
        self.epoch = -1
        self.consumed_m1_attempt: Optional[int] = None
        # reader (responder) state
        self.reader_state = "await-m0"
        self.reader_epoch = -1
        self._commitment = None
        self._challenge: Optional[int] = None
        self.m1_bytes: Optional[bytes] = None
        self.m1_attempt = 0

        # bookkeeping
        self.frames_sent = 0
        self.corrupt = 0
        self.stale = 0
        self.replayed = 0
        self.payload_rejected = 0
        self.records_scanned = 0
        self.concluded: Optional[Tuple[bool, Optional[int], str]] = None
        self.aborted_phase: Optional[str] = None
        self.detected_replay = False
        self.budget_dead = False
        self._adv_commit: Optional[bytes] = None

    # -- agenda --------------------------------------------------------

    def _push(self, at: float, kind: str, *args) -> None:
        self._seq += 1
        self._heapq.heappush(self._agenda, (at, self._seq, kind, args))

    def _arm_timer(self, role: int, at: float) -> None:
        self._timer_seq[role] += 1
        self._push(at, "timer", role, self._timer_seq[role])

    def _ops(self, role: int) -> OperationCount:
        return self.tag.ops if role == _TAG else self.reader_ops

    def _send(self, sender: int, round_index: int, attempt: int,
              label: str, payload: bytes) -> None:
        epoch = self.epoch if sender == _TAG else self.reader_epoch
        frame = Frame(self.session_id, epoch, round_index, attempt,
                      sender, label, payload)
        data = encode_frame(frame)
        self._ops(sender).tx_bits += len(data) * 8
        self.frames_sent += 1
        frame_id = epoch * 3 + round_index
        deliveries = self.channel.transmit(data, frame_id, attempt,
                                           self.loop.now)
        receiver = _READER if sender == _TAG else _TAG
        for delivery in deliveries:
            self._push(delivery.at, "deliver", receiver, delivery.data)

    # -- tag side ------------------------------------------------------

    def _tag_energy_uj(self) -> float:
        from ..energy.comparison import protocol_energy
        return protocol_energy("peeters-hermans/tag", self.tag.ops,
                               self.server.config.distance_m
                               ).total_j * 1e6

    def _start_epoch(self) -> None:
        if self.budget_dead:
            return
        if self.epoch + 1 >= self.policy.max_epochs:
            self.aborted_phase = self.tag_state
            return
        budget = self.server.config.tag_budget_uj
        if not self.adversarial and budget > 0 \
                and self._tag_energy_uj() >= budget:
            # The tag's per-session µJ allowance is spent: it stops
            # retrying instead of following retransmissions into a
            # dead battery — the adversary lab's graceful-degradation
            # contract, server-side.
            self.budget_dead = True
            return
        if self.epoch >= 0 and not self.adversarial:
            self.tag.abort()
        self.epoch += 1
        self.consumed_m1_attempt = None
        self.tag_state = "await-m1"
        if self.adversarial:
            # A malicious reader replaying captured commit material:
            # the same bytes every epoch (and every session from this
            # source) — exactly what replay quarantine looks for.  No
            # real tag is involved, so no tag energy is drawn.
            payload = self._adv_commit_payload()
        else:
            payload = compress_point(self.domain.curve,
                                     self.tag.commit(self.rng_tag))
        self._send(_TAG, 0, 0, "R", payload)
        self._arm_timer(_TAG, self.loop.now + self.policy.round_deadline_s)

    def _adv_commit_payload(self) -> bytes:
        if self._adv_commit is None:
            import hashlib as _hashlib
            label = (self.source or f"session-{self.index}").encode()
            draw = int.from_bytes(_hashlib.sha256(
                b"repro.server/adv-commit/" + label).digest()[:8],
                "big")
            k = 1 + draw % (self.ring.n - 1)
            point = self.domain.curve.multiply_naive(
                k, self.domain.generator)
            self._adv_commit = compress_point(self.domain.curve, point)
        return self._adv_commit

    def _restart_epoch(self) -> None:
        delay = self.policy.epoch_backoff(self.seed, self.index,
                                          self.epoch + 1)
        self.tag_state = "backoff"
        self._push(self.loop.now + delay, "epoch")

    def _tag_frame(self, frame: Frame) -> None:
        if self.adversarial:
            # The malicious reader solicits work; it never answers
            # challenges (it cannot — it holds no tag secret).
            return
        if frame.round_index != 1 or frame.epoch != self.epoch:
            self.stale += 1
            return
        if self.tag_state == "await-m1":
            if len(frame.payload) != self._scalar_width:
                self.payload_rejected += 1
                return
            try:
                s = self.tag.respond(int_from_bytes(frame.payload),
                                     self.rng_tag)
            except ValueError:
                self.payload_rejected += 1
                return
            self.consumed_m1_attempt = frame.attempt
            self._send(_TAG, 2, 0, "s",
                       int_to_bytes(s, self._scalar_width))
            self.tag_state = "closing"
            self._arm_timer(_TAG,
                            self.loop.now + self.policy.round_deadline_s)
        elif self.tag_state == "closing":
            self.replayed += 1
            if frame.attempt > (self.consumed_m1_attempt or 0):
                # Retransmitted challenge after our response: the
                # response is presumed lost; the nonce is spent, so
                # the only safe recovery is a fresh epoch.
                self._restart_epoch()

    def _tag_timeout(self) -> None:
        if self.tag_state in ("await-m1", "closing"):
            self._restart_epoch()

    # -- reader side ---------------------------------------------------

    def _reader_m0(self, frame: Frame) -> None:
        if frame.epoch < self.reader_epoch or (
                frame.epoch == self.reader_epoch
                and self.reader_state == "done"):
            self.stale += 1
            return
        if frame.epoch == self.reader_epoch:
            self.replayed += 1
            return
        try:
            self._commitment = decompress_point(self.domain.curve,
                                                frame.payload)
        except FrameError:
            self.payload_rejected += 1
            return
        if self.server.observe_commit(self.source, self.index,
                                      frame.payload):
            self.detected_replay = True
            return
        self._challenge = self.ring.random_scalar(self.rng_reader)
        self.reader_ops.random_bits += self.ring.n.bit_length()
        self.reader_epoch = frame.epoch
        self.m1_bytes = int_to_bytes(self._challenge,
                                     self._scalar_width)
        self.m1_attempt = 0
        self.reader_state = "await-m2"
        self._send(_READER, 1, 0, "e", self.m1_bytes)
        self._arm_timer(_READER,
                        self.loop.now + self.policy.round_deadline_s)

    async def _reader_m2(self, frame: Frame) -> None:
        if frame.epoch != self.reader_epoch:
            self.stale += 1
            return
        if self.reader_state == "done":
            self.replayed += 1
            return
        if len(frame.payload) != self._scalar_width:
            self.payload_rejected += 1
            return
        verdict = await self._conclude(int_from_bytes(frame.payload))
        self.reader_state = "done"
        self.concluded = verdict

    async def _conclude(self, s: int
                        ) -> Tuple[bool, Optional[int], str]:
        """The reader's closing verification, through the scheduler
        and the search layer.  Mirrors
        :meth:`~repro.protocols.peeters_hermans.PeetersHermansReader.
        identify` operation for operation — the µJ-exactness tests
        depend on the OperationCount matching the sync reader's.
        """
        server = self.server
        curve, ring = self.domain.curve, self.ring
        e, commitment = self._challenge, self._commitment
        if not 1 <= e < ring.n or not 1 <= s < ring.n:
            return False, None, "tag not in the database"
        if not curve.is_on_curve(commitment) or commitment.is_infinity:
            return False, None, "tag not in the database"
        shared = await server.scheduler.multiply(server._secret_y,
                                                 commitment)
        self.reader_ops.point_multiplications += 1
        d = ring.reduce(shared.x)
        term1_f = server.scheduler.multiply(ring.sub(s, d),
                                            self.domain.generator)
        term2_f = server.scheduler.multiply(e, commitment)
        term1 = await term1_f
        term2 = await term2_f
        self.reader_ops.point_multiplications += 2
        candidate = curve.subtract(term1, term2)
        self.reader_ops.point_additions += 1
        if candidate.is_infinity:
            return False, None, "tag not in the database"
        needle = compress_point(curve, candidate)
        identity, scanned = server._search(self.index, needle)
        self.records_scanned += scanned
        if identity is None:
            return False, None, "tag not in the database"
        return True, identity, f"identified tag {identity}"

    def _reader_timeout(self) -> None:
        if self.reader_state != "await-m2":
            return
        if self.m1_attempt + 1 < self.policy.max_frame_attempts:
            self.m1_attempt += 1
            delay = self.policy.frame_backoff(self.seed, self.index,
                                              self.reader_epoch,
                                              self.m1_attempt)
            self._push(self.loop.now + delay, "m1-retransmit",
                       self.reader_epoch, self.m1_attempt)
        else:
            self.reader_state = "await-m0"

    # -- main loop -----------------------------------------------------

    async def run(self) -> SessionOutcome:
        self._start_epoch()
        while self._agenda:
            if self.concluded is not None \
                    or self.aborted_phase is not None \
                    or self.detected_replay or self.budget_dead:
                break
            at, _seq, kind, args = self._heapq.heappop(self._agenda)
            if at > self.loop.now:
                await self.loop.sleep(at - self.loop.now)
            if kind == "deliver":
                role, data = args
                self._ops(role).rx_bits += len(data) * 8
                try:
                    frame = decode_frame(data)
                except (FrameCorruptedError, FrameError):
                    self.corrupt += 1
                    continue
                if frame.session != self.session_id \
                        or frame.sender == role:
                    self.stale += 1
                    continue
                if role == _TAG:
                    self._tag_frame(frame)
                elif frame.round_index == 0:
                    self._reader_m0(frame)
                elif frame.round_index == 2:
                    await self._reader_m2(frame)
                else:
                    self.stale += 1
            elif kind == "timer":
                role, seq = args
                if seq != self._timer_seq[role]:
                    continue
                if role == _TAG:
                    self._tag_timeout()
                else:
                    self._reader_timeout()
            elif kind == "epoch":
                self._start_epoch()
            elif kind == "m1-retransmit":
                epoch, attempt = args
                if self.reader_state == "await-m2" \
                        and self.reader_epoch == epoch \
                        and self.m1_attempt == attempt:
                    self._send(_READER, 1, attempt, "e", self.m1_bytes)
                    self._arm_timer(
                        _READER,
                        self.loop.now + self.policy.round_deadline_s)
        if self.concluded is not None:
            accepted, identity, detail = self.concluded
            return self.as_outcome("accepted" if accepted
                                   else "rejected", detail,
                                   identity=identity)
        if self.detected_replay:
            return self.as_outcome(
                "adversarial",
                "commitment replayed from another session; source "
                "quarantined")
        if self.budget_dead:
            return self.as_outcome(
                "budget_exhausted",
                f"tag energy budget "
                f"({self.server.config.tag_budget_uj:g} uJ) spent; "
                f"tag stopped retrying")
        if self.adversarial:
            return self.as_outcome(
                "adversarial",
                "malicious reader traffic; session never completed")
        return self.as_outcome("aborted", "session aborted")

    # -- reporting -----------------------------------------------------

    def as_outcome(self, outcome: str, detail: str,
                   identity: Optional[int] = None) -> SessionOutcome:
        from ..energy.comparison import protocol_energy
        tag_energy = protocol_energy(
            "peeters-hermans/tag", self.tag.ops,
            self.server.config.distance_m)
        tag_energy_uj = tag_energy.total_j * 1e6
        if self.adversarial:
            # No real tag behind a malicious reader's traffic: the
            # initiator-side bits are the adversary's to pay, not a
            # battery's.
            tag_energy_uj = 0.0
        reader_energy = protocol_energy(
            "peeters-hermans/reader", self.reader_ops,
            self.server.config.distance_m)
        return SessionOutcome(
            index=self.index,
            outcome=outcome,
            identity=identity,
            expected_identity=self.expected_identity,
            detail=detail,
            epochs_used=self.epoch + 1,
            frames_sent=self.frames_sent,
            retransmissions=max(0, self.frames_sent - 3),
            corrupt_rejections=self.corrupt,
            stale_rejections=self.stale,
            replay_rejections=self.replayed,
            payload_rejections=self.payload_rejected,
            elapsed_s=self.loop.now - self.started_at,
            records_scanned=self.records_scanned,
            tag_energy_uj=tag_energy_uj,
            reader_energy_uj=reader_energy.total_j * 1e6,
        )
