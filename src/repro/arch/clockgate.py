"""Clock-tree and clock-gating model.

Section 6: "clock gating may be a tempting solution to reduce dynamic
power, however ... if different registers are enabled depending on the
secret key, different parts of the clock tree will be activated.  The
corresponding difference in power consumption will result in a clearly
visible pattern in the power trace, thereby enabling an SPA."

In the ladder, the destination register of the differential addition
(X1/Z1 vs X2/Z2) is selected by the key bit, so a design that gates
each register's clock individually activates key-dependent clock-tree
branches.  The branches never match exactly after layout, which is
what this model's per-branch weights capture.
"""

from __future__ import annotations

import enum

__all__ = ["ClockGatingPolicy", "ClockTreeModel"]


class ClockGatingPolicy(enum.Enum):
    """How register clocks are managed."""

    ALWAYS_ON = "always_on"          # every register clocked every cycle
    DATA_DEPENDENT = "data_dependent"  # only written registers clocked


class ClockTreeModel:
    """Per-cycle clock-tree switching contribution.

    Parameters
    ----------
    policy:
        The gating policy.
    register_count:
        Number of leaf branches (one per register).
    branch_mismatch:
        Relative capacitance spread between branches after layout;
        branch ``i`` weighs ``leaf_load * (1 + branch_mismatch * i)``.
        With ALWAYS_ON the total is constant so mismatch is invisible;
        with DATA_DEPENDENT the mismatch makes *which* register was
        clocked readable from the trace.
    leaf_load:
        Toggle weight of one branch at nominal mismatch — physically
        the clock pins of one register bank plus its buffers, so it
        scales with the register width (the coprocessor passes the
        field degree).
    """

    def __init__(
        self,
        policy: ClockGatingPolicy,
        register_count: int,
        branch_mismatch: float = 0.1,
        leaf_load: float = 1.0,
    ):
        if register_count < 1:
            raise ValueError("need at least one register branch")
        if branch_mismatch < 0:
            raise ValueError("branch mismatch must be non-negative")
        if leaf_load <= 0:
            raise ValueError("leaf load must be positive")
        self.policy = policy
        self.register_count = register_count
        self.branch_weights = [
            leaf_load * (1.0 + branch_mismatch * i)
            for i in range(register_count)
        ]

    def cycle_contribution(self, written_registers: list) -> float:
        """Clock switching activity for one cycle.

        ``written_registers`` lists the register indices whose write
        enable is asserted this cycle (usually empty or a singleton).
        """
        if self.policy is ClockGatingPolicy.ALWAYS_ON:
            return sum(self.branch_weights)
        return sum(self.branch_weights[r] for r in written_registers)

    @property
    def is_constant_power(self) -> bool:
        """True when the per-cycle contribution cannot depend on data."""
        return self.policy is ClockGatingPolicy.ALWAYS_ON
