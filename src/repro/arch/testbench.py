"""Random-stimulus equivalence testbench for the coprocessor.

The RTL-verification idiom applied to the architectural model: drive
the device under test with constrained-random stimulus, compare every
result against the golden reference (the affine group law), and track
functional coverage — which opcodes, key-bit patterns and corner
scalars the campaign actually exercised.  The library's own test suite
uses it, and it is the harness a downstream user would extend when
modifying the microcode.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from ..ec.point import AffinePoint
from .coprocessor import CoprocessorConfig, EccCoprocessor

__all__ = ["CoverageReport", "EquivalenceTestbench"]


@dataclass
class CoverageReport:
    """Functional coverage accumulated over a campaign."""

    runs: int = 0
    mismatches: list = dataclass_field(default_factory=list)
    opcodes_seen: set = dataclass_field(default_factory=set)
    saw_bit_zero: bool = False
    saw_bit_one: bool = False
    saw_min_scalar: bool = False
    saw_max_scalar: bool = False
    saw_dense_key: bool = False
    saw_sparse_key: bool = False

    @property
    def all_passed(self) -> bool:
        """No mismatches against the golden model."""
        return not self.mismatches

    @property
    def coverage_points(self) -> dict:
        """Name -> hit for each coverage goal."""
        return {
            "bit_zero": self.saw_bit_zero,
            "bit_one": self.saw_bit_one,
            "min_scalar": self.saw_min_scalar,
            "max_scalar": self.saw_max_scalar,
            "dense_key": self.saw_dense_key,
            "sparse_key": self.saw_sparse_key,
        }

    @property
    def coverage(self) -> float:
        """Fraction of coverage goals hit."""
        points = self.coverage_points
        return sum(points.values()) / len(points)

    def __str__(self) -> str:
        verdict = "PASS" if self.all_passed else \
            f"FAIL ({len(self.mismatches)} mismatches)"
        hit = ", ".join(k for k, v in self.coverage_points.items() if v)
        return (
            f"equivalence: {verdict} over {self.runs} runs; "
            f"coverage {self.coverage:.0%} ({hit})"
        )


class EquivalenceTestbench:
    """Drives a coprocessor configuration against the golden model.

    Parameters
    ----------
    config:
        Device under test configuration.
    """

    def __init__(self, config: Optional[CoprocessorConfig] = None):
        self.dut = EccCoprocessor(config or CoprocessorConfig())
        self.report = CoverageReport()

    def _golden(self, k: int, point: AffinePoint) -> AffinePoint:
        return self.dut.domain.curve.multiply_naive(k, point)

    def _random_subgroup_point(self, rng) -> AffinePoint:
        curve = self.dut.domain.curve
        while True:
            p = curve.double(curve.random_point(rng))
            if not p.is_infinity and p.x != 0:
                return p

    def check(self, k: int, point: AffinePoint, rng) -> bool:
        """One directed check; records coverage and any mismatch."""
        trace = self.dut.point_multiply(k, point, rng=rng)
        expected = self._golden(k, point)
        self.report.runs += 1
        self.report.opcodes_seen.update(
            instr.opcode for instr in trace.instructions
        )
        bits = trace.key_bits
        if 0 in bits:
            self.report.saw_bit_zero = True
        if 1 in bits:
            self.report.saw_bit_one = True
        order = self.dut.domain.order
        if k == 1:
            self.report.saw_min_scalar = True
        if k == order - 1:
            self.report.saw_max_scalar = True
        weight = bin(k).count("1")
        if weight >= (order.bit_length() * 2) // 3:
            self.report.saw_dense_key = True
        if 0 < weight <= 4:
            self.report.saw_sparse_key = True
        if trace.result != expected:
            self.report.mismatches.append((k, point))
            return False
        return True

    def run_campaign(self, runs: int, rng,
                     include_corners: bool = True) -> CoverageReport:
        """Constrained-random campaign plus the corner scalars."""
        order = self.dut.domain.order
        generator = self.dut.domain.generator
        if include_corners:
            dense = order - 2  # near-max weight after recoding
            for k in (1, 2, 3, order - 1, dense, 1 << 100):
                self.check(k, generator, rng)
        ring = self.dut.domain.scalar_ring
        for __ in range(runs):
            k = ring.random_scalar(rng)
            point = self._random_subgroup_point(rng)
            self.check(k, point, rng)
        return self.report
