"""Microcode inspection: listings, histograms and occupancy analysis.

The EDA view of an execution trace: what did the sequencer actually
run?  Used by the docs (the ladder-step listing), by the constant-time
tests (identical listings for different keys) and by the design-space
analysis (MALU occupancy tells you whether a faster multiplier would
even help).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .isa import Instruction, Opcode

__all__ = ["ProgramStatistics", "analyze_program", "format_listing",
           "REGISTER_NAMES"]

#: Symbolic names of the coprocessor registers (core + host buffers).
REGISTER_NAMES = ("X1", "Z1", "X2", "Z2", "XB", "T", "SB", "IO0", "IO1")


def _reg(index: int) -> str:
    if 0 <= index < len(REGISTER_NAMES):
        return REGISTER_NAMES[index]
    return f"r{index}"


@dataclass(frozen=True)
class ProgramStatistics:
    """Aggregate view of one executed microprogram."""

    instruction_count: int
    total_cycles: int
    opcode_histogram: dict
    opcode_cycles: dict
    malu_busy_cycles: int

    @property
    def malu_occupancy(self) -> float:
        """Fraction of cycles the MALU datapath is busy."""
        if self.total_cycles == 0:
            return 0.0
        return self.malu_busy_cycles / self.total_cycles

    def __str__(self) -> str:
        lines = [
            f"{self.instruction_count} instructions, "
            f"{self.total_cycles} cycles, "
            f"MALU occupancy {self.malu_occupancy:.0%}"
        ]
        for opcode, count in sorted(self.opcode_histogram.items(),
                                    key=lambda kv: -kv[1]):
            cycles = self.opcode_cycles[opcode]
            share = cycles / self.total_cycles if self.total_cycles else 0
            lines.append(
                f"  {opcode:<4} x{count:>5}  {cycles:>7} cycles ({share:.0%})"
            )
        return "\n".join(lines)


def analyze_program(instructions: list,
                    fetch_overhead: int = 0) -> ProgramStatistics:
    """Summarize an instruction log (e.g. ``ExecutionTrace.instructions``).

    ``fetch_overhead`` is subtracted per instruction when computing the
    MALU-busy share (fetch cycles keep the datapath idle).
    """
    histogram = Counter()
    cycles = Counter()
    total = 0
    busy = 0
    for instr in instructions:
        histogram[instr.opcode.value] += 1
        cycles[instr.opcode.value] += instr.cycles
        total += instr.cycles
        if instr.opcode in (Opcode.MUL, Opcode.SQR, Opcode.ADD):
            busy += max(0, instr.cycles - fetch_overhead)
    return ProgramStatistics(
        instruction_count=len(instructions),
        total_cycles=total,
        opcode_histogram=dict(histogram),
        opcode_cycles=dict(cycles),
        malu_busy_cycles=busy,
    )


def format_listing(instructions: list, limit: int = None) -> str:
    """Assembly-style listing with symbolic register names.

    ::

        0000  mul   T, X1, Z2      ; 49 cyc @ 112
        0001  add   Z1, T, X1     ;  9 cyc @ 161
    """
    rows = []
    for index, instr in enumerate(instructions):
        if limit is not None and index >= limit:
            rows.append(f"... ({len(instructions) - limit} more)")
            break
        operands = [_reg(instr.rd)]
        if instr.ra >= 0:
            operands.append(_reg(instr.ra))
        if instr.rb >= 0:
            operands.append(_reg(instr.rb))
        location = f" @ {instr.start_cycle}" if instr.start_cycle >= 0 else ""
        rows.append(
            f"{index:04d}  {instr.opcode.value:<4} "
            f"{', '.join(operands):<14} ; {instr.cycles:>3} cyc{location}"
        )
    return "\n".join(rows)
