"""The coprocessor architecture level of the security pyramid.

A cycle-level model of the paper's ECC chip: constant-time ISA,
tracked register file, digit-serial MALU, mux-control encodings
(Figure 3), clock-tree/gating model, the microcoded Montgomery-ladder
coprocessor, and the gate-count area model.
"""

from .area import (
    AES_ENC_GATES,
    AreaBreakdown,
    ECC_CORE_GATES_REFERENCE,
    GateCosts,
    SHA1_GATES,
    ecc_core_area,
)
from .clockgate import ClockGatingPolicy, ClockTreeModel
from .control import (
    BalancedEncoding,
    DEFAULT_MUX_FANOUT,
    MuxEncoding,
    UnbalancedEncoding,
)
from .coprocessor import (
    CoprocessorConfig,
    EccCoprocessor,
    InvalidDigitSizeError,
)
from .isa import Instruction, InstructionTiming, Opcode
from .malu import Malu
from .program import (
    ProgramStatistics,
    REGISTER_NAMES,
    analyze_program,
    format_listing,
)
from .testbench import CoverageReport, EquivalenceTestbench
from .registers import RegisterFile, RegisterWrite
from .trace import ExecutionTrace, IterationSpan

__all__ = [
    "AreaBreakdown",
    "GateCosts",
    "ecc_core_area",
    "SHA1_GATES",
    "AES_ENC_GATES",
    "ECC_CORE_GATES_REFERENCE",
    "ClockGatingPolicy",
    "ClockTreeModel",
    "MuxEncoding",
    "UnbalancedEncoding",
    "BalancedEncoding",
    "DEFAULT_MUX_FANOUT",
    "CoprocessorConfig",
    "EccCoprocessor",
    "InvalidDigitSizeError",
    "Opcode",
    "Instruction",
    "InstructionTiming",
    "Malu",
    "ProgramStatistics",
    "REGISTER_NAMES",
    "analyze_program",
    "format_listing",
    "CoverageReport",
    "EquivalenceTestbench",
    "RegisterFile",
    "RegisterWrite",
    "ExecutionTrace",
    "IterationSpan",
]
