"""Control-signal modelling: multiplexer select encoding (Figure 3).

The ladder step routes either (X1, Z1) or (X2, Z2) into the
differential-addition datapath depending on the key bit.  The select
signal drives many multiplexers ("164 in the presented ECC
co-processor") plus long wires and repeaters, so its transitions are
clearly visible in the power trace.

The paper's circuit-level countermeasure: "these signals have to be
encoded in such a way that the corresponding Hamming differences are
constant, otherwise the unbalance will reflect in the power trace",
backed by "regular layout structure and identical routing".  Section 7
adds the caveat that residual *layout* imbalance still leaves a small
SPA leak exploitable by a profiled attacker.

Three encodings model that spectrum:

* :class:`UnbalancedEncoding` — a single select wire; the per-iteration
  transition count equals the key-bit transition, a direct SPA leak.
* :class:`BalancedEncoding` — dual-rail (sel, sel_bar) with return-to-
  zero precharge: exactly one rail rises every iteration regardless of
  the key, so the Hamming difference is constant.
* :class:`BalancedEncoding` with ``layout_mismatch > 0`` — the two
  rails carry slightly different capacitance, leaving a leak of that
  relative magnitude (the profiled-SPA residual of Section 7).
"""

from __future__ import annotations

__all__ = [
    "MuxEncoding",
    "UnbalancedEncoding",
    "BalancedEncoding",
    "DEFAULT_MUX_FANOUT",
]

#: Multiplexer fan-out of the select network in the paper's design.
DEFAULT_MUX_FANOUT = 164


class MuxEncoding:
    """Base class: maps key-bit sequences to control-network activity.

    Subclasses implement :meth:`transition_weight`, the effective
    switched capacitance (in units of unit-wire toggles) of the select
    network when the ladder moves from processing ``previous_bit`` to
    ``current_bit``.
    """

    def __init__(self, fanout: int = DEFAULT_MUX_FANOUT):
        if fanout < 1:
            raise ValueError("mux fanout must be positive")
        self.fanout = fanout

    def transition_weight(self, previous_bit: int, current_bit: int) -> float:
        """Control-network switching activity for one iteration start."""
        raise NotImplementedError

    def iteration_weights(self, key_bits: list) -> list:
        """Per-iteration activity for a whole key-bit sequence.

        The ladder starts from the (public, always-1) MSB, so the first
        iteration's transition is computed against 1.
        """
        weights = []
        previous = 1
        for bit in key_bits:
            weights.append(self.transition_weight(previous, bit))
            previous = bit
        return weights


class UnbalancedEncoding(MuxEncoding):
    """Single-wire select: activity = fanout when the key bit flips.

    The Hamming difference between iterations is 0 or 1 depending on
    whether consecutive key bits differ — the Figure 3 "unbalanced"
    case that enables plain SPA.
    """

    def transition_weight(self, previous_bit: int, current_bit: int) -> float:
        return float(self.fanout) if previous_bit != current_bit else 0.0


class BalancedEncoding(MuxEncoding):
    """Dual-rail precharged select: constant activity per iteration.

    Each iteration precharges both rails and raises exactly one of
    them, so the ideal transition count is ``fanout`` regardless of the
    key.  ``layout_mismatch`` epsilon models the capacitance difference
    between the true and complement rails after place-and-route: the
    rail that rises for bit=1 is ``(1 + epsilon)`` heavier, leaving a
    second-order leak proportional to epsilon.
    """

    def __init__(self, fanout: int = DEFAULT_MUX_FANOUT, layout_mismatch: float = 0.0):
        super().__init__(fanout)
        if layout_mismatch < 0:
            raise ValueError("layout mismatch must be non-negative")
        self.layout_mismatch = layout_mismatch

    def transition_weight(self, previous_bit: int, current_bit: int) -> float:
        base = float(self.fanout)
        if current_bit == 1:
            return base * (1.0 + self.layout_mismatch)
        return base
