"""Instruction set of the ECC coprocessor.

Architecture-level security rule of Section 5: "all instructions should
execute with a constant number of cycles" (the timing-attack
countermeasure), and "sensitive data should appear only on the internal
data-bus" — there is deliberately no instruction that moves a register
to the output port; only the designated result registers are readable
after a point multiplication completes.

Instruction timing is parameterized by the digit size ``d`` of the
MALU: a field multiplication (and a squaring, when no dedicated
squarer is configured) occupies the MALU for ``ceil(m/d)`` datapath
cycles.  Every instruction additionally pays a constant fetch/decode
overhead, which is the knob the energy model calibrates against the
paper's measured 9.8 point multiplications per second.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

__all__ = ["Opcode", "Instruction", "InstructionTiming"]


class Opcode(enum.Enum):
    """Coprocessor operations (register-to-register, constant cycles)."""

    MUL = "mul"      # rd <- ra * rb           (digit-serial MALU)
    SQR = "sqr"      # rd <- ra^2              (MALU or dedicated squarer)
    ADD = "add"      # rd <- ra ^ rb           (bitwise field addition)
    MOV = "mov"      # rd <- ra
    LDI = "ldi"      # rd <- immediate         (operand load from host bus)


@dataclass(frozen=True)
class Instruction:
    """One executed instruction, as recorded in the instruction log.

    ``start_cycle`` is the cycle at which the instruction's fetch
    began; together with ``cycles`` it gives the instruction's cycle
    span inside the execution trace (used by white-box evaluators to
    map trace samples back to operations).
    """

    opcode: Opcode
    rd: int
    ra: int = -1
    rb: int = -1
    cycles: int = 0
    start_cycle: int = -1

    def __repr__(self) -> str:
        operands = [f"r{self.rd}"]
        if self.ra >= 0:
            operands.append(f"r{self.ra}")
        if self.rb >= 0:
            operands.append(f"r{self.rb}")
        return f"{self.opcode.value} {', '.join(operands)} ; {self.cycles}cyc"


@dataclass(frozen=True)
class InstructionTiming:
    """Cycle cost of each opcode for a given MALU configuration.

    Parameters
    ----------
    m:
        Field degree.
    digit_size:
        MALU digit size d; a multiplication takes ``ceil(m/d)`` datapath
        cycles.
    dedicated_squarer:
        When True, SQR is a single-cycle combinational operation (a
        separate squarer block, extra area); when False, SQR runs on the
        multiplier (the paper's minimal-area choice).
    fetch_overhead:
        Constant fetch/decode/writeback cycles added to *every*
        instruction.  Being constant, it does not affect the
        constant-time property; it is the throughput-calibration knob.
    """

    m: int
    digit_size: int
    dedicated_squarer: bool = False
    fetch_overhead: int = 2

    def __post_init__(self):
        if self.digit_size < 1 or self.digit_size > self.m:
            raise ValueError("digit size out of range")
        if self.fetch_overhead < 0:
            raise ValueError("fetch overhead cannot be negative")

    @property
    def mul_datapath_cycles(self) -> int:
        """MALU-occupancy cycles of one multiplication: ceil(m/d)."""
        return math.ceil(self.m / self.digit_size)

    def cycles(self, opcode: Opcode) -> int:
        """Total cycles (datapath + fetch overhead) for an opcode.

        The count is a pure function of the opcode — never of operand
        values — which is what makes the architecture constant-time.
        """
        if opcode is Opcode.MUL:
            datapath = self.mul_datapath_cycles
        elif opcode is Opcode.SQR:
            datapath = 1 if self.dedicated_squarer else self.mul_datapath_cycles
        elif opcode in (Opcode.ADD, Opcode.MOV, Opcode.LDI):
            datapath = 1
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown opcode {opcode}")
        return datapath + self.fetch_overhead
