"""The programmable ECC coprocessor: a cycle-level model of the chip.

This is the paper's artifact (Sections 5–6): a Montgomery-ladder point
multiplier over GF(2^163) built around a digit-serial MALU and six
163-bit working registers, with the full countermeasure stack —

* constant instruction timing (every opcode takes a fixed cycle count),
* a fixed iteration count for every scalar (the scalar is re-coded as
  ``k' = k + n`` or ``k + 2n`` so every multiplication runs the same
  number of ladder iterations — Coron-style length padding),
* randomized projective coordinates (Algorithm 1's ``R <- (x*r : r)``),
* configurable mux-select encoding (Figure 3), clock gating policy,
  datapath input isolation and glitch behaviour, so each circuit-level
  guideline of Section 6 can be switched on/off and attacked.

Registers: X1, Z1, X2, Z2, XB (the base-point x) and T — six working
registers for the whole ladder, matching the paper (a seventh, SB,
holds sqrt(b) on non-Koblitz curves where b != 1).  Two additional
bus-buffer slots (IO0, IO1) belong to the host interface and are used
only by the y-recovery/inversion epilogue, whose inputs are either
public (the base point) or masked by the Z-randomization.

Calibration note: the per-instruction ``fetch_overhead`` default of 8
cycles (microcode fetch, RAM-based operand reads, writeback — the
register storage in the reference architecture [10] is a RAM macro)
is chosen so a full K-163 point multiplication takes ~85 k cycles,
reproducing the paper's 9.8 point multiplications/s at 847.5 kHz.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from time import perf_counter as _perf_counter
from typing import Optional

from ..ec.curves import NamedCurve, NIST_K163
from ..ec.point import AffinePoint
from ..obs import profile as obs_profile
from ..obs import runtime as obs_runtime
from ..obs.metrics import DEFAULT_CYCLE_BUCKETS
from .clockgate import ClockGatingPolicy, ClockTreeModel
from .control import BalancedEncoding, MuxEncoding
from .isa import Instruction, InstructionTiming, Opcode
from .malu import Malu
from .registers import RegisterFile
from .trace import ExecutionTrace, IterationSpan

__all__ = ["CoprocessorConfig", "EccCoprocessor", "InvalidDigitSizeError"]


class InvalidDigitSizeError(ValueError):
    """A digit size the digit-serial datapath cannot be built with.

    Raised at :class:`CoprocessorConfig` construction, so a malformed
    design point fails with a typed error at the design-space boundary
    instead of deep inside the multiplier or the area model.
    """

#: Constant instruction-fetch switching activity per overhead cycle
#: (program counter, microcode word, decoder) — data-independent.
FETCH_ACTIVITY = 8.0

#: Spurious-toggle weight when datapath inputs are NOT isolated from
#: register updates (Section 6: "isolate the inputs to the data-paths").
ISOLATION_LEAK_WEIGHT = 0.5


@dataclass
class CoprocessorConfig:
    """Design-space point of the coprocessor.

    The defaults reproduce the paper's protected design: K-163, digit
    size 4, squaring on the multiplier, balanced mux encoding, no
    data-dependent clock gating, isolated datapath inputs, no glitching,
    randomized projective coordinates.
    """

    domain: NamedCurve = dataclass_field(default_factory=lambda: NIST_K163)
    digit_size: int = 4
    dedicated_squarer: bool = False
    fetch_overhead: int = 8
    mux_encoding: MuxEncoding = dataclass_field(default_factory=BalancedEncoding)
    clock_gating: ClockGatingPolicy = ClockGatingPolicy.ALWAYS_ON
    clock_branch_mismatch: float = 0.1
    input_isolation: bool = True
    glitch_factor: float = 0.0
    randomize_z: bool = True

    def __post_init__(self):
        d = self.digit_size
        m = self.domain.field.m
        if isinstance(d, bool) or not isinstance(d, int):
            raise InvalidDigitSizeError(
                f"digit size must be an integer, got {d!r}"
            )
        if d < 1:
            raise InvalidDigitSizeError(
                f"digit size must be at least 1, got {d}"
            )
        if d > m:
            raise InvalidDigitSizeError(
                f"digit size {d} exceeds the field degree m = {m}: the "
                "multiplication already finishes in one cycle at d = m, "
                "so the extra partial-product rows buy nothing"
            )

    @property
    def is_koblitz_b1(self) -> bool:
        """True when b = 1, which saves the sqrt(b) register and multiply."""
        return self.domain.curve.b == 1

    @property
    def core_register_count(self) -> int:
        """Working registers inside the secure zone (6, or 7 if b != 1)."""
        return 6 if self.is_koblitz_b1 else 7


# Register indices.
X1, Z1, X2, Z2, XB, T = range(6)
SB = 6          # sqrt(b), only allocated when b != 1
# The two host-bus buffer slots come after the core registers.


class EccCoprocessor:
    """Executes Montgomery-ladder point multiplications, cycle by cycle.

    Examples
    --------
    >>> import random
    >>> from repro.arch import EccCoprocessor, CoprocessorConfig
    >>> cop = EccCoprocessor(CoprocessorConfig())
    >>> trace = cop.point_multiply(0x1234, cop.domain.generator,
    ...                            rng=random.Random(0))
    >>> trace.result == cop.domain.curve.multiply_naive(0x1234,
    ...                                                 cop.domain.generator)
    True
    """

    def __init__(self, config: Optional[CoprocessorConfig] = None):
        self.config = config or CoprocessorConfig()
        self.domain = self.config.domain
        field = self.domain.field
        self.malu = Malu(
            field, self.config.digit_size, self.config.dedicated_squarer
        )
        self.timing = InstructionTiming(
            m=field.m,
            digit_size=self.config.digit_size,
            dedicated_squarer=self.config.dedicated_squarer,
            fetch_overhead=self.config.fetch_overhead,
        )
        self._io0 = self.config.core_register_count
        self._io1 = self.config.core_register_count + 1
        total_registers = self.config.core_register_count + 2
        self.registers = RegisterFile(total_registers, field.m)
        self.clock_tree = ClockTreeModel(
            self.config.clock_gating,
            total_registers,
            self.config.clock_branch_mismatch,
            leaf_load=float(field.m),
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def recode_scalar(self, k: int) -> int:
        """Length-pad the scalar: k' = k + n or k + 2n, fixed bit length.

        Every recoded scalar has bit length ``n.bit_length() + 1``, so
        the ladder always runs the same number of iterations — the
        architecture half of the constant-time property (Section 7).
        Requires the base point to have order n (prime-order subgroup).
        """
        n = self.domain.order
        if not 1 <= k < n:
            raise ValueError("scalar must be in [1, order - 1]")
        target_bits = n.bit_length() + 1
        padded = k + n
        if padded.bit_length() < target_bits:
            padded = k + 2 * n
        if padded.bit_length() != target_bits:
            raise AssertionError("scalar recoding failed to fix the length")
        return padded

    @property
    def iterations_per_multiplication(self) -> int:
        """Ladder iterations of every point multiplication (constant)."""
        return self.domain.order.bit_length()

    def point_multiply(
        self,
        k: int,
        point: AffinePoint,
        rng=None,
        initial_z: Optional[int] = None,
        max_iterations: Optional[int] = None,
        recover_y: bool = True,
    ) -> ExecutionTrace:
        """Run one point multiplication and return its execution trace.

        Parameters
        ----------
        k:
            Secret scalar in [1, n-1].
        point:
            Base point; must be a finite point of order n with x != 0
            (protocol points always are).
        rng:
            Randomness for the Z-randomization countermeasure.
        initial_z:
            Explicit Z (white-box "randomness known" scenario).
        max_iterations:
            Truncate after this many ladder iterations (no result) —
            used by DPA experiments that only target the leading key
            bits and do not need the full 86 k-cycle trace.
        recover_y:
            Run the y-recovery epilogue.  When False the result is
            exposed as ``trace.result_x_only``.
        """
        k_padded = self.recode_scalar(k)
        z0 = self._choose_z(rng, initial_z)
        return self._execute(k_padded, point, z0, max_iterations, recover_y)

    def replay_padded(
        self,
        k_padded: int,
        point: AffinePoint,
        initial_z: int,
        max_iterations: Optional[int] = None,
    ) -> ExecutionTrace:
        """Re-execute the (public) microcode for a hypothesized scalar.

        This is the adversary's tool in the white-box evaluation of
        Section 7: the netlist and microcode are known, so for any
        *hypothesized* recoded scalar and assumed randomization value
        the attacker can predict the chip's switching activity exactly.
        ``k_padded`` is the already-recoded scalar (leading bit 1); no
        y-recovery is run.
        """
        if k_padded < 2:
            raise ValueError("a recoded scalar has at least two bits")
        return self._execute(
            k_padded, point, initial_z, max_iterations, recover_y=False
        )

    def _choose_z(self, rng, initial_z: Optional[int]) -> int:
        field = self.domain.field
        if initial_z is not None:
            return initial_z
        if self.config.randomize_z:
            if rng is None:
                raise ValueError("randomize_z requires an rng (or initial_z)")
            z0 = 0
            while z0 == 0:
                z0 = rng.getrandbits(field.m) & (field.order - 1)
            return z0
        return 1

    def _execute(
        self,
        k_padded: int,
        point: AffinePoint,
        z0: int,
        max_iterations: Optional[int],
        recover_y: bool,
    ) -> ExecutionTrace:
        if point.is_infinity or point.x == 0:
            raise ValueError(
                "the coprocessor requires a finite base point with x != 0; "
                "degenerate points are handled by the host"
            )
        field = self.domain.field
        if not 1 <= z0 < field.order:
            raise ValueError("initial Z must be a non-zero reduced field value")

        self.registers.reset()
        trace = ExecutionTrace()
        self._trace = trace
        self._cycle = 0
        self._pending_control = 0.0

        self._prologue(point, z0)
        bits = [
            (k_padded >> i) & 1 for i in range(k_padded.bit_length() - 2, -1, -1)
        ]
        previous_bit = 1  # the implicit leading MSB
        profiling = obs_profile.enabled()
        for index, bit in enumerate(bits):
            if max_iterations is not None and index >= max_iterations:
                break
            start = self._cycle
            self._pending_control = self.config.mux_encoding.transition_weight(
                previous_bit, bit
            )
            if profiling:
                t0 = _perf_counter()
                self._ladder_iteration(bit)
                obs_profile.observe("ladder_step", _perf_counter() - t0)
            else:
                self._ladder_iteration(bit)
            trace.iterations.append(
                IterationSpan(start=start, end=self._cycle, key_bit=bit)
            )
            trace.key_bits.append(bit)
            previous_bit = bit

        truncated = max_iterations is not None and max_iterations < len(bits)
        if not truncated:
            if recover_y:
                trace.result = self._recover_y(point)
            else:
                trace.result_x_only = self._final_x()
        trace.check_consistency()
        self._trace = None
        rt = obs_runtime.current()
        if rt is not None:
            self._record_execution_metrics(rt.registry, trace)
        return trace

    def _record_execution_metrics(self, registry, trace: ExecutionTrace):
        """Fold one execution's instruction mix into the obs registry.

        Everything recorded here is cycle-exact simulator state, so the
        same campaign seed always reproduces the same values — these
        are the series ``obs diff`` watches for cycle regressions.
        """
        counts: dict = {}
        mults = 0
        for instruction in trace.instructions:
            name = instruction.opcode.value
            counts[name] = counts.get(name, 0) + 1
            if instruction.opcode is Opcode.MUL:
                mults += 1
        ops = registry.counter("repro_arch_instructions_total",
                               "executed instructions by opcode")
        for name in sorted(counts):
            ops.inc(counts[name], op=name)
        registry.counter("repro_arch_pointmults_total",
                         "point multiplications executed").inc()
        registry.histogram(
            "repro_arch_pointmult_cycles",
            "cycles per point multiplication (or truncated ladder)",
            buckets=DEFAULT_CYCLE_BUCKETS,
        ).observe(trace.cycles)
        steps = registry.histogram(
            "repro_arch_ladder_step_cycles",
            "cycles per Montgomery-ladder iteration",
            buckets=(50, 100, 200, 400, 800, 1600, 3200),
        )
        for span in trace.iterations:
            steps.observe(span.end - span.start)
        registry.histogram(
            "repro_arch_gf2m_mults_per_pointmult",
            "GF(2^m) multiplier dispatches per execution",
            buckets=(10, 30, 100, 300, 1000, 3000, 10000),
        ).observe(mults)

    def cycles_per_point_multiplication(self) -> int:
        """Cycle count of a full point multiplication (any scalar)."""
        trace = self.point_multiply(
            1, self.domain.generator, initial_z=1, recover_y=True
        )
        return trace.cycles

    # ------------------------------------------------------------------
    # microprograms
    # ------------------------------------------------------------------

    def _prologue(self, point: AffinePoint, z0: int) -> None:
        """Load operands, randomize, and compute Q = 2P (Algorithm 1)."""
        self._exec(Opcode.LDI, XB, immediate=point.x)
        if not self.config.is_koblitz_b1:
            sqrt_b = self.domain.field.sqrt_raw(self.domain.curve.b)
            self._exec(Opcode.LDI, SB, immediate=sqrt_b)
        self._exec(Opcode.LDI, Z1, immediate=z0)
        self._exec(Opcode.MUL, X1, XB, Z1)  # X1 = x * r
        self._mdouble_into(X2, Z2, X1, Z1)

    def _mdouble_into(self, dx: int, dz: int, sx: int, sz: int) -> None:
        """(dx : dz) <- double of (sx : sz); uses T as scratch."""
        self._exec(Opcode.SQR, T, sx)     # T  = sx^2
        self._exec(Opcode.SQR, dx, sz)    # dx = sz^2
        self._exec(Opcode.MUL, dz, T, dx)  # dz = sx^2 * sz^2
        if self.config.is_koblitz_b1:
            self._exec(Opcode.ADD, T, T, dx)   # T = sx^2 + sz^2
        else:
            self._exec(Opcode.MUL, dx, SB, dx)  # dx = sqrt(b) * sz^2
            self._exec(Opcode.ADD, T, T, dx)
        self._exec(Opcode.SQR, dx, T)     # dx = (sx^2 + sqrt(b) sz^2)^2

    def _ladder_iteration(self, bit: int) -> None:
        """One MPL iteration: Madd into the A side, Mdouble the B side.

        The (A, B) register routing is the multiplexer function of
        Figure 3: the instruction *sequence* is identical for both key
        bit values, only the operand selects differ.
        """
        if bit:
            ax, az, bx, bz = X1, Z1, X2, Z2
        else:
            ax, az, bx, bz = X2, Z2, X1, Z1
        # Differential addition (4 MUL + 1 SQR + 2 ADD):
        self._exec(Opcode.MUL, T, ax, bz)    # T  = AX * BZ
        self._exec(Opcode.MUL, ax, bx, az)   # AX = BX * AZ
        self._exec(Opcode.ADD, az, T, ax)    # AZ = T + AX
        self._exec(Opcode.SQR, az, az)       # AZ = (AX*BZ + BX*AZ)^2
        self._exec(Opcode.MUL, T, T, ax)     # T  = (AX*BZ)*(BX*AZ)
        self._exec(Opcode.MUL, ax, XB, az)   # AX = x * AZ
        self._exec(Opcode.ADD, ax, ax, T)    # AX = x*AZ + T
        # Doubling of the B side:
        self._mdouble_into(bx, bz, bx, bz)

    def _inverse_in_place(self, target: int, operand_copy: int, scratch: int) -> None:
        """target <- operand^-1 by the Itoh–Tsujii chain (MALU-only).

        ``operand_copy`` must hold the value to invert (it is
        preserved); ``scratch`` is clobbered.  Matches
        ``BinaryField.inverse_itoh_tsujii_raw`` instruction for
        instruction.
        """
        m = self.domain.field.m
        exponent_bits = []
        k = m - 1
        while k:
            exponent_bits.append(k & 1)
            k >>= 1
        exponent_bits.reverse()
        self._exec(Opcode.MOV, target, operand_copy)  # result = a (chain 1)
        chain_len = 1
        for bit in exponent_bits[1:]:
            self._exec(Opcode.MOV, scratch, target)
            for _ in range(chain_len):
                self._exec(Opcode.SQR, scratch, scratch)
            self._exec(Opcode.MUL, target, scratch, target)
            chain_len *= 2
            if bit:
                self._exec(Opcode.SQR, target, target)
                self._exec(Opcode.MUL, target, target, operand_copy)
                chain_len += 1
        self._exec(Opcode.SQR, target, target)

    def _final_x(self) -> int:
        """x-only epilogue: x3 = X1 / Z1 (one inversion)."""
        io0, io1 = self._io0, self._io1
        self._exec(Opcode.MOV, io0, Z1)
        self._inverse_in_place(T, io0, io1)      # T = 1/Z1
        self._exec(Opcode.MUL, X1, X1, T)        # X1 = x3
        return self.registers.read(X1)

    def _recover_y(self, point: AffinePoint) -> AffinePoint:
        """Full y-recovery epilogue (López–Dahab), one shared inversion.

        The ``Z2 == 0`` edge case (``k = n - 1``, so ``(k+1)P`` is the
        point at infinity) still executes the *entire* instruction
        sequence — every opcode operates happily on zero operands — and
        only the final result selection differs.  Short-circuiting here
        would make the epilogue ~9 k cycles shorter for exactly one
        scalar, a textbook timing oracle; real silicon raises the flag
        but lets the microcode run to completion.
        """
        regs = self.registers
        field = self.domain.field
        io0, io1 = self._io0, self._io1
        z2_vanished = regs.read(Z2) == 0
        # a = x * Z1 * Z2 ; inv = 1/a.
        self._exec(Opcode.MUL, io0, Z1, Z2)
        self._exec(Opcode.MUL, io0, XB, io0)
        self._inverse_in_place(T, io0, io1)       # T = inv
        self._exec(Opcode.MUL, io0, T, XB)        # io0 = inv * x
        self._exec(Opcode.MUL, io1, io0, Z2)      # io1 = 1/Z1
        self._exec(Opcode.MUL, X1, X1, io1)       # X1 = xa = x(kP)
        self._exec(Opcode.MUL, io1, io0, Z1)      # io1 = 1/Z2
        self._exec(Opcode.MUL, X2, X2, io1)       # X2 = xb = x((k+1)P)
        self._exec(Opcode.MUL, io0, Z1, Z2)
        self._exec(Opcode.MUL, io0, T, io0)       # io0 = 1/x
        self._exec(Opcode.LDI, io1, immediate=point.y)
        self._exec(Opcode.ADD, Z1, X1, XB)        # Z1 = xa + x
        self._exec(Opcode.ADD, Z2, X2, XB)        # Z2 = xb + x
        self._exec(Opcode.MUL, Z2, Z1, Z2)        # Z2 = (xa+x)(xb+x)
        self._exec(Opcode.SQR, T, XB)             # T = x^2
        self._exec(Opcode.ADD, Z2, Z2, T)
        self._exec(Opcode.ADD, Z2, Z2, io1)       # Z2 += y
        self._exec(Opcode.MUL, Z2, Z1, Z2)        # Z2 = (xa+x) * [...]
        self._exec(Opcode.MUL, Z2, Z2, io0)       # Z2 *= 1/x
        self._exec(Opcode.ADD, Z2, Z2, io1)       # Z2 += y -> y3
        if z2_vanished:
            # kP = -P; the registers hold the (harmless) zero-operand
            # garbage of the dummy run above.
            return self.domain.curve.negate(point)
        result = AffinePoint(regs.read(X1), regs.read(Z2))
        if not self.domain.curve.is_on_curve(result):
            raise AssertionError("y-recovery produced an off-curve point")
        return result

    # ------------------------------------------------------------------
    # execution engine
    # ------------------------------------------------------------------

    def _exec(self, opcode: Opcode, rd: int, ra: int = -1, rb: int = -1,
              immediate: Optional[int] = None) -> None:
        """Execute one instruction, appending its per-cycle activity."""
        regs = self.registers
        start_cycle = self._cycle
        if opcode is Opcode.MUL:
            result, activity = self.malu.multiply(regs.read(ra), regs.read(rb))
        elif opcode is Opcode.SQR:
            result, activity = self.malu.square(regs.read(ra))
        elif opcode is Opcode.ADD:
            result, activity = self.malu.add(regs.read(ra), regs.read(rb))
        elif opcode is Opcode.MOV:
            result = regs.read(ra)
            activity = [bin(result).count("1")]
        elif opcode is Opcode.LDI:
            if immediate is None:
                raise ValueError("LDI requires an immediate")
            result = immediate
            activity = [bin(result).count("1")]
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown opcode {opcode}")

        for _ in range(self.config.fetch_overhead):
            self._emit_cycle(FETCH_ACTIVITY, 0.0, [])
        last = len(activity) - 1
        for i, toggles in enumerate(activity):
            datapath = float(toggles)
            register_hd = 0.0
            written = []
            if i == last:
                event = regs.write(rd, result, self._cycle)
                register_hd = float(event.hamming_distance)
                written = [rd]
                if not self.config.input_isolation:
                    # Register update ripples into the datapath inputs.
                    datapath += ISOLATION_LEAK_WEIGHT * register_hd
            if self.config.glitch_factor:
                # Glitches add toggles superlinearly in the activity.
                datapath += (
                    self.config.glitch_factor * datapath * datapath
                    / self.domain.field.m
                )
            self._emit_cycle(datapath, register_hd, written)
        self._trace.instructions.append(
            Instruction(
                opcode=opcode,
                rd=rd,
                ra=ra,
                rb=rb,
                cycles=self.config.fetch_overhead + len(activity),
                start_cycle=start_cycle,
            )
        )

    def _emit_cycle(self, datapath: float, register_hd: float,
                    written: list) -> None:
        trace = self._trace
        trace.datapath.append(datapath)
        trace.register.append(register_hd)
        trace.control.append(self._pending_control)
        self._pending_control = 0.0
        trace.clock.append(self.clock_tree.cycle_contribution(written))
        self._cycle += 1
