"""The Modular Arithmetic Logic Unit (MALU).

The datapath of the coprocessor: a digit-serial GF(2^m) multiplier
(:class:`~repro.gf2m.digit_serial.DigitSerialMultiplier`) plus a
bitwise field adder.  Squaring either runs on the multiplier (the
paper's minimal-area configuration, following the MALU of Lee et al.
[10] / Sakiyama et al. [16]) or on a dedicated single-cycle squarer
(larger, faster — an ablation point for the digit-size bench).

Every operation returns the result together with its per-cycle
switching activity, which the coprocessor assembles into the
execution trace.
"""

from __future__ import annotations

from ..gf2m.digit_serial import DigitSerialMultiplier
from ..gf2m.field import BinaryField

__all__ = ["Malu"]


class Malu:
    """Digit-serial multiplier + adder (+ optional dedicated squarer)."""

    def __init__(self, field: BinaryField, digit_size: int,
                 dedicated_squarer: bool = False):
        self.field = field
        self.digit_size = digit_size
        self.dedicated_squarer = dedicated_squarer
        self._multiplier = DigitSerialMultiplier(field, digit_size)

    @property
    def mul_cycles(self) -> int:
        """Datapath cycles of one multiplication."""
        return self._multiplier.cycles_per_multiplication

    def multiply(self, a: int, b: int) -> tuple[int, list]:
        """Field multiplication: (product, per-cycle toggle counts).

        Per-cycle activity combines the accumulator update toggles and
        the partial-product-array toggles (the latter scale with the
        digit size — see :class:`~repro.gf2m.digit_serial
        .MultiplicationTrace`).
        """
        product, trace = self._multiplier.multiply(a, b)
        combined = [
            hd + arr
            for hd, arr in zip(trace.hamming_distances, trace.array_activity)
        ]
        return product, combined

    def square(self, a: int) -> tuple[int, list]:
        """Field squaring: on the multiplier, or in one cycle if dedicated.

        The dedicated squarer is a combinational bit-spread + reduce;
        its single-cycle activity is the Hamming distance between input
        and output on the result bus.
        """
        if self.dedicated_squarer:
            result = self.field.square_raw(a)
            return result, [bin(a ^ result).count("1")]
        return self.multiply(a, a)

    def add(self, a: int, b: int) -> tuple[int, list]:
        """Field addition (XOR): one cycle; activity = result bus toggles."""
        result = a ^ b
        return result, [bin(result).count("1")]

    def __repr__(self) -> str:
        squarer = "dedicated" if self.dedicated_squarer else "on-multiplier"
        return (
            f"Malu(m={self.field.m}, d={self.digit_size}, squarer={squarer})"
        )
