"""Gate-count area model (in NAND2-equivalent gate equivalents, GE).

Section 4's implementation-size discussion anchors on two published
numbers: the smallest SHA-1 core is 5 527 gates [12] and "an ECC core
uses about 12k gates" [10].  This model reproduces the ECC number from
a parametric breakdown (multiplier, registers, control) so the digit-
size sweep of E2 has a defensible area axis, and exposes the reference
constants for the E8 budget bench.

GE costs per cell are conventional standard-cell figures (NAND2 = 1).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "GateCosts",
    "AreaBreakdown",
    "ecc_core_area",
    "SHA1_GATES",
    "AES_ENC_GATES",
    "ECC_CORE_GATES_REFERENCE",
]

#: O'Neill 2008 — smallest SHA-1 for RFID tags (paper reference [12]).
SHA1_GATES = 5527

#: Feldhofer et al. — compact AES-128 encryption core, for comparison.
AES_ENC_GATES = 3400

#: The paper's quoted ECC core size (reference [10]).
ECC_CORE_GATES_REFERENCE = 12_000


@dataclass(frozen=True)
class GateCosts:
    """GE cost of each standard cell used by the model."""

    and2: float = 1.5
    xor2: float = 2.5
    mux2: float = 2.5
    dff: float = 6.0


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-block gate counts of one coprocessor configuration."""

    multiplier: float
    squarer: float
    registers: float
    control: float
    mux_network: float
    io_interface: float

    @property
    def total(self) -> float:
        """Total core area in GE."""
        return (
            self.multiplier
            + self.squarer
            + self.registers
            + self.control
            + self.mux_network
            + self.io_interface
        )

    def as_dict(self) -> dict:
        """Breakdown as a plain dict (for report printing)."""
        return {
            "multiplier": self.multiplier,
            "squarer": self.squarer,
            "registers": self.registers,
            "control": self.control,
            "mux_network": self.mux_network,
            "io_interface": self.io_interface,
            "total": self.total,
        }


def ecc_core_area(
    m: int = 163,
    digit_size: int = 4,
    register_count: int = 6,
    modulus_weight: int = 5,
    mux_fanout: int = 164,
    dedicated_squarer: bool = False,
    costs: GateCosts = GateCosts(),
) -> AreaBreakdown:
    """Parametric gate count of the ECC coprocessor core.

    Model:

    * digit-serial multiplier — ``m * d`` partial-product ANDs, an
      ``m * d`` XOR accumulation tree, ``(w - 2) * d`` reduction XORs
      for a weight-``w`` modulus, and an ``m``-bit accumulator register;
    * optional dedicated squarer — a combinational spread/reduce XOR
      network of about ``1.5 m`` XORs;
    * register file — ``count * m`` flip-flops;
    * control — microcode sequencer, loop counter and decoder
      (constant), plus the key-bit multiplexer network of ``fanout``
      2:1 muxes (Figure 3);
    * I/O — bus interface and the two host-buffer slots.

    With the defaults (K-163, d = 4, six registers) the total lands
    within a few percent of the paper's quoted 12 k gates.
    """
    if m < 1 or digit_size < 1 or digit_size > m:
        raise ValueError("invalid field degree / digit size")
    if register_count < 1:
        raise ValueError("need at least one register")
    multiplier = (
        m * digit_size * costs.and2
        + m * digit_size * costs.xor2
        + (modulus_weight - 2) * digit_size * costs.xor2
        + m * costs.dff  # accumulator
    )
    squarer = 1.5 * m * costs.xor2 if dedicated_squarer else 0.0
    registers = register_count * m * costs.dff
    control = 1500.0 + 64 * costs.dff  # sequencer + counters
    mux_network = mux_fanout * costs.mux2
    io_interface = 500.0
    return AreaBreakdown(
        multiplier=multiplier,
        squarer=squarer,
        registers=registers,
        control=control,
        mux_network=mux_network,
        io_interface=io_interface,
    )
