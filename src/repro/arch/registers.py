"""The coprocessor register file, with switching-activity tracking.

The paper's chip "uses six 163-bit registers for the whole point
multiplication" (Section 4).  Every write is recorded with its Hamming
distance — the quantity a CMOS power model turns into current — and
with which register was written, which the clock-gating model uses
(Section 6: "if different registers are enabled depending on the secret
key, different parts of the clock tree will be activated").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["RegisterFile", "RegisterWrite"]


@dataclass(frozen=True)
class RegisterWrite:
    """One register update event."""

    cycle: int
    register: int
    old_value: int
    new_value: int

    @property
    def hamming_distance(self) -> int:
        """Bit toggles caused by this write."""
        return bin(self.old_value ^ self.new_value).count("1")


class RegisterFile:
    """``count`` registers of ``width`` bits each.

    Reads are unrecorded (a read drives the operand bus; its activity
    is charged to the consuming datapath).  Writes are logged.
    """

    def __init__(self, count: int, width: int):
        if count < 1 or width < 1:
            raise ValueError("register file needs positive count and width")
        self.count = count
        self.width = width
        self._mask = (1 << width) - 1
        self._values = [0] * count
        self.writes: list = []

    def read(self, index: int) -> int:
        """Current value of a register."""
        self._check(index)
        return self._values[index]

    def write(self, index: int, value: int, cycle: int) -> RegisterWrite:
        """Write a register, logging the transition."""
        self._check(index)
        if not 0 <= value <= self._mask:
            raise ValueError("value exceeds the register width")
        event = RegisterWrite(
            cycle=cycle,
            register=index,
            old_value=self._values[index],
            new_value=value,
        )
        self._values[index] = value
        self.writes.append(event)
        return event

    def _check(self, index: int) -> None:
        if not 0 <= index < self.count:
            raise IndexError(f"register index {index} out of range 0..{self.count - 1}")

    def snapshot(self) -> list:
        """Copy of all register values (for invariant checks in tests)."""
        return list(self._values)

    def reset(self) -> None:
        """Zero all registers and clear the write log."""
        self._values = [0] * self.count
        self.writes = []

    @property
    def total_write_toggles(self) -> int:
        """Sum of Hamming distances over all recorded writes."""
        return sum(w.hamming_distance for w in self.writes)

    def __repr__(self) -> str:
        return f"RegisterFile({self.count} x {self.width} bits)"
