"""Execution traces: the coprocessor's per-cycle activity record.

An :class:`ExecutionTrace` is what the oscilloscope of Figure 4 would
see *before* the electrical layer: four per-cycle switching-activity
channels (datapath, register writes, control network, clock tree) that
the power simulator (:mod:`repro.power`) combines into a noisy current
trace.  It also carries the ground-truth annotations (key bits,
iteration boundaries) that the *evaluation harness* — not the modelled
attacker — uses to verify attack results.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Optional

from ..ec.point import AffinePoint

__all__ = ["ExecutionTrace", "IterationSpan"]


@dataclass(frozen=True)
class IterationSpan:
    """Cycle range [start, end) of one ladder iteration and its key bit."""

    start: int
    end: int
    key_bit: int


@dataclass
class ExecutionTrace:
    """Per-cycle switching activity of one coprocessor run.

    The four channels have one float per clock cycle:

    * ``datapath`` — MALU toggles (plus glitch and isolation effects),
    * ``register`` — register-file write toggles,
    * ``control`` — mux-select network toggles (Figure 3),
    * ``clock`` — clock-tree toggles under the configured gating policy.
    """

    datapath: list = dataclass_field(default_factory=list)
    register: list = dataclass_field(default_factory=list)
    control: list = dataclass_field(default_factory=list)
    clock: list = dataclass_field(default_factory=list)
    iterations: list = dataclass_field(default_factory=list)
    key_bits: list = dataclass_field(default_factory=list)
    instructions: list = dataclass_field(default_factory=list)
    result: Optional[AffinePoint] = None
    result_x_only: Optional[int] = None

    @property
    def cycles(self) -> int:
        """Total clock cycles of the run."""
        return len(self.datapath)

    @property
    def total_activity(self) -> float:
        """Sum of all switching activity (the energy-model input)."""
        return (
            sum(self.datapath)
            + sum(self.register)
            + sum(self.control)
            + sum(self.clock)
        )

    def check_consistency(self) -> None:
        """Raise if the four channels disagree on the cycle count."""
        n = len(self.datapath)
        if not (len(self.register) == len(self.control) == len(self.clock) == n):
            raise AssertionError("activity channels have inconsistent lengths")
        for span in self.iterations:
            if not (0 <= span.start < span.end <= n):
                raise AssertionError("iteration span outside the trace")

    def iteration_slices(self) -> list:
        """(start, end) cycle ranges of the ladder iterations."""
        return [(s.start, s.end) for s in self.iterations]
