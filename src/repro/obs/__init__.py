"""repro.obs — tracing, metrics and energy-provenance telemetry.

The paper's thesis is that security is a *design dimension* to be
traded against area, speed, power and energy; this package is the
instrument that makes those trades measurable across the whole
reproduction.  Three pillars, one API:

* **tracing** (:mod:`.tracing`) — hierarchical spans
  (``campaign.acquire`` > ``shard`` > ``trace`` > ``ladder.step``)
  with wall-time, simulated-cycle and µJ attribution, deterministic
  span ids, fsync-batched JSONL persistence;
* **metrics** (:mod:`.metrics`) — a process-local registry of
  counters/gauges/fixed-bucket histograms with a Prometheus-text
  exporter and diffable JSON snapshots;
* **profiling** (:mod:`.profile`) — opt-in perf_counter timers on the
  hot paths, feeding the same histograms.

Nothing here depends on anything outside the stdlib; the rest of the
package depends on it (guarded, so tracing off costs one global
read).  :mod:`.runtime` owns the on/off switch and worker
propagation, :mod:`.report` reads a finished run back, and
:mod:`.integration` is the single aggregation path behind ``campaign
status`` and ``protocol soak``.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricRegistry,
    diff_snapshots,
    strip_wall_metrics,
)
from .runtime import (
    ObsRuntime,
    configure,
    current,
    enabled,
    session,
    shard_scope,
    shutdown,
)
from .tracing import Span, SpanWriter, Tracer, derive_span_id, \
    derive_trace_id

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricError", "MetricRegistry",
    "diff_snapshots", "strip_wall_metrics",
    "ObsRuntime", "configure", "current", "enabled", "session",
    "shard_scope", "shutdown",
    "Span", "SpanWriter", "Tracer", "derive_span_id", "derive_trace_id",
]
