"""repro.obs — tracing, metrics and energy-provenance telemetry.

The paper's thesis is that security is a *design dimension* to be
traded against area, speed, power and energy; this package is the
instrument that makes those trades measurable across the whole
reproduction.  Three pillars, one API:

* **tracing** (:mod:`.tracing`) — hierarchical spans
  (``campaign.acquire`` > ``shard`` > ``trace`` > ``ladder.step``)
  with wall-time, simulated-cycle and µJ attribution, deterministic
  span ids, fsync-batched JSONL persistence;
* **metrics** (:mod:`.metrics`) — a process-local registry of
  counters/gauges/fixed-bucket histograms with a Prometheus-text
  exporter and diffable JSON snapshots;
* **profiling** (:mod:`.profile`) — opt-in perf_counter timers on the
  hot paths, feeding the same histograms;
* **live telemetry** (:mod:`.stream`, :mod:`.alerts`,
  :mod:`.flightrec`) — ordered seeded metric deltas folded in virtual
  time, a deterministic alert-rule engine with hysteresis, and a
  bounded crash flight recorder dumped on power loss or chaos kill.

Nothing here depends on anything outside the stdlib; the rest of the
package depends on it (guarded, so tracing off costs one global
read).  :mod:`.runtime` owns the on/off switch and worker
propagation, :mod:`.report` reads a finished run back, and
:mod:`.integration` is the single aggregation path behind ``campaign
status`` and ``protocol soak``.
"""

from .alerts import (
    AlertEngine,
    AlertRule,
    default_rulebook,
)
from .flightrec import FlightRecorder
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricError,
    MetricRegistry,
    diff_snapshots,
    strip_wall_metrics,
)
from .quantile import estimate_quantile
from .runtime import (
    ObsRuntime,
    configure,
    current,
    enabled,
    session,
    shard_scope,
    shutdown,
)
from .stream import (
    StreamAggregator,
    make_event,
    render_stream_exposition,
    run_pipeline,
    sort_events,
    spread_drain_events,
)
from .tracing import Span, SpanWriter, Tracer, derive_span_id, \
    derive_trace_id

__all__ = [
    "AlertEngine", "AlertRule", "default_rulebook",
    "FlightRecorder",
    "Counter", "Gauge", "Histogram", "MetricError", "MetricRegistry",
    "diff_snapshots", "strip_wall_metrics",
    "estimate_quantile",
    "ObsRuntime", "configure", "current", "enabled", "session",
    "shard_scope", "shutdown",
    "StreamAggregator", "make_event", "render_stream_exposition",
    "run_pipeline", "sort_events", "spread_drain_events",
    "Span", "SpanWriter", "Tracer", "derive_span_id", "derive_trace_id",
]
